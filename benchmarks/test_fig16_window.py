"""Figure 16: impact of the aggregation window on latency and throughput.

Paper result (Trio-ML-512 and Trio-ML-1024): growing the window raises
aggregation latency (more simultaneous packets per thread pool) and
raises throughput until the PFE saturates around 150 Gbps; window 4096
is a good latency/throughput balance.  The reproduction sweeps the same
windows and checks both monotonicities and the saturation behaviour,
including the RMW-complex-limited plateau.
"""

from repro.harness import experiments as exp, figures

#: Full paper sweep; the 4096-point dominates the run time.
WINDOWS = (1, 4, 16, 64, 256, 1024, 4096)


def test_fig16_window_sweep(record):
    results = record(
        exp.fig16_window_sweep, figures.render_fig16, windows=WINDOWS
    )
    for grads in (512, 1024):
        rows = results[grads]
        latencies = [row.latency_us for row in rows]
        throughputs = [row.throughput_gbps for row in rows]
        # Fig 16a: latency rises with window size.
        assert latencies == sorted(latencies)
        # Fig 16b: throughput rises with window size...
        assert throughputs == sorted(throughputs)
        # ...and saturates: the last doubling gains little.
        assert throughputs[-1] / throughputs[-2] < 1.25
        # The plateau sits in the paper's regime (~150 Gbps),
        # set by the RMW complex (6 G adds/s x 32 bits ~ 192 Gbps ceiling).
        assert 100 <= throughputs[-1] <= 200
