"""Supplementary benches beyond the paper's figures.

* Generation scaling: the same Trio-ML job on all six chipset
  generations (§2) — throughput must grow with the RMW complex.
* Packet-loss resiliency: the §7 future-work provisions (implemented
  here) keep allreduce exact under transient loss, at a bounded
  retransmission cost.
"""

from functools import partial

from repro.harness import experiments as exp, figures


def test_generation_scaling(record):
    rows = record(exp.generation_scaling, figures.render_generation_scaling)
    assert [row.generation for row in rows] == [1, 2, 3, 4, 5, 6]
    throughputs = [row.throughput_gbps for row in rows]
    # Monotone non-decreasing across generations, and the gen-6 chip
    # clearly outruns gen 1.
    assert all(b >= a * 0.99 for a, b in zip(throughputs, throughputs[1:]))
    assert throughputs[-1] > 2 * throughputs[0]


def test_loss_recovery_sweep(record):
    rows = record(exp.loss_recovery_sweep, figures.render_loss_recovery)
    assert rows[0].loss_rate == 0.0
    # No loss, no recovery machinery engaged.
    assert rows[0].frames_lost == 0
    assert rows[0].retransmissions == 0
    # Loss engaged the machinery (the sweep itself asserts exact sums).
    lossy = [row for row in rows if row.loss_rate >= 0.02]
    assert all(row.frames_lost > 0 for row in lossy)
    assert any(row.retransmissions > 0 for row in lossy)
    # Recovery costs time: the lossiest run is slower than the clean one.
    assert rows[-1].completion_ms > rows[0].completion_ms
