"""Figure 15: per-PFE aggregation latency and rate vs gradients/packet.

Paper result (window = 1, four servers): latency grows from 30 us at 64
gradients to ~200 us at 1024 — a 6.6x increase for 16x the gradients,
i.e. sublinear — and the derived aggregation rate climbs and plateaus
between 512 and 1024 gradients per packet.  The reproduction checks the
same monotonicity, sublinearity, and plateau (absolute values are lower
because end-host DPDK overheads are outside the simulated router; see
EXPERIMENTS.md).
"""

from repro.harness import experiments as exp, figures


def test_fig15_latency_rate(record):
    rows = record(exp.fig15_latency_rate, figures.render_fig15)
    assert [row.grads_per_packet for row in rows] == [64, 128, 256, 512, 1024]
    latencies = [row.latency_us for row in rows]
    rates = [row.rate_grads_per_us for row in rows]
    # Larger packets incur larger latency...
    assert latencies == sorted(latencies)
    # ...but sublinearly: 16x the gradients costs well under 16x.
    assert latencies[-1] / latencies[0] < 16
    # Trio is more efficient with larger packets: the rate never drops...
    assert all(b >= a * 0.98 for a, b in zip(rates, rates[1:]))
    # ...and plateaus between 512 and 1024 gradients per packet.
    assert rates[-1] / rates[-2] < 1.10
