"""Table 1: the DNN models used in the experiments."""

from repro.harness import experiments as exp, figures


def test_table1_models(record):
    rows = record(exp.table1_models, figures.render_table1)
    assert {row["model"] for row in rows} == {
        "ResNet50", "VGG11", "DenseNet161"
    }
    by_model = {row["model"]: row for row in rows}
    assert by_model["ResNet50"]["size_mb"] == 98
    assert by_model["VGG11"]["size_mb"] == 507
    assert by_model["DenseNet161"]["size_mb"] == 109
