"""Ablation benches for the design choices DESIGN.md calls out.

* RMW offload (§2.3) — engines next to memory vs thread-ownership locks.
* Multi-thread hash scanning (§5) — N timer threads vs one.
* Hierarchical aggregation (§4) — 3+3 workers over two PFEs + top level
  vs six workers on one PFE.
* 64-byte tail chunks (Figure 10) — the chunk-size latency trade-off.
"""

from functools import partial

from repro.harness import experiments as exp, figures


def test_ablation_rmw_offload(record):
    rows = record(
        exp.ablation_rmw_offload,
        partial(figures.render_ablation,
                "Ablation: RMW engine offload vs thread-ownership locking"),
    )
    rmw_us, lock_us = rows[0].value, rows[1].value
    # Offloading the update to the engine next to memory wins clearly:
    # the lock path pays two full memory round trips per update while
    # holding the location.
    assert lock_us > 2 * rmw_us


def test_ablation_scan_threads(record):
    rows = record(
        exp.ablation_scan_threads,
        partial(figures.render_ablation,
                "Ablation: parallel timer-thread table scanning (§5)"),
    )
    sweep_us = {row.label: row.value for row in rows}
    # Each N-fold increase in scan threads cuts the sweep time ~N-fold.
    assert sweep_us["10 scan threads"] < sweep_us["1 scan threads"] / 5
    assert sweep_us["100 scan threads"] < sweep_us["10 scan threads"]


def test_ablation_hierarchy(record):
    rows = record(
        exp.ablation_hierarchy,
        partial(figures.render_ablation,
                "Ablation: single-level vs hierarchical aggregation (§4)"),
    )
    values = {row.label: row.value for row in rows}
    # In the latency regime the extra level costs time (fabric hops and a
    # second aggregation pass)...
    assert (values["hierarchical, latency regime, window 4"]
            > values["single-level, latency regime, window 4"])
    # ...but once the stream saturates the RMW complex, spreading the add
    # load over three PFEs wins on completion time (§4's motivation).
    assert (values["hierarchical, saturating regime, window 256"]
            < values["single-level, saturating regime, window 256"])


def test_ablation_tail_chunks(record):
    rows = record(
        exp.ablation_tail_chunk,
        partial(figures.render_ablation,
                "Ablation: tail-read chunk size (Figure 10 loop)"),
    )
    by_chunk = {row.label: row.value for row in rows}
    # Bigger chunks mean fewer Memory-and-Queueing-Subsystem round trips:
    # the hardware's 64-byte choice is the fastest of the sweep.
    assert (by_chunk["64-byte tail chunks"]
            < by_chunk["32-byte tail chunks"]
            < by_chunk["16-byte tail chunks"])
