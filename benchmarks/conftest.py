"""Shared helpers for the per-figure benchmark harness.

Each benchmark runs one experiment driver exactly once under
pytest-benchmark (the drivers are deterministic discrete-event
simulations, so repeated rounds would measure the same thing), records
the reproduced rows/series in ``benchmark.extra_info``, and prints the
rendered table so ``pytest benchmarks/ --benchmark-only -s`` regenerates
the paper's evaluation output.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under the benchmark fixture; returns its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def record(benchmark, capsys):
    """Helper: run a driver once, render it, stash it in extra_info."""

    def _record(fn, renderer, *args, **kwargs):
        result = run_once(benchmark, fn, *args, **kwargs)
        rendered = renderer(result)
        benchmark.extra_info["rendered"] = rendered
        with capsys.disabled():
            print()
            print(rendered)
        return result

    return _record
