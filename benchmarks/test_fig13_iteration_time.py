"""Figure 13: training iteration time vs straggling probability.

Paper result: as p grows to 16%, SwitchML's iteration time climbs
steeply (it must wait for the straggler) while Trio-ML stays close to
the no-straggler Ideal; at p = 16% Trio-ML is 1.72x / 1.75x / 1.8x
faster than SwitchML for ResNet50 / DenseNet161 / VGG11.
"""

from repro.harness import experiments as exp, figures

PAPER_SPEEDUPS = {"resnet50": 1.72, "densenet161": 1.75, "vgg11": 1.8}


def test_fig13_iteration_time(record):
    results = record(exp.fig13_iteration_time, figures.render_fig13)
    for key, paper_speedup in PAPER_SPEEDUPS.items():
        rows = results[key]
        assert rows[0].probability == 0.0 and rows[-1].probability == 0.16
        # p=0 ordering: Ideal < Trio-ML < SwitchML.
        assert rows[0].ideal_ms < rows[0].trioml_ms < rows[0].switchml_ms
        # SwitchML degrades roughly linearly in p; Trio-ML stays near Ideal.
        assert rows[-1].switchml_ms > 1.4 * rows[0].switchml_ms
        assert rows[-1].trioml_ms < 1.3 * rows[-1].ideal_ms
        # Ideal is flat (no stragglers ever injected).
        ideal = [row.ideal_ms for row in rows]
        assert max(ideal) - min(ideal) < 1e-6
        # Final speedup in the paper's band.
        assert 0.75 * paper_speedup <= rows[-1].speedup <= 1.25 * paper_speedup
