"""Figure 12: time-to-accuracy for three DNN models at p = 16%.

Paper result: Trio-ML reaches the target top-5 validation accuracy
1.56x (ResNet50), 1.56x (DenseNet161), and 1.60x (VGG11) faster than
SwitchML.  The reproduction checks the same ordering and a speedup in
the same band for every model.
"""

from repro.harness import experiments as exp, figures

#: The paper's Figure 12 speedups, used as shape anchors.
PAPER_SPEEDUPS = {"resnet50": 1.56, "densenet161": 1.56, "vgg11": 1.60}


def test_fig12_time_to_accuracy(record):
    results = record(exp.fig12_time_to_accuracy, figures.render_fig12)
    for key, paper_speedup in PAPER_SPEEDUPS.items():
        result = results[key]
        assert result.switchml_minutes > result.trioml_minutes
        # Same regime as the paper (1.5-1.6x): allow a generous band.
        assert 0.7 * paper_speedup <= result.speedup <= 1.5 * paper_speedup
        # Accuracy curves are monotone and end at the target.
        accuracies = [a for __, a in result.trioml_curve]
        assert accuracies == sorted(accuracies)
