"""Figure 14: in-network timer threads' efficiency.

Paper result: with one permanently straggling server, the time from a
healthy server sending an aggregation packet to receiving the partial
result stays within **2x the straggler timeout** across timeouts of
2.5-20 ms.  The reproduction sweeps the same timeouts on the simulated
testbed and checks the same bound.
"""

from repro.harness import experiments as exp, figures


def test_fig14_mitigation(record):
    rows = record(exp.fig14_mitigation, figures.render_fig14)
    assert [row.timeout_ms for row in rows] == [2.5, 5.0, 10.0, 15.0, 20.0]
    for row in rows:
        assert row.blocks_mitigated > 0
        # The paper's claim: recovery within 2x the timeout interval.
        assert row.max_mitigation_ms <= 2 * row.timeout_ms + 1.0
        # And never faster than the timeout itself (the REF flag needs a
        # full interval untouched before the record counts as aged).
        assert row.mean_mitigation_ms >= 0.9 * row.timeout_ms
    # Mitigation time scales linearly with the configured timeout.
    means = [row.mean_mitigation_ms for row in rows]
    assert means == sorted(means)
    assert means[-1] / means[0] > 5
