"""§6.3 Microcode program analysis.

Paper result: the Trio-ML program is ~60 instructions; the aggregation
loop runs at ~1.2 run-time instructions per gradient; 12 RMW engines at
2 cycles per add and 1 GHz give 6 billion add operations per second per
PFE.  The reproduction measures the dynamic instruction rate on the
simulated PFE and reads the architectural rates from the chipset config.
"""

import pytest

from repro.harness import experiments as exp, figures


def test_program_analysis(record):
    analysis = record(
        exp.microcode_program_analysis, figures.render_program_analysis
    )
    assert analysis.static_instructions == 60
    assert analysis.loop_instructions_per_gradient == pytest.approx(1.2)
    # Measured rate includes per-packet fixed costs (parse, lookups,
    # completion check), so it sits slightly above the loop rate.
    assert 1.15 <= analysis.measured_instructions_per_gradient <= 1.5
    assert analysis.rmw_engines == 12
    assert analysis.rmw_add_cycles == 2
    assert analysis.rmw_add_rate_ops_per_s == pytest.approx(6e9)
