"""Fast-path kernel performance and determinism checks.

The ISSUE's acceptance bar: the pooled-delay hot loop must sustain at
least 3x the seed kernel's ~500k events/s (i.e. >= 1.5M events/s), and
figure sweeps must be bit-identical whether run serially, through the
fast path, or fanned across processes with ``--parallel``.

Thresholds use :func:`time.process_time` best-of-N with the GC paused
(see :mod:`repro.harness.perfjson` for the methodology), so they hold on
a loaded shared box; they are still throughput assertions, so run this
file on an otherwise-idle interpreter for trustworthy numbers.
"""

from __future__ import annotations

from repro.harness import perfjson
from repro.harness.experiments import (
    FIG15_GRAD_COUNTS,
    _fig15_point,
    _map_points,
    fig15_latency_rate,
)

#: 3x the seed baseline the issue quotes (~500k events/s).
MIN_DELAY_EVENTS_PER_S = 1_500_000


def _sustained(bench, floor: float, attempts: int = 3) -> float:
    """Best rate over up to ``attempts`` measurement rounds.

    A shared runner can stall any single round; a throughput *capability*
    assertion only needs one clean round, so stop as soon as the floor
    is met.
    """
    best = 0.0
    for _ in range(attempts):
        best = max(best, bench(events=200_000, repeats=5))
        if best >= floor:
            break
    return best


def test_delay_path_meets_3x_throughput_floor():
    rate = _sustained(perfjson.bench_delay_path, MIN_DELAY_EVENTS_PER_S)
    assert rate >= MIN_DELAY_EVENTS_PER_S, (
        f"pooled delay path sustained {rate:,.0f} events/s, "
        f"below the {MIN_DELAY_EVENTS_PER_S:,} floor"
    )


def test_timeout_path_not_regressed():
    """The general (unpooled) path must stay above the seed baseline."""
    floor = perfjson.SEED_BASELINE["timeout_events_per_s"] * 0.85
    rate = _sustained(perfjson.bench_timeout_path, floor)
    assert rate >= floor, (
        f"timeout path sustained {rate:,.0f} events/s, below the seed "
        f"baseline floor of {floor:,.0f}"
    )


#: The refactored trainer loop (registry dispatch instead of inlined
#: if/else) sustains ~300k it/s at p=16% on the reference box; 100k is a
#: generous floor that still catches an accidental per-iteration
#: registry lookup or config re-validation landing in the hot loop.
MIN_TRAINER_ITERATIONS_PER_S = 100_000


def test_trainer_loop_meets_throughput_floor():
    rate = _sustained(
        lambda events, repeats: perfjson.bench_trainer_loop(
            iterations=events, repeats=repeats
        ),
        MIN_TRAINER_ITERATIONS_PER_S,
    )
    assert rate >= MIN_TRAINER_ITERATIONS_PER_S, (
        f"trainer loop sustained {rate:,.0f} iterations/s, below the "
        f"{MIN_TRAINER_ITERATIONS_PER_S:,} floor"
    )


#: The NF chain executor sustains ~400k packets/s through the canonical
#: three-NF chain on the reference box; 100k is a generous floor that
#: still catches an accidental per-packet chain re-compile, registry
#: lookup, or state-spec re-validation landing in the dispatch loop.
MIN_CHAIN_PACKETS_PER_S = 100_000


def test_nf_chain_meets_throughput_floor():
    rate = _sustained(
        lambda events, repeats: perfjson.bench_nf_chain(
            packets=events // 10, repeats=repeats
        ),
        MIN_CHAIN_PACKETS_PER_S,
    )
    assert rate >= MIN_CHAIN_PACKETS_PER_S, (
        f"NF chain executor sustained {rate:,.0f} packets/s, below the "
        f"{MIN_CHAIN_PACKETS_PER_S:,} floor"
    )


#: The traffic library generates ~270k websearch flow specs/s on the
#: reference box (CDF inverse-transform sizes, Poisson arrivals); 50k is
#: a generous floor that still catches an accidental per-flow sampler
#: rebuild or CDF re-validation landing in the generation loop.
MIN_TRAFFIC_FLOWS_PER_S = 50_000


def test_traffic_generation_meets_throughput_floor():
    rate = _sustained(
        lambda events, repeats: perfjson.bench_traffic(
            num_flows=events // 4, repeats=repeats
        ),
        MIN_TRAFFIC_FLOWS_PER_S,
    )
    assert rate >= MIN_TRAFFIC_FLOWS_PER_S, (
        f"traffic generator sustained {rate:,.0f} flows/s, below the "
        f"{MIN_TRAFFIC_FLOWS_PER_S:,} floor"
    )


def test_macro_packet_path_reports_throughput():
    stats = perfjson.bench_packet_path(blocks=40, repeats=2)
    assert stats["packets"] > 0
    assert stats["packets_per_s"] > 0
    assert stats["scheduled_events"] > stats["packets"]


def test_flowsim_meets_bytes_per_cpu_second_floor():
    """The hybrid acceptance bar: the flow level must simulate at least
    ``FLOWSIM_SPEEDUP_FLOOR``x (400x) more traffic bytes per CPU-second
    than the packet level.

    With the incremental path-class solver, full sizing (10^4 flows)
    lands ~900-1000x on the reference box; the reduced sizing here
    keeps the test fast while staying far enough above the floor that
    scheduler noise cannot trip it.  The packet side reuses the macro
    data-plane bench so both sides share the process_time/GC-paused
    methodology.
    """
    packet = perfjson.bench_packet_path(blocks=40, repeats=2)
    flowsim = perfjson.bench_flowsim(num_flows=2_000, repeats=2)
    ratio = (flowsim["simulated_bytes_per_cpu_s"]
             / packet["simulated_bytes_per_cpu_s"])
    assert ratio >= perfjson.FLOWSIM_SPEEDUP_FLOOR, (
        f"flow level simulated {flowsim['simulated_bytes_per_cpu_s']:,.0f} "
        f"bytes/cpu-s vs packet level "
        f"{packet['simulated_bytes_per_cpu_s']:,.0f} — only {ratio:.1f}x, "
        f"below the {perfjson.FLOWSIM_SPEEDUP_FLOOR:.0f}x floor"
    )
    assert flowsim["escalated_flows"] > 0, (
        "the benchmark scenario must exercise the escalation boundary; "
        "an all-fluid run would overstate the speedup"
    )


#: The incremental path-class solver sustains ~3.5-4k flow
#: arrival/departure events per second at a ~100-class live window
#: (each event is a full incremental re-solve), vs well under 1k for a
#: from-scratch per-flow rebuild at the same point.  1k is a generous
#: floor that still trips immediately if the incremental path ever
#: regresses to rebuilding `elastic`/`pinned` state per solve.
MIN_SOLVER_FLOWS_PER_S = 1_000


def test_incremental_solver_meets_churn_floor():
    rate = _sustained(
        lambda events, repeats: perfjson.bench_solver(
            num_flows=events // 50, repeats=repeats
        ),
        MIN_SOLVER_FLOWS_PER_S,
    )
    assert rate >= MIN_SOLVER_FLOWS_PER_S, (
        f"path-class solver sustained {rate:,.0f} flows/s of churn, "
        f"below the {MIN_SOLVER_FLOWS_PER_S:,} floor"
    )


def test_flowsim_event_budget_holds():
    """The dead-wake-up guard end to end: `bench_flowsim` itself raises
    if the event heap grows past ~3.5 events/flow, so a pass here means
    completion wake-ups are being reused/cancelled, not abandoned."""
    stats = perfjson.bench_flowsim(num_flows=1_000, repeats=1)
    assert stats["scheduled_events_per_flow"] <= 3.5
    assert stats["wake_reused"] > 0, (
        "no completion wake-up was ever reused; the single-live-wake "
        "path is not engaged"
    )


def test_fig15_serial_parallel_bit_identical():
    """Same rows AND same kernel event counts, serial vs ``--parallel``.

    Every sweep point builds its Environment from its arguments alone,
    so process fan-out cannot change any simulated result; the scheduled
    event count is the kernel-level fingerprint that would catch even a
    result-preserving divergence in event order bookkeeping.
    """
    points = [(grads, 5) for grads in FIG15_GRAD_COUNTS]
    serial = _map_points(_fig15_point, points, parallel=None)
    fanned = _map_points(_fig15_point, points, parallel=2)
    assert [row for row, _ in serial] == [row for row, _ in fanned]
    assert [events for _, events in serial] == [
        events for _, events in fanned
    ]


def test_fig15_driver_parallel_matches_serial():
    """The public driver agrees with itself under ``parallel=``."""
    assert fig15_latency_rate(blocks=3) == fig15_latency_rate(
        blocks=3, parallel=2
    )

def test_disabled_obs_probe_under_ceiling():
    """The zero-overhead contract: a disabled ``obs.probe`` is a global
    load plus a no-op method call.  The absolute ceiling is generous
    (tens of ns measured vs a 2000 ns bound) so box noise cannot trip
    it, but a de-nulled dispatch path — recording while "disabled" —
    jumps 10-100x and fails immediately."""
    stats = perfjson.bench_obs_overhead(calls=200_000, repeats=3)
    for key in ("null_probe_ns", "null_probe_fields_ns"):
        assert stats[key] <= perfjson.OBS_PROBE_NS_CEILING, (
            f"disabled obs.probe ({key}) costs {stats[key]:.0f} ns/call, "
            f"above the {perfjson.OBS_PROBE_NS_CEILING:.0f} ns ceiling"
        )


def test_disabled_obs_keeps_kernel_throughput():
    """Observability wiring must not tax the disabled hot loop: the
    observed-run variant lives in a separate ``_run_observed`` body, so
    the only disabled-mode cost is one ``enabled()`` check per
    ``env.run()`` call.  Reuses the delay-path floor as the budget."""
    from repro.obs import bus

    assert not bus.enabled()
    rate = _sustained(perfjson.bench_delay_path, MIN_DELAY_EVENTS_PER_S)
    assert rate >= MIN_DELAY_EVENTS_PER_S, (
        f"delay path with obs wiring sustained {rate:,.0f} events/s, "
        f"below the {MIN_DELAY_EVENTS_PER_S:,} floor"
    )
