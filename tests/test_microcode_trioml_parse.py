"""Tests: the Microcode port of Trio-ML's header parse agrees with the
Python protocol implementation."""

import pytest

from repro.microcode import MicrocodeExecutor
from repro.microcode.programs import compile_trio_ml_parse_program
from repro.net import IPv4Address, MACAddress, Packet
from repro.sim import Environment
from repro.trio import PFE
from repro.trio.ppe import PacketContext, ThreadContext
from repro.trioml.protocol import TRIO_ML_UDP_PORT, TrioMLHeader, encode_trio_ml


@pytest.fixture(scope="module")
def program():
    return compile_trio_ml_parse_program()


def run_parse(program, packet):
    env = Environment()
    pfe = PFE(env, "pfe1", num_ports=1)
    outcome = {}

    def forward_packet(tctx, pctx):
        yield from tctx.execute(1)
        outcome["path"] = "forward"

    def aggregate(tctx, pctx):
        yield from tctx.execute(1)
        outcome["path"] = "aggregate"

    executor = MicrocodeExecutor(
        program,
        terminals={"forward_packet": forward_packet,
                   "aggregate": aggregate},
    )
    head, tail = packet.split(pfe.config.head_size_bytes)
    pctx = PacketContext(packet=packet, head=bytearray(head), tail=tail)
    tctx = ThreadContext(env=env, ppe=pfe.ppes[0], config=pfe.config,
                         memory=pfe.memory, hash_table=pfe.hash_table,
                         packet_ctx=pctx)
    proc = env.process(executor.run(tctx, pctx))
    env.run(until=proc)
    regs = {
        name: tctx.registers[idx] for name, idx in program.reg_map.items()
    }
    return outcome.get("path"), regs


def ml_packet(header, gradients):
    return Packet.udp(
        src_mac=MACAddress(1), dst_mac=MACAddress(0xFE),
        src_ip=IPv4Address("10.0.0.1"), dst_ip=IPv4Address("10.255.0.1"),
        src_port=TRIO_ML_UDP_PORT, dst_port=TRIO_ML_UDP_PORT,
        payload=encode_trio_ml(header, gradients),
    )


class TestClassification:
    def test_aggregation_packet_parsed(self, program):
        header = TrioMLHeader(job_id=7, block_id=0xABCDEF, src_id=3,
                              grad_cnt=17, gen_id=0x1234)
        path, regs = run_parse(program, ml_packet(header, [0] * 17))
        assert path == "aggregate"
        assert regs["r_job_id"] == 7
        assert regs["r_block_id"] == 0xABCDEF
        assert regs["r_src_id"] == 3
        assert regs["r_grad_cnt"] == 17
        assert regs["r_gen_id"] == 0x1234

    def test_other_udp_forwarded(self, program):
        packet = Packet.udp(
            src_mac=MACAddress(1), dst_mac=MACAddress(2),
            src_ip=IPv4Address("10.0.0.1"), dst_ip=IPv4Address("10.0.0.2"),
            src_port=53, dst_port=53, payload=b"dns",
        )
        path, __ = run_parse(program, packet)
        assert path == "forward"

    def test_non_ip_forwarded(self, program):
        from repro.net.headers import ETHERTYPE_ARP, EthernetHeader
        ether = EthernetHeader(MACAddress(2), MACAddress(1),
                               ethertype=ETHERTYPE_ARP)
        path, __ = run_parse(program, Packet(ether.pack() + bytes(50)))
        assert path == "forward"

    def test_every_instruction_fits_its_budget(self, program):
        # TC accepted the program: every instruction's operand traffic is
        # within the 4-reg/2-mem read and 2/2 write budget.
        for name, budget in program.budgets.items():
            assert budget.reg_reads <= budget.MAX_REG_READS
            assert budget.mem_reads <= budget.MAX_MEM_READS, name

    def test_parse_agrees_with_python_decoder(self, program):
        for job, block, src, cnt, gen in (
            (1, 0, 0, 1, 0),
            (255, 2**32 - 1, 255, 1024, 65535),
            (42, 1234, 17, 500, 7),
        ):
            header = TrioMLHeader(job_id=job, block_id=block, src_id=src,
                                  grad_cnt=cnt, gen_id=gen)
            path, regs = run_parse(program, ml_packet(header, [0] * cnt))
            assert path == "aggregate"
            assert (regs["r_job_id"], regs["r_block_id"], regs["r_src_id"],
                    regs["r_grad_cnt"], regs["r_gen_id"]) == (
                job, block, src, cnt, gen
            )
