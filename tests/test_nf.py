"""Unit tests for the NF abstraction: base contract, registry, and the
three shipped NFs (firewall, telemetry, aggregate).

Chain compilation, placement, and execution are covered by
``test_nf_chain.py``; these tests pin the per-NF semantics the
placement-identity contract is built on.
"""

import pytest

from repro.nf import (
    AggregateNF,
    FirewallNF,
    NF,
    NFError,
    NFState,
    PacketView,
    STATE_COUNTER,
    STATE_HASH_ENTRIES,
    STATE_REGISTER_ARRAY,
    STATE_TIMER_THREADS,
    StateSpec,
    StrikePolicy,
    TelemetryNF,
    UnknownNFError,
    VERDICT_CONSUME,
    VERDICT_DROP,
    VERDICT_FORWARD,
    available_nfs,
    get_nf,
    register_nf,
    sweep_decision,
    unregister_nf,
)
from repro.nf.firewall import _SourceEntry
from repro.trioml.aggregator import TrioMLAggregator
from repro.trioml.protocol import TRIO_ML_UDP_PORT


def view(index=0, flow=(0x0A000001, 0xC0A80001, 1000, 2000),
         length=100, payload_len=16, payload_word=0):
    return PacketView(index=index, flow=flow, length=length,
                      payload_len=payload_len, payload_word=payload_word)


class TestStateSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(NFError, match="unknown state kind"):
            StateSpec("bloom_filter", "b", entries=4)

    def test_entries_floor(self):
        with pytest.raises(NFError, match="entries >= 1"):
            StateSpec(STATE_COUNTER, "c", entries=0)

    def test_timer_threads_floor(self):
        with pytest.raises(NFError, match="threads >= 1"):
            StateSpec(STATE_TIMER_THREADS, "t", threads=0)

    def test_sram_bits(self):
        assert StateSpec(STATE_REGISTER_ARRAY, "r", entries=100,
                         width_bits=32).sram_bits == 3200
        assert StateSpec(STATE_TIMER_THREADS, "t", threads=4).sram_bits == 0


class TestNFDefaults:
    def test_pisa_registers_derived_from_state(self):
        class Sample(NF):
            name = "sample"

            def state_resources(self):
                return (
                    StateSpec(STATE_HASH_ENTRIES, "keys", entries=64,
                              width_bits=32),
                    StateSpec(STATE_COUNTER, "hits", entries=8,
                              width_bits=64),
                    StateSpec(STATE_TIMER_THREADS, "sweep", threads=2),
                )

        regs = Sample().pisa_registers()
        # Hash state widens to 64-bit pairs; timers need no registers.
        assert regs == (("sample.keys", 64, 64), ("sample.hits", 8, 64))

    def test_budget_helpers(self):
        nf = FirewallNF(max_sources=128, review_threads=3)
        assert nf.hash_entries() == 128
        assert nf.timer_threads() == 3
        assert nf.trio_state_ops_per_packet() == (1, 1)

    def test_trio_instruction_charge_adds_parse_bound(self):
        nf = TelemetryNF()
        assert nf.trio_instructions_per_packet(4.0) == pytest.approx(
            4.0 + nf.trio_body_instructions
        )


class TestRegistry:
    def test_defaults_registered(self):
        assert {"firewall", "telemetry", "aggregate"} <= set(available_nfs())

    def test_lookup_case_insensitive(self):
        assert get_nf("FIREWALL") is get_nf("firewall")

    def test_unknown_name(self):
        with pytest.raises(UnknownNFError, match="nonesuch"):
            get_nf("nonesuch")

    def test_register_unregister_roundtrip(self):
        nf = TelemetryNF(max_flows=32)
        nf.name = "telemetry-small"
        register_nf(nf)
        try:
            assert get_nf("telemetry-small") is nf
        finally:
            unregister_nf("telemetry-small")
        with pytest.raises(UnknownNFError):
            get_nf("telemetry-small")


class TestStrikePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            StrikePolicy(strike_threshold=0)
        with pytest.raises(ValueError):
            StrikePolicy(rehab_quiet_intervals=0)

    def test_blocks_at_threshold(self):
        policy = StrikePolicy(strike_threshold=3)
        entry = _SourceEntry()
        assert policy.review(entry, offended=True, ref_seen=True) is None
        assert policy.review(entry, offended=True, ref_seen=True) is None
        assert policy.review(entry, offended=True, ref_seen=True) == "block"
        assert entry.blocked and entry.strikes == 3

    def test_rehabilitation_needs_consecutive_quiet(self):
        policy = StrikePolicy(strike_threshold=1, rehab_quiet_intervals=2)
        entry = _SourceEntry()
        assert policy.review(entry, offended=True, ref_seen=True) == "block"
        assert policy.review(entry, False, ref_seen=False) is None
        # Traffic resets the quiet streak.
        assert policy.review(entry, False, ref_seen=True) is None
        assert entry.quiet_intervals == 0
        assert policy.review(entry, False, ref_seen=False) is None
        assert policy.review(entry, False, ref_seen=False) == "unblock"
        assert not entry.blocked and entry.strikes == 0

    def test_unblocked_source_never_reblocked_without_new_strikes(self):
        policy = StrikePolicy(strike_threshold=2)
        entry = _SourceEntry(strikes=5, blocked=True)
        # Already blocked: further offences add strikes, no new event.
        assert policy.review(entry, offended=True, ref_seen=True) is None
        assert entry.strikes == 6


class TestSweepDecision:
    def test_heavy_hitter_exported(self):
        assert sweep_decision(128, 128, ref_seen=True) == (True, False)
        assert sweep_decision(127, 128, ref_seen=True) == (False, False)

    def test_silent_flow_retired(self):
        assert sweep_decision(0, 128, ref_seen=False) == (False, True)


class TestFirewallNF:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FirewallNF(allowed_packets_per_epoch=0)
        with pytest.raises(ValueError):
            FirewallNF(epoch_packets=0)

    def test_budget_policing(self):
        nf = FirewallNF(allowed_packets_per_epoch=2)
        state = NFState()
        pkt = view()
        assert nf.process(state, pkt) == VERDICT_FORWARD
        assert nf.process(state, pkt) == VERDICT_FORWARD
        assert nf.process(state, pkt) == VERDICT_DROP
        assert state.counters["packets_dropped_policer"] == 1

    def test_block_after_strikes_then_rehabilitate(self):
        nf = FirewallNF(allowed_packets_per_epoch=1, strike_threshold=2,
                        rehab_quiet_epochs=2)
        state = NFState()
        pkt = view()
        for epoch in range(2):
            nf.process(state, pkt)
            nf.process(state, pkt)  # over budget -> offence this epoch
            nf.on_epoch(state, epoch)
        assert state.table[pkt.src_ip].blocked
        assert ("block", 1, pkt.src_ip, 2) in state.exports
        # Blocked traffic is dropped first-instruction.
        assert nf.process(state, pkt) == VERDICT_DROP
        assert state.counters["packets_blocked"] == 1
        # That packet set the REF flag, so epoch 2 is not quiet.
        nf.on_epoch(state, 2)
        nf.on_epoch(state, 3)
        nf.on_epoch(state, 4)
        assert not state.table[pkt.src_ip].blocked
        assert ("unblock", 4, pkt.src_ip, 0) in state.exports

    def test_table_capacity_forwards_unpoliced(self):
        nf = FirewallNF(max_sources=1)
        state = NFState()
        assert nf.process(state, view()) == VERDICT_FORWARD
        other = view(flow=(0x0A000002, 0xC0A80001, 1000, 2000))
        assert nf.process(state, other) == VERDICT_FORWARD
        assert state.counters["packets_unpoliced"] == 1


class TestTelemetryNF:
    def test_heavy_hitter_export(self):
        nf = TelemetryNF(heavy_hitter_packets_per_epoch=3)
        state = NFState()
        pkt = view(length=100)
        for __ in range(3):
            assert nf.process(state, pkt) == VERDICT_FORWARD
        nf.on_epoch(state, 0)
        assert state.exports == [("hh", 0, pkt.flow, 3, 300)]
        assert state.counters["reports_exported"] == 1

    def test_silent_flow_retired(self):
        nf = TelemetryNF()
        state = NFState()
        nf.process(state, view())
        nf.on_epoch(state, 0)  # seen this epoch: kept
        assert len(state.table) == 1
        nf.on_epoch(state, 1)  # silent: retired
        assert not state.table
        assert state.counters["flows_retired"] == 1

    def test_capacity_forwards_uncounted(self):
        nf = TelemetryNF(max_flows=1)
        state = NFState()
        nf.process(state, view())
        nf.process(state, view(flow=(1, 2, 3, 4)))
        assert state.counters["flows_dropped_capacity"] == 1


class TestAggregateNF:
    AGG_FLOW = (0x0A010001, 0x0AC80001, 4000, TRIO_ML_UDP_PORT)

    def test_non_aggregation_traffic_passes_through(self):
        nf = AggregateNF()
        state = NFState()
        assert nf.process(state, view()) == VERDICT_FORWARD
        assert state.counters["packets_passthrough"] == 1

    def test_window_completion_emits_result(self):
        nf = AggregateNF(window=3)
        state = NFState()
        for i in range(2):
            pkt = view(flow=self.AGG_FLOW, payload_word=10 + i)
            assert nf.process(state, pkt) == VERDICT_CONSUME
        final = view(flow=self.AGG_FLOW, payload_word=12)
        assert nf.process(state, final) == VERDICT_FORWARD
        group = self.AGG_FLOW[1]
        assert state.exports == [("agg", group, 0, 3, 33)]
        assert state.table[group].count == 0

    def test_stalled_block_flushed_degraded(self):
        nf = AggregateNF(window=16)
        state = NFState()
        nf.process(state, view(flow=self.AGG_FLOW, payload_word=5))
        nf.on_epoch(state, 0)  # progress since "last" epoch: kept
        nf.on_epoch(state, 1)  # no progress for a full epoch: flushed
        group = self.AGG_FLOW[1]
        assert state.exports == [("agg-degraded", group, 0, 1, 5)]
        assert state.counters["blocks_degraded"] == 1

    def test_state_resources_anchor_to_aggregator(self):
        nf = AggregateNF(window=16, max_groups=8, grads_per_packet=4,
                         straggler_threads=2)
        specs = TrioMLAggregator.nf_state_resources(
            max_blocks=8, grads_per_block=4, timer_threads=2
        )
        assert nf.state_resources() == specs
        kinds = [spec.kind for spec in specs]
        assert kinds == [STATE_HASH_ENTRIES, STATE_REGISTER_ARRAY,
                         STATE_COUNTER, STATE_TIMER_THREADS]
        # Without timers the sweep spec disappears (the data-path-only
        # deployment of §4).
        assert len(TrioMLAggregator.nf_state_resources(8, 4)) == 3


class TestAppShims:
    def test_security_shim_reexports(self):
        from repro.apps import security
        from repro.nf import firewall

        assert security.DDoSMitigator is firewall.DDoSMitigator
        assert security.StrikePolicy is firewall.StrikePolicy

    def test_telemetry_shim_reexports(self):
        from repro.apps import telemetry as shim
        from repro.nf import telemetry

        assert shim.TelemetryMonitor is telemetry.TelemetryMonitor
        assert shim.sweep_decision is telemetry.sweep_decision
