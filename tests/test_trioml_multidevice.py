"""Tests for multi-device hierarchical aggregation (§4).

"Hierarchical aggregation can be extended to work across multiple devices
by setting the destination IP of the Result packet to the IP address of
next-level aggregator and relying on IP forwarding to unicast the packet.
The top-level aggregator will, of course, multicast the final result back
to the servers."
"""

import pytest

from repro.net import IPv4Address, MACAddress, Topology
from repro.sim import Environment
from repro.trio import PFE
from repro.trioml import (
    TrioMLJobConfig,
    TrioMLWorker,
    setup_remote_first_level_job,
    setup_single_level_job,
)


def build_two_device_hierarchy(env, grads_per_packet=64, window=4):
    """Device A (leaf) aggregates two local workers and unicasts partials
    to device B (top), which aggregates two local workers plus device A
    and multicasts the final Result back through A."""
    topo = Topology(env)
    group_ip = IPv4Address("239.8.8.8")
    service_a = IPv4Address("10.255.0.1")
    service_b = IPv4Address("10.255.0.2")

    device_a = PFE(env, "deviceA", num_ports=3)
    device_b = PFE(env, "deviceB", num_ports=3)
    # Port 2 on each device is the inter-device uplink.
    topo.connect(device_a.port(2), device_b.port(2))

    config_a = TrioMLJobConfig(job_id=1, grads_per_packet=grads_per_packet,
                               window=window, service_ip=service_a,
                               group_ip=group_ip)
    config_b = TrioMLJobConfig(job_id=1, grads_per_packet=grads_per_packet,
                               window=window, service_ip=service_b,
                               group_ip=group_ip)

    def make_worker(pfe, config, name, src_id, index, host_index):
        worker = TrioMLWorker(
            env, name=name, src_id=src_id, job_id=1,
            mac=MACAddress(0x30 + host_index),
            ip=IPv4Address(f"10.8.0.{host_index + 1}"),
            router_mac=config.router_mac, service_ip=config.service_ip,
            grads_per_packet=grads_per_packet, window=window,
        )
        topo.connect(worker.nic.port, pfe.port(index))
        return worker

    a_workers = [make_worker(device_a, config_a, f"a{i}", i, i, i)
                 for i in range(2)]
    b_workers = [make_worker(device_b, config_b, f"b{i}", i, i, i + 2)
                 for i in range(2)]

    handle_a = setup_remote_first_level_job(
        device_a, config_a, a_workers,
        {w.name: device_a.port(i).name for i, w in enumerate(a_workers)},
        own_src_id=100,
        upstream_service_ip=service_b,
        uplink_port="deviceA.p2",
    )
    # Device B: its two local workers plus device A as source 100.
    handle_b = setup_single_level_job(
        device_b, config_b, b_workers,
        {w.name: device_b.port(i).name for i, w in enumerate(b_workers)},
    )
    record_b = handle_b.runtimes["deviceB"].record
    record_b.src_cnt = 3
    record_b.src_mask |= 1 << 100
    # Final results must also reach device A's workers: the uplink port
    # joins the group on B, and A forwards group traffic to its workers.
    device_b.multicast.join(group_ip, "deviceB.p2")

    return (device_a, device_b, a_workers, b_workers,
            handle_a, handle_b)


class TestMultiDeviceHierarchy:
    def test_four_workers_across_two_devices(self):
        env = Environment()
        (device_a, device_b, a_workers, b_workers,
         handle_a, handle_b) = build_two_device_hierarchy(env)
        grads = {
            worker: [(index + 1)] * 128
            for index, worker in enumerate(a_workers + b_workers)
        }
        procs = [env.process(w.allreduce(g)) for w, g in grads.items()]
        env.run(until=env.all_of(procs))
        expected = [1 + 2 + 3 + 4] * 64
        for proc in procs:
            assert all(block.values == expected for block in proc.value)

    def test_final_results_report_total_worker_count(self):
        env = Environment()
        __, __, a_workers, b_workers, __, __ = (
            build_two_device_hierarchy(env)
        )
        procs = [env.process(w.allreduce([1] * 64))
                 for w in a_workers + b_workers]
        env.run(until=env.all_of(procs))
        for proc in procs:
            assert proc.value[0].src_cnt == 4  # workers, not devices

    def test_leaf_device_emits_non_final_partials(self):
        env = Environment()
        (device_a, device_b, a_workers, b_workers,
         handle_a, handle_b) = build_two_device_hierarchy(env)
        procs = [env.process(w.allreduce([1] * 64))
                 for w in a_workers + b_workers]
        env.run(until=env.all_of(procs))
        # Device A produced one (non-final) partial per block...
        runtime_a = handle_a.runtimes["deviceA"]
        assert runtime_a.blocks_completed == 1
        assert runtime_a.role == "remote_first_level"
        # ...which device B aggregated as source 100.
        aggregator_b = handle_b.aggregators["deviceB"]
        assert aggregator_b.packets_aggregated == 3  # 2 local + 1 remote

    def test_final_result_traverses_uplink_once_per_block(self):
        env = Environment()
        (device_a, device_b, a_workers, b_workers,
         __, __) = build_two_device_hierarchy(env)
        uplink_b = device_b.port(2)
        procs = [env.process(w.allreduce([1] * 256))  # 4 blocks
                 for w in a_workers + b_workers]
        env.run(until=env.all_of(procs))
        # Uplink B->A carries exactly the 4 final Results (A's workers
        # receive them via A's group membership after forwarding).
        assert uplink_b.tx_packets == 4
