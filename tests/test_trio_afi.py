"""Tests for the Advanced Forwarding Interface graph and sandboxes."""

import pytest

from repro.net import Host, IPv4Address, MACAddress, Topology
from repro.sim import Environment
from repro.trio import PFE
from repro.trio.afi import (
    AFIApplication,
    AFIError,
    CONSUME,
    DROP,
    FORWARD,
    ForwardingGraph,
    ForwardingNode,
    Sandbox,
)


def counting_node(name, log, result=None, next_node=None):
    def op(tctx, pctx):
        log.append(name)
        yield from tctx.execute(1)
        return result

    return ForwardingNode(name=name, op=op, next_node=next_node)


class TestForwardingGraph:
    def run_graph(self, graph):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        from repro.net import Packet
        from repro.trio.ppe import PacketContext, ThreadContext

        packet = Packet(bytes(64), flow_key="f")
        pctx = PacketContext(packet=packet, head=bytearray(packet.data),
                             tail=b"")
        tctx = ThreadContext(env=env, ppe=pfe.ppes[0], config=pfe.config,
                             memory=pfe.memory, hash_table=pfe.hash_table,
                             packet_ctx=pctx)

        def proc():
            result = yield from graph.run(tctx, pctx)
            return result

        p = env.process(proc())
        return env.run(until=p)

    def test_linear_walk(self):
        log = []
        graph = ForwardingGraph()
        graph.add_node(counting_node("a", log, next_node="b"), entry=True)
        graph.add_node(counting_node("b", log, next_node=FORWARD))
        assert self.run_graph(graph) == FORWARD
        assert log == ["a", "b"]

    def test_dynamic_branching(self):
        log = []
        graph = ForwardingGraph()
        graph.add_node(counting_node("a", log, result="c"), entry=True)
        graph.add_node(counting_node("b", log, next_node=FORWARD))
        graph.add_node(counting_node("c", log, next_node=DROP))
        assert self.run_graph(graph) == DROP
        assert log == ["a", "c"]

    def test_reorder_via_connect(self):
        log = []
        graph = ForwardingGraph()
        graph.add_node(counting_node("a", log, next_node="b"), entry=True)
        graph.add_node(counting_node("b", log, next_node=FORWARD))
        graph.add_node(counting_node("x", log, next_node="b"))
        graph.connect("a", "x")  # a -> x -> b
        self.run_graph(graph)
        assert log == ["a", "x", "b"]

    def test_cycle_detected(self):
        log = []
        graph = ForwardingGraph()
        graph.add_node(counting_node("a", log, next_node="b"), entry=True)
        graph.add_node(counting_node("b", log, next_node="a"))
        with pytest.raises(AFIError, match="cycle"):
            self.run_graph(graph)

    def test_validate_catches_dangling_edges(self):
        graph = ForwardingGraph()
        graph.add_node(ForwardingNode("a", next_node="ghost"), entry=True)
        with pytest.raises(AFIError, match="unknown node"):
            graph.validate()

    def test_duplicate_node_rejected(self):
        graph = ForwardingGraph()
        graph.add_node(ForwardingNode("a", next_node=FORWARD))
        with pytest.raises(AFIError):
            graph.add_node(ForwardingNode("a"))

    def test_reserved_names_rejected(self):
        graph = ForwardingGraph()
        with pytest.raises(AFIError):
            graph.add_node(ForwardingNode(FORWARD))

    def test_remove_node(self):
        graph = ForwardingGraph()
        graph.add_node(ForwardingNode("a", next_node=FORWARD), entry=True)
        graph.remove_node("a")
        assert graph.entry is None
        with pytest.raises(AFIError):
            graph.remove_node("a")

    def test_node_without_successor_faults(self):
        graph = ForwardingGraph()
        graph.add_node(ForwardingNode("a"), entry=True)
        with pytest.raises(AFIError, match="no successor"):
            self.run_graph(graph)

    def test_packet_counters(self):
        log = []
        graph = ForwardingGraph()
        node = counting_node("a", log, next_node=FORWARD)
        graph.add_node(node, entry=True)
        self.run_graph(graph)
        self.run_graph(graph)
        assert node.packets_seen == 2


class TestSandbox:
    def test_sandbox_runs_inside_parent_graph(self):
        log = []
        parent = ForwardingGraph()
        parent.add_node(counting_node("ingress", log, next_node="sb"),
                        entry=True)
        sandbox = Sandbox("tenant1")
        sandbox.add_node(counting_node("custom1", log, next_node="custom2"),
                         entry=True)
        sandbox.add_node(counting_node("custom2", log, next_node=FORWARD))
        parent.add_node(sandbox.as_node("sb", next_node="egress"))
        parent.add_node(counting_node("egress", log, next_node=FORWARD))
        result = TestForwardingGraph().run_graph(parent)
        assert result == FORWARD
        assert log == ["ingress", "custom1", "custom2", "egress"]
        assert sandbox.packets_in == 1

    def test_sandbox_can_drop(self):
        log = []
        parent = ForwardingGraph()
        parent.add_node(counting_node("ingress", log, next_node="sb"),
                        entry=True)
        sandbox = Sandbox("tenant1")
        sandbox.add_node(counting_node("filter", log, next_node=DROP),
                         entry=True)
        parent.add_node(sandbox.as_node("sb", next_node="egress"))
        parent.add_node(counting_node("egress", log, next_node=FORWARD))
        assert TestForwardingGraph().run_graph(parent) == DROP
        assert "egress" not in log

    def test_third_party_reorders_only_inside_sandbox(self):
        log = []
        sandbox = Sandbox("tenant1")
        sandbox.add_node(counting_node("x", log, next_node="y"), entry=True)
        sandbox.add_node(counting_node("y", log, next_node=FORWARD))
        # The tenant cannot connect to nodes outside its sandbox.
        with pytest.raises(AFIError):
            sandbox.connect("x", "operator_secret_node")

    def test_end_to_end_on_pfe(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=2)
        h0 = Host(env, "h0", MACAddress(1), IPv4Address("10.0.0.1"))
        h1 = Host(env, "h1", MACAddress(2), IPv4Address("10.0.0.2"))
        topo = Topology(env)
        topo.connect(h0.nic.port, pfe.port(0))
        topo.connect(h1.nic.port, pfe.port(1))
        pfe.add_route(h1.ip, "pfe1.p1")

        graph = ForwardingGraph()

        def drop_small(tctx, pctx):
            yield from tctx.execute(1)
            return DROP if pctx.length < 80 else None

        graph.add_node(ForwardingNode("filter", op=drop_small,
                                      next_node=FORWARD), entry=True)
        pfe.install_app(AFIApplication(graph))

        def send():
            yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"tiny")        # dropped
            yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"L" * 100)     # forwarded

        def recv():
            packet = yield h1.recv()
            return packet.parse_udp()[3]

        env.process(send())
        p = env.process(recv())
        assert env.run(until=p) == b"L" * 100
        assert pfe.packets_dropped == 1

    def test_invalid_graph_rejected_at_install(self):
        graph = ForwardingGraph()
        with pytest.raises(AFIError):
            AFIApplication(graph)  # no entry node
