"""Tests for the Trio-ML packet format and record structures."""

import pytest

from repro.trioml import (
    TRIO_ML_HEADER_LAYOUT,
    TrioMLHeader,
    decode_trio_ml,
    encode_trio_ml,
)
from repro.trioml.protocol import MAX_GRADIENTS_PER_PACKET
from repro.trioml.records import (
    BLOCK_RECORD_LAYOUT,
    BlockRecord,
    JOB_RECORD_LAYOUT,
    JobRecord,
)


class TestHeaderLayout:
    def test_header_is_12_bytes(self):
        # Figure 8: "12 bytes".
        assert TRIO_ML_HEADER_LAYOUT.size_bytes == 12

    def test_field_widths_match_figure8(self):
        widths = {name: f.width for name, f in TRIO_ML_HEADER_LAYOUT.fields.items()}
        assert widths == {
            "job_id": 8, "block_id": 32, "age_op": 4, "final": 1,
            "degraded": 1, "src_id": 8, "src_cnt": 8, "gen_id": 16,
            "grad_cnt": 12,
        }

    def test_roundtrip_all_fields(self):
        header = TrioMLHeader(
            job_id=7, block_id=0xDEADBEEF, src_id=200, grad_cnt=1024,
            gen_id=0xABCD, age_op=3, final=True, degraded=True, src_cnt=5,
        )
        assert TrioMLHeader.unpack(header.pack()) == header

    def test_default_flags_clear(self):
        header = TrioMLHeader(job_id=1, block_id=2, src_id=3, grad_cnt=4)
        parsed = TrioMLHeader.unpack(header.pack())
        assert not parsed.final and not parsed.degraded
        assert parsed.age_op == 0 and parsed.src_cnt == 0


class TestPayloadCodec:
    def test_roundtrip_with_negatives(self):
        header = TrioMLHeader(job_id=1, block_id=2, src_id=3, grad_cnt=5)
        values = [0, 1, -1, 2**31 - 1, -2**31]
        parsed, decoded = decode_trio_ml(encode_trio_ml(header, values))
        assert decoded == values
        assert parsed.block_id == 2

    def test_count_mismatch_rejected(self):
        header = TrioMLHeader(job_id=1, block_id=2, src_id=3, grad_cnt=5)
        with pytest.raises(ValueError):
            encode_trio_ml(header, [1, 2, 3])

    def test_max_gradients_enforced(self):
        n = MAX_GRADIENTS_PER_PACKET + 1
        header = TrioMLHeader(job_id=1, block_id=2, src_id=3, grad_cnt=n)
        with pytest.raises(ValueError):
            encode_trio_ml(header, [0] * n)

    def test_truncated_payload_rejected(self):
        header = TrioMLHeader(job_id=1, block_id=2, src_id=3, grad_cnt=4)
        payload = encode_trio_ml(header, [1, 2, 3, 4])
        with pytest.raises(ValueError):
            decode_trio_ml(payload[:-2])

    def test_too_short_for_header_rejected(self):
        with pytest.raises(ValueError):
            decode_trio_ml(b"\x00" * 5)

    def test_max_size_packet_is_4kb_payload(self):
        # Figure 7: "Up to 4096 bytes (1024 Gradients)".
        header = TrioMLHeader(job_id=1, block_id=0, src_id=0,
                              grad_cnt=MAX_GRADIENTS_PER_PACKET)
        payload = encode_trio_ml(header, [0] * MAX_GRADIENTS_PER_PACKET)
        assert len(payload) == 12 + 4096


class TestJobRecord:
    def test_layout_is_58_bytes(self):
        assert JOB_RECORD_LAYOUT.size_bytes == 58
        assert JobRecord.SIZE == 58

    def test_figure17_field_widths(self):
        widths = {name: f.width for name, f in JOB_RECORD_LAYOUT.fields.items()}
        assert widths["block_curr_cnt"] == 16
        assert widths["block_cnt_max"] == 12
        assert widths["block_grad_max"] == 12
        assert widths["block_exp"] == 8
        assert widths["block_total_cnt"] == 32
        assert widths["out_src_addr"] == 32
        assert widths["src_cnt"] == 8
        assert all(widths[f"src_mask_{i}"] == 64 for i in range(4))

    def test_pack_unpack_roundtrip(self):
        record = JobRecord(
            job_id=3, src_cnt=6, src_mask=(1 << 70) | 0b111111,
            block_grad_max=1024, block_exp_ms=10,
            out_src_addr=0x0A0B0C0D, out_dst_addr=0xEF010203,
            out_nh_addr=0x1234, block_curr_cnt=9, block_total_cnt=100,
        )
        parsed = JobRecord.unpack(record.pack(), job_id=3)
        assert parsed.src_mask == record.src_mask
        assert parsed.block_grad_max == 1024
        assert parsed.out_dst_addr == 0xEF010203
        assert parsed.block_curr_cnt == 9
        assert parsed.block_total_cnt == 100


class TestBlockRecord:
    def test_layout_is_58_bytes(self):
        assert BLOCK_RECORD_LAYOUT.size_bytes == 58
        assert BlockRecord.SIZE == 58

    def test_figure18_field_widths(self):
        widths = {name: f.width
                  for name, f in BLOCK_RECORD_LAYOUT.fields.items()}
        assert widths["block_exp"] == 8
        assert widths["block_age"] == 8
        assert widths["block_start_time"] == 64
        assert widths["job_ctx_paddr"] == 32
        assert widths["aggr_paddr"] == 32
        assert widths["grad_cnt"] == 12
        assert widths["rcvd_cnt"] == 8
        assert all(widths[f"rcvd_mask_{i}"] == 64 for i in range(4))

    def test_pack_unpack_roundtrip(self):
        record = BlockRecord(
            job_id=1, block_id=2, gen_id=3, grad_cnt=512, block_exp_ms=10,
            block_start_time=123_456_789_000, job_ctx_paddr=0x100,
            aggr_paddr=0x2000, rcvd_cnt=4, rcvd_mask=(1 << 130) | 0b1111,
            block_age=2,
        )
        parsed = BlockRecord.unpack(record.pack(), job_id=1, block_id=2,
                                    gen_id=3)
        assert parsed.grad_cnt == 512
        assert parsed.block_start_time == 123_456_789_000
        assert parsed.rcvd_mask == record.rcvd_mask
        assert parsed.block_age == 2
        assert parsed.aggr_paddr == 0x2000
