"""MC4xx shared-state atomicity tests: the race corpus, the clean
twins, inline probes of the per-path walker, the Dmem intrinsic
executors, and the deterministic-CLI contract.

The static verdicts asserted here are cross-validated at runtime by
``tests/test_racecheck.py`` (the same racy program must lose updates on
concurrent threads; the RMW-correct twin must not).
"""

import os

import pytest

from repro.microcode import (
    AnalysisError,
    BUILTIN_PROGRAMS,
    MicrocodeExecutor,
    TrioCompiler,
    analyze_program,
)
from repro.microcode.analysis import main as analysis_main
from repro.microcode.intrinsics import SHARED_INTRINSICS

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")


def _analyze_corpus(filename, entry="main", externs=("out",)):
    path = os.path.join(CORPUS, filename)
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    program = TrioCompiler(extern_labels=externs).compile(source, entry=entry)
    return analyze_program(program, source=source, filename=path)


def _analyze_source(source, entry="main", externs=("out",)):
    program = TrioCompiler(extern_labels=externs).compile(source, entry=entry)
    return analyze_program(program, source=source, filename="<test>")


def _codes(report):
    return {diag.code for diag in report.diagnostics}


# ---------------------------------------------------------------------------
# The intrinsic table is the single source of truth all three consumers
# (compiler, analyzer, interpreter) share.
# ---------------------------------------------------------------------------

def test_intrinsic_table_classification():
    assert SHARED_INTRINSICS["DmemLoad"].access == "read"
    assert not SHARED_INTRINSICS["DmemLoad"].atomic
    assert SHARED_INTRINSICS["DmemStore"].access == "write"
    assert not SHARED_INTRINSICS["DmemStore"].atomic
    assert SHARED_INTRINSICS["DmemAdd32"].atomic
    assert SHARED_INTRINSICS["DmemSwap"].atomic
    assert SHARED_INTRINSICS["CounterIncPhys"].atomic
    # CounterIncPhys addresses are in 8-byte words over 16-byte counters.
    assert SHARED_INTRINSICS["CounterIncPhys"].addr_scale == 8
    assert SHARED_INTRINSICS["CounterIncPhys"].size_bytes == 16


# ---------------------------------------------------------------------------
# The seeded-defect corpus (one defect per file) and the clean twins.
# ---------------------------------------------------------------------------

def test_corpus_race_mc401_lost_update():
    report = _analyze_corpus("race_mc401.mc")
    diag = next(d for d in report.diagnostics if d.code == "MC401")
    assert diag.severity == "error"
    assert diag.span is not None and diag.span.line > 0
    assert "lost update" in diag.message
    # MC401 subsumes the torn-access diagnosis for the same pair.
    assert "MC402" not in _codes(report)


def test_corpus_race_mc402_torn_access():
    report = _analyze_corpus("race_mc402.mc")
    diag = next(d for d in report.diagnostics if d.code == "MC402")
    assert diag.severity == "error"
    assert diag.span is not None and diag.span.line > 0
    # The stored constant is not derived from the load: no lost-update
    # dataflow, so MC401 must NOT fire.
    assert "MC401" not in _codes(report)


def test_corpus_race_mc403_needless_serialization():
    report = _analyze_corpus("race_mc403.mc")
    diag = next(d for d in report.diagnostics if d.code == "MC403")
    assert diag.severity == "warning"
    assert not report.errors


@pytest.mark.parametrize("filename", [
    "clean/race_mc401_fixed.mc",
    "clean/race_mc402_fixed.mc",
    "clean/race_mc403_fixed.mc",
])
def test_clean_twins_have_no_diagnostics(filename):
    report = _analyze_corpus(filename)
    assert report.diagnostics == []


def test_builtin_programs_pass_mc4xx():
    for name, builtin in sorted(BUILTIN_PROGRAMS.items()):
        program = TrioCompiler(
            extern_labels=builtin.extern_labels).compile(
            builtin.source, entry=builtin.entry)
        report = analyze_program(program, source=builtin.source,
                                 filename=name)
        assert not any(d.code.startswith("MC4") for d in report.diagnostics), \
            f"builtin {name} tripped MC4xx"


# ---------------------------------------------------------------------------
# Walker behaviour probes.
# ---------------------------------------------------------------------------

def test_rmw_barrier_does_not_clear_taint():
    # The DmemAdd32 closes the torn window, but the store still writes a
    # value derived from the stale load — the add is clobbered.  MC401
    # must survive the barrier.
    report = _analyze_source("""
        const CNT = 64;
        reg r;
        main: begin
            DmemLoad(r, CNT);
            DmemAdd32(CNT, 1);
            DmemStore(CNT, r);
            goto out;
        end
    """)
    assert "MC401" in _codes(report)


def test_disjoint_extents_are_clean():
    report = _analyze_source("""
        const A = 64;
        const B = 128;
        reg r;
        main: begin
            DmemLoad(r, A);
            DmemStore(B, 7);
            goto out;
        end
    """)
    assert not any(c.startswith("MC4") for c in _codes(report))


def test_symbolic_alias_through_local_const():
    # The address is register-derived (not foldable to an int) but both
    # accesses expand to the same canonical expression: still a race.
    report = _analyze_source("""
        reg r_idx;
        reg r_val;
        main: begin
            r_idx = r_work.pkt_len;
            const : slot = r_idx * 4;
            DmemLoad(r_val, slot);
            goto bump;
        end
        bump: begin
            const : slot = r_idx * 4;
            r_val = r_val + 1;
            DmemStore(slot, r_val);
            goto out;
        end
    """)
    assert "MC401" in _codes(report)


def test_race_detected_across_subroutine():
    report = _analyze_source("""
        const CNT = 64;
        reg r;
        main: begin
            DmemLoad(r, CNT);
            r = r + 1;
            call flush;
            goto out;
        end
        flush: begin
            DmemStore(CNT, r);
            return;
        end
    """)
    assert "MC401" in _codes(report)


def test_compiler_inline_analysis_rejects_racy_program():
    from repro.tools.racecheck import RACY_COUNTER_SOURCE, SAFE_COUNTER_SOURCE

    with pytest.raises(AnalysisError):
        TrioCompiler(extern_labels=("done",), analyze="error").compile(
            RACY_COUNTER_SOURCE, entry="count")
    # The RMW-correct twin compiles under the same gate.
    TrioCompiler(extern_labels=("done",), analyze="error").compile(
        SAFE_COUNTER_SOURCE, entry="count")


# ---------------------------------------------------------------------------
# Dmem intrinsic execution (the interpreter side of the same table).
# ---------------------------------------------------------------------------

def _run_program(source, entry, num_threads=1):
    from repro.net import IPv4Address, MACAddress, Packet
    from repro.sim import Environment
    from repro.trio import PFE
    from repro.trio.ppe import PacketContext, ThreadContext

    program = TrioCompiler(extern_labels=("done",)).compile(
        source, entry=entry)

    def done(tctx, pctx):
        return
        yield  # pragma: no cover

    env = Environment()
    pfe = PFE(env, "pfe1", num_ports=1)
    contexts = []

    def one_thread():
        packet = Packet.udp(
            src_mac=MACAddress(1), dst_mac=MACAddress(2),
            src_ip=IPv4Address("1.1.1.1"), dst_ip=IPv4Address("2.2.2.2"),
            src_port=1, dst_port=2, payload=b"x" * 20,
        )
        head, tail = packet.split(pfe.config.head_size_bytes)
        pctx = PacketContext(packet=packet, head=bytearray(head), tail=tail)
        tctx = ThreadContext(
            env=env, ppe=pfe.ppes[0], config=pfe.config,
            memory=pfe.memory, hash_table=pfe.hash_table, packet_ctx=pctx,
        )
        contexts.append(tctx)
        executor = MicrocodeExecutor(program, terminals={"done": done})
        yield from executor.run(tctx, pctx)

    for _ in range(num_threads):
        env.process(one_thread())
    env.run()
    return pfe, program, contexts


def test_dmem_store_and_load_round_trip():
    pfe, program, contexts = _run_program("""
        reg r_back;
        main: begin
            DmemStore(128, 3735928559);
            DmemLoad(r_back, 128);
            goto done;
        end
    """, "main")
    assert int.from_bytes(pfe.memory.read_raw(128, 4), "little") == 0xDEADBEEF
    index = program.reg_map["r_back"]
    assert contexts[0].registers[index] == 0xDEADBEEF


def test_dmem_add32_accumulates_atomically():
    from repro.tools.racecheck import SAFE_COUNTER_SOURCE, \
        _run_microcode_threads

    final, threads = _run_microcode_threads(SAFE_COUNTER_SOURCE, 16)
    assert final == threads  # no update lost through the RMW engine


def test_dmem_racy_counter_loses_updates():
    # The dynamic ground truth behind MC401: the load/modify/store
    # program really does lose updates under thread concurrency.
    from repro.tools.racecheck import RACY_COUNTER_SOURCE, \
        _run_microcode_threads

    final, threads = _run_microcode_threads(RACY_COUNTER_SOURCE, 16)
    assert final < threads


def test_dmem_swap_replaces_word():
    pfe, _, _ = _run_program("""
        main: begin
            DmemStore(64, 17);
            DmemSwap(64, 99);
            goto done;
        end
    """, "main")
    assert int.from_bytes(pfe.memory.read_raw(64, 4), "little") == 99


# ---------------------------------------------------------------------------
# Deterministic CLI output.
# ---------------------------------------------------------------------------

def _run_cli(args, capsys):
    code = analysis_main(args)
    captured = capsys.readouterr()
    return code, captured.out + captured.err


def test_cli_output_is_byte_identical_across_runs(capsys):
    path = os.path.join(CORPUS, "race_mc402.mc")
    first_code, first = _run_cli([path, "--extern", "out"], capsys)
    second_code, second = _run_cli([path, "--extern", "out"], capsys)
    assert first_code == second_code
    assert first == second
    assert "MC402" in first


def test_cli_builtins_output_is_byte_identical(capsys):
    first_code, first = _run_cli(["--builtins", "--werror"], capsys)
    second_code, second = _run_cli(["--builtins", "--werror"], capsys)
    assert first_code == second_code == 0
    assert first == second


def test_cli_diagnostics_sorted_by_position(capsys):
    # Two independent defects in one file: the report must come out in
    # (line, column, code) order regardless of discovery order.
    import tempfile

    source = """\
// two independent torn accesses
const A = 64;
const B = 128;
reg ra;
reg rb;

main: begin
    DmemLoad(rb, B);
    DmemLoad(ra, A);
    DmemStore(B, 0);
    DmemStore(A, 0);
    goto out;
end
"""
    with tempfile.NamedTemporaryFile(
            "w", suffix=".mc", delete=False) as handle:
        handle.write(source)
        path = handle.name
    try:
        code, output = _run_cli([path, "--extern", "out"], capsys)
        assert code == 1
        lines = [int(line.split(":")[-1].strip())
                 for line in output.splitlines()
                 if line.strip().startswith("--> ")]
        assert lines == sorted(lines)
        assert len(lines) >= 2
    finally:
        os.unlink(path)
