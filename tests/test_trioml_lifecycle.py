"""Tests for job lifecycle operations: generations, detector handles."""

import pytest

from repro.harness import build_single_pfe_testbed
from repro.sim import Environment
from repro.trioml import TrioMLJobConfig


class TestGenerationAdvance:
    def test_advance_generation_clears_history(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2,
                                 loss_recovery=True,
                                 retransmit_timeout_s=0.002)
        testbed = build_single_pfe_testbed(env, config, num_workers=2)
        procs = testbed.run_allreduce([[1] * 128] * 2)
        env.run(until=env.all_of(procs))
        aggregator = testbed.handle.aggregator
        runtime = next(iter(testbed.handle.runtimes.values()))
        assert runtime.completed
        assert runtime.result_cache  # loss recovery caches results
        aggregator.advance_generation(config.job_id, gen_id=2)
        assert runtime.gen_id == 2
        assert not runtime.completed
        assert not runtime.result_cache

    def test_unknown_job_generation_advance_raises(self):
        env = Environment()
        testbed = build_single_pfe_testbed(env, num_workers=2)
        with pytest.raises(KeyError):
            testbed.handle.aggregator.advance_generation(99, gen_id=1)


class TestDetectorLifecycle:
    def test_stop_detectors_halts_scans(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2,
                                 timeout_s=0.001, detector_threads=4)
        testbed = build_single_pfe_testbed(env, config, num_workers=4,
                                           with_detector=True)
        env.run(until=0.005)
        detector = next(iter(testbed.handle.detectors.values()))
        group = detector.group
        firings_while_running = group.firings
        assert firings_while_running > 0
        testbed.handle.stop_detectors()
        env.run(until=0.015)
        # At most the already-sleeping threads fire one final time each.
        assert group.firings <= firings_while_running + 4

    def test_detector_double_stop_safe(self):
        env = Environment()
        config = TrioMLJobConfig(timeout_s=0.001, detector_threads=2)
        testbed = build_single_pfe_testbed(env, config, with_detector=True)
        testbed.handle.stop_detectors()
        testbed.handle.stop_detectors()

    def test_stopped_detector_does_not_mitigate(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2,
                                 timeout_s=0.002, detector_threads=4)
        testbed = build_single_pfe_testbed(env, config, num_workers=4,
                                           with_detector=True)
        testbed.handle.stop_detectors()
        env.run(until=0.001)  # let the cancelled threads drain

        # Worker 3 never sends; without a detector nothing ages out.
        vector = [1] * 64
        procs = [env.process(w.allreduce(vector))
                 for w in testbed.workers[:3]]
        env.run(until=0.05)
        detector = next(iter(testbed.handle.detectors.values()))
        assert not detector.mitigations
        assert all(p.is_alive for p in procs)  # stuck, as expected


class TestBlockStatsInstrumentation:
    def test_block_stats_recorded_per_completion(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=4)
        testbed = build_single_pfe_testbed(env, config, num_workers=4)
        procs = testbed.run_allreduce([[1] * 256] * 4)
        env.run(until=env.all_of(procs))
        stats = testbed.handle.aggregator.block_stats
        assert len(stats) == 4
        assert all(not s.degraded and s.src_cnt == 4 for s in stats)
        assert all(s.finish_time >= s.start_time for s in stats)
        assert sorted(s.block_id for s in stats) == [0, 1, 2, 3]
