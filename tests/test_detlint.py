"""Unit tests for the determinism linter (``repro.tools.detlint``)."""

import os
import textwrap

import pytest

from repro.tools.detlint import lint_source, lint_tree, main


def _codes(diagnostics):
    return [diag.code for diag in diagnostics]


def _lint(snippet):
    return lint_source(textwrap.dedent(snippet))


# ---------------------------------------------------------------------------
# DET101 — module-level random functions (interpreter-global RNG).
# ---------------------------------------------------------------------------

def test_global_random_call_flagged():
    diags = _lint("""
        import random
        x = random.random()
    """)
    assert _codes(diags) == ["DET101"]
    assert diags[0].severity == "error"
    assert diags[0].span.line == 3


def test_global_random_call_via_module_alias():
    diags = _lint("""
        import random as rnd
        rnd.shuffle(items)
    """)
    assert _codes(diags) == ["DET101"]


def test_from_import_random_function_flagged():
    diags = _lint("""
        from random import uniform as uni
        delay = uni(0.5, 2.0)
    """)
    assert _codes(diags) == ["DET101"]
    assert "random.uniform" in diags[0].message


def test_seeded_instance_methods_are_fine():
    diags = _lint("""
        import random
        rng = random.Random(42)
        x = rng.random()
        rng.shuffle(items)
    """)
    assert diags == []


# ---------------------------------------------------------------------------
# DET102 — unseeded Random construction.
# ---------------------------------------------------------------------------

def test_unseeded_random_flagged():
    diags = _lint("""
        import random
        rng = random.Random()
    """)
    assert _codes(diags) == ["DET102"]


def test_unseeded_random_from_import_flagged():
    diags = _lint("""
        from random import Random
        rng = Random()
    """)
    assert _codes(diags) == ["DET102"]


def test_seeded_random_is_fine():
    diags = _lint("""
        import random
        a = random.Random(0)
        b = random.Random(seed)
    """)
    assert diags == []


# ---------------------------------------------------------------------------
# DET103 — wall-clock reads.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("call", [
    "time.time()", "time.perf_counter()", "time.monotonic()",
    "time.process_time()",
])
def test_time_module_calls_flagged(call):
    diags = _lint(f"""
        import time
        start = {call}
    """)
    assert _codes(diags) == ["DET103"]


def test_from_import_time_flagged():
    diags = _lint("""
        from time import perf_counter
        start = perf_counter()
    """)
    assert _codes(diags) == ["DET103"]


def test_datetime_now_flagged():
    diags = _lint("""
        from datetime import datetime
        stamp = datetime.now()
    """)
    assert _codes(diags) == ["DET103"]


def test_datetime_module_attribute_flagged():
    diags = _lint("""
        import datetime
        stamp = datetime.datetime.utcnow()
    """)
    assert _codes(diags) == ["DET103"]


def test_time_sleep_is_fine():
    # Not a clock *read*; duration does not leak into results.
    assert _lint("""
        import time
        time.sleep(1)
    """) == []


# ---------------------------------------------------------------------------
# DET104 / DET105 — order-unstable iteration.
# ---------------------------------------------------------------------------

def test_iterating_a_set_literal_flagged():
    diags = _lint("""
        for item in {3, 1, 2}:
            handle(item)
    """)
    assert _codes(diags) == ["DET104"]


def test_iterating_a_set_call_flagged():
    diags = _lint("""
        for item in set(names):
            handle(item)
    """)
    assert _codes(diags) == ["DET104"]


def test_set_comprehension_iter_flagged():
    diags = _lint("""
        rows = [f(x) for x in {a, b}]
    """)
    assert _codes(diags) == ["DET104"]


def test_sorted_set_is_fine():
    assert _lint("""
        for item in sorted(set(names)):
            handle(item)
    """) == []


def test_dict_values_feeding_scheduler_warned():
    diags = _lint("""
        for worker in workers.values():
            env.process(worker.run())
    """)
    assert _codes(diags) == ["DET105"]
    assert diags[0].severity == "warning"


def test_dict_values_without_scheduling_is_fine():
    assert _lint("""
        for worker in workers.values():
            total += worker.count
    """) == []


# ---------------------------------------------------------------------------
# DET106 — ambient-environment reads (host env vars, OS entropy).
# ---------------------------------------------------------------------------

def test_os_environ_access_flagged():
    diags = _lint("""
        import os
        mode = os.environ.get("MODE")
    """)
    assert _codes(diags) == ["DET106"]
    assert diags[0].severity == "error"
    assert "os.environ" in diags[0].message


def test_os_environ_subscript_flagged():
    diags = _lint("""
        import os
        key = os.environ["KEY"]
    """)
    assert _codes(diags) == ["DET106"]


def test_os_getenv_flagged():
    diags = _lint("""
        import os
        debug = os.getenv("DEBUG", "0")
    """)
    assert _codes(diags) == ["DET106"]


def test_from_import_environ_and_getenv_flagged():
    diags = _lint("""
        from os import environ, getenv as ge
        a = environ["A"]
        b = ge("B")
    """)
    assert _codes(diags) == ["DET106", "DET106"]


def test_os_urandom_flagged():
    diags = _lint("""
        import os
        salt = os.urandom(16)
    """)
    assert _codes(diags) == ["DET106"]
    assert "os.urandom" in diags[0].message


def test_uuid4_flagged():
    diags = _lint("""
        import uuid
        from uuid import uuid4
        a = uuid.uuid4()
        b = uuid4()
    """)
    assert _codes(diags) == ["DET106", "DET106"]


def test_os_path_and_walk_are_fine():
    # Only the ambient reads are flagged, not ordinary os usage.
    assert _lint("""
        import os
        for root, dirs, files in os.walk("src"):
            p = os.path.join(root, "x")
    """) == []


def test_uuid5_is_fine():
    # uuid5 is a pure function of its inputs (namespace + name).
    assert _lint("""
        import uuid
        ident = uuid.uuid5(uuid.NAMESPACE_DNS, "node-1")
    """) == []


def test_det106_pragma_escape():
    diags = _lint("""
        import os
        home = os.environ.get("HOME")  # detlint: ok(artifact output dir)
    """)
    assert diags == []


# ---------------------------------------------------------------------------
# DET107: mutable default arguments.
# ---------------------------------------------------------------------------

def test_mutable_default_literal_flagged():
    diags = _lint("""
        def f(pinned={}):
            return pinned

        def g(path=[], seen=set()):
            return path, seen
    """)
    assert _codes(diags) == ["DET107", "DET107", "DET107"]


def test_mutable_default_constructor_call_flagged():
    diags = _lint("""
        def f(table=dict(), row=list(), buf=bytearray()):
            return table
    """)
    assert _codes(diags) == ["DET107", "DET107", "DET107"]


def test_mutable_default_kwonly_and_lambda_flagged():
    diags = _lint("""
        def f(*, acc=[]):
            return acc

        g = lambda xs={}: xs
    """)
    assert _codes(diags) == ["DET107", "DET107"]


def test_none_sentinel_and_immutable_defaults_are_fine():
    assert _lint("""
        def f(pinned=None, sig=(), name="x", k=3):
            if pinned is None:
                pinned = {}
            return pinned, sig, name, k
    """) == []


def test_mutable_default_pragma_escape():
    assert _lint("""
        def f(shared={}):  # detlint: ok(intentional cross-call memo)
            return shared
    """) == []


# ---------------------------------------------------------------------------
# Suppression.
# ---------------------------------------------------------------------------

def test_pragma_suppresses_finding_on_its_line():
    diags = _lint("""
        import time
        a = time.time()  # detlint: ok(benchmark harness)
        b = time.time()
    """)
    assert _codes(diags) == ["DET103"]
    assert diags[0].span.line == 4


def test_skip_file_pragma():
    assert _lint("""
        # detlint: skip-file
        import random
        x = random.random()
    """) == []


# ---------------------------------------------------------------------------
# CLI and tree walking.
# ---------------------------------------------------------------------------

def test_lint_tree_and_cli(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    good = tmp_path / "good.py"
    good.write_text("import random\nrng = random.Random(7)\n")
    diags = lint_tree(str(tmp_path))
    assert _codes(diags) == ["DET101"]
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DET101" in out and "bad.py" in out
    assert main([str(good)]) == 0


def test_repo_sources_are_clean():
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    diags = lint_tree(src)
    assert diags == [], [f"{d.code}@{d.span.filename}:{d.span.line}"
                         for d in diags]
