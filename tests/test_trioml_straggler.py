"""Tests for in-network straggler detection and mitigation (§5)."""

import pytest

from repro.harness import build_hierarchical_testbed, build_single_pfe_testbed
from repro.sim import Environment
from repro.trioml import TrioMLJobConfig
from repro.trioml.straggler import AGE_OP_TIMED_OUT, StragglerDetector


def straggler_hook_factory(straggler_index, delay_s, block_id=0):
    def factory(index):
        if index != straggler_index:
            return None
        return lambda b: delay_s if b == block_id else 0.0

    return factory


def finish_times(env, procs):
    times = {}

    def watch(index, proc):
        yield proc
        times[index] = env.now

    for index, proc in enumerate(procs):
        env.process(watch(index, proc))
    env.run(until=env.all_of(procs))
    return times


class TestDetection:
    def test_aged_blocks_complete_partially(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=4,
                                 timeout_s=0.005, detector_threads=10)
        testbed = build_single_pfe_testbed(
            env, config, with_detector=True,
            hook_factory=straggler_hook_factory(3, 0.100),
        )
        procs = testbed.run_allreduce([[1] * 256] * 4)
        times = finish_times(env, procs)
        results = procs[0].value
        degraded = [b for b in results if b.degraded]
        assert degraded
        assert all(b.src_cnt == 3 for b in degraded)
        # Non-degraded blocks report the full worker count.
        assert all(b.src_cnt == 4 for b in results if not b.degraded)

    def test_mitigation_within_twice_timeout(self):
        env = Environment()
        timeout = 0.005
        config = TrioMLJobConfig(grads_per_packet=64, window=4,
                                 timeout_s=timeout, detector_threads=10)
        testbed = build_single_pfe_testbed(
            env, config, with_detector=True,
            hook_factory=straggler_hook_factory(3, 0.200),
        )
        procs = testbed.run_allreduce([[1] * 256] * 4)
        times = finish_times(env, procs)
        for index in range(3):  # the healthy workers
            assert times[index] <= 2 * timeout + 0.001

    def test_straggler_skips_aged_blocks(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=4,
                                 timeout_s=0.005, detector_threads=10)
        testbed = build_single_pfe_testbed(
            env, config, with_detector=True,
            hook_factory=straggler_hook_factory(3, 0.050),
        )
        procs = testbed.run_allreduce([[1] * 256] * 4)
        finish_times(env, procs)
        straggler = testbed.workers[3]
        assert straggler.blocks_skipped >= 1
        # No stale packets linger as fresh block records.
        assert len(testbed.pfe.hash_table) == 1  # only the job record

    def test_degraded_results_flag_age_op(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2,
                                 timeout_s=0.005, detector_threads=5)
        testbed = build_single_pfe_testbed(
            env, config, with_detector=True,
            hook_factory=straggler_hook_factory(3, 0.100),
        )
        procs = testbed.run_allreduce([[1] * 64] * 4)
        finish_times(env, procs)
        detector = next(iter(testbed.handle.detectors.values()))
        assert detector.mitigations
        for event in detector.mitigations:
            assert event.rcvd_cnt == 3
            # Detection happened within (timeout, ~2x timeout].
            assert event.waited_s <= 2 * config.timeout_s + 0.001

    def test_partial_sum_excludes_straggler(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2,
                                 timeout_s=0.005, detector_threads=5)
        testbed = build_single_pfe_testbed(
            env, config, with_detector=True,
            hook_factory=straggler_hook_factory(3, 0.100),
        )
        grads = [[w + 1] * 64 for w in range(4)]
        procs = testbed.run_allreduce(grads)
        finish_times(env, procs)
        block = procs[0].value[0]
        assert block.degraded
        assert block.values == [1 + 2 + 3] * 64  # worker 4 (value 4) missing
        assert block.mean() == [2.0] * 64

    def test_no_straggler_no_mitigation(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=4,
                                 timeout_s=0.005, detector_threads=10)
        testbed = build_single_pfe_testbed(env, config, with_detector=True)
        procs = testbed.run_allreduce([[1] * 256] * 4)
        finish_times(env, procs)
        detector = next(iter(testbed.handle.detectors.values()))
        assert not detector.mitigations
        assert all(not b.degraded for b in procs[0].value)

    def test_detector_scans_all_segments(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=4,
                                 timeout_s=0.002, detector_threads=8)
        testbed = build_single_pfe_testbed(env, config, with_detector=True)
        env.run(until=0.010)
        detector = next(iter(testbed.handle.detectors.values()))
        group = next(g for g in testbed.pfe.timers.groups
                     if g.name == "trio-ml-straggler")
        assert group.firings >= 8  # all threads fired at least once

    def test_detector_validation(self):
        env = Environment()
        config = TrioMLJobConfig()
        testbed = build_single_pfe_testbed(env, config)
        with pytest.raises(ValueError):
            StragglerDetector(testbed.handle.aggregator, num_threads=0)
        with pytest.raises(ValueError):
            StragglerDetector(testbed.handle.aggregator, timeout_s=0)

    def test_detector_requires_installed_aggregator(self):
        from repro.trioml.aggregator import TrioMLAggregator
        detector = StragglerDetector(TrioMLAggregator())
        with pytest.raises(RuntimeError):
            detector.start()


class TestHierarchicalMitigation:
    def test_degraded_flag_propagates_to_final_result(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2,
                                 timeout_s=0.005, detector_threads=10)
        testbed = build_hierarchical_testbed(
            env, config, with_detector=True,
            hook_factory=straggler_hook_factory(5, 0.100),
        )
        procs = testbed.run_allreduce([[1] * 128] * 6)
        times = finish_times(env, procs)
        degraded = [b for b in procs[0].value if b.degraded]
        assert degraded
        assert all(b.src_cnt == 5 for b in degraded)
        # Healthy workers recover long before the 100 ms straggle; the
        # top level runs a 2x timeout, so the bound is ~2x + 2*2x.
        for index in range(5):
            assert times[index] <= 6 * config.timeout_s

    def test_straggler_worker_self_time_dominates_its_finish(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2,
                                 timeout_s=0.005, detector_threads=10)
        straggle = 0.050
        testbed = build_hierarchical_testbed(
            env, config, with_detector=True,
            hook_factory=straggler_hook_factory(5, straggle),
        )
        procs = testbed.run_allreduce([[1] * 128] * 6)
        times = finish_times(env, procs)
        assert times[5] >= straggle
