"""Tests for the command-line experiment runner and CSV exports."""

import pytest

from repro.harness import experiments as exp, figures
from repro.harness.__main__ import build_registry, main


class TestCLI:
    def test_list_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig12", "fig16", "ablations", "generations"):
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_selected_experiments(self, capsys):
        assert main(["table1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "ResNet50" in out
        assert "[table1 completed" in out

    def test_registry_complete(self):
        registry = build_registry(fast=True)
        assert set(registry) == {
            "table1", "fig12", "fig13", "fig14", "fig15", "fig16",
            "analysis", "ablations", "generations", "loss",
            "backends", "calibrate", "hybrid", "chains", "traffic",
        }

    def test_fast_fig14_runs(self, capsys):
        assert main(["fig14", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Timeout (ms)" in out


class TestGenerationScaling:
    def test_throughput_improves_across_generations(self):
        rows = exp.generation_scaling(generations=(1, 5), blocks=32)
        assert rows[0].generation == 1 and rows[1].generation == 5
        assert rows[1].throughput_gbps > rows[0].throughput_gbps
        assert rows[1].completion_ms < rows[0].completion_ms

    def test_render(self):
        rows = exp.generation_scaling(generations=(1,), blocks=8)
        rendered = figures.render_generation_scaling(rows)
        assert "2009" in rendered


class TestCSVExport:
    def test_to_csv_shape(self):
        csv = figures.to_csv(("a", "b"), [(1, 2), (3, 4)])
        assert csv == "a,b\n1,2\n3,4\n"

    def test_fig13_csv(self):
        results = exp.fig13_iteration_time(
            probabilities=(0.0, 0.16), models=["resnet50"]
        )
        csv = figures.fig13_to_csv(results)
        lines = csv.strip().split("\n")
        assert lines[0] == "model,probability,ideal_ms,trioml_ms,switchml_ms"
        assert len(lines) == 3

    def test_fig15_csv(self):
        rows = exp.fig15_latency_rate(grad_counts=(64,), blocks=5)
        csv = figures.fig15_to_csv(rows)
        assert csv.startswith("grads_per_packet,latency_us,")
        assert "\n64," in csv

    def test_fig16_csv(self):
        results = exp.fig16_window_sweep(
            windows=(1, 4), grad_counts=(64,),
            blocks_for=lambda w: 8,
        )
        csv = figures.fig16_to_csv(results)
        lines = csv.strip().split("\n")
        assert len(lines) == 3  # header + 2 windows


class TestLossRecoverySweep:
    def test_sweep_rows_and_render(self):
        rows = exp.loss_recovery_sweep(loss_rates=(0.0, 0.05), blocks=8)
        assert rows[0].loss_rate == 0.0
        assert rows[0].retransmissions == 0
        assert rows[1].frames_lost > 0
        rendered = figures.render_loss_recovery(rows)
        assert "Retransmits" in rendered
        assert "5.0%" in rendered

    def test_loss_cli_entry(self, capsys):
        assert main(["loss", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "resiliency" in out
