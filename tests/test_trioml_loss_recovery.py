"""Tests for Trio-ML packet-loss resiliency (§7, future work in the paper).

The paper notes a practical in-network aggregation system needs enough
resiliency to survive transient loss and that the Trio-ML implementation
"has provisions to support this solution".  This reproduction implements
those provisions: worker retransmission plus Result-replay at the
aggregator (the SwitchML-style recovery the paper references).
"""

import pytest

from repro.harness import build_single_pfe_testbed
from repro.net import Link, Packet, Port
from repro.sim import Environment
from repro.trioml import TrioMLJobConfig


class TestLossyLink:
    def test_loss_rate_validation(self):
        env = Environment()
        a, b = Port(env, "a"), Port(env, "b")
        with pytest.raises(ValueError):
            Link(env, a, b, loss_rate=1.0)
        with pytest.raises(ValueError):
            Link(env, a, b, loss_rate=-0.1)

    def test_zero_loss_delivers_everything(self):
        env = Environment()
        received = []
        a = Port(env, "a")
        b = Port(env, "b", rx_handler=lambda p, port: received.append(p))
        Link(env, a, b, loss_rate=0.0, propagation_delay_s=0)
        for __ in range(100):
            a.send(Packet(bytes(64)))
        env.run(until=1e-3)
        assert len(received) == 100

    def test_loss_rate_statistics(self):
        env = Environment()
        received = []
        a = Port(env, "a")
        b = Port(env, "b", rx_handler=lambda p, port: received.append(p))
        link = Link(env, a, b, loss_rate=0.2, loss_seed=7,
                    propagation_delay_s=0)
        n = 2000
        for __ in range(n):
            a.send(Packet(bytes(64)))
        env.run(until=1.0)
        assert link.frames_lost + len(received) == n
        assert 0.15 <= link.frames_lost / n <= 0.25

    def test_loss_deterministic_under_seed(self):
        def run(seed):
            env = Environment()
            received = []
            a = Port(env, "a")
            b = Port(env, "b", rx_handler=lambda p, port: received.append(1))
            Link(env, a, b, loss_rate=0.3, loss_seed=seed,
                 propagation_delay_s=0)
            for __ in range(200):
                a.send(Packet(bytes(64)))
            env.run(until=1.0)
            return len(received)

        assert run(5) == run(5)


class TestLossRecovery:
    def make_testbed(self, env, loss_rate):
        config = TrioMLJobConfig(
            grads_per_packet=64,
            window=4,
            loss_recovery=True,
            retransmit_timeout_s=0.002,
        )
        return build_single_pfe_testbed(
            env, config, num_workers=4, link_loss_rate=loss_rate
        )

    def test_allreduce_completes_under_loss(self):
        env = Environment()
        testbed = self.make_testbed(env, loss_rate=0.05)
        grads = [[(w + 1)] * 256 for w in range(4)]
        procs = testbed.run_allreduce(grads)
        env.run(until=env.all_of(procs))
        expected = [10] * 64  # 1+2+3+4 per gradient
        for proc in procs:
            assert all(block.values == expected for block in proc.value)
        lost = sum(link.frames_lost for link in testbed.topology.links)
        retransmitted = sum(w.retransmissions for w in testbed.workers)
        assert lost > 0, "the test should actually have exercised loss"
        assert retransmitted > 0

    def test_result_replay_for_completed_blocks(self):
        env = Environment()
        testbed = self.make_testbed(env, loss_rate=0.10)
        grads = [[1] * 512 for __ in range(4)]
        procs = testbed.run_allreduce(grads)
        env.run(until=env.all_of(procs))
        runtime = next(iter(testbed.handle.runtimes.values()))
        aggregator = testbed.handle.aggregator
        # Either no result packet happened to be lost (possible but the
        # seeds below make it unlikely) or replays occurred.
        assert (runtime.results_replayed > 0
                or aggregator.duplicates > 0
                or sum(w.retransmissions for w in testbed.workers) > 0)
        for proc in procs:
            assert all(block.values == [4] * 64 for block in proc.value)

    def test_duplicate_contributions_do_not_double_count(self):
        env = Environment()
        testbed = self.make_testbed(env, loss_rate=0.08)
        grads = [[5] * 320 for __ in range(4)]
        procs = testbed.run_allreduce(grads)
        env.run(until=env.all_of(procs))
        # Retransmissions that raced the original are deduplicated by the
        # received-source bitmask: sums stay exact.
        for proc in procs:
            assert all(block.values == [20] * 64 for block in proc.value)

    def test_no_retransmission_when_disabled(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=4)
        testbed = build_single_pfe_testbed(env, config, num_workers=4)
        procs = testbed.run_allreduce([[1] * 128] * 4)
        env.run(until=env.all_of(procs))
        assert all(w.retransmissions == 0 for w in testbed.workers)
