"""Chain compiler, placement search, and the placement-identity contract.

The tentpole guarantee: every legal placement of a chain — any split
across Trio / PISA / host, serial or fanned across worker processes —
produces bit-identical per-flow verdicts, counters, and exports.  The
parametrized tests here execute the canonical chain under *every* legal
placement and compare full results, not just digests.
"""

import pytest

from repro.harness.experiments import DEFAULT_CHAIN, chains_sweep
from repro.nf import (
    BACKEND_HOST,
    BACKEND_PISA,
    BACKEND_TRIO,
    BACKENDS,
    ChainError,
    CROSSING_LATENCY_S,
    FirewallNF,
    TelemetryNF,
    compile_chain,
    enumerate_placements,
    generate_trace,
    greedy_place,
    parse_chain,
    register_nf,
    run_chain,
    unregister_nf,
)
from repro.nf.chain import main as chain_main


@pytest.fixture(scope="module")
def compiled():
    return compile_chain(DEFAULT_CHAIN)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(2048, seed=3)


@pytest.fixture(scope="module")
def reference(compiled, trace):
    """The all-host run: the semantic ground truth."""
    return run_chain(compiled.spec, compiled.nfs,
                     ("host", "host", "host"), trace)


class TestParseChain:
    def test_basic(self):
        assert parse_chain("Firewall -> TELEMETRY->aggregate") == (
            "firewall", "telemetry", "aggregate"
        )

    def test_empty_element_rejected(self):
        with pytest.raises(ChainError, match="empty element"):
            parse_chain("firewall -> -> aggregate")

    def test_empty_spec_rejected(self):
        with pytest.raises(ChainError):
            parse_chain("   ")

    def test_unknown_nf_rejected(self):
        with pytest.raises(ChainError, match="nonesuch"):
            compile_chain("firewall -> nonesuch")


class TestCompile:
    def test_canonical_chain_fully_feasible(self, compiled):
        for name in compiled.names:
            assert compiled.feasible_backends(name) == BACKENDS

    def test_parse_bounds_from_static_analysis(self, compiled):
        # The statically analysed worst-case instruction bounds of the
        # three parse front-ends (nf_firewall_parse, nf_telemetry_parse,
        # trio_ml_parse).
        assert compiled.parse_bounds == {
            "firewall": 3.0, "telemetry": 4.0, "aggregate": 6.0,
        }

    def test_no_warnings_for_shipped_nfs(self, compiled):
        assert compiled.warnings == []

    def test_costs_are_positive_and_crossings_counted(self, compiled):
        cost = compiled.placement_costs(("trio", "pisa", "host"))
        assert cost.crossings == 2
        assert all(c.per_packet_s > 0 for c in cost.nf_costs)
        assert cost.per_packet_s == pytest.approx(
            sum(c.per_packet_s for c in cost.nf_costs)
            + 2 * CROSSING_LATENCY_S
        )

    def test_missing_microcode_program_warns(self):
        nf = TelemetryNF()
        nf.name = "telemetry-noparse"
        nf.microcode_program = None
        register_nf(nf)
        try:
            result = compile_chain("telemetry-noparse")
            assert any("parse front-end" in w for w in result.warnings)
            assert result.parse_bounds["telemetry-noparse"] == 0.0
        finally:
            unregister_nf("telemetry-noparse")


class TestInfeasibility:
    def test_pisa_rejects_oversized_flow_table(self):
        nf = TelemetryNF(max_flows=100_000)
        nf.name = "telemetry-big"
        register_nf(nf)
        try:
            result = compile_chain("telemetry-big")
            backends = result.feasible_backends("telemetry-big")
            assert BACKEND_PISA not in backends
            assert BACKEND_TRIO in backends and BACKEND_HOST in backends
            reason = result.feasibility[("telemetry-big", BACKEND_PISA)].reason
            assert "budget" in reason
        finally:
            unregister_nf("telemetry-big")

    def test_trio_rejects_timer_overcommit(self):
        nf = FirewallNF(review_threads=64)  # hardware has 32
        nf.name = "firewall-timers"
        register_nf(nf)
        try:
            result = compile_chain("firewall-timers")
            assert BACKEND_TRIO not in result.feasible_backends(
                "firewall-timers"
            )
            reason = result.feasibility[
                ("firewall-timers", BACKEND_TRIO)
            ].reason
            assert "timer threads" in reason
        finally:
            unregister_nf("firewall-timers")

    def test_joint_trio_timer_budget(self):
        """Two NFs individually feasible on Trio can jointly overcommit."""
        left = FirewallNF(review_threads=20)
        left.name = "firewall-l"
        right = FirewallNF(review_threads=20)
        right.name = "firewall-r"
        register_nf(left)
        register_nf(right)
        try:
            result = compile_chain("firewall-l -> firewall-r")
            for name in result.names:
                assert BACKEND_TRIO in result.feasible_backends(name)
            problems = result.validate_placement(("trio", "trio"))
            assert any("40 timer threads" in p for p in problems)
            legal = enumerate_placements(result)
            assert ("trio", "trio") not in {
                option.placement for option in legal
            }
        finally:
            unregister_nf("firewall-l")
            unregister_nf("firewall-r")

    def test_unfeasible_everywhere_is_a_compile_error(self):
        nf = TelemetryNF(max_flows=2_000_000)  # beyond Trio hash budget
        nf.name = "telemetry-huge"
        nf.host_ns_per_packet = 100.0
        register_nf(nf)
        try:
            result = compile_chain("telemetry-huge")
            # Host remains the backstop; Trio and PISA both refuse.
            assert result.feasible_backends("telemetry-huge") == (
                BACKEND_HOST,
            )
        finally:
            unregister_nf("telemetry-huge")

    def test_placement_length_mismatch(self, compiled):
        assert compiled.validate_placement(("host",)) == [
            "placement names 1 backends for 3 NFs"
        ]


class TestPlacementSearch:
    def test_enumeration_sorted_by_cost(self, compiled):
        options = enumerate_placements(compiled)
        assert len(options) >= 2  # the acceptance bar: >= 2 feasible
        costs = [option.per_packet_s for option in options]
        assert costs == sorted(costs)

    def test_every_enumerated_placement_is_legal(self, compiled):
        for option in enumerate_placements(compiled):
            assert compiled.validate_placement(option.placement) == []

    def test_greedy_is_legal_and_priced(self, compiled):
        placement = greedy_place(compiled)
        assert compiled.validate_placement(placement) == []
        cheapest = enumerate_placements(compiled)[0].per_packet_s
        greedy_cost = compiled.placement_costs(placement).per_packet_s
        assert greedy_cost >= cheapest  # greedy is a heuristic


class TestPlacementIdentity:
    """The bit-identical contract, placement by placement."""

    LEGAL = [
        option.placement
        for option in enumerate_placements(compile_chain(DEFAULT_CHAIN))
    ]

    def test_full_cross_product_is_legal(self):
        assert len(self.LEGAL) == len(BACKENDS) ** 3

    @pytest.mark.parametrize(
        "placement", LEGAL, ids=[",".join(p) for p in LEGAL]
    )
    def test_placement_matches_reference(self, compiled, trace, reference,
                                         placement):
        result = run_chain(compiled.spec, compiled.nfs, placement, trace)
        assert result.flow_verdicts == reference.flow_verdicts
        assert result.nf_counters == reference.nf_counters
        assert result.nf_exports == reference.nf_exports
        assert result.fingerprint() == reference.fingerprint()

    def test_chain_actually_exercises_all_verdicts(self, reference):
        totals = [sum(t[i] for t in reference.flow_verdicts.values())
                  for i in range(3)]
        assert all(total > 0 for total in totals), (
            "trace must produce forwarded, dropped, AND consumed packets "
            f"for the identity check to mean anything: {totals}"
        )


class TestTrace:
    def test_deterministic_per_seed(self):
        assert generate_trace(256, seed=5) == generate_trace(256, seed=5)
        assert generate_trace(256, seed=5) != generate_trace(256, seed=6)

    def test_length_validated(self):
        with pytest.raises(ValueError):
            generate_trace(0)


class TestHarnessSweep:
    def test_serial_and_parallel_rows_identical(self):
        serial = chains_sweep(packets=512, seed=1)
        fanned = chains_sweep(packets=512, seed=1, parallel=2)
        assert serial == fanned
        assert len({row.fingerprint for row in serial}) == 1
        assert sum(row.chosen for row in serial) == 1


class TestCli:
    def test_default_run_succeeds(self, capsys):
        assert chain_main(["--packets", "512"]) == 0
        out = capsys.readouterr().out
        assert "placement:" in out and "fingerprint" in out

    def test_validate_all_reports_one_fingerprint(self, capsys):
        assert chain_main(["--packets", "512", "--validate-all"]) == 0
        assert "1 distinct fingerprint(s)" in capsys.readouterr().out

    def test_unknown_nf_exits_1(self, capsys):
        assert chain_main(["firewall -> nonesuch"]) == 1
        assert "nonesuch" in capsys.readouterr().err

    def test_illegal_placement_exits_1(self, capsys):
        nf = TelemetryNF(max_flows=100_000)
        nf.name = "telemetry-big"
        register_nf(nf)
        try:
            code = chain_main(["telemetry-big", "--backend", "pisa",
                               "--packets", "64"])
        finally:
            unregister_nf("telemetry-big")
        assert code == 1
        assert "infeasible on pisa" in capsys.readouterr().err

    def test_werror_promotes_warnings(self, capsys):
        nf = TelemetryNF()
        nf.name = "telemetry-noparse"
        nf.microcode_program = None
        register_nf(nf)
        try:
            assert chain_main(["telemetry-noparse", "--werror"]) == 2
        finally:
            unregister_nf("telemetry-noparse")

    def test_explicit_placement_honoured(self, capsys):
        assert chain_main([DEFAULT_CHAIN, "--placement", "trio,host,pisa",
                           "--packets", "256"]) == 0
        assert "placement: trio,host,pisa" in capsys.readouterr().out
