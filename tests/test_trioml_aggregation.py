"""Integration tests for Trio-ML aggregation: single level and hierarchical."""

import pytest

from repro.harness import build_hierarchical_testbed, build_single_pfe_testbed
from repro.sim import Environment
from repro.trioml import TrioMLJobConfig
from repro.trioml.protocol import TRIO_ML_UDP_PORT, TrioMLHeader, encode_trio_ml


def run_allreduce(testbed, vectors):
    env = testbed.env
    procs = testbed.run_allreduce(vectors)
    env.run(until=env.all_of(procs))
    return procs


def flatten(results, limit):
    return [v for block in results for v in block.values][:limit]


class TestSingleLevel:
    def test_sums_match_across_workers(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=128, window=4)
        testbed = build_single_pfe_testbed(env, config)
        grads = [[(w + 1) * (i + 1) for i in range(500)] for w in range(4)]
        expected = [sum(g[i] for g in grads) for i in range(500)]
        procs = run_allreduce(testbed, grads)
        for proc in procs:
            assert flatten(proc.value, 500) == expected

    def test_all_blocks_complete_with_full_src_cnt(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2)
        testbed = build_single_pfe_testbed(env, config)
        procs = run_allreduce(testbed, [[1] * 300] * 4)
        for block in procs[0].value:
            assert block.src_cnt == 4
            assert not block.degraded

    def test_negative_gradients(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2)
        testbed = build_single_pfe_testbed(env, config)
        grads = [[-(w + 1)] * 64 for w in range(4)]
        procs = run_allreduce(testbed, grads)
        assert procs[0].value[0].values == [-10] * 64

    def test_partial_last_block_padded(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2)
        testbed = build_single_pfe_testbed(env, config)
        # 100 gradients -> 2 blocks, last one padded with zeros.
        procs = run_allreduce(testbed, [[2] * 100] * 4)
        results = procs[0].value
        assert len(results) == 2
        assert flatten(results, 100) == [8] * 100
        assert results[1].values[100 - 64:] == [0] * 28

    def test_aggregator_consumed_all_packets(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=4)
        testbed = build_single_pfe_testbed(env, config)
        run_allreduce(testbed, [[1] * 256] * 4)
        aggregator = testbed.handle.aggregator
        assert aggregator.packets_aggregated == 4 * 4  # 4 blocks x 4 workers
        assert aggregator.gradients_aggregated == 4 * 256
        assert aggregator.duplicates == 0
        assert testbed.pfe.packets_dropped == 0

    def test_block_records_cleaned_up(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=4)
        testbed = build_single_pfe_testbed(env, config)
        run_allreduce(testbed, [[1] * 256] * 4)
        # Only the job record remains in the hash table.
        assert len(testbed.pfe.hash_table) == 1
        runtime = next(iter(testbed.handle.runtimes.values()))
        assert runtime.record.block_curr_cnt == 0
        assert runtime.record.block_total_cnt == 4

    def test_aggregation_buffers_freed(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2)
        testbed = build_single_pfe_testbed(env, config)
        before = testbed.pfe.memory.dram.allocated_bytes
        run_allreduce(testbed, [[1] * 640] * 4)
        after = testbed.pfe.memory.dram.allocated_bytes
        assert after == before  # all block buffers returned

    def test_second_generation_reuses_block_ids(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2)
        testbed = build_single_pfe_testbed(env, config)
        run_allreduce(testbed, [[1] * 128] * 4)
        procs = run_allreduce(testbed, [[5] * 128] * 4)
        assert flatten(procs[0].value, 128) == [20] * 128

    def test_unknown_job_dropped_and_counted(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2)
        testbed = build_single_pfe_testbed(env, config)
        worker = testbed.workers[0]
        header = TrioMLHeader(job_id=99, block_id=0, src_id=0, grad_cnt=4)
        payload = encode_trio_ml(header, [1, 2, 3, 4])

        def send():
            yield worker.send_udp(
                dst_mac=config.router_mac, dst_ip=config.service_ip,
                src_port=TRIO_ML_UDP_PORT, dst_port=TRIO_ML_UDP_PORT,
                payload=payload,
            )

        env.process(send())
        env.run(until=1e-3)
        aggregator = testbed.handle.aggregator
        assert aggregator.no_job_drops == 1
        assert aggregator.drop_counter.read()[0] == 1

    def test_oversized_block_rejected(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2)
        testbed = build_single_pfe_testbed(env, config)
        worker = testbed.workers[0]
        header = TrioMLHeader(job_id=config.job_id, block_id=0, src_id=0,
                              grad_cnt=128)  # above block_grad_max=64
        payload = encode_trio_ml(header, [1] * 128)

        def send():
            yield worker.send_udp(
                dst_mac=config.router_mac, dst_ip=config.service_ip,
                src_port=TRIO_ML_UDP_PORT, dst_port=TRIO_ML_UDP_PORT,
                payload=payload,
            )

        env.process(send())
        env.run(until=1e-3)
        assert testbed.handle.aggregator.no_job_drops == 1

    def test_duplicate_contribution_ignored(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2)
        testbed = build_single_pfe_testbed(env, config)
        worker = testbed.workers[0]
        header = TrioMLHeader(job_id=config.job_id, block_id=0, src_id=0,
                              grad_cnt=4, gen_id=1)
        payload = encode_trio_ml(header, [10, 20, 30, 40])

        def send_twice():
            for __ in range(2):
                yield worker.send_udp(
                    dst_mac=config.router_mac, dst_ip=config.service_ip,
                    src_port=TRIO_ML_UDP_PORT, dst_port=TRIO_ML_UDP_PORT,
                    payload=payload,
                )
                yield env.timeout(10e-6)

        env.process(send_twice())
        env.run(until=1e-3)
        aggregator = testbed.handle.aggregator
        assert aggregator.duplicates == 1
        # The block is still waiting for the other three sources.
        record = testbed.pfe.hash_table.get_nowait((config.job_id, 0))
        assert record.value.rcvd_cnt == 1

    def test_non_aggregation_traffic_forwarded(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2)
        testbed = build_single_pfe_testbed(env, config)
        w0, w1 = testbed.workers[0], testbed.workers[1]
        testbed.pfe.add_route(w1.ip, testbed.pfe.port(1).name)

        def send():
            yield w0.send_udp(w1.mac, w1.ip, 5555, 8080, b"not gradients")

        def recv():
            packet = yield w1.recv()
            return packet.parse_udp()[3]

        env.process(send())
        p = env.process(recv())
        assert env.run(until=p) == b"not gradients"


class TestHierarchical:
    def test_six_worker_sums(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=128, window=4)
        testbed = build_hierarchical_testbed(env, config)
        grads = [[(w + 1) * (i + 1) for i in range(400)] for w in range(6)]
        expected = [sum(g[i] for g in grads) for i in range(400)]
        procs = run_allreduce(testbed, grads)
        for proc in procs:
            assert flatten(proc.value, 400) == expected

    def test_results_report_worker_counts_not_pfe_counts(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2)
        testbed = build_hierarchical_testbed(env, config)
        procs = run_allreduce(testbed, [[1] * 128] * 6)
        for block in procs[0].value:
            assert block.src_cnt == 6

    def test_first_level_pfes_feed_top_over_fabric(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2)
        testbed = build_hierarchical_testbed(env, config)
        run_allreduce(testbed, [[1] * 128] * 6)
        top = testbed.handle.aggregators["pfe4"]
        # Top level sees 2 sources (PFE1, PFE2) per block, 2 blocks.
        assert top.packets_aggregated == 4
        assert testbed.router.fabric.packets > 0

    def test_first_level_results_not_final(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=2)
        testbed = build_hierarchical_testbed(env, config)
        run_allreduce(testbed, [[1] * 64] * 6)
        first = testbed.handle.runtimes["pfe1"]
        top = testbed.handle.runtimes["pfe4"]
        assert first.role == "first_level"
        assert top.role == "top"
        assert first.record.src_cnt == 3  # its local workers
        assert top.record.src_cnt == 2    # the two first-level PFEs

    def test_top_pfe_cannot_be_first_level(self):
        from repro.trioml.config import setup_hierarchical_job
        env = Environment()
        from repro.trio import TrioRouter
        router = TrioRouter(env, num_pfes=2)
        with pytest.raises(ValueError):
            setup_hierarchical_job(
                router, TrioMLJobConfig(), {"pfe1": []}, {}, top_pfe="pfe1"
            )
