"""Unit tests for ports, links, NICs, hosts, and multicast tables."""

import pytest

from repro.net import (
    Host,
    IPv4Address,
    Link,
    MACAddress,
    MulticastGroupTable,
    NIC,
    Packet,
    Port,
    Topology,
)
from repro.sim import Environment


def raw_packet(size=100):
    return Packet(bytes(size), flow_key="flow")


class TestLink:
    def test_serialisation_plus_propagation_delay(self):
        env = Environment()
        received = []
        a = Port(env, "a")
        b = Port(env, "b", rx_handler=lambda p, port: received.append(env.now))
        Link(env, a, b, bandwidth_bps=1e9, propagation_delay_s=1e-6)
        a.send(raw_packet(125))  # 1000 bits at 1 Gbps = 1 us
        env.run(until=1e-3)
        assert received == pytest.approx([2e-6])

    def test_back_to_back_packets_queue_on_serialiser(self):
        env = Environment()
        received = []
        a = Port(env, "a")
        b = Port(env, "b", rx_handler=lambda p, port: received.append(env.now))
        Link(env, a, b, bandwidth_bps=1e9, propagation_delay_s=0.0)
        for __ in range(3):
            a.send(raw_packet(125))
        env.run(until=1e-3)
        assert received == pytest.approx([1e-6, 2e-6, 3e-6])

    def test_full_duplex_directions_independent(self):
        env = Environment()
        times = {}
        a = Port(env, "a", rx_handler=lambda p, port: times.setdefault("a", env.now))
        b = Port(env, "b", rx_handler=lambda p, port: times.setdefault("b", env.now))
        Link(env, a, b, bandwidth_bps=1e9, propagation_delay_s=0.0)
        a.send(raw_packet(125))
        b.send(raw_packet(125))
        env.run(until=1e-3)
        # Simultaneous opposite-direction transfers do not serialise.
        assert times["a"] == pytest.approx(1e-6)
        assert times["b"] == pytest.approx(1e-6)

    def test_port_cannot_join_two_links(self):
        env = Environment()
        a, b, c = Port(env, "a"), Port(env, "b"), Port(env, "c")
        Link(env, a, b)
        with pytest.raises(RuntimeError):
            Link(env, a, c)

    def test_send_on_unconnected_port_rejected(self):
        env = Environment()
        with pytest.raises(RuntimeError):
            Port(env, "lonely").send(raw_packet())

    def test_other_end(self):
        env = Environment()
        a, b = Port(env, "a"), Port(env, "b")
        link = Link(env, a, b)
        assert link.other_end(a) is b
        assert link.other_end(b) is a
        with pytest.raises(ValueError):
            link.other_end(Port(env, "c"))

    def test_parameter_validation(self):
        env = Environment()
        a, b = Port(env, "a"), Port(env, "b")
        with pytest.raises(ValueError):
            Link(env, a, b, bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link(env, a, b, propagation_delay_s=-1)

    def test_port_counters(self):
        env = Environment()
        a, b = Port(env, "a"), Port(env, "b")
        Link(env, a, b, propagation_delay_s=0)
        a.send(raw_packet(100))
        env.run(until=1e-3)
        assert (a.tx_packets, a.tx_bytes) == (1, 100)
        assert (b.rx_packets, b.rx_bytes) == (1, 100)


class TestNIC:
    def test_tx_ring_drains_to_wire(self):
        env = Environment()
        received = []
        nic = NIC(env, "nic0", MACAddress(1), IPv4Address("10.0.0.1"))
        sink = Port(env, "sink",
                    rx_handler=lambda p, port: received.append(p))
        Link(env, nic.port, sink, propagation_delay_s=0)
        nic.send(raw_packet())
        env.run(until=1e-3)
        assert len(received) == 1

    def test_send_nowait_drops_when_full(self):
        env = Environment()
        nic = NIC(env, "nic0", MACAddress(1), IPv4Address("10.0.0.1"),
                  tx_ring_size=2)
        # No link yet: nothing drains, but the un-started env also means
        # the tx loop hasn't pulled anything; ring fills at capacity.
        assert nic.send_nowait(raw_packet())
        assert nic.send_nowait(raw_packet())
        assert not nic.send_nowait(raw_packet())

    def test_rx_without_callback_counts_drops(self):
        env = Environment()
        nic = NIC(env, "nic0", MACAddress(1), IPv4Address("10.0.0.1"))
        other = Port(env, "other")
        Link(env, nic.port, other, propagation_delay_s=0)
        other.send(raw_packet())
        env.run(until=1e-3)
        assert nic.dropped_rx == 1

    def test_tx_overhead_applied(self):
        env = Environment()
        received = []
        nic = NIC(env, "nic0", MACAddress(1), IPv4Address("10.0.0.1"),
                  tx_overhead_s=5e-6)
        sink = Port(env, "sink",
                    rx_handler=lambda p, port: received.append(env.now))
        Link(env, nic.port, sink, bandwidth_bps=1e12,
             propagation_delay_s=0)
        nic.send(raw_packet(125))
        env.run(until=1e-3)
        assert received[0] >= 5e-6


class TestHost:
    def test_udp_send_receive(self):
        env = Environment()
        h1 = Host(env, "h1", MACAddress(1), IPv4Address("10.0.0.1"))
        h2 = Host(env, "h2", MACAddress(2), IPv4Address("10.0.0.2"))
        Topology(env).connect(h1.nic.port, h2.nic.port)

        def sender():
            yield h1.send_udp(h2.mac, h2.ip, 10, 20, b"ping")

        def receiver():
            packet = yield h2.recv()
            __, ip, udp, payload = packet.parse_udp()
            return (str(ip.src), udp.dst_port, payload)

        env.process(sender())
        p = env.process(receiver())
        assert env.run(until=p) == ("10.0.0.1", 20, b"ping")

    def test_recv_udp_payload_skips_non_udp(self):
        env = Environment()
        h1 = Host(env, "h1", MACAddress(1), IPv4Address("10.0.0.1"))
        h2 = Host(env, "h2", MACAddress(2), IPv4Address("10.0.0.2"))
        Topology(env).connect(h1.nic.port, h2.nic.port)

        def sender():
            yield h1.nic.send(Packet(b"\x00" * 60))  # junk frame
            yield h1.send_udp(h2.mac, h2.ip, 1, 2, b"real")

        def receiver():
            payload = yield from h2.recv_udp_payload()
            return payload

        env.process(sender())
        p = env.process(receiver())
        assert env.run(until=p) == b"real"


class TestMulticastGroupTable:
    def test_join_and_members_sorted(self):
        table = MulticastGroupTable()
        table.join(IPv4Address("239.0.0.1"), "p2")
        table.join("239.0.0.1", "p1")
        assert table.members("239.0.0.1") == ["p1", "p2"]

    def test_non_multicast_group_rejected(self):
        table = MulticastGroupTable()
        with pytest.raises(ValueError):
            table.join(IPv4Address("10.0.0.1"), "p1")

    def test_leave_and_group_cleanup(self):
        table = MulticastGroupTable()
        table.join("239.0.0.1", "p1")
        table.leave("239.0.0.1", "p1")
        assert table.members("239.0.0.1") == []
        assert "239.0.0.1" not in table
        table.leave("239.0.0.1", "p1")  # idempotent

    def test_contains(self):
        table = MulticastGroupTable()
        table.join("239.0.0.1", "p1")
        assert "239.0.0.1" in table
        assert "not an address" not in table


class TestTopology:
    def test_duplicate_host_rejected(self):
        env = Environment()
        topo = Topology(env)
        host = Host(env, "h", MACAddress(1), IPv4Address("10.0.0.1"))
        topo.add_host(host)
        with pytest.raises(ValueError):
            topo.add_host(Host(env, "h", MACAddress(2),
                               IPv4Address("10.0.0.2")))

    def test_find_port(self):
        env = Environment()
        topo = Topology(env)
        h1 = Host(env, "h1", MACAddress(1), IPv4Address("10.0.0.1"))
        h2 = Host(env, "h2", MACAddress(2), IPv4Address("10.0.0.2"))
        topo.connect(h1.nic.port, h2.nic.port)
        assert topo.find_port("h1.port") is h1.nic.port
        assert topo.find_port("nonexistent") is None

    def test_device_registry(self):
        env = Environment()
        topo = Topology(env)
        topo.add_device("sw", object())
        assert topo.device("sw") is not None
        with pytest.raises(ValueError):
            topo.add_device("sw", object())
