"""Unit tests for the Trio-ML worker's internal behaviours."""

import pytest

from repro.net import IPv4Address, MACAddress, Packet
from repro.sim import Environment
from repro.trioml.protocol import TRIO_ML_UDP_PORT, TrioMLHeader, encode_trio_ml
from repro.trioml.worker import BlockResult, TrioMLWorker
from repro.trioml.worker import _AllreduceState


def make_worker(env=None, **kwargs):
    env = env or Environment()
    defaults = dict(
        name="w0", src_id=0, job_id=1,
        mac=MACAddress(1), ip=IPv4Address("10.0.0.1"),
        router_mac=MACAddress(0xFE), service_ip=IPv4Address("10.255.0.1"),
        grads_per_packet=64, window=4,
    )
    defaults.update(kwargs)
    worker = TrioMLWorker(env, **defaults)
    # Attach the NIC to a sink so sends have somewhere to go; results are
    # injected straight into the worker's inbox by the tests.
    from repro.net import Link, Port
    sink = Port(env, "sink")
    Link(env, worker.nic.port, sink, propagation_delay_s=0)
    return env, worker


def result_packet(worker, gen, block_id, values, final=True, degraded=False,
                  src_cnt=4):
    header = TrioMLHeader(
        job_id=worker.job_id, block_id=block_id, src_id=0,
        grad_cnt=len(values), gen_id=gen, final=final, degraded=degraded,
        src_cnt=src_cnt,
    )
    return Packet.udp(
        src_mac=MACAddress(0xFE), dst_mac=worker.mac,
        src_ip=IPv4Address("10.255.0.1"), dst_ip=worker.ip,
        src_port=TRIO_ML_UDP_PORT, dst_port=TRIO_ML_UDP_PORT,
        payload=encode_trio_ml(header, values),
    )


class TestSplitBlocks:
    def test_exact_multiple(self):
        __, worker = make_worker()
        blocks = worker.split_blocks(list(range(128)))
        assert len(blocks) == 2
        assert blocks[0] == list(range(64))

    def test_padding_on_last_block(self):
        __, worker = make_worker()
        blocks = worker.split_blocks([1] * 70)
        assert len(blocks) == 2
        assert blocks[1] == [1] * 6 + [0] * 58

    def test_single_short_vector(self):
        __, worker = make_worker()
        blocks = worker.split_blocks([9, 9])
        assert blocks == [[9, 9] + [0] * 62]

    def test_parameter_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            make_worker(env, grads_per_packet=0)
        with pytest.raises(ValueError):
            make_worker(env, grads_per_packet=2000)
        with pytest.raises(ValueError):
            make_worker(env, window=0)


class TestParseResult:
    def test_accepts_matching_result(self):
        __, worker = make_worker()
        worker.gen_id = 3
        packet = result_packet(worker, gen=3, block_id=1, values=[5] * 64)
        result = worker._parse_result(packet, gen=3, num_blocks=4)
        assert result is not None
        assert result.block_id == 1
        assert result.values == [5] * 64

    def test_rejects_wrong_generation(self):
        __, worker = make_worker()
        packet = result_packet(worker, gen=2, block_id=0, values=[1] * 64)
        assert worker._parse_result(packet, gen=3, num_blocks=4) is None

    def test_rejects_non_final(self):
        __, worker = make_worker()
        packet = result_packet(worker, gen=1, block_id=0, values=[1] * 64,
                               final=False)
        assert worker._parse_result(packet, gen=1, num_blocks=4) is None

    def test_rejects_wrong_job(self):
        __, worker = make_worker()
        packet = result_packet(worker, gen=1, block_id=0, values=[1] * 64)
        worker.job_id = 9
        assert worker._parse_result(packet, gen=1, num_blocks=4) is None

    def test_rejects_out_of_range_block(self):
        __, worker = make_worker()
        packet = result_packet(worker, gen=1, block_id=10, values=[1] * 64)
        assert worker._parse_result(packet, gen=1, num_blocks=4) is None

    def test_rejects_wrong_port(self):
        __, worker = make_worker()
        packet = Packet.udp(
            src_mac=MACAddress(0xFE), dst_mac=worker.mac,
            src_ip=IPv4Address("10.255.0.1"), dst_ip=worker.ip,
            src_port=80, dst_port=80, payload=b"not trioml",
        )
        assert worker._parse_result(packet, gen=1, num_blocks=4) is None

    def test_rejects_garbage_payload(self):
        __, worker = make_worker()
        packet = Packet.udp(
            src_mac=MACAddress(0xFE), dst_mac=worker.mac,
            src_ip=IPv4Address("10.255.0.1"), dst_ip=worker.ip,
            src_port=TRIO_ML_UDP_PORT, dst_port=TRIO_ML_UDP_PORT,
            payload=b"\x01\x02",
        )
        assert worker._parse_result(packet, gen=1, num_blocks=4) is None


class TestBlockResult:
    def test_mean_divides_by_contributors(self):
        result = BlockResult(block_id=0, values=[6, -9], src_cnt=3,
                             degraded=True, gen_id=1)
        assert result.mean() == [2.0, -3.0]

    def test_mean_with_zero_contributors(self):
        result = BlockResult(block_id=0, values=[6], src_cnt=0,
                             degraded=True, gen_id=1)
        assert result.mean() == [0.0]


class TestGenerationCounter:
    def test_gen_increments_per_allreduce(self):
        env, worker = make_worker()

        def feed():
            # Feed results for gen 1's single block, then gen 2's.
            yield env.timeout(1e-4)
            worker.inbox.put(result_packet(worker, 1, 0, [4] * 64))

        env.process(feed())
        proc = env.process(worker.allreduce([1] * 64))
        env.run(until=proc)
        assert worker.gen_id == 1

        def feed2():
            yield env.timeout(1e-4)
            worker.inbox.put(result_packet(worker, 2, 0, [8] * 64))

        env.process(feed2())
        proc = env.process(worker.allreduce([2] * 64))
        env.run(until=proc)
        assert worker.gen_id == 2
        assert proc.value[0].values == [8] * 64

    def test_stale_generation_results_ignored(self):
        env, worker = make_worker()

        def feed():
            yield env.timeout(1e-4)
            worker.inbox.put(result_packet(worker, 99, 0, [1] * 64))  # stale
            yield env.timeout(1e-4)
            worker.inbox.put(result_packet(worker, 1, 0, [2] * 64))

        env.process(feed())
        proc = env.process(worker.allreduce([1] * 64))
        env.run(until=proc)
        assert proc.value[0].values == [2] * 64
        assert worker.results_received == 1


class TestInstrumentation:
    def test_send_and_result_times_recorded(self):
        env, worker = make_worker()

        def feed():
            yield env.timeout(5e-4)
            worker.inbox.put(result_packet(worker, 1, 0, [0] * 64))

        env.process(feed())
        proc = env.process(worker.allreduce([1] * 64))
        env.run(until=proc)
        assert (1, 0) in worker.send_times
        assert (1, 0) in worker.result_times
        assert worker.result_times[(1, 0)] >= worker.send_times[(1, 0)]

    def test_window_limits_outstanding_sends(self):
        env, worker = make_worker(window=2)
        # 4 blocks, window 2: only 2 sends until a result arrives.
        proc = env.process(worker.allreduce([1] * 256))
        env.run(until=1e-3)
        assert worker.blocks_sent == 2
        # Release one block; a third send follows.
        worker.inbox.put(result_packet(worker, 1, 0, [0] * 64))
        env.run(until=2e-3)
        assert worker.blocks_sent == 3
