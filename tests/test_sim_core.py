"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Environment, Event, Interrupt, SimulationError, Timeout
from repro.sim.core import AllOf, AnyOf


class TestEnvironment:
    def test_time_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_run_until_time_advances_clock(self):
        env = Environment()
        env.run(until=3.5)
        assert env.now == 3.5

    def test_run_until_past_time_rejected(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(SimulationError):
            env.run(until=5.0)

    def test_peek_empty_queue_is_inf(self):
        assert Environment().peek() == float("inf")

    def test_step_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_events_fire_in_timestamp_order(self):
        env = Environment()
        order = []

        def waiter(delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(waiter(3, "c"))
        env.process(waiter(1, "a"))
        env.process(waiter(2, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        env = Environment()
        order = []

        def waiter(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ("first", "second", "third"):
            env.process(waiter(tag))
        env.run()
        assert order == ["first", "second", "third"]


class TestDeferredCallCancel:
    """``call_later``/``call_at`` handles: cancel without heap surgery."""

    def test_cancelled_call_never_fires(self):
        env = Environment()
        fired = []
        handle = env.call_later(1.0, fired.append, "a")
        env.call_later(2.0, fired.append, "b")
        handle.cancel()
        env.run()
        assert fired == ["b"]
        assert handle.cancelled

    def test_cancel_is_idempotent_and_counted(self):
        env = Environment()
        handle = env.call_later(1.0, lambda: None)
        assert env.cancelled_events == 0
        handle.cancel()
        handle.cancel()
        assert env.cancelled_events == 1
        env.run()
        assert env.cancelled_events == 1

    def test_cancel_keeps_scheduled_events_fingerprint(self):
        """The queue entry stays: cancelling must not perturb the
        ``scheduled_events`` determinism fingerprint, and the empty
        event still pops at its timestamp (time advances)."""
        env = Environment()
        handle = env.call_later(5.0, lambda: None)
        before = env.scheduled_events
        handle.cancel()
        assert env.scheduled_events == before
        env.run()
        assert env.now == 5.0


class TestTimeout:
    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Timeout(env, -1.0)

    def test_timeout_value_delivered(self):
        env = Environment()

        def proc():
            value = yield env.timeout(1.0, value="payload")
            return value

        p = env.process(proc())
        assert env.run(until=p) == "payload"

    def test_zero_delay_timeout(self):
        env = Environment()

        def proc():
            yield env.timeout(0)
            return env.now

        p = env.process(proc())
        assert env.run(until=p) == 0.0


class TestEvent:
    def test_succeed_delivers_value(self):
        env = Environment()
        event = env.event()

        def waiter():
            value = yield event
            return value

        def trigger():
            yield env.timeout(1.0)
            event.succeed(42)

        p = env.process(waiter())
        env.process(trigger())
        assert env.run(until=p) == 42

    def test_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_raises_in_waiter(self):
        env = Environment()
        event = env.event()

        def waiter():
            try:
                yield event
            except ValueError as exc:
                return str(exc)

        def trigger():
            yield env.timeout(1.0)
            event.fail(ValueError("boom"))

        p = env.process(waiter())
        env.process(trigger())
        assert env.run(until=p) == "boom"

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            __ = env.event().value

    def test_waiting_on_already_processed_event(self):
        env = Environment()
        event = env.event()
        event.succeed("early")
        env.run(until=0.5)
        assert event.processed

        def late_waiter():
            value = yield event
            return value

        p = env.process(late_waiter())
        assert env.run(until=p) == "early"


class TestProcess:
    def test_process_return_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            return "done"

        p = env.process(proc())
        assert env.run(until=p) == "done"

    def test_process_waits_on_process(self):
        env = Environment()

        def child():
            yield env.timeout(2)
            return 7

        def parent():
            value = yield env.process(child())
            return value * 3

        p = env.process(parent())
        assert env.run(until=p) == 21
        assert env.now == 2

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_yielding_non_event_fails_process(self):
        env = Environment()

        def bad():
            yield 42

        p = env.process(bad())
        with pytest.raises(SimulationError):
            env.run(until=p)

    def test_unhandled_process_exception_surfaces(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise RuntimeError("exploded")

        env.process(bad())
        with pytest.raises(RuntimeError, match="exploded"):
            env.run()

    def test_interrupt_wakes_sleeping_process(self):
        env = Environment()

        def sleeper():
            try:
                yield env.timeout(100)
                return "overslept"
            except Interrupt as exc:
                return ("woken", exc.cause, env.now)

        p = env.process(sleeper())

        def interrupter():
            yield env.timeout(2)
            p.interrupt(cause="alarm")

        env.process(interrupter())
        assert env.run(until=p) == ("woken", "alarm", 2.0)

    def test_interrupt_finished_process_rejected(self):
        env = Environment()

        def quick():
            yield env.timeout(1)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_is_alive_transitions(self):
        env = Environment()

        def proc():
            yield env.timeout(1)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive


class TestCombinators:
    def test_any_of_fires_on_first(self):
        env = Environment()

        def proc():
            result = yield env.any_of([env.timeout(5, "slow"),
                                       env.timeout(1, "fast")])
            return sorted(result.values())

        p = env.process(proc())
        assert env.run(until=p) == ["fast"]
        assert env.now == 1

    def test_all_of_waits_for_all(self):
        env = Environment()

        def proc():
            result = yield env.all_of([env.timeout(5, "slow"),
                                       env.timeout(1, "fast")])
            return sorted(result.values())

        p = env.process(proc())
        assert env.run(until=p) == ["fast", "slow"]
        assert env.now == 5

    def test_empty_all_of_fires_immediately(self):
        env = Environment()

        def proc():
            yield env.all_of([])
            return env.now

        p = env.process(proc())
        assert env.run(until=p) == 0.0

    def test_all_of_with_pretriggered_events(self):
        env = Environment()
        done = env.event()
        done.succeed("x")

        def proc():
            result = yield env.all_of([done, env.timeout(1, "y")])
            return sorted(result.values())

        p = env.process(proc())
        assert env.run(until=p) == ["x", "y"]

    def test_run_until_event_exhausted_queue_raises(self):
        env = Environment()
        never = env.event()
        with pytest.raises(SimulationError):
            env.run(until=never)
