"""Tests for corners not covered by the per-module suites."""

import pytest

from repro.sim import Environment, PriorityStore, Store
from repro.trio import Crossbar, GENERATIONS, SharedMemorySystem
from repro.trio.memory import MemoryError_, MemoryRegion


class TestStoreBackpressure:
    def test_priority_store_capacity_blocks_putters(self):
        env = Environment()
        store = PriorityStore(env, capacity=1)
        accepted = []

        def producer():
            for value in (3, 1, 2):
                yield store.put(value)
                accepted.append((env.now, value))

        def consumer():
            got = []
            for __ in range(3):
                yield env.timeout(1.0)
                got.append((yield store.get()))
            return got

        env.process(producer())
        p = env.process(consumer())
        got = env.run(until=p)
        # 3 accepted at t=0; 1 and 2 wait for capacity.
        assert [v for __, v in accepted] == [3, 1, 2]
        # Min-heap ordering applies to whatever is resident when popped.
        assert got[0] == 3

    def test_store_put_event_carries_item(self):
        env = Environment()
        store = Store(env, capacity=1)
        event = store.put("a")
        assert event.item == "a"


class TestCrossbar:
    def test_transit_latency_and_stats(self):
        env = Environment()
        crossbar = Crossbar(env, latency_s=25e-9)

        def proc():
            yield crossbar.transit(8)
            yield crossbar.transit(64)
            return env.now

        p = env.process(proc())
        assert env.run(until=p) == pytest.approx(50e-9)
        assert crossbar.xtxn_count == 2
        assert crossbar.xtxn_bytes == 72
        assert crossbar.round_trip_s() == pytest.approx(50e-9)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Crossbar(Environment(), latency_s=-1e-9)


class TestMemoryRegionEdges:
    def test_free_out_of_range_rejected(self):
        region = MemoryRegion("r", base=0, size=1024, latency_s=1e-9)
        with pytest.raises(MemoryError_):
            region.free(2048, 8)

    def test_alloc_zero_rejected(self):
        region = MemoryRegion("r", base=0, size=1024, latency_s=1e-9)
        with pytest.raises(MemoryError_):
            region.alloc(0)

    def test_negative_read_size_rejected(self):
        region = MemoryRegion("r", base=0, size=1024, latency_s=1e-9)
        with pytest.raises(MemoryError_):
            region.read_raw(0, -1)

    def test_first_fit_skips_too_small_holes(self):
        region = MemoryRegion("r", base=0, size=4096, latency_s=1e-9)
        a = region.alloc(64, align=1)
        b = region.alloc(64, align=1)
        region.free(a, 64)
        # 128 bytes cannot fit the 64-byte hole: bump allocation instead.
        c = region.alloc(128, align=1)
        assert c > b

    def test_allocated_bytes_tracking(self):
        region = MemoryRegion("r", base=0, size=4096, latency_s=1e-9)
        addr = region.alloc(100)
        assert region.allocated_bytes == 100
        region.free(addr, 100)
        assert region.allocated_bytes == 0

    def test_dram_cache_eviction(self):
        env = Environment()
        config = GENERATIONS[5].scaled(dram_cache_bytes=128)  # 2 lines
        memory = SharedMemorySystem(env, config)
        base = memory.alloc(1024, region="dram")
        # Touch three distinct lines: the first is evicted.
        assert memory.access_latency_s(base, 8) == config.dram_latency_s
        memory.access_latency_s(base + 64, 8)
        memory.access_latency_s(base + 128, 8)
        assert memory.access_latency_s(base, 8) == config.dram_latency_s

    def test_dram_cache_hit_after_touch(self):
        env = Environment()
        memory = SharedMemorySystem(env, GENERATIONS[5])
        base = memory.alloc(64, region="dram")
        memory.access_latency_s(base, 8)
        assert (memory.access_latency_s(base, 8)
                == GENERATIONS[5].dram_cache_hit_latency_s)


class TestMicrocodeInterpExtras:
    def test_r_work_time_ns_builtin(self):
        from repro.microcode import MicrocodeExecutor, TrioCompiler
        from repro.net import IPv4Address, MACAddress, Packet
        from repro.trio import PFE
        from repro.trio.ppe import PacketContext, ThreadContext

        program = TrioCompiler().compile("""
        reg t;
        main:
        begin
            t = r_work.time_ns;
            exit;
        end
        """)
        executor = MicrocodeExecutor(program)
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        packet = Packet(bytes(64), flow_key="f")
        pctx = PacketContext(packet=packet, head=bytearray(packet.data),
                             tail=b"")
        tctx = ThreadContext(env=env, ppe=pfe.ppes[0], config=pfe.config,
                             memory=pfe.memory, hash_table=pfe.hash_table,
                             packet_ctx=pctx)
        proc = env.process(executor.run(tctx, pctx))
        env.run(until=proc)
        # One instruction at pipeline depth 20 on a 1 GHz clock -> 20 ns.
        assert tctx.registers[program.reg_map["t"]] == 20

    def test_pointer_arithmetic_retains_byte_semantics(self):
        from repro.microcode.interp import PointerValue
        from repro.microcode.layout import StructLayout

        layout = StructLayout("t", [("a", 16)])
        pointer = PointerValue(10, layout)
        moved = pointer + 4
        assert moved.offset == 14
        assert moved.struct is None  # untyped until re-cast
        assert moved.retyped(layout).struct is layout
