"""Tests for the repro.obs observability subsystem."""

import json

import pytest

from repro import obs
from repro.obs import bus
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
)
from repro.obs.trace import Tracer, render_timeline, validate_chrome_trace
from repro.sim import Environment


@pytest.fixture(autouse=True)
def obs_disabled():
    """Every test starts and ends with observability disabled."""
    while bus.disable() is not None:
        pass
    yield
    while bus.disable() is not None:
        pass


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_labels_and_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("sim.events", "events", ("kind",))
        counter.inc(kind="Delay")
        counter.inc(2.0, kind="Delay")
        counter.inc(kind="Timeout")
        assert counter.value(kind="Delay") == 3.0
        assert counter.value(kind="Timeout") == 1.0
        assert counter.value(kind="Never") == 0.0

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_label_mismatch_rejected(self):
        counter = MetricsRegistry().counter("c", labels=("a",))
        with pytest.raises(ValueError):
            counter.inc(1.0)  # missing label
        with pytest.raises(ValueError):
            counter.inc(1.0, a="x", b="y")  # extra label

    def test_get_or_create_consistency(self):
        registry = MetricsRegistry()
        registry.counter("m", labels=("a",))
        with pytest.raises(TypeError):
            registry.gauge("m", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("m", labels=("b",))

    def test_gauge_set_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5.0)
        gauge.add(2.5)
        assert gauge.value() == 7.5

    def test_histogram_buckets(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        stats = hist.stats()
        assert stats["count"] == 4
        assert stats["min"] == 0.5 and stats["max"] == 100.0
        series = hist._series[()]
        # <=1: two (0.5, 1.0); <=10: one (5.0); overflow: one (100.0)
        assert series.bucket_counts == [2, 1, 1]

    def test_snapshot_deterministic_ordering(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("z.last").inc()
        a.counter("a.first", labels=("k",)).inc(k="x")
        a.counter("a.first", labels=("k",)).inc(k="a")
        b.counter("a.first", labels=("k",)).inc(k="a")
        b.counter("a.first", labels=("k",)).inc(k="x")
        b.counter("z.last").inc()
        assert a.to_json() == b.to_json()
        assert list(a.snapshot()["metrics"]) == ["a.first", "z.last"]

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3.0)
        b.counter("c").inc(4.0)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(1.0,)).observe(2.0)
        a.merge(b.snapshot())
        assert a.counter("c").value() == 7.0
        stats = a.histogram("h", buckets=(1.0,)).stats()
        assert stats["count"] == 2
        assert stats["min"] == 0.5 and stats["max"] == 2.0

    def test_merge_gauge_last_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.merge(b.snapshot())
        assert a.gauge("g").value() == 9.0

    def test_merge_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge({"schema": "something/else"})

    def test_prom_render_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat.s", "latency", ("op",),
                                  buckets=(1.0, 10.0))
        hist.observe(0.5, op="r")
        hist.observe(5.0, op="r")
        text = registry.render_prom()
        assert '# TYPE lat_s histogram' in text
        assert 'lat_s_bucket{op="r",le="1"} 1' in text
        assert 'lat_s_bucket{op="r",le="10"} 2' in text
        assert 'lat_s_bucket{op="r",le="+Inf"} 2' in text
        assert 'lat_s_count{op="r"} 2' in text

    def test_default_buckets_cover_decades(self):
        assert DEFAULT_BUCKETS[0] == 1e-9
        assert DEFAULT_BUCKETS[-1] == 10.0


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

class TestTracer:
    def test_chrome_export_valid_and_in_microseconds(self):
        tracer = Tracer(scope="main")
        tracer.complete("work", 1e-6, 3e-6, track="t", tag="x")
        tracer.instant("mark", 2e-6, track="t")
        tracer.sample("depth", 1e-6, 4.0)
        doc = tracer.to_chrome()
        assert validate_chrome_trace(doc) == []
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["ts"] == pytest.approx(1.0)
        assert spans[0]["dur"] == pytest.approx(2.0)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters[0]["args"]["value"] == 4.0

    def test_track_metadata_emitted(self):
        tracer = Tracer(scope="run7")
        tracer.instant("a", 0.0, track="alpha")
        tracer.instant("b", 0.0, track="beta")
        doc = tracer.to_chrome()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"]: e["args"]["name"] for e in meta
                 if e["name"] == "process_name"}
        assert names == {"process_name": "run7"}
        threads = {e["args"]["name"] for e in meta
                   if e["name"] == "thread_name"}
        assert threads == {"alpha", "beta"}

    def test_merge_gets_fresh_pids(self):
        parent = Tracer(scope="main")
        parent.instant("p", 0.0)
        child = Tracer(scope="point000")
        child.instant("c", 0.0)
        parent.merge(child.export())
        doc = parent.to_chrome()
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert len(pids) == 2
        assert validate_chrome_trace(doc) == []

    def test_max_events_drops_counted(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.instant(f"e{i}", 0.0)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert tracer.to_chrome()["otherData"]["dropped_events"] == 3

    def test_validator_flags_bad_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        bad_phase = {"traceEvents": [{"ph": "?", "name": "x"}]}
        assert any("unknown phase" in e
                   for e in validate_chrome_trace(bad_phase))
        missing = {"traceEvents": [{"ph": "X", "name": "x", "ts": 0.0}]}
        assert any("missing" in e for e in validate_chrome_trace(missing))
        negative = {"traceEvents": [
            {"ph": "i", "name": "x", "ts": -1.0, "pid": 1, "tid": 1}
        ]}
        assert any("negative" in e for e in validate_chrome_trace(negative))

    def test_timeline_render(self):
        tracer = Tracer()
        tracer.complete("span-a", 0.0, 5e-6, track="work")
        tracer.instant("tick", 2e-6, track="work")
        tracer.sample("depth", 1e-6, 3.0)
        text = render_timeline(tracer.to_chrome())
        assert text.startswith("timeline")
        assert "span-a" in text and "#" in text
        assert "[depth]" in text and "samples=1" in text


# ---------------------------------------------------------------------------
# Bus
# ---------------------------------------------------------------------------

class TestBus:
    def test_disabled_is_inert(self):
        assert not bus.enabled()
        assert bus.session() is None
        # No-ops, no errors, no state:
        bus.probe("x", pfe="p")
        bus.observe("y", 1.0)
        bus.sample("t", 0.0, 1.0)

    def test_enable_records_disable_restores(self):
        session = bus.enable(scope="test")
        assert bus.enabled() and bus.session() is session
        bus.probe("hits", kind="a")
        bus.probe("hits", 2.0, kind="a")
        finished = bus.disable()
        assert finished is session
        assert not bus.enabled()
        counter = session.registry.get("hits")
        assert counter.value(kind="a") == 3.0

    def test_sessions_stack(self):
        outer = bus.enable(scope="outer")
        inner = bus.enable(scope="inner")
        bus.probe("n")
        assert bus.disable() is inner
        assert bus.session() is outer
        bus.probe("n")
        bus.disable()
        assert inner.registry.get("n").value() == 1.0
        assert outer.registry.get("n").value() == 1.0

    def test_collectors_run_once_at_finalize(self):
        calls = []
        bus.enable()
        bus.register_collector(lambda registry: calls.append(1))
        session = bus.disable()
        session.export()  # finalize is idempotent
        assert calls == [1]

    def test_span_context_manager(self):
        class Clock:
            now = 0.0

        clock = Clock()
        bus.enable()
        with obs.span("phase", clock, track="t", step=1):
            clock.now = 2e-6
        session = bus.disable()
        exported = session.tracer.export()
        kind, track, name, ts, dur, args = exported["events"][0]
        assert (kind, track, name) == ("X", "t", "phase")
        assert dur == pytest.approx(2e-6)
        assert args == {"step": 1}

    def test_traced_decorator(self):
        class Model:
            def __init__(self, env):
                self.env = env

            @obs.traced(track="model")
            def step(self):
                list(range(10))

        env = Environment()
        model = Model(env)
        model.step()  # disabled: plain call
        bus.enable()
        model.step()
        session = bus.disable()
        assert len(session.tracer) == 1

    def test_captured_worker_roundtrip(self):
        def worker(point):
            bus.probe("work.items", float(point))
            return point * 2

        result, exported = obs.CapturedWorker(worker)((3, 5))
        assert result == 10
        assert exported["scope"] == "point003"
        assert not bus.enabled()
        parent = MetricsRegistry()
        parent.merge(exported["metrics"])
        assert parent.counter("work.items").value() == 5.0


# ---------------------------------------------------------------------------
# Simulated-kernel integration
# ---------------------------------------------------------------------------

class TestObservedKernel:
    def run_workload(self):
        env = Environment()

        def proc():
            for _ in range(10):
                yield env.delay(1.0)

        env.process(proc())
        env.run()
        return env

    def test_observed_run_records_kernel_metrics(self):
        bus.enable()
        env = self.run_workload()
        session = bus.disable()
        events = session.registry.get("sim.events")
        assert events is not None
        total = sum(events._series.values())
        assert total == env.scheduled_events
        share = session.registry.get("sim.process_share_s")
        assert sum(share._series.values()) == pytest.approx(env.now)

    def test_observed_run_schedules_identically(self):
        plain = self.run_workload()
        bus.enable()
        observed = self.run_workload()
        bus.disable()
        assert observed.scheduled_events == plain.scheduled_events
        assert observed.now == plain.now


# ---------------------------------------------------------------------------
# Sweep capture: serial == parallel, results unchanged by recording
# ---------------------------------------------------------------------------

class TestSweepCapture:
    def test_fig15_point_identical_with_obs(self):
        from repro.harness.experiments import _fig15_point

        from repro.net.packet import reset_packet_ids

        reset_packet_ids()
        plain = _fig15_point((32, 10))
        bus.enable()
        reset_packet_ids()
        observed = _fig15_point((32, 10))
        bus.disable()
        assert observed == plain

    def test_map_points_serial_parallel_bit_identical(self):
        from repro.harness.experiments import _fig15_point, _map_points

        def capture(parallel):
            session = bus.enable()
            try:
                rows = _map_points(_fig15_point, [(32, 10), (64, 10)],
                                   parallel)
                session.finalize()
                return (rows, session.registry.to_json(),
                        json.dumps(session.tracer.to_chrome(),
                                   sort_keys=True))
            finally:
                bus.disable()

        serial = capture(parallel=1)
        fanned = capture(parallel=2)
        assert serial == fanned


# ---------------------------------------------------------------------------
# CLI: profile mode and the trace validator
# ---------------------------------------------------------------------------

class TestProfileCLI:
    def test_profile_produces_valid_artifacts(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(["profile", "--fast",
                     "--trace", str(trace),
                     "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "dataplane slice" in out
        assert "timeline" in out

        doc = json.loads(trace.read_text())
        assert validate_chrome_trace(doc) == []
        tracks = {e["args"]["name"] for e in doc["traceEvents"]
                  if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert any(t.startswith("ppe.threads_in_use/") for t in tracks)
        assert any(t.startswith("rmw.engines_busy/") for t in tracks)
        assert "trioml/blocks" in tracks

        snapshot = json.loads(metrics.read_text())
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        for family in ("ppe.occupancy", "rmw.utilization",
                       "trioml.blocks_completed", "trioml.mitigations"):
            assert family in snapshot["metrics"]

    def test_obs_flag_without_slice(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        metrics = tmp_path / "m.json"
        assert main(["table1", "--obs", "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "dataplane slice" not in out
        assert json.loads(metrics.read_text())["schema"] == SNAPSHOT_SCHEMA

    def test_validate_cli(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        tracer = Tracer()
        tracer.instant("x", 0.0)
        good = tmp_path / "good.json"
        good.write_text(json.dumps(tracer.to_chrome()))
        assert main(["validate", str(good)]) == 0
        assert "OK" in capsys.readouterr().out

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "?"}]}))
        assert main(["validate", str(bad)]) == 1

    def test_timeline_cli(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        tracer = Tracer()
        tracer.complete("work", 0.0, 1e-6, track="t")
        path = tmp_path / "t.json"
        path.write_text(json.dumps(tracer.to_chrome()))
        assert main(["timeline", str(path)]) == 0
        assert "timeline" in capsys.readouterr().out
