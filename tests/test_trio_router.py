"""Unit tests for the multi-PFE router and fabric."""

import pytest

from repro.net import Host, IPv4Address, MACAddress, Packet, Topology
from repro.sim import Environment
from repro.trio import TrioRouter
from repro.trio.fabric import Fabric


def build(env, num_pfes=2):
    router = TrioRouter(env, num_pfes=num_pfes, ports_per_pfe=2)
    topo = Topology(env)
    hosts = []
    for i in range(num_pfes):
        host = Host(env, f"h{i}", MACAddress(i + 1),
                    IPv4Address(f"10.0.{i}.1"))
        pfe_name = f"pfe{i + 1}"
        topo.connect(host.nic.port, router.pfe(pfe_name).port(0))
        router.add_route(host.ip, pfe_name, f"{pfe_name}.p0")
        hosts.append(host)
    return router, hosts


class TestUnicast:
    def test_same_pfe_forwarding_stays_local(self):
        env = Environment()
        router = TrioRouter(env, num_pfes=1, ports_per_pfe=2)
        topo = Topology(env)
        h0 = Host(env, "h0", MACAddress(1), IPv4Address("10.0.0.1"))
        h1 = Host(env, "h1", MACAddress(2), IPv4Address("10.0.0.2"))
        topo.connect(h0.nic.port, router.pfe("pfe1").port(0))
        topo.connect(h1.nic.port, router.pfe("pfe1").port(1))
        router.add_route(h1.ip, "pfe1", "pfe1.p1")

        def send():
            yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"local")

        def recv():
            packet = yield h1.recv()
            return packet.parse_udp()[3]

        env.process(send())
        p = env.process(recv())
        assert env.run(until=p) == b"local"
        assert router.fabric.packets == 0  # never crossed the fabric

    def test_cross_pfe_forwarding_uses_fabric(self):
        env = Environment()
        router, (h0, h1) = build(env)

        def send():
            yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"cross")

        def recv():
            packet = yield h1.recv()
            return packet.parse_udp()[3]

        env.process(send())
        p = env.process(recv())
        assert env.run(until=p) == b"cross"
        assert router.fabric.packets == 1

    def test_unrouted_counted(self):
        env = Environment()
        router, (h0, __) = build(env)

        def send():
            yield h0.send_udp(MACAddress(0xAB), IPv4Address("172.16.0.9"),
                              1, 2, b"void")

        env.process(send())
        env.run(until=1e-3)
        assert router.unrouted_drops == 1

    def test_add_route_validates_pfe(self):
        env = Environment()
        router, __ = build(env)
        with pytest.raises(ValueError):
            router.add_route(IPv4Address("1.1.1.1"), "pfe99", "pfe99.p0")


class TestMulticast:
    def test_chassis_multicast_spans_pfes(self):
        env = Environment()
        router, (h0, h1) = build(env)
        group = IPv4Address("239.9.9.9")
        router.join_multicast(group, "pfe1", "pfe1.p0")
        router.join_multicast(group, "pfe2", "pfe2.p0")

        def send():
            yield h0.send_udp(MACAddress.broadcast(), group, 1, 2, b"mc")

        received = []

        def recv(host):
            packet = yield host.recv()
            received.append(host.name)

        env.process(send())
        procs = [env.process(recv(h)) for h in (h0, h1)]
        env.run(until=env.all_of(procs))
        assert sorted(received) == ["h0", "h1"]

    def test_empty_group_dropped(self):
        env = Environment()
        router, (h0, __) = build(env)

        def send():
            yield h0.send_udp(MACAddress.broadcast(),
                              IPv4Address("239.0.0.9"), 1, 2, b"mc")

        env.process(send())
        env.run(until=1e-3)
        assert router.unrouted_drops == 1

    def test_join_validates_pfe(self):
        env = Environment()
        router, __ = build(env)
        with pytest.raises(ValueError):
            router.join_multicast(IPv4Address("239.0.0.1"), "pfe9", "p0")


class TestFabric:
    def test_send_to_pfe_reprocesses_at_destination(self):
        env = Environment()
        router, (h0, h1) = build(env)
        packet = Packet.udp(
            src_mac=MACAddress(1), dst_mac=MACAddress(2),
            src_ip=h0.ip, dst_ip=h1.ip, src_port=1, dst_port=2,
            payload=b"via fabric",
        )
        router.send_to_pfe(packet, "pfe1", "pfe2")

        def recv():
            got = yield h1.recv()
            return got.parse_udp()[3]

        p = env.process(recv())
        assert env.run(until=p) == b"via fabric"
        assert router.pfe("pfe2").packets_in == 1

    def test_fabric_latency_applied(self):
        env = Environment()
        fabric = Fabric(env, bandwidth_bps=400e9, latency_s=500e-9)
        arrivals = []
        fabric.attach("dst", lambda p: arrivals.append(env.now))
        fabric.send("src", "dst", Packet(bytes(1000)))
        env.run(until=1e-3)
        expected = 1000 * 8 / 400e9 + 500e-9
        assert arrivals == [pytest.approx(expected)]

    def test_fabric_unknown_destination(self):
        env = Environment()
        fabric = Fabric(env)
        with pytest.raises(KeyError):
            fabric.send("a", "ghost", Packet(bytes(10)))

    def test_fabric_serialises_per_channel(self):
        env = Environment()
        fabric = Fabric(env, bandwidth_bps=1e9, latency_s=0.0)
        arrivals = []
        fabric.attach("dst", lambda p: arrivals.append(env.now))
        for __ in range(2):
            fabric.send("src", "dst", Packet(bytes(125)))  # 1 us each
        env.run(until=1e-3)
        assert arrivals == pytest.approx([1e-6, 2e-6])

    def test_bandwidth_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Fabric(env, bandwidth_bps=0)
