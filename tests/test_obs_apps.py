"""§7 applications observed through the metrics registry.

Satellite coverage for repro.obs: install the telemetry and security
apps with observability enabled, drive traffic, and check that the
exported series agree with the counts the apps keep themselves.
"""

import pytest

from repro.apps import DDoSMitigator, TelemetryMonitor
from repro.net import Host, IPv4Address, MACAddress, Topology
from repro.obs import bus
from repro.sim import Environment
from repro.trio import PFE


@pytest.fixture(autouse=True)
def obs_disabled():
    while bus.disable() is not None:
        pass
    yield
    while bus.disable() is not None:
        pass


def build(app, num_senders=1):
    env = Environment()
    pfe = PFE(env, "pfe1", num_ports=num_senders + 1)
    topo = Topology(env)
    senders = []
    for i in range(num_senders):
        host = Host(env, f"src{i}", MACAddress(i + 1),
                    IPv4Address(f"10.0.0.{i + 1}"))
        topo.connect(host.nic.port, pfe.port(i))
        senders.append(host)
    sink = Host(env, "sink", MACAddress(0xFF), IPv4Address("10.0.99.99"))
    topo.connect(sink.nic.port, pfe.port(num_senders))
    pfe.add_route(sink.ip, pfe.port(num_senders).name)
    pfe.install_app(app)
    return env, pfe, senders, sink


class TestTelemetryObserved:
    def test_exported_series_match_app_counts(self):
        session = bus.enable()
        app = TelemetryMonitor(heavy_hitter_pps=1e5, scan_threads=2,
                               scan_period_s=100e-6)
        env, pfe, (src,), sink = build(app)

        def traffic():
            for __ in range(100):
                yield src.send_udp(sink.mac, sink.ip, 1000, 80, b"x" * 200)

        env.process(traffic())
        env.run(until=2e-3)
        bus.disable()
        session.finalize()

        flows = session.registry.get("apps.telemetry.flows")
        assert flows.value(event="tracked") == app.flows_tracked
        assert flows.value(event="retired") == app.flows_retired
        reports = session.registry.get("apps.telemetry.reports")
        assert reports.value() == len(app.reports)
        # Every heavy-hitter export also probed the live counter:
        exported = session.registry.get("apps.telemetry.reports_exported")
        assert exported.value() == len(app.reports)

    def test_heavy_hitter_instants_on_trace(self):
        session = bus.enable()
        app = TelemetryMonitor(heavy_hitter_pps=1e5, scan_threads=2,
                               scan_period_s=100e-6)
        env, pfe, (src,), sink = build(app)

        def traffic():
            for __ in range(100):
                yield src.send_udp(sink.mac, sink.ip, 1000, 80, b"x" * 200)

        env.process(traffic())
        env.run(until=2e-3)
        bus.disable()
        exported = session.tracer.export()
        marks = [event for event in exported["events"]
                 if event[0] == "i" and event[1] == "apps/telemetry"]
        assert len(marks) == len(app.reports)
        assert all(name == "heavy-hitter" for __, __, name, *__ in marks)

    def test_nothing_exported_when_disabled(self):
        app = TelemetryMonitor(scan_period_s=10.0)
        env, pfe, (src,), sink = build(app)

        def traffic():
            yield src.send_udp(sink.mac, sink.ip, 1000, 80, b"x" * 100)

        env.process(traffic())
        env.run(until=1e-3)
        assert app.flows_tracked == 1  # the app still works, unobserved


class TestSecurityObserved:
    def drive_attack(self):
        session = bus.enable()
        app = DDoSMitigator(
            allowed_pps=1e5, packet_size_hint=100, burst_packets=10,
            strike_threshold=2, review_threads=2, review_period_s=100e-6,
        )
        env, pfe, (attacker,), sink = build(app)

        def flood():
            # ~1e6 pps sustained over many review intervals.
            for __ in range(3000):
                yield attacker.send_udp(sink.mac, sink.ip, 1, 80, b"x" * 72)
                yield env.timeout(1e-6)

        env.process(flood())
        env.run(until=2e-3)
        bus.disable()
        session.finalize()
        return session, app

    def test_exported_series_match_app_counts(self):
        session, app = self.drive_attack()
        assert app.packets_blocked > 0  # the attack actually got blocked
        packets = session.registry.get("apps.security.packets")
        assert packets.value(outcome="blocked") == app.packets_blocked
        assert packets.value(outcome="policed") == app.packets_policed
        gauge = session.registry.get("apps.security.blocked_sources")
        assert gauge.value() == len(app.blocked_sources)

    def test_block_events_counted_and_traced(self):
        session, app = self.drive_attack()
        blocks = [e for e in app.events if e.action == "block"]
        counter = session.registry.get("apps.security.block_events")
        assert counter.value(action="block") == len(blocks)
        exported = session.tracer.export()
        marks = [event for event in exported["events"]
                 if event[0] == "i" and event[1] == "apps/security"]
        assert len(marks) == len(app.events)
