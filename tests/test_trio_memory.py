"""Unit tests for the Shared Memory System, RMW engines, and chipset table."""

import pytest

from repro.sim import Environment
from repro.trio import GENERATIONS, SharedMemorySystem, MemoryError_
from repro.trio.chipset import TrioChipsetConfig
from repro.trio.rmw import RMWOpKind


@pytest.fixture
def mem():
    env = Environment()
    memory = SharedMemorySystem(env, GENERATIONS[5])
    return env, memory


def run_op(env, generator):
    proc = env.process(generator)
    return env.run(until=proc)


class TestChipsetTable:
    def test_six_generations(self):
        assert sorted(GENERATIONS) == [1, 2, 3, 4, 5, 6]

    def test_gen1_and_gen6_paper_values(self):
        assert GENERATIONS[1].pfe_bandwidth_bps == 40e9
        assert GENERATIONS[1].num_ppes == 16
        assert GENERATIONS[6].pfe_bandwidth_bps == 1.6e12
        assert GENERATIONS[6].num_ppes == 160

    def test_gen5_rmw_rate_is_6_gops(self):
        # §6.3: 12 engines, 2 cycles/add, 1 GHz -> 6 G adds/s.
        assert GENERATIONS[5].rmw_add32_rate_ops_s == pytest.approx(6e9)

    def test_thread_latency_consistency(self):
        config = GENERATIONS[5]
        assert config.single_thread_instr_s == pytest.approx(
            config.pipeline_depth_cycles / config.clock_hz
        )
        assert config.total_threads == config.num_ppes * config.threads_per_ppe

    def test_scaled_override(self):
        config = GENERATIONS[5].scaled(num_rmw_engines=24)
        assert config.num_rmw_engines == 24
        assert config.generation == 5  # other fields untouched


class TestRegionsAndAllocator:
    def test_alloc_in_each_region(self, mem):
        __, memory = mem
        sram_addr = memory.alloc(64, region="sram")
        dram_addr = memory.alloc(64, region="dram")
        assert memory.region_of(sram_addr) is memory.sram
        assert memory.region_of(dram_addr) is memory.dram

    def test_unknown_region_rejected(self, mem):
        __, memory = mem
        with pytest.raises(MemoryError_):
            memory.alloc(8, region="flash")

    def test_alignment(self, mem):
        __, memory = mem
        addr = memory.alloc(10, region="sram", align=64)
        assert addr % 64 == 0

    def test_free_then_realloc_reuses_space(self, mem):
        __, memory = mem
        a = memory.alloc(128, region="sram")
        memory.free(a, 128)
        b = memory.alloc(128, region="sram")
        assert b == a

    def test_region_exhaustion(self):
        env = Environment()
        small = GENERATIONS[5].scaled(sram_bytes=1024)
        memory = SharedMemorySystem(env, small)
        memory.alloc(1024, region="sram", align=1)
        with pytest.raises(MemoryError_):
            memory.alloc(8, region="sram")

    def test_out_of_range_access_rejected(self, mem):
        __, memory = mem
        with pytest.raises(MemoryError_):
            memory.read_raw(0xDEAD_BEEF_000, 8)

    def test_raw_roundtrip_across_pages(self, mem):
        __, memory = mem
        addr = memory.alloc(8192, region="dram")
        data = bytes(range(256)) * 32
        memory.write_raw(addr, data)
        assert memory.read_raw(addr, len(data)) == data

    def test_untouched_memory_reads_zero(self, mem):
        __, memory = mem
        addr = memory.alloc(64, region="dram")
        assert memory.read_raw(addr, 64) == bytes(64)


class TestXTXNs:
    def test_read_write_roundtrip_with_latency(self, mem):
        env, memory = mem
        addr = memory.alloc(8, region="sram")

        def proc():
            yield from memory.write(addr, b"ABCDEFGH")
            data = yield from memory.read(addr, 8)
            return data, env.now

        data, now = run_op(env, proc())
        assert data == b"ABCDEFGH"
        # Two SRAM XTXNs: at least 2 x 70 ns.
        assert now >= 2 * GENERATIONS[5].sram_latency_s

    def test_dram_slower_than_sram(self, mem):
        env, memory = mem
        sram = memory.alloc(8, region="sram")
        dram = memory.alloc(8, region="dram")

        def timed_read(addr):
            start = env.now
            yield from memory.read(addr, 8)
            return env.now - start

        t_sram = run_op(env, timed_read(sram))
        # Fresh env time offset fine; reuse same env.
        t_dram = run_op(env, timed_read(dram))
        assert t_dram > t_sram

    def test_dram_cache_hit_is_faster(self, mem):
        env, memory = mem
        addr = memory.alloc(8, region="dram")

        def timed_read():
            start = env.now
            yield from memory.read(addr, 8)
            return env.now - start

        t_miss = run_op(env, timed_read())
        t_hit = run_op(env, timed_read())
        assert t_hit < t_miss
        assert memory.dram_cache_hits >= 1
        assert memory.dram_cache_misses >= 1

    def test_xtxn_size_limits(self, mem):
        env, memory = mem
        addr = memory.alloc(128, region="sram")

        def too_big():
            yield from memory.read(addr, 65)

        with pytest.raises(MemoryError_):
            run_op(env, too_big())

    def test_add32_returns_old_value_and_wraps(self, mem):
        env, memory = mem
        addr = memory.alloc(4, region="sram", align=4)

        def proc():
            old1 = yield from memory.add32(addr, 10)
            old2 = yield from memory.add32(addr, 0xFFFFFFFF)  # -1 mod 2^32
            final = yield from memory.read(addr, 4)
            return old1, old2, int.from_bytes(final, "little")

        old1, old2, final = run_op(env, proc())
        assert (old1, old2) == (0, 10)
        assert final == 9  # 10 - 1

    def test_fetch_and_ops(self, mem):
        env, memory = mem
        addr = memory.alloc(8, region="sram")

        def proc():
            yield from memory.write(addr, (0b1100).to_bytes(8, "little"))
            old = yield from memory.fetch_and_op(
                RMWOpKind.FETCH_AND_OR, addr, 0b0011
            )
            after_or = yield from memory.read(addr, 8)
            yield from memory.fetch_and_op(
                RMWOpKind.FETCH_AND_AND, addr, 0b1010
            )
            after_and = yield from memory.read(addr, 8)
            yield from memory.fetch_and_op(
                RMWOpKind.FETCH_AND_XOR, addr, 0b1111
            )
            after_xor = yield from memory.read(addr, 8)
            yield from memory.fetch_and_op(
                RMWOpKind.FETCH_AND_CLEAR, addr, 0b0100
            )
            after_clear = yield from memory.read(addr, 8)
            swapped_old = yield from memory.fetch_and_op(
                RMWOpKind.FETCH_AND_SWAP, addr, 0xFF
            )
            final = yield from memory.read(addr, 8)
            return (old, after_or, after_and, after_xor, after_clear,
                    swapped_old, final)

        (old, after_or, after_and, after_xor, after_clear, swapped_old,
         final) = run_op(env, proc())
        to_int = lambda b: int.from_bytes(b, "little")
        assert old == 0b1100
        assert to_int(after_or) == 0b1111
        assert to_int(after_and) == 0b1010
        assert to_int(after_xor) == 0b0101
        assert to_int(after_clear) == 0b0001
        assert swapped_old == 0b0001
        assert to_int(final) == 0xFF

    def test_masked_write(self, mem):
        env, memory = mem
        addr = memory.alloc(8, region="sram")

        def proc():
            yield from memory.write(addr, (0xAABBCCDD).to_bytes(8, "little"))
            yield from memory.masked_write(
                addr, operand=0x1122, mask=0xFFFF
            )
            data = yield from memory.read(addr, 8)
            return int.from_bytes(data, "little")

        assert run_op(env, proc()) == 0xAABB1122

    def test_counter_inc_semantics(self, mem):
        env, memory = mem
        addr = memory.alloc(16, region="sram", align=16)

        def proc():
            yield from memory.counter_inc(addr, 1500)
            yield from memory.counter_inc(addr, 64)

        run_op(env, proc())
        raw = memory.read_raw(addr, 16)
        assert int.from_bytes(raw[0:8], "little") == 2       # packets
        assert int.from_bytes(raw[8:16], "little") == 1564   # bytes


class TestRMWEngines:
    def test_same_address_serialises(self, mem):
        env, memory = mem
        addr = memory.alloc(4, region="sram", align=4)

        def adder():
            yield from memory.add32(addr, 1)

        procs = [env.process(adder()) for __ in range(50)]
        env.run(until=env.all_of(procs))
        value = int.from_bytes(memory.read_raw(addr, 4), "little")
        assert value == 50  # no lost updates

    def test_engine_mapping_spreads_addresses(self, mem):
        __, memory = mem
        rmw = memory.rmw
        engines = {rmw.engine_for(64 * i) for i in range(rmw.num_engines)}
        assert len(engines) == rmw.num_engines

    def test_bulk_add32_sums_vectors(self, mem):
        env, memory = mem
        addr = memory.alloc(64, region="dram")

        def proc():
            yield from memory.bulk_add32(addr, [1, 2, 3, -4])
            yield from memory.bulk_add32(addr, [10, 20, 30, -40])

        run_op(env, proc())
        raw = memory.read_raw(addr, 16)
        values = [int.from_bytes(raw[4 * i:4 * i + 4], "little")
                  for i in range(4)]
        assert values[:3] == [11, 22, 33]
        assert values[3] == (-44) & 0xFFFFFFFF

    def test_bulk_add32_rate_matches_paper(self, mem):
        env, memory = mem
        addr = memory.alloc(4096, region="dram")
        n_ops = 6000

        def proc():
            start = env.now
            yield from memory.bulk_add32(addr, [1] * 1024)
            # Exclude the access latency: measure the service component by
            # issuing a large batch and comparing against the rate.
            return env.now - start

        elapsed = run_op(env, proc())
        service = 1024 * 2 / (12 * 1e9)
        assert elapsed == pytest.approx(
            service + memory.config.dram_latency_s, rel=0.01
        )

    def test_bulk_server_backpressure(self, mem):
        env, memory = mem
        addr1 = memory.alloc(4096, region="sram")
        addr2 = memory.alloc(4096, region="sram")

        def bulk(addr):
            yield from memory.bulk_add32(addr, [1] * 1024)

        start = env.now
        procs = [env.process(bulk(addr1)), env.process(bulk(addr2))]
        env.run(until=env.all_of(procs))
        service = 1024 * 2 / (12 * 1e9)
        # Two bulk jobs serialise on the engine complex.
        assert env.now - start >= 2 * service

    def test_stats_accumulate(self, mem):
        env, memory = mem
        addr = memory.alloc(8, region="sram")

        def proc():
            yield from memory.add32(addr, 1)
            yield from memory.bulk_add32(addr, [1, 2])

        run_op(env, proc())
        assert memory.rmw.total_ops >= 3
