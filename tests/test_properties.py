"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.microcode.layout import StructLayout, read_bits, write_bits
from repro.ml.gradients import GradientQuantizer
from repro.net import IPv4Address, MACAddress, Packet
from repro.net.headers import IPv4Header, UDPHeader, ipv4_checksum
from repro.sim import Environment
from repro.trio.chipset import GENERATIONS
from repro.trio.memory import SharedMemorySystem
from repro.trio.reorder import ReorderEngine
from repro.trioml.protocol import TrioMLHeader, decode_trio_ml, encode_trio_ml
from repro.trioml.records import BlockRecord, JobRecord


# ---------------------------------------------------------------------------
# Bitfield layout
# ---------------------------------------------------------------------------


@given(
    data=st.binary(min_size=1, max_size=32),
    bit_offset=st.integers(min_value=0, max_value=200),
    width=st.integers(min_value=1, max_value=64),
    value=st.integers(min_value=0),
)
def test_write_then_read_bits_roundtrip(data, bit_offset, width, value):
    buf = bytearray(data)
    if bit_offset + width > len(buf) * 8:
        return  # out of range; covered by the unit tests
    write_bits(buf, bit_offset, width, value)
    assert read_bits(buf, bit_offset, width) == value & ((1 << width) - 1)


@given(
    data=st.binary(min_size=4, max_size=16),
    bit_offset=st.integers(min_value=0, max_value=64),
    width=st.integers(min_value=1, max_value=32),
)
def test_write_bits_does_not_disturb_neighbours(data, bit_offset, width):
    buf = bytearray(data)
    if bit_offset + width > len(buf) * 8:
        return
    before = [read_bits(buf, i, 1) for i in range(len(buf) * 8)]
    write_bits(buf, bit_offset, width, (1 << width) - 1)
    after = [read_bits(buf, i, 1) for i in range(len(buf) * 8)]
    for i, (a, b) in enumerate(zip(before, after)):
        if bit_offset <= i < bit_offset + width:
            assert b == 1
        else:
            assert a == b


@given(
    widths=st.lists(st.integers(min_value=1, max_value=32), min_size=1,
                    max_size=10),
    data=st.data(),
)
def test_struct_pack_unpack_roundtrip(widths, data):
    total = sum(widths)
    fields = [(f"f{i}", w) for i, w in enumerate(widths)]
    if total % 8:
        fields.append((None, 8 - total % 8))
    layout = StructLayout("t", fields)
    values = {
        f"f{i}": data.draw(st.integers(min_value=0, max_value=(1 << w) - 1))
        for i, w in enumerate(widths)
    }
    assert layout.unpack(layout.pack(**values)) == values


# ---------------------------------------------------------------------------
# Addresses and headers
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**48 - 1))
def test_mac_string_roundtrip(value):
    mac = MACAddress(value)
    assert MACAddress(str(mac)) == mac
    assert MACAddress.from_bytes(mac.to_bytes()) == mac


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_ipv4_string_roundtrip(value):
    ip = IPv4Address(value)
    assert IPv4Address(str(ip)) == ip
    assert IPv4Address.from_bytes(ip.to_bytes()) == ip


@given(
    src=st.integers(min_value=0, max_value=2**32 - 1),
    dst=st.integers(min_value=0, max_value=2**32 - 1),
    ttl=st.integers(min_value=1, max_value=255),
    length=st.integers(min_value=20, max_value=1500),
)
def test_ipv4_header_checksum_always_validates(src, dst, ttl, length):
    header = IPv4Header(src=IPv4Address(src), dst=IPv4Address(dst),
                        ttl=ttl, total_length=length)
    packed = header.pack()
    assert ipv4_checksum(packed) == 0
    parsed, __ = IPv4Header.parse(packed)
    assert parsed.src == header.src and parsed.dst == header.dst


@given(
    payload=st.binary(max_size=512),
    src_port=st.integers(min_value=0, max_value=65535),
    dst_port=st.integers(min_value=0, max_value=65535),
)
def test_udp_frame_roundtrip(payload, src_port, dst_port):
    packet = Packet.udp(
        src_mac=MACAddress(1), dst_mac=MACAddress(2),
        src_ip=IPv4Address("1.2.3.4"), dst_ip=IPv4Address("5.6.7.8"),
        src_port=src_port, dst_port=dst_port, payload=payload,
    )
    __, __, udp, parsed_payload = packet.parse_udp()
    assert parsed_payload == payload
    assert (udp.src_port, udp.dst_port) == (src_port, dst_port)


# ---------------------------------------------------------------------------
# Trio-ML protocol and records
# ---------------------------------------------------------------------------

_int32 = st.integers(min_value=-2**31, max_value=2**31 - 1)


@given(
    job_id=st.integers(min_value=0, max_value=255),
    block_id=st.integers(min_value=0, max_value=2**32 - 1),
    src_id=st.integers(min_value=0, max_value=255),
    gen_id=st.integers(min_value=0, max_value=2**16 - 1),
    gradients=st.lists(_int32, min_size=0, max_size=64),
)
def test_trio_ml_payload_roundtrip(job_id, block_id, src_id, gen_id,
                                   gradients):
    header = TrioMLHeader(job_id=job_id, block_id=block_id, src_id=src_id,
                          grad_cnt=len(gradients), gen_id=gen_id)
    parsed, decoded = decode_trio_ml(encode_trio_ml(header, gradients))
    assert decoded == gradients
    assert (parsed.job_id, parsed.block_id, parsed.src_id, parsed.gen_id) == (
        job_id, block_id, src_id, gen_id
    )


@given(
    src_cnt=st.integers(min_value=0, max_value=255),
    src_mask=st.integers(min_value=0, max_value=2**256 - 1),
    grad_max=st.integers(min_value=0, max_value=4095),
    exp_ms=st.integers(min_value=0, max_value=255),
)
def test_job_record_roundtrip(src_cnt, src_mask, grad_max, exp_ms):
    record = JobRecord(job_id=1, src_cnt=src_cnt, src_mask=src_mask,
                       block_grad_max=grad_max, block_exp_ms=exp_ms)
    parsed = JobRecord.unpack(record.pack(), job_id=1)
    assert parsed.src_mask == src_mask
    assert parsed.src_cnt == src_cnt
    assert parsed.block_grad_max == grad_max


@given(
    rcvd_mask=st.integers(min_value=0, max_value=2**256 - 1),
    grad_cnt=st.integers(min_value=0, max_value=4095),
    start=st.integers(min_value=0, max_value=2**64 - 1),
)
def test_block_record_roundtrip(rcvd_mask, grad_cnt, start):
    record = BlockRecord(job_id=1, block_id=2, gen_id=3, grad_cnt=grad_cnt,
                         block_exp_ms=10, block_start_time=start,
                         job_ctx_paddr=0, aggr_paddr=0, rcvd_mask=rcvd_mask)
    parsed = BlockRecord.unpack(record.pack(), job_id=1, block_id=2, gen_id=3)
    assert parsed.rcvd_mask == rcvd_mask
    assert parsed.grad_cnt == grad_cnt
    assert parsed.block_start_time == start


# ---------------------------------------------------------------------------
# Shared memory
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=1000),
                  st.binary(min_size=1, max_size=64)),
        min_size=1, max_size=20,
    )
)
def test_memory_last_write_wins(writes):
    env = Environment()
    memory = SharedMemorySystem(env, GENERATIONS[5])
    base = memory.alloc(2048, region="sram")
    shadow = bytearray(2048)
    for offset, data in writes:
        memory.write_raw(base + offset, data)
        shadow[offset:offset + len(data)] = data
    assert memory.read_raw(base, 2048) == bytes(shadow)


@settings(max_examples=20, deadline=None)
@given(
    vectors=st.lists(
        st.lists(_int32, min_size=8, max_size=8), min_size=1, max_size=8
    )
)
def test_bulk_add32_commutes_with_python_sum(vectors):
    env = Environment()
    memory = SharedMemorySystem(env, GENERATIONS[5])
    addr = memory.alloc(64, region="sram")

    def proc():
        for vector in vectors:
            yield from memory.bulk_add32(addr, vector)

    env.run(until=env.process(proc()))
    raw = memory.read_raw(addr, 32)
    for i in range(8):
        expected = sum(v[i] for v in vectors) & 0xFFFFFFFF
        assert int.from_bytes(raw[4 * i:4 * i + 4], "little") == expected


# ---------------------------------------------------------------------------
# Reorder engine
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    completion_order=st.permutations(list(range(8))),
)
def test_reorder_releases_in_arrival_order(completion_order):
    released = []
    engine = ReorderEngine(release=released.append)
    seqs = [engine.arrival("flow") for __ in range(8)]
    for index in completion_order:
        engine.complete("flow", seqs[index], [index])
    assert released == list(range(8))


@settings(max_examples=30, deadline=None)
@given(
    flows=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=20),
    data=st.data(),
)
def test_reorder_per_flow_order_with_interleaving(flows, data):
    released = []
    engine = ReorderEngine(release=released.append)
    arrivals = [(flow, engine.arrival(flow), i) for i, flow in enumerate(flows)]
    order = data.draw(st.permutations(arrivals))
    for flow, seq, tag in order:
        engine.complete(flow, seq, [(flow, tag)])
    for flow in "abc":
        tags = [tag for f, tag in released if f == flow]
        assert tags == sorted(tags)


# ---------------------------------------------------------------------------
# Quantiser
# ---------------------------------------------------------------------------


@given(
    gradients=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=1, max_size=64,
    )
)
def test_quantizer_error_bounded(gradients):
    quantizer = GradientQuantizer(scale=1e4, num_workers=6)
    assert quantizer.roundtrip_error(gradients) <= 0.5 / quantizer.scale + 1e-12


@given(
    gradients=st.lists(st.floats(min_value=-1e9, max_value=1e9,
                                 allow_nan=False),
                       min_size=1, max_size=32),
    workers=st.integers(min_value=1, max_value=8),
)
def test_quantizer_sum_never_overflows_int32(gradients, workers):
    quantizer = GradientQuantizer(scale=1e6, num_workers=workers)
    ticks = quantizer.quantize(gradients)
    worst = max(abs(t) for t in ticks)
    assert worst * workers <= 2**31 - 1 + workers  # rounding slack
