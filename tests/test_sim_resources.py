"""Unit tests for Resource, Store, and PriorityStore."""

import pytest

from repro.sim import Environment, PriorityStore, Resource, SimulationError, Store


class TestResource:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity_immediately(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        first = resource.request()
        second = resource.request()
        third = resource.request()
        assert first.triggered and second.triggered
        assert not third.triggered
        assert resource.in_use == 2
        assert resource.queued == 1

    def test_release_grants_fifo(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def user(tag, hold):
            req = resource.request()
            yield req
            order.append((tag, env.now))
            yield env.timeout(hold)
            resource.release()

        env.process(user("a", 3))
        env.process(user("b", 1))
        env.process(user("c", 1))
        env.run()
        assert order == [("a", 0.0), ("b", 3.0), ("c", 4.0)]

    def test_release_without_request_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env).release()

    def test_contention_serialises_work(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def worker():
            req = resource.request()
            yield req
            yield env.timeout(1.0)
            resource.release()

        procs = [env.process(worker()) for __ in range(5)]
        env.run(until=env.all_of(procs))
        assert env.now == 5.0


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def proc():
            yield store.put("item")
            value = yield store.get()
            return value

        p = env.process(proc())
        assert env.run(until=p) == "item"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def getter():
            value = yield store.get()
            return (value, env.now)

        def putter():
            yield env.timeout(2)
            store.put("late")

        p = env.process(getter())
        env.process(putter())
        assert env.run(until=p) == ("late", 2.0)

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)
        got = []

        def getter():
            for __ in range(3):
                got.append((yield store.get()))

        env.run(until=env.process(getter()))
        assert got == [1, 2, 3]

    def test_capacity_blocks_putter(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer():
            for i in range(3):
                yield store.put(i)
                times.append(env.now)

        def consumer():
            while True:
                yield env.timeout(1.0)
                yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run(until=10)
        # First put immediate; each subsequent put waits for a get.
        assert times == [0.0, 1.0, 2.0]

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_try_get_nonblocking(self):
        env = Environment()
        store = Store(env)
        assert store.try_get() is None
        store.put("x")
        assert store.try_get() == "x"
        assert store.try_get() is None

    def test_len_and_items(self):
        env = Environment()
        store = Store(env)
        store.put("a")
        store.put("b")
        assert len(store) == 2
        assert store.items == ["a", "b"]


class TestPriorityStore:
    def test_smallest_first(self):
        env = Environment()
        store = PriorityStore(env)
        for item in (5, 1, 3):
            store.put(item)
        got = []

        def getter():
            for __ in range(3):
                got.append((yield store.get()))

        env.run(until=env.process(getter()))
        assert got == [1, 3, 5]

    def test_waiting_getter_gets_minimum(self):
        env = Environment()
        store = PriorityStore(env)

        def getter():
            value = yield store.get()
            return value

        p = env.process(getter())
        env.run(until=0.1)
        store.put(9)
        assert env.run(until=p) == 9

    def test_try_get(self):
        env = Environment()
        store = PriorityStore(env)
        assert store.try_get() is None
        store.put(2)
        store.put(1)
        assert store.try_get() == 1
