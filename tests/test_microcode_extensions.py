"""Tests for Microcode call/return subroutines and switch statements."""

import pytest

from repro.microcode import (
    CompileError,
    MicrocodeExecutor,
    MicrocodeRuntimeError,
    TrioCompiler,
)
from repro.net import IPv4Address, MACAddress, Packet
from repro.sim import Environment
from repro.trio import PFE
from repro.trio.ppe import PacketContext, ThreadContext


def execute(source, entry=None, terminals=None, extern=()):
    """Compile and run a program over a dummy packet; returns (tctx, pctx,
    the compiled program, and the raised exception if any)."""
    program = TrioCompiler(extern_labels=extern).compile(source, entry=entry)
    executor = MicrocodeExecutor(program, terminals=terminals or {})
    env = Environment()
    pfe = PFE(env, "pfe1", num_ports=1)
    packet = Packet.udp(
        src_mac=MACAddress(1), dst_mac=MACAddress(2),
        src_ip=IPv4Address("1.1.1.1"), dst_ip=IPv4Address("2.2.2.2"),
        src_port=1, dst_port=2, payload=b"x" * 20,
    )
    head, tail = packet.split(pfe.config.head_size_bytes)
    pctx = PacketContext(packet=packet, head=bytearray(head), tail=tail)
    tctx = ThreadContext(env=env, ppe=pfe.ppes[0], config=pfe.config,
                         memory=pfe.memory, hash_table=pfe.hash_table,
                         packet_ctx=pctx)
    proc = env.process(executor.run(tctx, pctx))
    env.run(until=proc)
    return tctx, pctx, program


def reg(tctx, program, name):
    return tctx.registers[program.reg_map[name]]


class TestCallReturn:
    def test_call_runs_subroutine_and_resumes(self):
        tctx, __, program = execute("""
        reg r;
        main:
        begin
            r = 1;
            call double_it;
            r = r + 100;
            exit;
        end
        double_it:
        begin
            r = r * 2;
            return;
        end
        """)
        assert reg(tctx, program, "r") == 102  # (1*2)+100

    def test_nested_calls(self):
        tctx, __, program = execute("""
        reg r;
        main:
        begin
            r = 0;
            call outer;
            exit;
        end
        outer:
        begin
            r = r + 1;
            call inner;
            r = r + 10;
            return;
        end
        inner:
        begin
            r = r + 100;
            return;
        end
        """)
        assert reg(tctx, program, "r") == 111

    def test_fall_off_end_acts_as_return(self):
        tctx, __, program = execute("""
        reg r;
        main:
        begin
            r = 5;
            call sub;
            r = r + 1;
            exit;
        end
        sub:
        begin
            r = r * 3;
        end
        """)
        assert reg(tctx, program, "r") == 16

    def test_subroutine_can_goto_internally(self):
        tctx, __, program = execute("""
        reg r;
        main:
        begin
            call sub_a;
            r = r + 1000;
            exit;
        end
        sub_a:
        begin
            r = 7;
            goto sub_b;
        end
        sub_b:
        begin
            r = r * 2;
            return;
        end
        """)
        assert reg(tctx, program, "r") == 1014

    def test_exit_inside_subroutine_terminates_thread(self):
        tctx, __, program = execute("""
        reg r;
        main:
        begin
            r = 1;
            call sub;
            r = 999;
            exit;
        end
        sub:
        begin
            r = 2;
            exit;
        end
        """)
        assert reg(tctx, program, "r") == 2  # the post-call code never ran

    def test_call_depth_limit_is_eight(self):
        source = """
        reg r;
        main:
        begin
            call level1;
            exit;
        end
        """ + "".join(
            f"""
        level{i}:
        begin
            call level{i + 1};
            return;
        end
        """ for i in range(1, 9)
        ) + """
        level9:
        begin
            r = 1;
            return;
        end
        """
        with pytest.raises(MicrocodeRuntimeError, match="call depth"):
            execute(source, entry="main")

    def test_depth_eight_allowed(self):
        source = """
        reg r;
        main:
        begin
            call level1;
            exit;
        end
        """ + "".join(
            f"""
        level{i}:
        begin
            call level{i + 1};
            return;
        end
        """ for i in range(1, 8)
        ) + """
        level8:
        begin
            r = 42;
            return;
        end
        """
        tctx, __, program = execute(source, entry="main")
        assert reg(tctx, program, "r") == 42

    def test_call_to_undefined_label_rejected_at_compile(self):
        with pytest.raises(CompileError, match="undefined"):
            TrioCompiler().compile("""
            main:
            begin
                call ghost;
                exit;
            end
            """)

    def test_return_outside_subroutine_faults(self):
        with pytest.raises(MicrocodeRuntimeError, match="return outside"):
            execute("""
            main:
            begin
                return;
            end
            """)

    def test_call_into_terminal_label(self):
        dropped = []

        def drop_packet(tctx, pctx):
            dropped.append(True)
            pctx.drop()
            yield from tctx.execute(1)

        __, pctx, __ = execute("""
        main:
        begin
            call drop_packet;
            exit;
        end
        """, extern=["drop_packet"],
            terminals={"drop_packet": drop_packet})
        assert dropped and pctx.action == "drop"


class TestSwitch:
    def test_matching_case_executes(self):
        tctx, __, program = execute("""
        reg sel; reg out;
        main:
        begin
            sel = 2;
            goto pick;
        end
        pick:
        begin
            switch (sel) {
                case 1:
                    out = 10;
                case 2:
                    out = 20;
                case 3:
                    out = 30;
            }
            exit;
        end
        """)
        assert reg(tctx, program, "out") == 20

    def test_multi_value_case(self):
        tctx, __, program = execute("""
        reg sel; reg out;
        main:
        begin
            sel = 7;
            goto pick;
        end
        pick:
        begin
            switch (sel) {
                case 1, 7, 9:
                    out = 111;
                default:
                    out = 222;
            }
            exit;
        end
        """)
        assert reg(tctx, program, "out") == 111

    def test_default_taken_when_nothing_matches(self):
        tctx, __, program = execute("""
        reg out;
        main:
        begin
            switch (5) {
                case 1:
                    out = 1;
                default:
                    out = 99;
            }
            exit;
        end
        """)
        assert reg(tctx, program, "out") == 99

    def test_no_match_no_default_falls_through(self):
        tctx, __, program = execute("""
        reg out;
        main:
        begin
            out = 7;
            goto pick;
        end
        pick:
        begin
            switch (5) {
                case 1:
                    out = 1;
            }
            out = out + 1;
            exit;
        end
        """)
        assert reg(tctx, program, "out") == 8

    def test_goto_inside_case(self):
        tctx, __, program = execute("""
        reg out;
        main:
        begin
            switch (1) {
                case 1:
                    goto elsewhere;
            }
            out = 5;
            exit;
        end
        elsewhere:
        begin
            out = 42;
            exit;
        end
        """)
        assert reg(tctx, program, "out") == 42

    def test_case_values_use_constants(self):
        tctx, __, program = execute("""
        const ETYPE_IP = 0x0800;
        reg out;
        main:
        begin
            switch (0x0800) {
                case ETYPE_IP:
                    out = 1;
                default:
                    out = 0;
            }
            exit;
        end
        """)
        assert reg(tctx, program, "out") == 1

    def test_two_defaults_rejected(self):
        with pytest.raises(CompileError, match="default"):
            TrioCompiler().compile("""
            main:
            begin
                switch (1) {
                    default:
                        exit;
                    default:
                        exit;
                }
                exit;
            end
            """)

    def test_switch_body_counts_toward_budget(self):
        with pytest.raises(CompileError, match="does not fit"):
            TrioCompiler().compile("""
            reg a; reg b; reg c;
            main:
            begin
                switch (1) {
                    case 1:
                        a = 1;
                        b = 2;
                        c = 3;
                }
                exit;
            end
            """)
