"""Unit tests for the Ethernet/IPv4/UDP codecs."""

import pytest

from repro.net import (
    ETHERTYPE_IPV4,
    EthernetHeader,
    HeaderError,
    IPv4Address,
    IPv4Header,
    MACAddress,
    UDPHeader,
    ipv4_checksum,
)


class TestChecksum:
    def test_known_vector(self):
        # Classic RFC 1071 example header.
        header = bytes.fromhex(
            "450000730000400040110000c0a80001c0a800c7"
        )
        checksum = ipv4_checksum(header)
        assert checksum == 0xB861

    def test_checksum_of_valid_header_is_zero(self):
        header = IPv4Header(
            src=IPv4Address("1.2.3.4"), dst=IPv4Address("5.6.7.8")
        ).pack()
        assert ipv4_checksum(header) == 0

    def test_odd_length_padded(self):
        assert ipv4_checksum(b"\xff") == ipv4_checksum(b"\xff\x00")


class TestEthernetHeader:
    def test_roundtrip(self):
        header = EthernetHeader(
            dst=MACAddress(2), src=MACAddress(1), ethertype=0x86DD
        )
        parsed, rest = EthernetHeader.parse(header.pack() + b"tail")
        assert parsed == header
        assert rest == b"tail"

    def test_length(self):
        assert len(EthernetHeader(MACAddress(1), MACAddress(2)).pack()) == 14

    def test_truncated_rejected(self):
        with pytest.raises(HeaderError):
            EthernetHeader.parse(b"\x00" * 13)

    def test_bad_ethertype_rejected(self):
        header = EthernetHeader(MACAddress(1), MACAddress(2),
                                ethertype=0x1_0000)
        with pytest.raises(HeaderError):
            header.pack()


class TestIPv4Header:
    def make(self, **kwargs):
        defaults = dict(src=IPv4Address("10.0.0.1"),
                        dst=IPv4Address("10.0.0.2"),
                        total_length=100)
        defaults.update(kwargs)
        return IPv4Header(**defaults)

    def test_roundtrip(self):
        header = self.make(ttl=17, identification=0xBEEF, protocol=6)
        parsed, rest = IPv4Header.parse(header.pack() + b"xyz")
        assert parsed.src == header.src
        assert parsed.dst == header.dst
        assert parsed.ttl == 17
        assert parsed.identification == 0xBEEF
        assert parsed.protocol == 6
        assert rest == b"xyz"

    def test_checksum_verified_on_parse(self):
        raw = bytearray(self.make().pack())
        raw[8] ^= 0xFF  # corrupt the TTL
        with pytest.raises(HeaderError, match="checksum"):
            IPv4Header.parse(bytes(raw))

    def test_checksum_check_can_be_skipped(self):
        raw = bytearray(self.make().pack())
        raw[8] ^= 0xFF
        header, __ = IPv4Header.parse(bytes(raw), verify_checksum=False)
        assert header.ttl == 64 ^ 0xFF

    def test_non_ipv4_version_rejected(self):
        raw = bytearray(self.make().pack())
        raw[0] = 0x65  # version 6
        with pytest.raises(HeaderError, match="version"):
            IPv4Header.parse(bytes(raw))

    def test_truncated_rejected(self):
        with pytest.raises(HeaderError):
            IPv4Header.parse(b"\x45" + b"\x00" * 10)

    def test_options_cannot_be_packed(self):
        header = self.make(ihl=6)
        with pytest.raises(HeaderError):
            header.pack()

    def test_total_length_bounds(self):
        with pytest.raises(HeaderError):
            self.make(total_length=19).pack()
        with pytest.raises(HeaderError):
            self.make(total_length=0x10000).pack()

    def test_header_length_property(self):
        assert self.make().header_length == 20
        assert self.make(ihl=6).header_length == 24


class TestUDPHeader:
    def test_roundtrip(self):
        header = UDPHeader(src_port=1234, dst_port=12000, length=108)
        parsed, rest = UDPHeader.parse(header.pack() + b"payload")
        assert parsed == header
        assert rest == b"payload"

    def test_truncated_rejected(self):
        with pytest.raises(HeaderError):
            UDPHeader.parse(b"\x00" * 7)

    def test_port_bounds(self):
        with pytest.raises(HeaderError):
            UDPHeader(src_port=-1, dst_port=1).pack()
        with pytest.raises(HeaderError):
            UDPHeader(src_port=1, dst_port=0x10000).pack()

    def test_bad_length_field_rejected(self):
        raw = UDPHeader(src_port=1, dst_port=2, length=8).pack()
        corrupted = raw[:4] + (3).to_bytes(2, "big") + raw[6:]
        with pytest.raises(HeaderError):
            UDPHeader.parse(corrupted)


class TestFlowKeyHelpers:
    """The shared flow-identity codec used by the apps and the NFs."""

    def make_udp(self, src="10.0.0.1", dst="10.0.0.2",
                 src_port=1000, dst_port=2000):
        from repro.net import Packet

        return Packet.udp(
            src_mac=MACAddress(0x02_00_00_00_00_01),
            dst_mac=MACAddress(0x02_00_00_00_00_02),
            src_ip=IPv4Address(src),
            dst_ip=IPv4Address(dst),
            src_port=src_port,
            dst_port=dst_port,
            payload=b"x" * 16,
        )

    def test_flow_key_field_order(self):
        from repro.net.headers import flow_key

        packet = self.make_udp()
        assert flow_key(packet) == (
            int(IPv4Address("10.0.0.1")), int(IPv4Address("10.0.0.2")),
            1000, 2000,
        )

    def test_source_key_is_src_ip(self):
        from repro.net.headers import flow_key, source_key

        packet = self.make_udp(src="192.168.7.9")
        assert source_key(packet) == int(IPv4Address("192.168.7.9"))
        assert source_key(packet) == flow_key(packet)[0]

    def test_non_udp_rejected(self):
        from repro.net import Packet
        from repro.net.headers import flow_key, source_key

        arp = Packet(EthernetHeader(
            src=MACAddress(1), dst=MACAddress(2), ethertype=0x0806
        ).pack() + bytes(46))
        with pytest.raises(HeaderError):
            flow_key(arp)
        with pytest.raises(HeaderError):
            source_key(arp)
