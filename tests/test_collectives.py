"""Tests for the pluggable collective-backend layer.

Covers the registry (lookup, errors, case-insensitivity), the built-in
backends' straggler semantics, the new ``ring-straggler`` extension
backend, the packet-level calibration bridge, the registry-wide harness
sweep — and golden regression tests pinning the Figure 12/13 and
ablation outputs *bit-identical* to their pre-refactor values under the
default seeds (the refactor's acceptance bar).
"""

import pytest

from repro.collectives import (
    CollectiveBackend,
    IdealRingBackend,
    RingStragglerBackend,
    SwitchMLBackend,
    TrioMLBackend,
    UnknownBackendError,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.collectives import calibrate as cal
from repro.ml import (
    MODEL_ZOO,
    DataParallelTrainer,
    TrainingConfig,
    ring_allreduce_time,
)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert len(names) >= 4
        for expected in ("ideal", "ring-straggler", "switchml", "trioml"):
            assert expected in names

    def test_lookup_case_insensitive(self):
        assert get_backend("TrioML") is get_backend("trioml")
        assert get_backend("  IDEAL  ").name == "ideal"

    def test_unknown_name_lists_available(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("magic")
        message = str(excinfo.value)
        for name in available_backends():
            assert name in message

    def test_unknown_backend_error_is_value_error(self):
        # Pre-refactor callers caught ValueError from TrainingConfig.
        assert issubclass(UnknownBackendError, ValueError)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(TrioMLBackend())

    def test_replace_and_unregister(self):
        original = get_backend("trioml")
        replacement = TrioMLBackend(goodput_bps=30e9)
        try:
            register_backend(replacement, replace=True)
            assert get_backend("trioml") is replacement
        finally:
            register_backend(original, replace=True)
        assert get_backend("trioml") is original

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownBackendError):
            unregister_backend("magic")

    def test_empty_name_rejected(self):
        class Nameless(TrioMLBackend):
            name = "   "

        with pytest.raises(ValueError, match="non-empty name"):
            register_backend(Nameless())

    def test_custom_backend_plugs_into_training(self):
        """The extensibility contract: register -> train, no other code."""

        class FreeLunchBackend(CollectiveBackend):
            name = "free-lunch"
            display_name = "Free lunch"
            injects_stragglers = False

            def allreduce_time_s(self, model_bytes, num_workers):
                return 0.0

            def iteration_duration(self, compute_s, comm_s, delays,
                                   mitigation_bound_s=0.0):
                return compute_s + comm_s, False

        register_backend(FreeLunchBackend())
        try:
            config = TrainingConfig(model=MODEL_ZOO["resnet50"],
                                    system="free-lunch")
            average = DataParallelTrainer(config).average_iteration_s(10)
            assert average == pytest.approx(
                MODEL_ZOO["resnet50"].compute_time_s
            )
        finally:
            unregister_backend("free-lunch")


class TestBackendSemantics:
    MODEL = MODEL_ZOO["resnet50"]

    def test_metadata_complete(self):
        for name in available_backends():
            backend = get_backend(name)
            assert backend.name == name
            assert backend.display_name
            assert backend.description

    def test_ideal_never_injects(self):
        assert get_backend("ideal").injects_stragglers is False
        duration, mitigated = get_backend("ideal").iteration_duration(
            0.1, 0.02, {0: 1.0}, mitigation_bound_s=0.015
        )
        assert duration == pytest.approx(0.12)
        assert not mitigated

    def test_switchml_absorbs_full_delay(self):
        duration, mitigated = get_backend("switchml").iteration_duration(
            0.1, 0.02, {2: 0.5, 4: 0.3}, mitigation_bound_s=0.015
        )
        assert duration == pytest.approx(0.1 + 0.5 + 0.02)
        assert not mitigated

    def test_trioml_caps_delay_at_bound(self):
        duration, mitigated = get_backend("trioml").iteration_duration(
            0.1, 0.02, {2: 0.5}, mitigation_bound_s=0.015
        )
        assert duration == pytest.approx(0.1 + 0.02 + 0.015)
        assert mitigated

    def test_trioml_short_delay_below_bound(self):
        duration, mitigated = get_backend("trioml").iteration_duration(
            0.1, 0.02, {2: 0.004}, mitigation_bound_s=0.015
        )
        assert duration == pytest.approx(0.124)
        assert mitigated

    def test_typical_iteration_is_compute_plus_allreduce(self):
        for name in available_backends():
            backend = get_backend(name)
            assert backend.typical_iteration_s(self.MODEL, 6) == (
                pytest.approx(
                    self.MODEL.compute_time_s
                    + backend.allreduce_time_s(self.MODEL.size_bytes, 6)
                )
            )


class TestRingStragglerBackend:
    MODEL = MODEL_ZOO["resnet50"]

    def test_comm_time_matches_ring(self):
        backend = get_backend("ring-straggler")
        assert backend.allreduce_time_s(self.MODEL.size_bytes, 6) == (
            pytest.approx(ring_allreduce_time(self.MODEL.size_bytes, 6))
        )

    def test_absorbs_full_delay(self):
        duration, mitigated = get_backend(
            "ring-straggler"
        ).iteration_duration(0.1, 0.02, {1: 0.4}, mitigation_bound_s=0.015)
        assert duration == pytest.approx(0.1 + 0.4 + 0.02)
        assert not mitigated

    def test_trainer_run_absorbs_straggles(self):
        config = TrainingConfig(model=self.MODEL, system="ring-straggler",
                                straggle_probability=1.0, seed=5)
        trainer = DataParallelTrainer(config)
        for record in trainer.run(20):
            expected = (config.model.compute_time_s + record.max_delay_s
                        + config.allreduce_time_s)
            assert record.duration_s == pytest.approx(expected)

    def test_sits_between_ideal_and_switchml(self):
        """Same straggler semantics as SwitchML at ring wire cost: the
        new series isolates semantics from communication time."""
        averages = {}
        for system in ("ideal", "ring-straggler", "switchml", "trioml"):
            config = TrainingConfig(model=self.MODEL, system=system,
                                    straggle_probability=0.16, seed=0)
            averages[system] = (
                DataParallelTrainer(config).average_iteration_s(100)
            )
        assert averages["ideal"] < averages["ring-straggler"]
        assert averages["ring-straggler"] < averages["switchml"]
        assert averages["trioml"] < averages["ring-straggler"]


class TestTrainingConfigRegistryIntegration:
    def test_case_insensitive_and_normalised(self):
        config = TrainingConfig(model=MODEL_ZOO["resnet50"],
                                system="TrioML")
        assert config.system == "trioml"
        assert config.backend is get_backend("trioml")

    def test_unknown_system_message_is_dynamic(self):
        with pytest.raises(ValueError) as excinfo:
            TrainingConfig(model=MODEL_ZOO["resnet50"], system="magic")
        assert "ring-straggler" in str(excinfo.value)

    def test_trainer_has_no_throwaway_config(self):
        """The straggle reference comes straight from the ideal backend."""
        config = TrainingConfig(model=MODEL_ZOO["resnet50"],
                                system="switchml", num_workers=8)
        trainer = DataParallelTrainer(config)
        assert trainer._typical_s == pytest.approx(
            get_backend("ideal").typical_iteration_s(config.model, 8)
        )
        assert trainer.backend is get_backend("switchml")


# ---------------------------------------------------------------------------
# Golden regression: outputs bit-identical to the pre-refactor tree
# ---------------------------------------------------------------------------

#: (probability, ideal_ms, trioml_ms, switchml_ms) per model, captured
#: from the pre-refactor if/else trainer at the default seeds.  Compared
#: with ``==`` on purpose: the refactor must be float-for-float exact.
FIG13_GOLDEN = {
    "resnet50": [
        (0.0, 97.22377007407404, 100.2685240888889, 114.88334336000014),
        (0.02, 97.22377007407404, 101.16852408888889, 121.10318109305103),
        (0.04, 97.22377007407404, 102.0685240888889, 128.28898296312778),
        (0.06, 97.22377007407404, 102.36852408888889, 132.23258328911726),
        (0.08, 97.22377007407404, 103.26852408888888, 137.17511789901425),
        (0.1, 97.22377007407404, 104.46852408888891, 147.8007114665772),
        (0.12, 97.22377007407404, 105.36852408888892, 154.59191722309475),
        (0.14, 97.22377007407404, 105.36852408888892, 157.95884052600064),
        (0.16, 97.22377007407404, 106.41852408888887, 165.4357118558622),
    ],
    "vgg11": [
        (0.0, 568.7597084444458, 584.5116501333346, 660.1209702400008),
        (0.02, 568.7597084444458, 585.4116501333343, 696.5070627863659),
        (0.04, 568.7597084444458, 586.3116501333342, 738.5440520272738),
        (0.06, 568.7597084444458, 586.611650133334, 761.6141404420956),
        (0.08, 568.7597084444458, 587.5116501333341, 790.5280011323345),
        (0.1, 568.7597084444458, 588.7116501333338, 852.6877949248586),
        (0.12, 568.7597084444458, 589.6116501333336, 892.4163942490804),
        (0.14, 568.7597084444458, 589.6116501333338, 912.112918202601),
        (0.16, 568.7597084444458, 590.6616501333333, 955.8526657397385),
    ],
    "densenet161": [
        (0.0, 241.93256059259238, 245.3190727111112, 261.57433087999954),
        (0.02, 241.93256059259238, 246.21907271111124, 277.0518346641147),
        (0.04, 241.93256059259238, 247.11907271111127, 294.9330528581238),
        (0.06, 241.93256059259238, 247.41907271111128, 304.7463456783212),
        (0.08, 241.93256059259238, 248.31907271111132, 317.0453961376774),
        (0.1, 241.93256059259238, 249.5190727111113, 343.48622493559503),
        (0.12, 241.93256059259238, 250.41907271111137, 360.38552638146217),
        (0.14, 241.93256059259238, 250.41907271111137, 368.7638105744152),
        (0.16, 241.93256059259238, 251.4690727111114, 387.36932879980964),
    ],
}

#: (trioml_minutes, switchml_minutes, speedup) per model, pre-refactor.
FIG12_GOLDEN = {
    "resnet50": (266.0463102222222, 413.5892796396555, 1.5545762664184073),
    "vgg11": (511.90676344888885, 828.4056436411067, 1.6182744647870209),
    "densenet161": (368.8213066429634, 568.1416822397208, 1.540425327948065),
}

#: Ablation goldens at the --fast sizings (label, value, unit).
ABLATION_RMW_GOLDEN = [
    ("rmw-engine offload", 0.652, "us"),
    ("thread-ownership lock", 18.43199999999997, "us"),
]
ABLATION_TAIL_GOLDEN = [
    ("16-byte tail chunks", 102.12783333333344, "us"),
    ("32-byte tail chunks", 64.92783333333333, "us"),
    ("64-byte tail chunks", 46.30783333333332, "us"),
]


class TestGoldenRegression:
    def test_fig13_bit_identical(self):
        from repro.harness import experiments as exp

        results = exp.fig13_iteration_time()
        assert set(results) == set(FIG13_GOLDEN)
        for key, golden in FIG13_GOLDEN.items():
            got = [
                (row.probability, row.ideal_ms, row.trioml_ms,
                 row.switchml_ms)
                for row in results[key]
            ]
            assert got == golden

    def test_fig12_bit_identical(self):
        from repro.harness import experiments as exp

        results = exp.fig12_time_to_accuracy()
        assert set(results) == set(FIG12_GOLDEN)
        for key, (trioml_min, switchml_min, speedup) in (
                FIG12_GOLDEN.items()):
            result = results[key]
            assert result.trioml_minutes == trioml_min
            assert result.switchml_minutes == switchml_min
            assert result.speedup == speedup

    def test_ablation_rmw_bit_identical(self):
        from repro.harness import experiments as exp

        rows = exp.ablation_rmw_offload(num_threads=16,
                                        updates_per_thread=8)
        assert [(r.label, r.value, r.unit) for r in rows] == (
            ABLATION_RMW_GOLDEN
        )

    def test_ablation_tail_chunk_bit_identical(self):
        from repro.harness import experiments as exp

        rows = exp.ablation_tail_chunk(blocks=8)
        assert [(r.label, r.value, r.unit) for r in rows] == (
            ABLATION_TAIL_GOLDEN
        )


# ---------------------------------------------------------------------------
# Calibration bridge
# ---------------------------------------------------------------------------

#: One packet-level calibration per test session (the runs are
#: deterministic, so sharing is safe and saves ~2 s per test).
@pytest.fixture(scope="module")
def calibrations():
    return cal.calibrate()


class TestCalibrationBridge:
    def test_covers_both_in_network_systems(self, calibrations):
        assert set(calibrations) == {"trioml", "switchml"}

    def test_derived_within_band(self, calibrations):
        """The closing of the loop: the hand constants of
        repro.ml.allreduce must agree with the packet-derived goodputs
        within the declared calibration band."""
        for record in calibrations.values():
            assert record.within_band, (
                f"{record.system}: hand {record.default_goodput_bps / 1e9:.1f}"
                f" Gbps vs derived {record.derived_goodput_bps / 1e9:.1f}"
                f" Gbps (ratio {record.ratio:.2f}x) outside "
                f"[{1 / record.band:.2f}x, {record.band:.2f}x]"
            )

    def test_trioml_is_fabric_limited(self, calibrations):
        record = calibrations["trioml"]
        assert record.derived_goodput_bps == record.wire_goodput_bps
        # Steady-state fabric goodput is a sizable fraction of line rate.
        assert 10e9 < record.wire_goodput_bps < 100e9

    def test_switchml_is_client_limited(self, calibrations):
        record = calibrations["switchml"]
        assert record.derived_goodput_bps < record.wire_goodput_bps

    def test_client_bound_goodput_formula(self):
        # 8192 bits at 80 Gbps wire + 250 ns client overhead.
        derived = cal.client_bound_goodput(80e9, 8192, 250e-9)
        assert derived == pytest.approx(8192 / (8192 / 80e9 + 250e-9))
        # No overhead: wire goodput passes through unchanged.
        assert cal.client_bound_goodput(80e9, 8192, 0.0) == (
            pytest.approx(80e9)
        )

    def test_calibrated_backend_uses_derived_goodput(self, calibrations):
        backend = cal.calibrated_backend("trioml", calibrations)
        assert isinstance(backend, TrioMLBackend)
        assert backend.goodput_bps == (
            calibrations["trioml"].derived_goodput_bps
        )
        model = MODEL_ZOO["resnet50"]
        default_time = get_backend("trioml").allreduce_time_s(
            model.size_bytes, 6
        )
        calibrated_time = backend.allreduce_time_s(model.size_bytes, 6)
        band = calibrations["trioml"].band
        assert default_time / band <= calibrated_time <= (
            default_time * band
        )

    def test_calibrated_backend_unknown_name(self, calibrations):
        with pytest.raises(ValueError, match="no calibrated variant"):
            cal.calibrated_backend("ideal", calibrations)

    def test_render_reports_every_system(self, calibrations):
        rendered = cal.render_calibration(calibrations)
        assert "trioml" in rendered and "switchml" in rendered
        assert "OUT OF BAND" not in rendered

    def test_cli_exits_clean(self, capsys):
        assert cal.main([]) == 0
        out = capsys.readouterr().out
        assert "within the calibration band" in out

    def test_determinism(self, calibrations):
        """The calibration runs are discrete-event simulations: a second
        run derives exactly the same constants."""
        again = cal.calibrate()
        for name, record in calibrations.items():
            assert again[name].derived_goodput_bps == (
                record.derived_goodput_bps
            )


# ---------------------------------------------------------------------------
# Harness integration
# ---------------------------------------------------------------------------


class TestBackendSweepExperiment:
    def test_sweeps_every_registered_backend(self):
        from repro.harness import experiments as exp

        rows = exp.backend_sweep(probabilities=(0.0, 0.16), iterations=20)
        assert [row.probability for row in rows] == [0.0, 0.16]
        for row in rows:
            assert set(row.iteration_ms) == set(available_backends())

    def test_existing_series_match_fig13(self):
        """For the three paper systems the generalised sweep reproduces
        Figure 13's numbers exactly."""
        from repro.harness import experiments as exp

        rows = exp.backend_sweep(model="resnet50")
        for row, golden in zip(rows, FIG13_GOLDEN["resnet50"]):
            probability, ideal_ms, trioml_ms, switchml_ms = golden
            assert row.probability == probability
            assert row.iteration_ms["ideal"] == ideal_ms
            assert row.iteration_ms["trioml"] == trioml_ms
            assert row.iteration_ms["switchml"] == switchml_ms

    def test_parallel_matches_serial(self):
        from repro.harness import experiments as exp

        serial = exp.backend_sweep(probabilities=(0.0, 0.08, 0.16))
        fanned = exp.backend_sweep(probabilities=(0.0, 0.08, 0.16),
                                   parallel=2)
        assert serial == fanned

    def test_render_includes_new_backend(self):
        from repro.harness import experiments as exp, figures

        rows = exp.backend_sweep(probabilities=(0.0,), iterations=5)
        rendered = figures.render_backend_sweep(rows)
        assert get_backend("ring-straggler").display_name in rendered

    def test_cli_lists_backends_experiment(self, capsys):
        from repro.harness.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "backends" in out
        assert "calibrate" in out
