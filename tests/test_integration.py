"""System-level integration tests across packages.

These exercise the claims the paper makes about the *architecture* as a
whole, using multiple subsystems together.
"""

import pytest

from repro.apps import TelemetryMonitor
from repro.harness import build_single_pfe_testbed
from repro.ml import GradientQuantizer
from repro.net import Host, IPv4Address, MACAddress, Topology
from repro.sim import Environment
from repro.trio import PFE, TrioApplication
from repro.trio.chipset import GENERATIONS
from repro.trioml import TRIO_ML_UDP_PORT, TrioMLJobConfig

import numpy as np


class TestFungibleCycles:
    """§2.2: 'processing cycles are fungible between applications,
    enabling graceful handling of the packet processing requirements of
    different applications' — rich and simple traffic coexist, with
    per-flow ordering but no cross-flow head-of-line blocking."""

    def test_simple_traffic_not_blocked_behind_rich_processing(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=3)
        topo = Topology(env)
        rich_src = Host(env, "rich", MACAddress(1), IPv4Address("10.0.0.1"))
        fast_src = Host(env, "fast", MACAddress(2), IPv4Address("10.0.0.2"))
        sink = Host(env, "sink", MACAddress(3), IPv4Address("10.0.0.3"))
        for i, host in enumerate((rich_src, fast_src, sink)):
            topo.connect(host.nic.port, pfe.port(i))
        pfe.add_route(sink.ip, "pfe1.p2")

        class MixedApp(TrioApplication):
            def handle_packet(self, tctx, pctx):
                __, ip, udp, __ = pctx.packet.parse_udp()
                if udp.dst_port == 9999:          # rich processing
                    yield from tctx.execute(100_000)
                else:                             # simple forwarding
                    yield from tctx.execute(10)
                pctx.forward()

        pfe.install_app(MixedApp())
        arrivals = {"rich": [], "fast": []}

        def traffic(src, port, n):
            for __ in range(n):
                yield src.send_udp(sink.mac, sink.ip, 1, port, b"x" * 100)

        def rx():
            while True:
                packet = yield sink.recv()
                __, __, udp, __ = packet.parse_udp()
                kind = "rich" if udp.dst_port == 9999 else "fast"
                arrivals[kind].append(env.now)

        env.process(traffic(rich_src, 9999, 5))
        env.process(traffic(fast_src, 80, 50))
        env.process(rx())
        env.run(until=50e-3)
        assert len(arrivals["fast"]) == 50
        assert len(arrivals["rich"]) == 5
        # All the simple packets finished before the rich flow did:
        # different flows never head-of-line block each other.
        assert max(arrivals["fast"]) < max(arrivals["rich"])

    def test_rich_flow_itself_stays_ordered(self):
        env = Environment()
        config = GENERATIONS[5].scaled(num_ppes=4, threads_per_ppe=4)
        pfe = PFE(env, "pfe1", config=config, num_ports=2)
        topo = Topology(env)
        src = Host(env, "src", MACAddress(1), IPv4Address("10.0.0.1"))
        sink = Host(env, "sink", MACAddress(2), IPv4Address("10.0.0.2"))
        topo.connect(src.nic.port, pfe.port(0))
        topo.connect(sink.nic.port, pfe.port(1))
        pfe.add_route(sink.ip, "pfe1.p1")

        class JitteryApp(TrioApplication):
            def __init__(self):
                self.n = 0

            def handle_packet(self, tctx, pctx):
                self.n += 1
                # Alternate slow/fast so later packets finish first.
                yield from tctx.execute(5000 if self.n % 2 else 10)
                pctx.forward()

        pfe.install_app(JitteryApp())
        order = []

        def traffic():
            for i in range(8):
                yield src.send_udp(sink.mac, sink.ip, 7, 7, bytes([i]) * 4)

        def rx():
            for __ in range(8):
                packet = yield sink.recv()
                order.append(packet.parse_udp()[3][0])

        env.process(traffic())
        p = env.process(rx())
        env.run(until=p)
        assert order == list(range(8))  # Reorder Engine held the line


class TestAggregationWithBackgroundTraffic:
    def test_aggregation_and_forwarding_coexist(self):
        """Trio-ML aggregates while ordinary traffic flows through the
        same PFE (shared clusters, §4's motivation)."""
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=128, window=4)
        testbed = build_single_pfe_testbed(env, config, num_workers=4)
        pfe = testbed.pfe
        w0, w1 = testbed.workers[0], testbed.workers[1]
        pfe.add_route(w1.ip, pfe.port(1).name)
        egress_port = pfe.port(1)
        baseline_tx = egress_port.tx_packets

        def background():
            for __ in range(30):
                yield w0.send_udp(w1.mac, w1.ip, 5000, 8080, b"bg" * 30)
                yield env.timeout(2e-6)

        env.process(background())
        grads = [[w + 1] * 512 for w in range(4)]
        procs = testbed.run_allreduce(grads)
        env.run(until=env.all_of(procs))
        env.run(until=env.now + 1e-3)
        # All 30 background packets were forwarded out of w1's port (on
        # top of the multicast Result packets) while aggregation ran.
        background_forwarded = egress_port.tx_packets - baseline_tx
        results_expected = 4  # 4 blocks multicast to this port
        assert background_forwarded == 30 + results_expected
        assert pfe.packets_forwarded >= 30
        flat = [v for b in procs[0].value for v in b.values][:512]
        assert flat == [10] * 512

    def test_telemetry_on_second_pfe_observes_aggregation_flows(self):
        """Two applications on two PFEs of one chassis: aggregation on
        PFE1, telemetry on PFE2 watching forwarded traffic."""
        env = Environment()
        from repro.trio import TrioRouter
        router = TrioRouter(env, num_pfes=2, ports_per_pfe=2)
        monitor = router.pfe("pfe2").install_app(
            TelemetryMonitor(scan_period_s=10.0)
        )
        topo = Topology(env)
        src = Host(env, "src", MACAddress(1), IPv4Address("10.1.0.1"))
        dst = Host(env, "dst", MACAddress(2), IPv4Address("10.1.0.2"))
        topo.connect(src.nic.port, router.pfe("pfe2").port(0))
        topo.connect(dst.nic.port, router.pfe("pfe2").port(1))
        router.add_route(dst.ip, "pfe2", "pfe2.p1")

        def traffic():
            for __ in range(10):
                yield src.send_udp(dst.mac, dst.ip, 1111, 2222, b"x" * 64)

        env.process(traffic())
        env.run(until=1e-3)
        assert monitor.flows_tracked == 1
        record = router.pfe("pfe2").hash_table.get_nowait(
            (int(src.ip), int(dst.ip), 1111, 2222)
        )
        assert record.value.counter.read()[0] == 10


class TestFloatTrainingPath:
    def test_quantized_allreduce_recovers_float_mean(self):
        """End-to-end numeric path: float gradients -> ATP quantisation ->
        packet-level aggregation -> dequantised mean."""
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=256, window=8)
        testbed = build_single_pfe_testbed(env, config, num_workers=4)
        rng = np.random.default_rng(3)
        floats = [rng.normal(scale=0.05, size=1000) for __ in range(4)]
        quantizer = GradientQuantizer(scale=1e6, num_workers=4)
        vectors = [quantizer.quantize(g) for g in floats]
        procs = testbed.run_allreduce(vectors)
        env.run(until=env.all_of(procs))
        ticks = [v for b in procs[2].value for v in b.values][:1000]
        mean = np.asarray(quantizer.dequantize_mean(ticks, 4))
        exact = np.mean(floats, axis=0)
        assert float(np.max(np.abs(mean - exact))) < 1e-6
