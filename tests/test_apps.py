"""Tests for the §7 applications: telemetry and DDoS mitigation."""

import pytest

from repro.apps import DDoSMitigator, TelemetryMonitor
from repro.net import Host, IPv4Address, MACAddress, Topology
from repro.sim import Environment
from repro.trio import PFE


def build(app, num_senders=1):
    env = Environment()
    pfe = PFE(env, "pfe1", num_ports=num_senders + 1)
    topo = Topology(env)
    senders = []
    for i in range(num_senders):
        host = Host(env, f"src{i}", MACAddress(i + 1),
                    IPv4Address(f"10.0.0.{i + 1}"))
        topo.connect(host.nic.port, pfe.port(i))
        senders.append(host)
    sink = Host(env, "sink", MACAddress(0xFF), IPv4Address("10.0.99.99"))
    topo.connect(sink.nic.port, pfe.port(num_senders))
    pfe.add_route(sink.ip, pfe.port(num_senders).name)
    pfe.install_app(app)
    return env, pfe, senders, sink


class TestTelemetryMonitor:
    def test_per_flow_counters_updated(self):
        app = TelemetryMonitor(scan_period_s=10.0)  # no sweeps during test
        env, pfe, (src,), sink = build(app)

        def traffic():
            for __ in range(5):
                yield src.send_udp(sink.mac, sink.ip, 1000, 80, b"x" * 100)
            for __ in range(3):
                yield src.send_udp(sink.mac, sink.ip, 2000, 80, b"y" * 50)

        env.process(traffic())
        env.run(until=1e-3)
        assert app.flows_tracked == 2
        flow1 = pfe.hash_table.get_nowait(
            (int(src.ip), int(sink.ip), 1000, 80)
        )
        packets, __ = flow1.value.counter.read()
        assert packets == 5

    def test_heavy_hitter_reported(self):
        app = TelemetryMonitor(heavy_hitter_pps=1e5, scan_threads=2,
                               scan_period_s=100e-6)
        env, pfe, (src,), sink = build(app)

        def traffic():
            for __ in range(200):
                yield src.send_udp(sink.mac, sink.ip, 1000, 80, b"x" * 200)

        env.process(traffic())
        env.run(until=2e-3)
        assert app.reports
        assert all(r.flow[2] == 1000 for r in app.reports)
        assert all(r.packets_per_s >= 1e5 for r in app.reports)

    def test_idle_flows_retired_and_memory_freed(self):
        app = TelemetryMonitor(scan_threads=2, scan_period_s=100e-6)
        env, pfe, (src,), sink = build(app)
        before = pfe.memory.sram.allocated_bytes

        def traffic():
            yield src.send_udp(sink.mac, sink.ip, 1234, 80, b"once")

        env.process(traffic())
        env.run(until=5e-3)  # many idle sweeps later
        assert app.flows_retired == 1
        assert pfe.hash_table.get_nowait(
            (int(src.ip), int(sink.ip), 1234, 80)
        ) is None
        assert pfe.memory.sram.allocated_bytes == before

    def test_active_flows_survive_sweeps(self):
        app = TelemetryMonitor(scan_threads=2, scan_period_s=100e-6)
        env, pfe, (src,), sink = build(app)

        def traffic():
            for __ in range(40):
                yield src.send_udp(sink.mac, sink.ip, 7, 80, b"x")
                yield env.timeout(50e-6)  # keeps REF freshly set

        env.process(traffic())
        # Stop while traffic is still flowing (last packet ~1.95 ms).
        env.run(until=1.8e-3)
        assert app.flows_retired == 0
        assert pfe.hash_table.get_nowait(
            (int(src.ip), int(sink.ip), 7, 80)
        ) is not None
        # Once the flow goes idle, it is retired.
        env.run(until=4e-3)
        assert app.flows_retired == 1

    def test_traffic_still_forwarded(self):
        app = TelemetryMonitor(scan_period_s=10.0)
        env, pfe, (src,), sink = build(app)

        def traffic():
            yield src.send_udp(sink.mac, sink.ip, 1, 80, b"through")

        def recv():
            packet = yield sink.recv()
            return packet.parse_udp()[3]

        env.process(traffic())
        p = env.process(recv())
        assert env.run(until=p) == b"through"

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TelemetryMonitor(scan_threads=0)
        with pytest.raises(ValueError):
            TelemetryMonitor(scan_period_s=0)


class TestDDoSMitigator:
    def make_app(self, **kwargs):
        defaults = dict(
            allowed_pps=1e5,
            packet_size_hint=100,
            burst_packets=10,
            strike_threshold=2,
            review_threads=2,
            review_period_s=100e-6,
        )
        defaults.update(kwargs)
        return DDoSMitigator(**defaults)

    def flood(self, env, src, sink, count, gap_s=0.0):
        def traffic():
            for __ in range(count):
                yield src.send_udp(sink.mac, sink.ip, 1, 80, b"x" * 72)
                if gap_s:
                    yield env.timeout(gap_s)

        return env.process(traffic())

    def test_flooder_gets_blocked(self):
        app = self.make_app()
        env, pfe, (attacker,), sink = build(app)
        # ~1e6 pps for 3 ms: sustained over many review intervals.
        self.flood(env, attacker, sink, 3000, gap_s=1e-6)
        env.run(until=2e-3)  # mid-attack
        assert app.blocked_sources == [int(attacker.ip)]
        assert app.packets_blocked > 0
        blocked_packets, __ = app.blocked_counter.read()
        assert blocked_packets == app.packets_blocked

    def test_wellbehaved_source_not_blocked(self):
        app = self.make_app()
        env, pfe, (src,), sink = build(app)
        # ~2e4 pps: far below the 1e5 pps budget.
        self.flood(env, src, sink, 50, gap_s=50e-6)
        env.run(until=5e-3)
        assert app.blocked_sources == []
        assert app.packets_blocked == 0

    def test_attacker_blocked_victim_unharmed(self):
        app = self.make_app()
        env, pfe, (attacker, legit), sink = build(app, num_senders=2)
        self.flood(env, attacker, sink, 3000, gap_s=1e-6)
        received = []

        def legit_traffic():
            for __ in range(20):
                yield env.timeout(250e-6)
                yield legit.send_udp(sink.mac, sink.ip, 5, 80, b"legit")

        def count_rx():
            while True:
                packet = yield sink.recv()
                __, ip, __, payload = packet.parse_udp()
                if payload == b"legit":
                    received.append(ip.src)

        env.process(legit_traffic())
        env.process(count_rx())
        env.run(until=8e-3)
        assert any(event.action == "block"
                   and event.source_ip == int(attacker.ip)
                   for event in app.events)
        assert len(received) == 20  # all legitimate packets delivered

    def test_quiet_attacker_rehabilitated(self):
        app = self.make_app()
        env, pfe, (attacker,), sink = build(app)
        self.flood(env, attacker, sink, 3000, gap_s=1e-6)
        env.run(until=2e-3)
        assert app.blocked_sources  # blocked during the flood
        # Attack stops at ~3 ms; several quiet review intervals pass.
        env.run(until=10e-3)
        assert app.blocked_sources == []
        actions = [event.action for event in app.events]
        assert actions.count("block") >= 1
        assert actions.count("unblock") >= 1

    def test_strike_threshold_respected(self):
        app = self.make_app(strike_threshold=50)  # effectively never
        env, pfe, (attacker,), sink = build(app)
        self.flood(env, attacker, sink, 1000)
        env.run(until=3e-3)
        # Policer drops the excess but the source is never blocklisted.
        assert app.blocked_sources == []
        assert app.packets_blocked == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DDoSMitigator(strike_threshold=0)
