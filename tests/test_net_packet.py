"""Unit tests for the Packet abstraction."""

import pytest

from repro.net import HeaderError, IPv4Address, MACAddress, Packet
from repro.net.headers import EthernetHeader


def make_udp(payload=b"hello", **kwargs):
    defaults = dict(
        src_mac=MACAddress(1),
        dst_mac=MACAddress(2),
        src_ip=IPv4Address("10.0.0.1"),
        dst_ip=IPv4Address("10.0.0.2"),
        src_port=1111,
        dst_port=2222,
    )
    defaults.update(kwargs)
    return Packet.udp(payload=payload, **defaults)


class TestPacket:
    def test_udp_roundtrip(self):
        packet = make_udp(b"gradient data")
        ether, ip, udp, payload = packet.parse_udp()
        assert ether.src == MACAddress(1)
        assert ip.dst == IPv4Address("10.0.0.2")
        assert udp.src_port == 1111
        assert payload == b"gradient data"

    def test_wire_length(self):
        packet = make_udp(b"x" * 10)
        assert len(packet) == 14 + 20 + 8 + 10
        assert packet.bits == len(packet) * 8

    def test_flow_key_from_five_tuple(self):
        a = make_udp()
        b = make_udp()
        c = make_udp(src_port=9999)
        assert a.flow_key == b.flow_key
        assert a.flow_key != c.flow_key

    def test_packet_ids_unique_and_increasing(self):
        a, b = make_udp(), make_udp()
        assert b.packet_id > a.packet_id

    def test_copy_preserves_bytes_new_identity(self):
        packet = make_udp()
        packet.meta["tag"] = 1
        clone = packet.copy()
        assert clone.data == packet.data
        assert clone.flow_key == packet.flow_key
        assert clone.meta == packet.meta
        assert clone.packet_id != packet.packet_id

    def test_split_head_tail(self):
        packet = make_udp(b"z" * 400)
        head, tail = packet.split(192)
        assert len(head) == 192
        assert head + tail == packet.data

    def test_split_short_packet_has_empty_tail(self):
        packet = make_udp(b"tiny")
        head, tail = packet.split(192)
        assert head == packet.data
        assert tail == b""

    def test_split_invalid_head_size(self):
        with pytest.raises(ValueError):
            make_udp().split(0)

    def test_parse_udp_rejects_non_ip(self):
        ether = EthernetHeader(MACAddress(1), MACAddress(2), ethertype=0x0806)
        packet = Packet(ether.pack() + bytes(46))
        with pytest.raises(HeaderError):
            packet.parse_udp()

    def test_payload_trimmed_to_udp_length(self):
        # Ethernet frames can carry padding beyond the UDP datagram.
        packet = make_udp(b"abc")
        padded = Packet(packet.data + b"\x00" * 20, flow_key=packet.flow_key)
        __, __, __, payload = padded.parse_udp()
        assert payload == b"abc"
