"""Tests for the ML workload layer: models, quantiser, stragglers,
allreduce models, training loop, and accuracy curves."""

import math

import pytest

from repro.ml import (
    AccuracyCurve,
    DataParallelTrainer,
    GradientQuantizer,
    MODEL_ZOO,
    SlowWorkerPattern,
    TrainingConfig,
    ideal_allreduce_time,
    ring_allreduce_time,
    switchml_allreduce_time,
    trioml_allreduce_time,
)
from repro.ml.allreduce import SWITCHML_GOODPUT_BPS, TRIOML_GOODPUT_BPS
from repro.ml.stragglers import DELAY_POINTS, SLOWDOWN_MAX, SLOWDOWN_MIN


class TestModels:
    def test_table1_values(self):
        assert MODEL_ZOO["resnet50"].size_mb == 98
        assert MODEL_ZOO["resnet50"].batch_size == 64
        assert MODEL_ZOO["vgg11"].size_mb == 507
        assert MODEL_ZOO["vgg11"].batch_size == 128
        assert MODEL_ZOO["densenet161"].size_mb == 109
        assert MODEL_ZOO["densenet161"].batch_size == 64
        assert all(m.dataset == "ImageNet" for m in MODEL_ZOO.values())

    def test_derived_sizes(self):
        model = MODEL_ZOO["resnet50"]
        assert model.size_bytes == 98 * 1024 * 1024
        assert model.num_gradients == model.size_bytes // 4


class TestQuantizer:
    def test_roundtrip_precision(self):
        quantizer = GradientQuantizer(scale=1e6, num_workers=6)
        gradients = [0.5, -0.25, 1e-4, 0.0, -3e-5]
        restored = quantizer.dequantize(quantizer.quantize(gradients))
        for original, back in zip(gradients, restored):
            assert back == pytest.approx(original, abs=1e-6)

    def test_roundtrip_error_bounded_by_half_tick(self):
        quantizer = GradientQuantizer(scale=1e6, num_workers=6)
        gradients = [(-1) ** i * i * 1e-5 for i in range(100)]
        assert quantizer.roundtrip_error(gradients) <= 0.5 / quantizer.scale

    def test_overflow_safe_clipping(self):
        quantizer = GradientQuantizer(scale=1e6, num_workers=6)
        ticks = quantizer.quantize([1e12, -1e12])
        total = sum(ticks) * 6
        assert abs(ticks[0] * 6) <= 2**31 - 1
        assert ticks[1] == -ticks[0]

    def test_dequantize_mean_uses_contributors(self):
        quantizer = GradientQuantizer(scale=1000, num_workers=4)
        # Aggregated ticks from 3 of 4 workers, each contributing 2.0.
        aggregated = [6000]
        assert quantizer.dequantize_mean(aggregated, 3) == [2.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientQuantizer(scale=0)
        with pytest.raises(ValueError):
            GradientQuantizer(num_workers=0)
        with pytest.raises(ValueError):
            GradientQuantizer().dequantize_mean([1], contributors=0)


class TestSlowWorkerPattern:
    def test_p_zero_never_straggles(self):
        pattern = SlowWorkerPattern(0.0, 6, 0.1, seed=1)
        for __ in range(100):
            assert pattern.sample_iteration() == {}

    def test_p_one_straggles_every_point(self):
        pattern = SlowWorkerPattern(1.0, 6, 0.1, seed=1)
        delays = pattern.sample_iteration()
        assert len(pattern.events) == DELAY_POINTS
        assert sum(delays.values()) > 0

    def test_delay_bounds(self):
        typical = 0.2
        pattern = SlowWorkerPattern(1.0, 6, typical, seed=7)
        for __ in range(50):
            pattern.sample_iteration()
        for event in pattern.events:
            assert SLOWDOWN_MIN * typical <= event.duration_s
            assert event.duration_s <= SLOWDOWN_MAX * typical

    def test_deterministic_under_seed(self):
        a = SlowWorkerPattern(0.3, 6, 0.1, seed=42)
        b = SlowWorkerPattern(0.3, 6, 0.1, seed=42)
        for __ in range(20):
            assert a.sample_iteration() == b.sample_iteration()

    def test_expected_delay_formula(self):
        pattern = SlowWorkerPattern(0.16, 6, 0.1, seed=0)
        expected = 3 * 0.16 * 1.25 * 0.1
        assert pattern.expected_delay_per_iteration_s == pytest.approx(expected)

    def test_empirical_mean_close_to_analytic(self):
        pattern = SlowWorkerPattern(0.16, 6, 0.1, seed=3)
        total = 0.0
        n = 3000
        for __ in range(n):
            total += sum(pattern.sample_iteration().values())
        assert total / n == pytest.approx(
            pattern.expected_delay_per_iteration_s, rel=0.15
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowWorkerPattern(-0.1, 6, 0.1)
        with pytest.raises(ValueError):
            SlowWorkerPattern(0.1, 0, 0.1)
        with pytest.raises(ValueError):
            SlowWorkerPattern(0.1, 6, 0)


class TestAllreduceModels:
    def test_ring_formula(self):
        size = 100 * 1024 * 1024
        t = ring_allreduce_time(size, 6, bandwidth_bps=100e9, efficiency=1.0)
        assert t == pytest.approx(2 * (5 / 6) * size * 8 / 100e9)

    def test_ring_single_worker_free(self):
        assert ring_allreduce_time(1000, 1) == 0.0

    def test_in_network_faster_than_switchml(self):
        size = MODEL_ZOO["resnet50"].size_bytes
        assert trioml_allreduce_time(size) < switchml_allreduce_time(size)

    def test_ideal_uses_ring(self):
        size = MODEL_ZOO["vgg11"].size_bytes
        assert ideal_allreduce_time(size, 6) == pytest.approx(
            ring_allreduce_time(size, 6)
        )

    def test_goodput_ordering(self):
        assert TRIOML_GOODPUT_BPS > SWITCHML_GOODPUT_BPS


class TestTrainer:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(model=MODEL_ZOO["resnet50"], system="magic")

    def test_needs_two_workers(self):
        with pytest.raises(ValueError):
            TrainingConfig(model=MODEL_ZOO["resnet50"], system="ideal",
                           num_workers=1)

    def test_no_stragglers_all_systems_flat(self):
        for system in ("ideal", "switchml", "trioml"):
            config = TrainingConfig(model=MODEL_ZOO["resnet50"],
                                    system=system, straggle_probability=0.0)
            trainer = DataParallelTrainer(config)
            records = trainer.run(10)
            assert all(
                r.duration_s == pytest.approx(config.typical_iteration_s)
                for r in records
            )

    def test_ideal_ignores_straggle_probability(self):
        config = TrainingConfig(model=MODEL_ZOO["resnet50"], system="ideal",
                                straggle_probability=0.9)
        trainer = DataParallelTrainer(config)
        base = config.typical_iteration_s
        assert trainer.average_iteration_s(50) == pytest.approx(base)

    def test_switchml_absorbs_full_delay(self):
        config = TrainingConfig(model=MODEL_ZOO["resnet50"],
                                system="switchml",
                                straggle_probability=1.0, seed=5)
        trainer = DataParallelTrainer(config)
        records = trainer.run(20)
        for record in records:
            expected = (config.model.compute_time_s + record.max_delay_s
                        + config.allreduce_time_s)
            assert record.duration_s == pytest.approx(expected)

    def test_trioml_caps_delay_at_mitigation_bound(self):
        config = TrainingConfig(model=MODEL_ZOO["resnet50"], system="trioml",
                                straggle_probability=1.0, seed=5,
                                timeout_s=0.010)
        trainer = DataParallelTrainer(config)
        records = trainer.run(20)
        bound = trainer.mitigation_bound_s
        for record in records:
            assert record.mitigated
            overhead = record.duration_s - config.typical_iteration_s
            assert overhead <= bound + 1e-12

    def test_trioml_beats_switchml_under_stragglers(self):
        results = {}
        for system in ("switchml", "trioml"):
            config = TrainingConfig(model=MODEL_ZOO["densenet161"],
                                    system=system,
                                    straggle_probability=0.16, seed=11)
            results[system] = DataParallelTrainer(config).average_iteration_s(100)
        assert results["switchml"] / results["trioml"] > 1.3

    def test_speedup_grows_with_probability(self):
        speedups = []
        for p in (0.04, 0.16):
            averages = {}
            for system in ("switchml", "trioml"):
                config = TrainingConfig(model=MODEL_ZOO["resnet50"],
                                        system=system,
                                        straggle_probability=p, seed=2)
                averages[system] = (
                    DataParallelTrainer(config).average_iteration_s(200)
                )
            speedups.append(averages["switchml"] / averages["trioml"])
        assert speedups[1] > speedups[0]

    def test_p0_ordering_matches_fig13(self):
        # Ideal < Trio-ML < SwitchML at p=0 for every model.
        for model in MODEL_ZOO.values():
            times = {
                system: TrainingConfig(model=model, system=system
                                       ).typical_iteration_s
                for system in ("ideal", "trioml", "switchml")
            }
            assert times["ideal"] < times["trioml"] < times["switchml"]


class TestAccuracyCurve:
    def test_monotone_increasing(self):
        curve = AccuracyCurve(MODEL_ZOO["resnet50"])
        values = [curve.accuracy_at(i) for i in range(0, 200_000, 10_000)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_crosses_target_at_calibrated_iterations(self):
        model = MODEL_ZOO["resnet50"]
        curve = AccuracyCurve(model)
        assert curve.accuracy_at(model.target_iterations) == pytest.approx(
            model.target_accuracy
        )
        assert curve.iterations_to(model.target_accuracy) == pytest.approx(
            model.target_iterations
        )

    def test_time_to_accuracy_scales_with_iteration_time(self):
        model = MODEL_ZOO["vgg11"]
        curve = AccuracyCurve(model)
        t1 = curve.time_to_accuracy_s(model.target_accuracy, 0.5)
        t2 = curve.time_to_accuracy_s(model.target_accuracy, 1.0)
        assert t2 == pytest.approx(2 * t1)

    def test_curve_series_ends_at_target(self):
        model = MODEL_ZOO["densenet161"]
        curve = AccuracyCurve(model)
        series = curve.curve(0.25, model.target_accuracy, points=10)
        assert len(series) == 11
        assert series[0][1] == pytest.approx(model.initial_accuracy)
        assert series[-1][1] == pytest.approx(model.target_accuracy)

    def test_out_of_range_rejected(self):
        curve = AccuracyCurve(MODEL_ZOO["resnet50"])
        with pytest.raises(ValueError):
            curve.iterations_to(99.9)  # above max
        with pytest.raises(ValueError):
            curve.accuracy_at(-1)
        with pytest.raises(ValueError):
            curve.time_to_accuracy_s(90.0, 0.0)
