"""Tests for the two-level hybrid flow/packet simulation (repro.flowsim).

Covers the max-min solver's fairness invariants, the fluid engine's
closed-form completions and level-aware scheduling, the escalation
boundary (classification, packet-pinned rates, obs visibility), and the
fluid/packet calibration bridge.
"""

import pytest

from repro import obs
from repro.flowsim import (
    DEFAULT_MTU_PAYLOAD_BYTES,
    EscalationConfig,
    EscalationPolicy,
    FlowSpec,
    FluidEngine,
    MIN_RATE_BPS,
    PathClassSolver,
    ScenarioConfig,
    build_leaf_spine,
    generate_flows,
    max_min_class_rates,
    max_min_rates,
    packet_fan_in,
    packet_pair,
    reset_reference_caches,
    run_scenario,
    wire_efficiency,
)
from repro.flowsim.calibrate import FlowCalibrationSpec, calibrate
from repro.flowsim.escalate import _degree_bucket
from repro.flowsim.scenario import host_name
from repro.sim import FLOW_LEVEL_PRIORITY, PACKET_LEVEL_PRIORITY, Environment


# ---------------------------------------------------------------------------
# Solver
# ---------------------------------------------------------------------------


class TestMaxMinSolver:
    def test_equal_share_single_link(self):
        rates = max_min_rates({1: (0,), 2: (0,), 3: (0,)}, {0: 30e9})
        assert rates == {1: pytest.approx(10e9), 2: pytest.approx(10e9),
                         3: pytest.approx(10e9)}

    def test_classic_max_min_example(self):
        # Flow 1 crosses both links; flow 2 only the narrow one; flow 3
        # only the wide one.  Flow 2 and flow 1 share the 10G bottleneck
        # at 5G each; flow 3 gets the wide link's remainder.
        rates = max_min_rates(
            {1: (0, 1), 2: (0,), 3: (1,)},
            {0: 10e9, 1: 20e9},
        )
        assert rates[1] == pytest.approx(5e9)
        assert rates[2] == pytest.approx(5e9)
        assert rates[3] == pytest.approx(15e9)

    def test_pinned_demand_is_subtracted(self):
        rates = max_min_rates({1: (0,)}, {0: 10e9}, pinned_bps={0: 4e9})
        assert rates[1] == pytest.approx(6e9)

    def test_pinned_saturation_hits_rate_floor_not_zero(self):
        rates = max_min_rates({1: (0,)}, {0: 10e9}, pinned_bps={0: 20e9})
        assert rates[1] == MIN_RATE_BPS

    def test_no_capacity_left_idle_when_demand_exists(self):
        rates = max_min_rates(
            {1: (0,), 2: (0, 1)}, {0: 10e9, 1: 4e9})
        # Flow 2 is bottlenecked at 4G, so flow 1 takes the rest.
        assert rates[2] == pytest.approx(4e9)
        assert rates[1] == pytest.approx(6e9)

    def test_deterministic(self):
        flows = {i: (i % 3, 3 + i % 2) for i in range(20)}
        caps = {0: 10e9, 1: 12e9, 2: 8e9, 3: 40e9, 4: 25e9}
        assert max_min_rates(flows, caps) == max_min_rates(flows, caps)


# ---------------------------------------------------------------------------
# Path-class solver: bit-identical to the per-flow reference
# ---------------------------------------------------------------------------


def _random_instance(rng):
    """A randomized solver instance spanning the solver's corner cases.

    Capacities range down to MIN_RATE_BPS scale (so the rate floor
    engages), pinned demand covers none/partial/exact/over-saturation
    (so pinned subtraction and the clamp at zero both engage), and
    signatures include empty paths and repeated links.
    """
    nlinks = rng.randint(1, 40)
    caps = {i: rng.choice([1e3, 1e4, 1e6, 1e9]) * rng.uniform(0.5, 2.0)
            for i in range(nlinks)}
    class_flows = {}
    for _ in range(rng.randint(1, 60)):
        sig = tuple(rng.choices(range(nlinks), k=rng.randint(0, 6)))
        mult = rng.randint(1, 50) if rng.random() < 0.3 else 1
        class_flows[sig] = class_flows.get(sig, 0) + mult
    pinned = {}
    for i in range(nlinks):
        r = rng.random()
        if r < 0.15:
            pinned[i] = 0.0
        elif r < 0.3:
            pinned[i] = caps[i] * 0.5
        elif r < 0.4:
            pinned[i] = caps[i]          # exactly saturated
        elif r < 0.45:
            pinned[i] = caps[i] * 2.0    # over-saturated -> rate floor
    return caps, class_flows, pinned


def _expand(class_flows):
    """Per-flow inputs for the reference: one flow per class member."""
    flows = {}
    fid = 0
    for sig, mult in sorted(class_flows.items()):
        for _ in range(mult):
            flows[fid] = list(sig)
            fid += 1
    return flows


def _reference_by_class(class_flows, caps, pinned):
    """Reference rates regrouped per class; asserts members agree."""
    flows = _expand(class_flows)
    ref = max_min_rates(flows, caps, pinned)
    by_class = {}
    fid = 0
    for sig, mult in sorted(class_flows.items()):
        rates = {ref[fid + k] for k in range(mult)}
        assert len(rates) == 1, f"members of {sig} diverge: {rates}"
        by_class[sig] = rates.pop()
        fid += mult
    return by_class


class TestPathClassSolverEquivalence:
    """The incremental class solver must be *bit-identical* (==, not
    approx) to the from-scratch per-flow reference."""

    def test_one_shot_equivalence_randomized(self):
        import random
        for trial in range(120):
            rng = random.Random(trial * 7919 + 13)
            caps, class_flows, pinned = _random_instance(rng)
            got = max_min_class_rates(class_flows, caps, pinned)
            assert got == _reference_by_class(class_flows, caps, pinned)

    def test_incremental_churn_equivalence_randomized(self):
        # Random add/remove/pin churn with a solve every few steps:
        # the live incremental state must keep matching a fresh
        # reference solve over the same flows, and the changed set
        # must be exactly the classes whose rate moved.
        import random
        for trial in range(12):
            rng = random.Random(trial * 104729 + 7)
            nlinks = rng.randint(2, 30)
            caps = {i: rng.choice([1e3, 1e5, 1e8, 1e9])
                    * rng.uniform(0.5, 2.0) for i in range(nlinks)}
            solver = PathClassSolver(caps)
            live, last = {}, {}
            for step in range(400):
                op = rng.random()
                if op < 0.45 or not live:
                    sig = tuple(rng.choices(range(nlinks),
                                            k=rng.randint(0, 5)))
                    solver.add(sig)
                    live[sig] = live.get(sig, 0) + 1
                elif op < 0.8:
                    sig = rng.choice(sorted(live))
                    solver.remove(sig)
                    live[sig] -= 1
                    if not live[sig]:
                        del live[sig]
                        last.pop(sig, None)
                else:
                    i = rng.randrange(nlinks)
                    delta = (rng.choice([1.0, -1.0]) * caps[i]
                             * rng.uniform(0, 0.6))
                    if solver.pinned_demand(i) + delta < 0:
                        delta = -solver.pinned_demand(i)
                    solver.pin(i, delta)
                if step % 5 != 4:
                    continue
                changed = solver.resolve()
                got = solver.solve()
                pinned = {i: solver.pinned_demand(i)
                          for i in range(nlinks)}
                assert got == _reference_by_class(live, caps, pinned)
                want = {s: r for s, r in got.items()
                        if last.get(s, object()) != r}
                assert changed == want
                last = dict(got)

    def test_pinned_demand_override_equivalence(self):
        import random
        rng = random.Random(42)
        caps, class_flows, _ = _random_instance(rng)
        solver = PathClassSolver(caps)
        for sig, mult in class_flows.items():
            solver.add(sig, mult)
        # Accumulate unrelated pin state, then override it per call:
        # the override must win, exactly as in the reference.
        solver.pin(0, caps[0] * 0.25)
        for _ in range(8):
            override = {i: caps[i] * rng.choice([0.0, 0.5, 1.0, 2.0])
                        for i in rng.sample(range(len(caps)),
                                            k=len(caps) // 2 or 1)}
            got = solver.solve(override)
            assert got == _reference_by_class(class_flows, caps, override)

    def test_min_rate_floor_and_saturated_links(self):
        # Every link fully pinned: all classes land exactly on the
        # floor, bit-identical to the reference's `share is None` path.
        caps = {0: 10e9, 1: 2e9}
        class_flows = {(0,): 3, (0, 1): 2, (1, 1): 1, (): 4}
        pinned = {0: 10e9, 1: 4e9}
        got = max_min_class_rates(class_flows, caps, pinned)
        assert got == _reference_by_class(class_flows, caps, pinned)
        assert set(got.values()) == {MIN_RATE_BPS}

    def test_multiplicity_matches_expanded_flows(self):
        # One class of N flows must see exactly the same share as N
        # separate flows in the reference — including the per-flow
        # capacity-drain rounding.
        caps = {0: 9.9e9, 1: 3.3e9}
        class_flows = {(0,): 7, (0, 1): 5, (1,): 11}
        got = max_min_class_rates(class_flows, caps)
        assert got == _reference_by_class(class_flows, caps, {})

    def test_dead_class_recreation_reports_changed(self):
        solver = PathClassSolver({0: 10e9})
        solver.add((0,), 2)
        first = solver.resolve()
        assert first == {(0,): 5e9}
        solver.remove((0,))
        solver.remove((0,))
        assert solver.resolve() == {}
        # Re-created at the same rate: must still be reported, since
        # the engine builds a fresh class object for it.
        solver.add((0,), 2)
        assert solver.resolve() == {(0,): 5e9}


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def _engine(policy=None, **fabric):
    env = Environment()
    config = ScenarioConfig(leaves=1, hosts_per_leaf=16, **fabric)
    topology = build_leaf_spine(env, config)
    engine = FluidEngine(env, topology,
                         policy=policy or EscalationPolicy())
    return env, engine


class TestFluidEngine:
    def test_single_flow_closed_form_fct(self):
        env, engine = _engine()
        size = 1e6
        engine.start_flow(FlowSpec(flow_id=1, src=host_name(0, 0),
                                   dst=host_name(0, 1),
                                   size_bytes=size, start_s=0.0))
        env.run()
        (record,) = engine.records
        efficiency = wire_efficiency(DEFAULT_MTU_PAYLOAD_BYTES)
        transfer = size * 8 / (100e9 * efficiency)
        assert record.fct_s == pytest.approx(transfer, rel=0.05)
        assert record.goodput_bps == pytest.approx(size * 8 / record.fct_s)
        assert record.escalated is None

    def test_two_flows_share_then_speed_up(self):
        # Two equal flows into one host halve each other's rate; FCT of
        # the pair is ~2x a lone flow, not 1x (fair share) and the
        # engine must re-solve at the first departure.
        env, engine = _engine()
        size = 1e6
        for fid, src in ((1, host_name(0, 1)), (2, host_name(0, 2))):
            engine.start_flow(FlowSpec(flow_id=fid, src=src,
                                       dst=host_name(0, 0),
                                       size_bytes=size, start_s=0.0))
        env.run()
        assert len(engine.records) == 2
        lone = size * 8 / (100e9 * wire_efficiency())
        for record in engine.records:
            assert record.fct_s == pytest.approx(2 * lone, rel=0.05)

    def test_late_arrival_triggers_resolve(self):
        env, engine = _engine()
        size = 4e6
        engine.start_flow(FlowSpec(flow_id=1, src=host_name(0, 1),
                                   dst=host_name(0, 0),
                                   size_bytes=size, start_s=0.0))
        env.call_at(1e-4, engine.start_flow,
                    FlowSpec(flow_id=2, src=host_name(0, 2),
                             dst=host_name(0, 0),
                             size_bytes=size, start_s=1e-4))
        env.run()
        first = next(r for r in engine.records if r.flow_id == 1)
        lone = size * 8 / (100e9 * wire_efficiency())
        # Flow 1 ran alone for 1e-4 s, then shared: slower than a lone
        # run but faster than full-time sharing.
        assert lone < first.fct_s < 2 * lone

    def test_flow_level_events_run_after_packet_level(self):
        env = Environment()
        order = []
        env.call_at(1.0, lambda: order.append("flow"),
                    priority=FLOW_LEVEL_PRIORITY)
        env.call_at(1.0, lambda: order.append("packet"),
                    priority=PACKET_LEVEL_PRIORITY)
        env.run()
        assert order == ["packet", "flow"]

    def test_same_timestamp_arrivals_coalesce_into_one_solve(self):
        env, engine = _engine()
        for fid in range(8):
            env.call_at(0.0, engine.start_flow,
                        FlowSpec(flow_id=fid, src=host_name(0, 1 + fid),
                                 dst=host_name(0, 0),
                                 size_bytes=2e5, start_s=0.0))
        env.run()
        # One solve for the batch arrival + one per completion batch,
        # not one per arrival.
        assert engine.solves <= 3

    def test_duplicate_flow_id_rejected(self):
        env, engine = _engine()
        spec = FlowSpec(flow_id=1, src=host_name(0, 0),
                        dst=host_name(0, 1), size_bytes=1e4, start_s=0.0)
        engine.start_flow(spec)
        with pytest.raises(ValueError, match="duplicate flow id"):
            engine.start_flow(spec)

    def test_fluid_state_cleaned_up_after_completion(self):
        env, engine = _engine()
        engine.start_flow(FlowSpec(flow_id=1, src=host_name(0, 0),
                                   dst=host_name(0, 1),
                                   size_bytes=1e5, start_s=0.0))
        env.run()
        assert not engine.active
        src = engine.topology.hosts[host_name(0, 0)]
        dst = engine.topology.hosts[host_name(0, 1)]
        assert not src.fluid_tx_flows and not dst.fluid_rx_flows
        assert src.fluid_tx_bytes == pytest.approx(1e5)
        assert dst.fluid_rx_bytes == pytest.approx(1e5)
        for link in engine.topology.links:
            for port in link.ports:
                assert link.fluid_load_bps(port) == 0.0


# ---------------------------------------------------------------------------
# Escalation boundary
# ---------------------------------------------------------------------------


class TestEscalation:
    def test_degree_bucketing(self):
        assert _degree_bucket(1) == 2
        assert _degree_bucket(2) == 2
        assert _degree_bucket(3) == 4
        assert _degree_bucket(12) == 16
        assert _degree_bucket(100) == 32  # clamped

    def test_incast_burst_escalates_past_threshold(self):
        policy = EscalationPolicy(EscalationConfig(incast_degree=4))
        env, engine = _engine(policy=policy)
        for fid in range(8):
            env.call_at(0.0, engine.start_flow,
                        FlowSpec(flow_id=fid, src=host_name(0, 1 + fid),
                                 dst=host_name(0, 0),
                                 size_bytes=4e4, start_s=0.0))
        env.run()
        escalated = [r for r in engine.records if r.escalated == "incast"]
        # Arrivals below the fan-in threshold stay fluid; the rest of
        # the burst crosses the boundary.
        assert len(escalated) == 5
        assert engine.escalations == {"incast": 5}

    def test_large_flows_stay_fluid_inside_incast(self):
        policy = EscalationPolicy(EscalationConfig(
            incast_degree=4, incast_max_flow_bytes=1e5))
        env, engine = _engine(policy=policy)
        for fid in range(8):
            env.call_at(0.0, engine.start_flow,
                        FlowSpec(flow_id=fid, src=host_name(0, 1 + fid),
                                 dst=host_name(0, 0),
                                 size_bytes=5e6, start_s=0.0))
        env.run()
        assert engine.escalations == {}

    def test_straggler_host_escalates_and_is_rate_limited(self):
        policy = EscalationPolicy(EscalationConfig(
            straggler_hosts=(host_name(0, 0),),
            straggler_tx_overhead_s=2e-6,
        ))
        env, engine = _engine(policy=policy)
        engine.start_flow(FlowSpec(flow_id=1, src=host_name(0, 0),
                                   dst=host_name(0, 1),
                                   size_bytes=1e6, start_s=0.0))
        env.run()
        (record,) = engine.records
        assert record.escalated == "straggler"
        # A 2 us/packet host cost caps a 1458 B payload stream near
        # 5.8 Gbps — far below the 100G access link.
        assert record.goodput_bps < 10e9

    def test_aggregation_contention_escalates(self):
        policy = EscalationPolicy(EscalationConfig(
            pfe_contention_threshold=4))
        env, engine = _engine(policy=policy)
        for fid in range(6):
            env.call_at(0.0, engine.start_flow,
                        FlowSpec(flow_id=fid, src=host_name(0, 1 + fid),
                                 dst=host_name(0, 0),
                                 size_bytes=5e4, start_s=0.0,
                                 service="aggregation"))
        env.run()
        assert engine.escalations.get("pfe-hash") == 3

    def test_escalations_visible_through_obs(self):
        session = obs.enable(scope="test")
        try:
            policy = EscalationPolicy(EscalationConfig(incast_degree=2))
            env, engine = _engine(policy=policy)
            for fid in range(4):
                env.call_at(0.0, engine.start_flow,
                            FlowSpec(flow_id=fid,
                                     src=host_name(0, 1 + fid),
                                     dst=host_name(0, 0),
                                     size_bytes=4e4, start_s=0.0))
            env.run()
        finally:
            obs.disable()
        names = set(session.registry.snapshot()["metrics"])
        assert "flowsim.escalations" in names
        assert "flowsim.fct_s" in names
        chrome = session.tracer.to_chrome()
        tracks = {event["args"]["name"] for event in chrome["traceEvents"]
                  if event["ph"] == "M" and event["name"] == "thread_name"}
        assert {"flowsim/escalations", "flowsim/active_flows"} <= tracks
        spans = [event for event in chrome["traceEvents"]
                 if event["ph"] == "X"
                 and event["name"].startswith("escalated:")]
        assert spans and all(event["dur"] > 0 for event in spans)

    def test_reference_runs_do_not_pollute_active_trace(self):
        """Packet reference microsims run with obs suppressed: their
        internal time-zero timelines must not splice into the trace."""
        reset_reference_caches()
        session = obs.enable(scope="test")
        try:
            before = len(session.tracer.export()["events"])
            packet_fan_in(2, 20_000)
            after = len(session.tracer.export()["events"])
        finally:
            obs.disable()
        assert before == after


# ---------------------------------------------------------------------------
# Packet references
# ---------------------------------------------------------------------------


class TestPacketReferences:
    def test_pair_fct_close_to_serialisation_time(self):
        result = packet_pair(100_000, bandwidth_bps=100e9,
                             propagation_s=1e-6)
        wire = 100_000 * 8 / (100e9 * wire_efficiency())
        # FCT = serialisation + 2 hops of propagation + pipeline fill
        # (one extra frame per store-and-forward stage).
        assert wire < result.mean_fct_s < wire + 3e-6

    def test_fan_in_degrades_per_flow_fct(self):
        lone = packet_pair(20_000, bandwidth_bps=100e9)
        crowd = packet_fan_in(8, 20_000, bandwidth_bps=100e9)
        assert crowd.mean_fct_s > 3 * lone.mean_fct_s
        # Aggregate goodput still approaches the bottleneck capacity.
        assert crowd.aggregate_goodput_bps > 0.5 * 100e9

    def test_reference_results_are_cached_and_deterministic(self):
        reset_reference_caches()
        first = packet_fan_in(4, 20_000)
        assert packet_fan_in(4, 20_000) is first  # lru hit
        reset_reference_caches()
        again = packet_fan_in(4, 20_000)
        assert again == first and again is not first


# ---------------------------------------------------------------------------
# Scenario + calibration
# ---------------------------------------------------------------------------


class TestScenario:
    def test_generate_flows_is_seed_deterministic(self):
        config = ScenarioConfig(num_flows=200)
        flows_a = generate_flows(Environment(seed=5), config)
        flows_b = generate_flows(Environment(seed=5), config)
        flows_c = generate_flows(Environment(seed=6), config)
        assert flows_a == flows_b
        assert flows_a != flows_c
        assert len(flows_a) == 200

    def test_run_scenario_completes_all_flows(self):
        result = run_scenario(ScenarioConfig(num_flows=300))
        assert result.summary["flows"] == 300
        assert result.simulated_payload_bytes > 0
        assert result.sim_seconds > 0
        # The canonical scenario exercises every escalation reason.
        assert set(result.escalations) == {"incast", "straggler",
                                           "pfe-hash"}

    def test_find_path_routes_across_leaves(self):
        env = Environment()
        topology = build_leaf_spine(env, ScenarioConfig())
        same_leaf = topology.find_path(host_name(0, 0), host_name(0, 1))
        cross_leaf = topology.find_path(host_name(0, 0), host_name(1, 0))
        assert len(same_leaf) == 2       # host -> leaf -> host
        assert len(cross_leaf) == 4      # host -> leaf -> spine -> leaf -> host
        with pytest.raises(ValueError, match="unknown node"):
            topology.find_path("nope", host_name(0, 0))


class TestCalibration:
    def test_all_cases_within_band(self):
        cases = calibrate(FlowCalibrationSpec())
        assert set(cases) == {"pair", "shared", "incast"}
        for case in cases.values():
            assert case.within_band, (
                f"{case.case}: fluid {case.fluid_value:.4g} vs packet "
                f"{case.packet_value:.4g} ({case.ratio:.2f}x) outside "
                f"[{1 / case.band:.2f}x, {case.band:.2f}x]"
            )

    def test_cli_werror_passes(self, capsys):
        from repro.flowsim.calibrate import main

        assert main(["--werror"]) == 0
        out = capsys.readouterr().out
        assert "all cases within the calibration band" in out
