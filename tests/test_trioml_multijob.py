"""Tests: multiple concurrent aggregation jobs on one device (Figure 9),
per-job memory caps, and wide source bitmasks."""

import pytest

from repro.net import IPv4Address, MACAddress, Topology
from repro.sim import Environment
from repro.trio import PFE
from repro.trioml import TrioMLJobConfig, TrioMLWorker, setup_single_level_job


def make_worker(env, name, src_id, job_id, index, config, **kwargs):
    return TrioMLWorker(
        env, name=name, src_id=src_id, job_id=job_id,
        mac=MACAddress(0x10 + index), ip=IPv4Address(f"10.0.0.{index + 1}"),
        router_mac=config.router_mac, service_ip=config.service_ip,
        grads_per_packet=config.grads_per_packet, window=config.window,
        **kwargs,
    )


class TestMultipleJobs:
    def test_two_jobs_aggregate_independently(self):
        """Figure 9: multiple jobs, each with multiple blocks in flight,
        share the hash table and the aggregation buffers."""
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=4)
        topo = Topology(env)
        config1 = TrioMLJobConfig(job_id=1, grads_per_packet=64, window=4,
                                  group_ip=IPv4Address("239.1.1.1"))
        config2 = TrioMLJobConfig(job_id=2, grads_per_packet=64, window=4,
                                  group_ip=IPv4Address("239.2.2.2"))
        job1_workers, job2_workers = [], []
        ports1, ports2 = {}, {}
        for i in range(2):
            worker = make_worker(env, f"j1w{i}", i, 1, i, config1)
            topo.connect(worker.nic.port, pfe.port(i))
            ports1[worker.name] = pfe.port(i).name
            job1_workers.append(worker)
        for i in range(2):
            worker = make_worker(env, f"j2w{i}", i, 2, i + 2, config2)
            topo.connect(worker.nic.port, pfe.port(i + 2))
            ports2[worker.name] = pfe.port(i + 2).name
            job2_workers.append(worker)
        setup_single_level_job(pfe, config1, job1_workers, ports1)
        setup_single_level_job(pfe, config2, job2_workers, ports2)

        grads1 = [[1] * 256, [10] * 256]
        grads2 = [[100] * 256, [1000] * 256]
        procs = (
            [env.process(w.allreduce(g))
             for w, g in zip(job1_workers, grads1)]
            + [env.process(w.allreduce(g))
               for w, g in zip(job2_workers, grads2)]
        )
        env.run(until=env.all_of(procs))
        job1_result = [v for b in procs[0].value for v in b.values][:256]
        job2_result = [v for b in procs[2].value for v in b.values][:256]
        assert job1_result == [11] * 256     # jobs never cross-pollinate
        assert job2_result == [1100] * 256

    def test_same_aggregator_instance_serves_both_jobs(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=2)
        topo = Topology(env)
        config1 = TrioMLJobConfig(job_id=1, grads_per_packet=64, window=2)
        config2 = TrioMLJobConfig(job_id=2, grads_per_packet=64, window=2)
        w1 = make_worker(env, "w1", 0, 1, 0, config1)
        w2 = make_worker(env, "w2", 0, 2, 1, config2)
        topo.connect(w1.nic.port, pfe.port(0))
        topo.connect(w2.nic.port, pfe.port(1))
        handle1 = setup_single_level_job(
            pfe, config1, [w1], {"w1": pfe.port(0).name})
        handle2 = setup_single_level_job(
            pfe, config2, [w2], {"w2": pfe.port(1).name})
        assert handle1.aggregator is handle2.aggregator
        assert set(handle1.aggregator.jobs) == {1, 2}

    def test_job_teardown_frees_state(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        topo = Topology(env)
        config = TrioMLJobConfig(job_id=1, grads_per_packet=64, window=2)
        worker = make_worker(env, "w", 0, 1, 0, config)
        topo.connect(worker.nic.port, pfe.port(0))
        handle = setup_single_level_job(
            pfe, config, [worker], {"w": pfe.port(0).name})
        aggregator = handle.aggregator
        assert len(pfe.hash_table) == 1
        aggregator.remove_job(1)
        assert len(pfe.hash_table) == 0
        assert aggregator.jobs == {}
        aggregator.remove_job(1)  # idempotent


class TestBlockCap:
    def test_block_cnt_max_bounds_concurrent_blocks(self):
        """Figure 17's block_cnt_max caps a job's concurrent aggregation
        blocks; over-cap packets are dropped (the sender's retransmission
        recovers them once blocks drain)."""
        env = Environment()
        config = TrioMLJobConfig(
            grads_per_packet=64, window=8,
            retransmit_timeout_s=0.001,
        )
        from repro.harness import build_single_pfe_testbed
        testbed = build_single_pfe_testbed(env, config, num_workers=2)
        runtime = next(iter(testbed.handle.runtimes.values()))
        runtime.record.block_cnt_max = 2  # tiny cap

        # Worker 0 rushes ahead: its window-8 burst creates up to 8 block
        # records before worker 1 contributes anything.
        def delayed(block_id):
            return 0.0005  # worker 1 lags behind every block

        testbed.workers[1].straggle_hook = delayed
        vector = [1] * (64 * 8)
        procs = testbed.run_allreduce([vector] * 2)
        env.run(until=env.all_of(procs))
        aggregator = testbed.handle.aggregator
        assert aggregator.block_cap_drops > 0
        # The cap was never violated...
        assert runtime.record.block_total_cnt == 8
        # ...and retransmission still completed every block exactly.
        flat = [v for b in procs[0].value for v in b.values]
        assert flat == [2] * 512

    def test_no_cap_drops_under_default_config(self):
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=64, window=8)
        from repro.harness import build_single_pfe_testbed
        testbed = build_single_pfe_testbed(env, config, num_workers=2)
        procs = testbed.run_allreduce([[1] * 512] * 2)
        env.run(until=env.all_of(procs))
        assert testbed.handle.aggregator.block_cap_drops == 0


class TestWideSourceMasks:
    def test_source_ids_above_64_use_upper_mask_words(self):
        """Figure 17/18 carry four 64-bit masks for up to 256 sources;
        the RMW fetch-and-or must land in the right word."""
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=4)
        topo = Topology(env)
        config = TrioMLJobConfig(job_id=1, grads_per_packet=64, window=2)
        src_ids = (5, 70, 130, 200)  # one per mask word
        workers, ports = [], {}
        for index, src_id in enumerate(src_ids):
            worker = make_worker(env, f"w{index}", src_id, 1, index, config)
            topo.connect(worker.nic.port, pfe.port(index))
            ports[worker.name] = pfe.port(index).name
            workers.append(worker)
        setup_single_level_job(pfe, config, workers, ports)
        procs = [env.process(w.allreduce([w.src_id] * 64))
                 for w in workers]
        env.run(until=env.all_of(procs))
        total = sum(src_ids)
        for proc in procs:
            assert proc.value[0].values == [total] * 64
            assert proc.value[0].src_cnt == 4
