"""Tests for the Microcode disassembler: re-compilable round trips."""

import pytest

from repro.microcode import TrioCompiler
from repro.microcode.disasm import disassemble, format_expr
from repro.microcode.parser import parse
from repro.microcode.programs import (
    compile_filter_program,
    compile_trio_ml_parse_program,
)


class TestDisassembly:
    def test_filter_program_renders_all_instructions(self):
        text = disassemble(compile_filter_program())
        for name in ("process_ether", "process_ip", "count_dropped"):
            assert f"{name}:" in text
        assert "struct ether_t" in text
        assert "CounterIncPhys" in text
        assert "// entry: process_ether" in text

    def test_budget_annotations_present(self):
        text = disassemble(compile_filter_program())
        assert "reads:" in text and "writes:" in text

    def test_register_assignments_annotated(self):
        text = disassemble(compile_filter_program())
        assert "reg ir0;  // GPR r0" in text

    def test_disassembly_of_trioml_parse(self):
        text = disassemble(compile_trio_ml_parse_program())
        assert "struct trio_ml_hdr_t" in text
        assert "goto aggregate;" in text

    def test_statement_body_reparses(self):
        """The instruction bodies the disassembler emits are themselves
        valid Microcode (modulo resolved consts), so it can serve as a
        source formatter."""
        source = """
        struct t { a : 8; : 8; };
        const K = 7;
        reg r;
        ptr p = t @ 0;
        main:
        begin
            r = K + p->a * 2;
            if (r == 14) {
                goto other;
            }
            switch (r) {
                case 1, 2:
                    r = 0;
                default:
                    exit;
            }
            call other;
            exit;
        end
        other:
        begin
            return;
        end
        """
        program = TrioCompiler().compile(source)
        text = disassemble(program)
        # The emitted text parses back into the same instruction set.
        reparsed = parse(text)
        assert {i.name for i in reparsed.instructions} == {"main", "other"}
        assert reparsed.structs[0].name == "t"

    def test_format_expr_precedence_safe(self):
        source = """
        reg a; reg b; reg out;
        main:
        begin
            out = a + b * 3;
            exit;
        end
        """
        program = TrioCompiler().compile(source)
        stmt = program.instructions["main"].body[0]
        rendered = format_expr(stmt.expr)
        # Fully parenthesised: no precedence ambiguity on re-parse.
        assert rendered == "(a + (b * 3))"

    def test_call_return_rendered(self):
        program = TrioCompiler().compile("""
        main:
        begin
            call sub;
            exit;
        end
        sub:
        begin
            return;
        end
        """)
        text = disassemble(program)
        assert "call sub;" in text
        assert "return;" in text
