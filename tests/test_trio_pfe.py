"""Unit tests for the PFE: dispatch, threads, reorder, counters, timers."""

import pytest

from repro.net import Host, IPv4Address, MACAddress, Packet, Topology
from repro.sim import Environment
from repro.trio import (
    PFE,
    PacketByteCounter,
    Policer,
    ReorderEngine,
    TrioApplication,
)
from repro.trio.chipset import GENERATIONS


def wire(env, pfe, n=2):
    """Attach n hosts to the PFE's first n ports; returns the hosts."""
    topo = Topology(env)
    hosts = []
    for i in range(n):
        host = Host(env, f"h{i}", MACAddress(i + 1),
                    IPv4Address(f"10.0.0.{i + 1}"))
        topo.connect(host.nic.port, pfe.port(i))
        pfe.add_route(host.ip, pfe.port(i).name)
        hosts.append(host)
    return hosts


class TestForwarding:
    def test_plain_ip_forwarding(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=2)
        h0, h1 = wire(env, pfe)

        def send():
            yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"data")

        def recv():
            packet = yield h1.recv()
            return packet

        env.process(send())
        p = env.process(recv())
        packet = env.run(until=p)
        assert packet.parse_udp()[3] == b"data"
        assert pfe.packets_forwarded == 1

    def test_unrouted_packet_dropped(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=2)
        h0, __ = wire(env, pfe)

        def send():
            yield h0.send_udp(MACAddress(9), IPv4Address("99.9.9.9"),
                              1, 2, b"nowhere")

        env.process(send())
        env.run(until=1e-3)
        assert pfe.packets_dropped == 1

    def test_local_multicast_replication(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=3)
        hosts = wire(env, pfe, n=3)
        group = IPv4Address("239.1.2.3")
        for i in (1, 2):
            pfe.multicast.join(group, pfe.port(i).name)

        def send():
            yield hosts[0].send_udp(MACAddress.broadcast(), group,
                                    1, 2, b"multi")

        got = []

        def recv(host):
            packet = yield host.recv()
            got.append(host.name)

        env.process(send())
        procs = [env.process(recv(hosts[i])) for i in (1, 2)]
        env.run(until=env.all_of(procs))
        assert sorted(got) == ["h1", "h2"]

    def test_add_route_validates_port(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        with pytest.raises(ValueError):
            pfe.add_route(IPv4Address("1.1.1.1"), "pfe2.p0")


class TestApplicationHooks:
    def test_app_can_drop(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=2)
        h0, h1 = wire(env, pfe)

        class DropAll(TrioApplication):
            def handle_packet(self, tctx, pctx):
                yield from tctx.execute(1)
                pctx.drop()

        pfe.install_app(DropAll())

        def send():
            yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"x")

        env.process(send())
        env.run(until=1e-3)
        assert pfe.packets_dropped == 1
        assert pfe.packets_forwarded == 0

    def test_app_can_emit_new_packets(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=2)
        h0, h1 = wire(env, pfe)

        class Mirror(TrioApplication):
            def handle_packet(self, tctx, pctx):
                yield from tctx.execute(1)
                pctx.consume()
                pctx.emit(pctx.packet.copy())

        pfe.install_app(Mirror())

        def send():
            yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"emitme")

        def recv():
            packet = yield h1.recv()
            return packet.parse_udp()[3]

        env.process(send())
        p = env.process(recv())
        assert env.run(until=p) == b"emitme"
        assert pfe.packets_consumed == 1

    def test_on_install_called(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)

        class App(TrioApplication):
            installed_on = None

            def on_install(self, pfe):
                App.installed_on = pfe

        pfe.install_app(App())
        assert App.installed_on is pfe


class TestThreadModel:
    def test_thread_slots_bound_concurrency(self):
        env = Environment()
        config = GENERATIONS[5].scaled(num_ppes=2, threads_per_ppe=2)
        pfe = PFE(env, "pfe1", config=config, num_ports=1)
        peak = {"value": 0}

        class Slow(TrioApplication):
            def handle_packet(self, tctx, pctx):
                peak["value"] = max(peak["value"], pfe.threads_in_use)
                yield from tctx.execute(10_000)
                pctx.drop()

        pfe.install_app(Slow())
        for __ in range(16):
            pfe.accept(Packet(bytes(64), flow_key=object()))
        env.run()
        assert peak["value"] <= config.total_threads

    def test_dispatch_round_robins_ppes(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        for i in range(10):
            pfe.accept(Packet(bytes(64), flow_key=i))
        env.run()
        spawned = [ppe.threads_spawned for ppe in pfe.ppes[:10]]
        assert spawned == [1] * 10

    def test_lmem_loaded_with_packet_head(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        seen = {}

        class Inspect(TrioApplication):
            def handle_packet(self, tctx, pctx):
                yield from tctx.execute(1)
                seen["lmem"] = bytes(tctx.lmem[:8])
                pctx.drop()

        pfe.install_app(Inspect())
        pfe.accept(Packet(b"\xAA" * 64, flow_key="f"))
        env.run()
        assert seen["lmem"] == b"\xAA" * 8

    def test_internal_thread_spawning(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        log = []

        def work(tctx):
            yield from tctx.execute(5)
            log.append(tctx.ppe.index)

        proc = pfe.spawn_internal_thread(work)
        env.run(until=proc)
        assert len(log) == 1

    def test_read_tail_moves_bytes_to_lmem(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        seen = {}

        class TailReader(TrioApplication):
            def handle_packet(self, tctx, pctx):
                chunk = yield from tctx.read_tail(0, 16)
                seen["chunk"] = chunk
                seen["lmem"] = bytes(tctx.lmem[:16])
                pctx.drop()

        pfe.install_app(TailReader())
        head = bytes(192)
        tail = bytes(range(64))
        pfe.accept(Packet(head + tail, flow_key="f"))
        env.run()
        assert seen["chunk"] == tail[:16]
        assert seen["lmem"] == tail[:16]


class TestReorderEngine:
    def test_in_order_release_per_flow(self):
        released = []
        engine = ReorderEngine(release=released.append)
        s0 = engine.arrival("flow")
        s1 = engine.arrival("flow")
        s2 = engine.arrival("flow")
        engine.complete("flow", s2, ["c"])
        engine.complete("flow", s0, ["a"])
        assert released == ["a"]
        engine.complete("flow", s1, ["b"])
        assert released == ["a", "b", "c"]

    def test_flows_independent(self):
        released = []
        engine = ReorderEngine(release=released.append)
        a0 = engine.arrival("a")
        b0 = engine.arrival("b")
        engine.complete("b", b0, ["b0"])
        assert released == ["b0"]
        engine.complete("a", a0, ["a0"])
        assert released == ["b0", "a0"]

    def test_duplicate_completion_rejected(self):
        engine = ReorderEngine(release=lambda item: None)
        seq = engine.arrival("f")
        engine.complete("f", seq, ["x"])
        with pytest.raises((KeyError, ValueError)):
            engine.complete("f", seq, ["again"])

    def test_state_cleaned_after_flow_drains(self):
        engine = ReorderEngine(release=lambda item: None)
        seq = engine.arrival("f")
        engine.complete("f", seq, [])
        assert engine.in_flight_flows == 0

    def test_pfe_preserves_flow_order_under_uneven_processing(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=2)
        h0, h1 = wire(env, pfe)

        class UnevenApp(TrioApplication):
            def __init__(self):
                self.count = 0

            def handle_packet(self, tctx, pctx):
                self.count += 1
                # First packet is slow, later ones fast.
                work = 5000 if self.count == 1 else 10
                yield from tctx.execute(work)
                pctx.forward()

        pfe.install_app(UnevenApp())
        order = []

        def send():
            for i in range(4):
                yield h0.send_udp(h1.mac, h1.ip, 1, 2, bytes([i]) * 4)

        def recv():
            for __ in range(4):
                packet = yield h1.recv()
                order.append(packet.parse_udp()[3][0])

        env.process(send())
        p = env.process(recv())
        env.run(until=p)
        assert order == [0, 1, 2, 3]


class TestCountersAndPolicers:
    def test_packet_byte_counter(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        counter = PacketByteCounter(pfe.memory)

        def proc():
            yield from counter.increment(100)
            yield from counter.increment(250)

        env.run(until=env.process(proc()))
        assert counter.read() == (2, 350)

    def test_policer_conforms_within_rate(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        policer = Policer(env, pfe.memory, rate_bps=8e6, burst_bytes=1000)

        def proc():
            ok1 = yield from policer.police(500)
            ok2 = yield from policer.police(500)
            ok3 = yield from policer.police(500)  # bucket empty
            return ok1, ok2, ok3

        p = env.process(proc())
        assert env.run(until=p) == (True, True, False)

    def test_policer_refills_over_time(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        policer = Policer(env, pfe.memory, rate_bps=8e6, burst_bytes=1000)

        def proc():
            yield from policer.police(1000)
            yield env.timeout(0.5)  # refill 500 bytes at 1 MB/s
            ok = yield from policer.police(400)
            return ok

        p = env.process(proc())
        assert env.run(until=p) is True
        assert policer.conformed == 2

    def test_policer_validation(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        with pytest.raises(ValueError):
            Policer(env, pfe.memory, rate_bps=0, burst_bytes=10)
        with pytest.raises(ValueError):
            Policer(env, pfe.memory, rate_bps=1e6, burst_bytes=0)


class TestTimers:
    def test_periodic_firings_with_phase_stagger(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        fired = []

        def callback(tctx, index):
            fired.append((round(env.now * 1e3, 3), index))
            yield from tctx.execute(1)

        pfe.timers.launch_periodic("test", num_threads=2, period_s=0.010,
                                   callback=callback)
        env.run(until=0.021)
        times = [t for t, __ in fired]
        # Thread 0 at ~0,10,20 ms; thread 1 at ~5,15 ms.
        assert len(fired) == 5
        assert any(4.9 <= t <= 5.3 for t in times)

    def test_cancel_stops_firings(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        fired = []

        def callback(tctx, index):
            fired.append(env.now)
            yield from tctx.execute(1)

        group = pfe.timers.launch_periodic("test", 1, 0.001, callback)
        env.run(until=0.0035)
        pfe.timers.cancel(group)
        count = len(fired)
        env.run(until=0.010)
        assert len(fired) <= count + 1  # at most the in-flight firing

    def test_parameter_validation(self):
        env = Environment()
        pfe = PFE(env, "pfe1", num_ports=1)
        with pytest.raises(ValueError):
            pfe.timers.launch_periodic("bad", 0, 1.0, lambda t, i: iter(()))
        with pytest.raises(ValueError):
            pfe.timers.launch_periodic("bad", 1, 0.0, lambda t, i: iter(()))
