"""Unit tests for the Trio Compiler (TC) and the Microcode executor."""

import pytest

from repro.microcode import (
    CompileError,
    MicrocodeExecutor,
    MicrocodeRuntimeError,
    TrioCompiler,
)
from repro.microcode.programs import (
    FILTER_PROGRAM_SOURCE,
    build_filter_executor,
    compile_filter_program,
)
from repro.net import IPv4Address, MACAddress, Packet
from repro.net.headers import ETHERTYPE_ARP, EthernetHeader
from repro.sim import Environment
from repro.trio import PFE
from repro.trio.ppe import PacketContext, ThreadContext


def make_thread(env=None):
    env = env or Environment()
    pfe = PFE(env, "pfe1", num_ports=1)
    return env, pfe


def run_program(env, pfe, executor, packet):
    head, tail = packet.split(pfe.config.head_size_bytes)
    pctx = PacketContext(packet=packet, head=bytearray(head), tail=tail)
    tctx = ThreadContext(
        env=env, ppe=pfe.ppes[0], config=pfe.config, memory=pfe.memory,
        hash_table=pfe.hash_table, packet_ctx=pctx,
    )
    proc = env.process(executor.run(tctx, pctx))
    env.run(until=proc)
    return pctx, tctx


class TestCompiler:
    def test_filter_program_compiles(self):
        program = compile_filter_program()
        assert program.entry == "process_ether"
        assert set(program.instructions) == {
            "process_ether", "process_ip", "count_dropped"
        }
        assert program.extern_labels == {"forward_packet", "drop_packet"}

    def test_struct_sizes_resolved(self):
        program = compile_filter_program()
        assert program.structs["ether_t"].size_bytes == 14
        assert program.structs["ipv4_t"].size_bytes == 20

    def test_const_folding(self):
        compiler = TrioCompiler()
        program = compiler.compile("""
        const A = 4;
        const B = A * 2 + 1;
        foo:
        begin
            exit;
        end
        """)
        assert program.consts["B"] == 9

    def test_undefined_goto_rejected(self):
        compiler = TrioCompiler()
        with pytest.raises(CompileError, match="undefined label"):
            compiler.compile("""
            foo:
            begin
                goto nowhere;
            end
            """)

    def test_extern_labels_allowed(self):
        compiler = TrioCompiler(extern_labels=["nowhere"])
        program = compiler.compile("""
        foo:
        begin
            goto nowhere;
        end
        """)
        assert "nowhere" in program.extern_labels

    def test_unknown_identifier_rejected(self):
        with pytest.raises(CompileError, match="unknown identifier"):
            TrioCompiler().compile("""
            reg r;
            foo:
            begin
                r = mystery;
                exit;
            end
            """)

    def test_duplicate_instruction_rejected(self):
        with pytest.raises(CompileError, match="duplicate instruction"):
            TrioCompiler().compile("""
            foo:
            begin
                exit;
            end
            foo:
            begin
                exit;
            end
            """)

    def test_no_instructions_rejected(self):
        with pytest.raises(CompileError):
            TrioCompiler().compile("const A = 1;")

    def test_register_read_budget_enforced(self):
        # Five register reads in one instruction: over the 4-read budget.
        with pytest.raises(CompileError, match="does not fit"):
            TrioCompiler().compile("""
            reg a; reg b; reg c; reg d; reg e; reg out;
            foo:
            begin
                out = a + b + c + d + e;
                exit;
            end
            """)

    def test_memory_read_budget_enforced(self):
        with pytest.raises(CompileError, match="does not fit"):
            TrioCompiler().compile("""
            struct t { x : 8; y : 8; z : 8; : 8; };
            ptr p = t @ 0;
            reg out;
            foo:
            begin
                out = p->x + p->y + p->z;
                exit;
            end
            """)

    def test_register_write_budget_enforced(self):
        with pytest.raises(CompileError, match="does not fit"):
            TrioCompiler().compile("""
            reg a; reg b; reg c;
            foo:
            begin
                a = 1;
                b = 2;
                c = 3;
                exit;
            end
            """)

    def test_fits_exactly_at_budget(self):
        program = TrioCompiler().compile("""
        reg a; reg b; reg c; reg d;
        reg out;
        foo:
        begin
            out = a + b + c + d;
            exit;
        end
        """)
        assert program.budgets["foo"].reg_reads == 4

    def test_splitting_across_instructions_passes(self):
        # The same five reads split over two instructions compile fine.
        program = TrioCompiler().compile("""
        reg a; reg b; reg c; reg d; reg e; reg tmp; reg out;
        first:
        begin
            tmp = a + b + c + d;
            goto second;
        end
        second:
        begin
            out = tmp + e;
            exit;
        end
        """)
        assert program.num_instructions == 2

    def test_ptr_to_unknown_struct_rejected(self):
        with pytest.raises(CompileError, match="unknown struct"):
            TrioCompiler().compile("""
            ptr p = ghost @ 0;
            foo:
            begin
                exit;
            end
            """)

    def test_entry_override(self):
        program = TrioCompiler().compile("""
        a:
        begin
            exit;
        end
        b:
        begin
            exit;
        end
        """, entry="b")
        assert program.entry == "b"
        with pytest.raises(CompileError):
            TrioCompiler().compile("a:\nbegin\nexit;\nend", entry="zz")

    def test_division_by_zero_in_const(self):
        with pytest.raises(CompileError):
            TrioCompiler().compile("""
            const BAD = 1 / 0;
            foo:
            begin
                exit;
            end
            """)


class TestExecutor:
    def make_udp(self):
        return Packet.udp(
            src_mac=MACAddress(1), dst_mac=MACAddress(2),
            src_ip=IPv4Address("10.0.0.1"), dst_ip=IPv4Address("10.0.0.2"),
            src_port=1, dst_port=2, payload=b"x" * 30,
        )

    def test_filter_forwards_clean_ip(self):
        env, pfe = make_thread()
        executor = build_filter_executor(
            pfe.memory.alloc(32, region="sram", align=16)
        )
        pctx, __ = run_program(env, pfe, executor, self.make_udp())
        assert pctx.action == "forward"

    def test_filter_drops_and_counts_non_ip(self):
        env, pfe = make_thread()
        base = pfe.memory.alloc(32, region="sram", align=16)
        executor = build_filter_executor(base)
        ether = EthernetHeader(MACAddress(2), MACAddress(1),
                               ethertype=ETHERTYPE_ARP)
        pctx, __ = run_program(env, pfe, executor,
                               Packet(ether.pack() + bytes(50)))
        assert pctx.action == "drop"
        raw = pfe.memory.read_raw(base, 16)
        assert int.from_bytes(raw[:8], "little") == 1
        assert int.from_bytes(raw[8:], "little") == 64

    def test_filter_drops_ip_options_into_second_counter(self):
        env, pfe = make_thread()
        base = pfe.memory.alloc(32, region="sram", align=16)
        executor = build_filter_executor(base)
        packet = self.make_udp()
        raw = bytearray(packet.data)
        raw[14] = 0x46  # version 4, IHL 6 -> options present
        pctx, __ = run_program(env, pfe, executor, Packet(bytes(raw)))
        assert pctx.action == "drop"
        counter2 = pfe.memory.read_raw(base + 16, 16)
        assert int.from_bytes(counter2[:8], "little") == 1

    def test_instruction_latency_charged(self):
        env, pfe = make_thread()
        executor = build_filter_executor(
            pfe.memory.alloc(32, region="sram", align=16)
        )
        __, tctx = run_program(env, pfe, executor, self.make_udp())
        # process_ether + process_ip + forward terminal (4 instr).
        assert tctx.instructions >= 3
        assert env.now > 0

    def test_missing_terminal_rejected(self):
        program = compile_filter_program()
        with pytest.raises(MicrocodeRuntimeError, match="terminal"):
            MicrocodeExecutor(program, terminals={})

    def test_goto_loop_detected(self):
        program = TrioCompiler().compile("""
        spin:
        begin
            goto spin;
        end
        """)
        executor = MicrocodeExecutor(program)
        env, pfe = make_thread()

        def run_bad():
            packet = self.make_udp()
            head, tail = packet.split(192)
            pctx = PacketContext(packet=packet, head=bytearray(head),
                                 tail=tail)
            tctx = ThreadContext(env=env, ppe=pfe.ppes[0], config=pfe.config,
                                 memory=pfe.memory,
                                 hash_table=pfe.hash_table, packet_ctx=pctx)
            yield from executor.run(tctx, pctx)

        proc = env.process(run_bad())
        with pytest.raises(MicrocodeRuntimeError, match="goto loop"):
            env.run(until=proc)

    def test_unknown_intrinsic_raises(self):
        program = TrioCompiler().compile("""
        foo:
        begin
            Fire(1);
            exit;
        end
        """)
        executor = MicrocodeExecutor(program)
        env, pfe = make_thread()
        packet = self.make_udp()
        head, tail = packet.split(192)
        pctx = PacketContext(packet=packet, head=bytearray(head), tail=tail)
        tctx = ThreadContext(env=env, ppe=pfe.ppes[0], config=pfe.config,
                             memory=pfe.memory, hash_table=pfe.hash_table,
                             packet_ctx=pctx)
        proc = env.process(executor.run(tctx, pctx))
        with pytest.raises(MicrocodeRuntimeError, match="intrinsic"):
            env.run(until=proc)

    def test_field_write_visible_in_lmem(self):
        program = TrioCompiler().compile("""
        struct t { a : 16; };
        ptr p = t @ 0;
        foo:
        begin
            p->a = 0xBEEF;
            exit;
        end
        """)
        executor = MicrocodeExecutor(program)
        env, pfe = make_thread()
        packet = self.make_udp()
        head, tail = packet.split(192)
        pctx = PacketContext(packet=packet, head=bytearray(head), tail=tail)
        tctx = ThreadContext(env=env, ppe=pfe.ppes[0], config=pfe.config,
                             memory=pfe.memory, hash_table=pfe.hash_table,
                             packet_ctx=pctx)
        proc = env.process(executor.run(tctx, pctx))
        env.run(until=proc)
        assert bytes(tctx.lmem[:2]) == b"\xBE\xEF"

    def test_registers_persist_across_instructions(self):
        program = TrioCompiler().compile("""
        reg acc;
        first:
        begin
            acc = 5;
            goto second;
        end
        second:
        begin
            acc = acc * 3;
            exit;
        end
        """)
        executor = MicrocodeExecutor(program)
        env, pfe = make_thread()
        packet = self.make_udp()
        head, tail = packet.split(192)
        pctx = PacketContext(packet=packet, head=bytearray(head), tail=tail)
        tctx = ThreadContext(env=env, ppe=pfe.ppes[0], config=pfe.config,
                             memory=pfe.memory, hash_table=pfe.hash_table,
                             packet_ctx=pctx)
        proc = env.process(executor.run(tctx, pctx))
        env.run(until=proc)
        assert tctx.registers[program.reg_map["acc"]] == 15

    def test_short_circuit_evaluation(self):
        # `0 && (1/0)` must not evaluate the right side.
        program = TrioCompiler().compile("""
        reg r;
        foo:
        begin
            r = 0 && 1 / 0;
            exit;
        end
        """)
        executor = MicrocodeExecutor(program)
        env, pfe = make_thread()
        packet = self.make_udp()
        head, tail = packet.split(192)
        pctx = PacketContext(packet=packet, head=bytearray(head), tail=tail)
        tctx = ThreadContext(env=env, ppe=pfe.ppes[0], config=pfe.config,
                             memory=pfe.memory, hash_table=pfe.hash_table,
                             packet_ctx=pctx)
        proc = env.process(executor.run(tctx, pctx))
        env.run(until=proc)
        assert tctx.registers[program.reg_map["r"]] == 0
