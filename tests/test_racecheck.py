"""Dynamic race checker tests: happens-before analysis over synthetic
windows, the module-level session lifecycle, the CI scenarios, and the
zero-overhead contract (results bit-identical with the checker on or
off)."""

import pytest

from repro.tools import racecheck as rc
from repro.tools.racecheck import (
    RACY_COUNTER_SOURCE,
    SAFE_COUNTER_SOURCE,
    RaceCheckSession,
    _run_microcode_threads,
)


@pytest.fixture(autouse=True)
def _no_leaked_session():
    rc.disable()
    yield
    rc.disable()


# ---------------------------------------------------------------------------
# Happens-before analysis over synthetic access windows.
# ---------------------------------------------------------------------------

def test_lost_update_detected():
    s = RaceCheckSession()
    # Victim thread 0: plain read then plain write-back of [64, 68).
    s.record(0, "read", 64, 4, start=0.0, end=10.0)
    s.record(0, "write", 64, 4, start=20.0, end=30.0)
    # Thread 1's write commits inside the span: overwritten.
    s.record(1, "write", 64, 4, start=12.0, end=15.0)
    kinds = {f.kind for f in s.analyze()}
    assert "lost_update" in kinds


def test_lost_update_requires_other_actor_commit_inside_span():
    s = RaceCheckSession()
    s.record(0, "read", 64, 4, start=0.0, end=10.0)
    s.record(0, "write", 64, 4, start=20.0, end=30.0)
    # The other write commits after the victim's write-back: no loss.
    s.record(1, "write", 64, 4, start=40.0, end=50.0)
    assert [f for f in s.analyze() if f.kind == "lost_update"] == []


def test_same_actor_atomic_closes_the_span():
    s = RaceCheckSession()
    s.record(0, "read", 64, 4, start=0.0, end=10.0)
    # The victim synchronizes through the RMW engine before writing.
    s.record(0, "write", 64, 4, start=12.0, end=14.0, atomic=True)
    s.record(0, "write", 64, 4, start=20.0, end=30.0)
    s.record(1, "write", 64, 4, start=15.0, end=16.0)
    assert [f for f in s.analyze() if f.kind == "lost_update"] == []


def test_concurrent_plain_conflict_detected():
    s = RaceCheckSession()
    s.record(0, "write", 64, 4, start=0.0, end=10.0)
    s.record(1, "read", 66, 4, start=5.0, end=15.0)  # overlapping extent
    findings = s.analyze()
    assert any(f.kind == "concurrent_conflict" for f in findings)
    conflict = next(f for f in findings if f.kind == "concurrent_conflict")
    assert conflict.lo == 66 and conflict.hi == 68


def test_rmw_involved_overlaps_never_flagged():
    # The fig14 straggler pattern: a timer thread's bulk_read racing a
    # straggler's bulk_add32 — both engine-serialized, both correct.
    s = RaceCheckSession()
    s.record(0, "write", 64, 64, start=0.0, end=10.0, atomic=True)
    s.record(1, "read", 64, 64, start=5.0, end=15.0, atomic=True)
    s.record(2, "write", 64, 4, start=6.0, end=9.0, atomic=True)
    assert s.analyze() == []


def test_read_read_overlap_is_not_a_conflict():
    s = RaceCheckSession()
    s.record(0, "read", 64, 4, start=0.0, end=10.0)
    s.record(1, "read", 64, 4, start=5.0, end=15.0)
    assert s.analyze() == []


def test_disjoint_extents_are_not_a_conflict():
    s = RaceCheckSession()
    s.record(0, "write", 64, 4, start=0.0, end=10.0)
    s.record(1, "write", 68, 4, start=5.0, end=15.0)
    assert s.analyze() == []


def test_disjoint_windows_are_not_a_conflict():
    s = RaceCheckSession()
    s.record(0, "write", 64, 4, start=0.0, end=10.0)
    s.record(1, "write", 64, 4, start=10.0, end=20.0)
    assert [f for f in s.analyze() if f.kind == "concurrent_conflict"] == []


def test_findings_dedup_to_one_per_location():
    s = RaceCheckSession()
    for actor in range(8):
        s.record(actor, "write", 64, 4, start=0.0, end=100.0)
    findings = s.analyze()
    assert len([f for f in findings
                if f.kind == "concurrent_conflict"]) == 1


def test_unattributed_accesses_get_unique_anonymous_actors():
    s = RaceCheckSession()
    # Two driver-level accesses with no thread id must never be fused
    # into a same-actor read->write victim pair...
    s.record(None, "read", 64, 4, start=0.0, end=10.0)
    s.record(None, "write", 64, 4, start=20.0, end=30.0)
    s.record(1, "write", 64, 4, start=12.0, end=15.0)
    assert [f for f in s.analyze() if f.kind == "lost_update"] == []
    # ...but they still participate as *different* actors.
    actors = {a.actor for a in s.accesses}
    assert len(actors) == 3


def test_hash_keys_intern_to_synthetic_space():
    s = RaceCheckSession()
    s.record_hash(0, "write", ("job", 1), start=0.0, end=1.0)
    s.record_hash(1, "read", ("job", 1), start=0.5, end=1.5)
    s.record_hash(0, "write", ("job", 2), start=0.0, end=1.0)
    assert s.summary()["hash_keys"] == 2
    # Hash-block ops are serialized by the block: atomic, never flagged.
    assert s.analyze() == []


def test_engine_commit_accounting():
    s = RaceCheckSession()
    s.note_engine_commit(3)
    s.note_engine_commit(3)
    s.note_engine_commit(5)
    assert s.engine_commits == {3: 2, 5: 1}
    assert s.summary()["engine_commits"] == 3


# ---------------------------------------------------------------------------
# Module-level session lifecycle (the obs-bus zero-overhead pattern).
# ---------------------------------------------------------------------------

def test_session_lifecycle():
    assert rc.session() is None
    assert not rc.enabled()
    active = rc.enable()
    assert rc.session() is active
    assert rc.enabled()
    finished = rc.disable()
    assert finished is active
    assert rc.session() is None
    assert rc.disable() is None


# ---------------------------------------------------------------------------
# CI scenarios: static/dynamic agreement on real programs.
# ---------------------------------------------------------------------------

def test_injected_scenario_reproduces_mc401_lost_update():
    active = rc.enable()
    final, threads = _run_microcode_threads(RACY_COUNTER_SOURCE, 16)
    rc.disable()
    findings = active.analyze()
    assert final < threads  # updates really were lost
    kinds = {f.kind for f in findings}
    assert "lost_update" in kinds
    # Exactly one racy location: the shared counter word.
    assert {(f.space, f.lo) for f in findings} == {("mem", 64)}


def test_safe_counter_records_only_atomic_accesses():
    active = rc.enable()
    final, threads = _run_microcode_threads(SAFE_COUNTER_SOURCE, 16)
    rc.disable()
    assert final == threads
    assert active.analyze() == []
    summary = active.summary()
    assert summary["plain"] == 0
    assert summary["atomic"] == threads
    # Every add was served (and thus serialized) by an RMW engine.
    assert summary["engine_commits"] == threads


def test_checker_off_changes_nothing():
    # Zero-overhead contract, measured end to end: the simulated result
    # is bit-identical whether or not the checker records.
    off_final, _ = _run_microcode_threads(RACY_COUNTER_SOURCE, 16)
    rc.enable()
    on_final, _ = _run_microcode_threads(RACY_COUNTER_SOURCE, 16)
    rc.disable()
    assert rc.session() is None
    assert on_final == off_final


def test_main_exit_codes():
    assert rc.main(["injected", "--expect-races", "1"]) == 0
    assert rc.main(["injected", "--expect-races", "2"]) == 1
    assert rc.main(["injected", "--expect-clean"]) == 1
    assert rc.main(["builtins", "--expect-clean"]) == 0


def test_main_output_is_deterministic(capsys):
    assert rc.main(["injected"]) == 0
    first = capsys.readouterr().out
    assert rc.main(["injected"]) == 0
    second = capsys.readouterr().out
    assert first == second
    assert "lost_update" in first
