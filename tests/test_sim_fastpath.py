"""Edge cases of the kernel fast paths.

The pooled-delay free list, the deferred-call event, the synchronous
resource grant, and the fire-and-forget store puts all bypass the
general event machinery for speed; these tests pin down the corners
where the bypass must still behave exactly like the slow path:
interruption, failure propagation, already-processed events, capacity
back-pressure, and cross-environment misuse.
"""

import pytest

from repro.sim import (
    Environment,
    Interrupt,
    PriorityStore,
    Resource,
    SimulationError,
    Store,
)
from repro.sim.core import AllOf, AnyOf


class TestDelayPool:
    def test_delay_value_and_timing_match_timeout(self):
        env = Environment()
        log = []

        def proc():
            value = yield env.delay(3.0, "payload")
            log.append((env.now, value))
            value = yield env.timeout(2.0, "other")
            log.append((env.now, value))

        env.process(proc())
        env.run()
        assert log == [(3.0, "payload"), (5.0, "other")]

    def test_pool_recycles_the_event_object(self):
        env = Environment()
        first = {}

        def proc():
            ev = env.delay(1.0)
            first["ev"] = ev
            yield ev
            # Recycling happens when the run loop regains control, so
            # park for one event before expecting the pooled object.
            yield env.timeout(0)
            again = env.delay(1.0)
            assert again is first["ev"]
            yield again

        env.process(proc())
        env.run()
        assert env.now == 2.0

    def test_interrupt_while_waiting_on_pooled_delay(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.delay(10.0)
                log.append("overslept")
            except Interrupt as interrupt:
                log.append(("interrupted", env.now, str(interrupt.cause)))
            # The orphaned pooled event must still recycle cleanly and
            # the process must be able to take a fresh delay afterwards.
            yield env.delay(1.0)
            log.append(("resumed", env.now))

        def interrupter(target):
            yield env.delay(2.0)
            target.interrupt("wake up")

        target = env.process(sleeper())
        env.process(interrupter(target))
        env.run()
        assert log == [("interrupted", 2.0, "wake up"), ("resumed", 3.0)]
        # t=10: the abandoned delay fired with no waiters and was pooled.
        assert env.now == 10.0

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.delay(-0.5)


class TestCallLater:
    def test_runs_function_with_args_at_time(self):
        env = Environment()
        log = []
        env.call_later(4.0, log.append, ("fired", "a"))
        env.call_later(1.0, log.append, ("fired", "b"))
        env.run()
        assert env.now == 4.0
        assert log == [("fired", "b"), ("fired", "a")]

    def test_fifo_against_delay_at_same_time(self):
        env = Environment()
        log = []

        def proc():
            yield env.delay(2.0)
            log.append("process")

        env.process(proc())
        env.call_later(2.0, log.append, "callback")
        env.run()
        # call_later schedules immediately; the process only schedules
        # its delay once it first runs (t=0), so the callback's seq is
        # earlier and wins the t=2 tie — scheduling order, as always.
        assert log == ["callback", "process"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.call_later(-1.0, lambda: None)

    def test_counts_one_scheduled_event(self):
        env = Environment()
        env.call_later(1.0, lambda: None)
        assert env.scheduled_events == 1


class TestCompositesWithProcessedEvents:
    def _processed_event(self, env, value="done"):
        """An event that has already fired AND been processed."""
        ev = env.event()
        ev.succeed(value)
        env.run()
        assert ev.callbacks is None
        return ev

    def test_any_of_with_already_processed_event(self):
        env = Environment()
        done = self._processed_event(env)
        pending = env.event()
        log = []

        def proc():
            fired = yield AnyOf(env, [done, pending])
            log.append(fired)

        env.process(proc())
        env.run()
        assert log == [{done: "done"}]

    def test_all_of_with_already_processed_events(self):
        env = Environment()
        done = self._processed_event(env, "a")
        log = []

        def proc():
            fired = yield AllOf(env, [done, env.timeout(1.0, "b")])
            log.append(sorted(fired.values()))

        env.process(proc())
        env.run()
        assert log == [["a", "b"]]

    def test_any_of_propagates_failure(self):
        env = Environment()
        log = []

        def failer():
            yield env.timeout(1.0)
            raise ValueError("boom")

        def waiter(bad):
            try:
                yield AnyOf(env, [bad, env.timeout(5.0)])
            except ValueError as exc:
                log.append((env.now, str(exc)))

        bad = env.process(failer())
        env.process(waiter(bad))
        env.run()
        assert log == [(1.0, "boom")]

    def test_all_of_propagates_failure_of_processed_event(self):
        env = Environment()
        bad = env.event()
        bad.fail(ValueError("late"))
        bad._defused = True  # suppress the unhandled-failure guard
        env.run()
        log = []

        def waiter():
            try:
                yield AllOf(env, [bad, env.timeout(1.0)])
            except ValueError as exc:
                log.append(str(exc))

        env.process(waiter())
        env.run()
        assert log == ["late"]


class TestRunUntilFailingEvent:
    def test_run_until_event_that_fails_raises(self):
        env = Environment()
        stop = env.event()

        def failer():
            yield env.timeout(2.0)
            stop.fail(RuntimeError("target failed"))
            stop._defused = True

        env.process(failer())
        with pytest.raises(RuntimeError, match="target failed"):
            env.run(until=stop)

    def test_run_until_failing_process_raises(self):
        env = Environment()

        def failer():
            yield env.timeout(1.0)
            raise RuntimeError("dead on arrival")

        proc = env.process(failer())
        with pytest.raises(RuntimeError, match="dead on arrival"):
            env.run(until=proc)


class TestCrossEnvironmentYield:
    def test_yielding_foreign_event_fails_process(self):
        env_a = Environment()
        env_b = Environment()

        def proc():
            yield env_b.timeout(1.0)

        process = env_a.process(proc())
        with pytest.raises(SimulationError, match="different"):
            env_a.run()
        assert not process.ok


class TestResourceAcquire:
    def test_synchronous_grant_when_free(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        assert resource.acquire() is None
        assert resource.acquire() is None
        assert resource.in_use == 2

    def test_contended_acquire_returns_fifo_event(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        log = []

        def holder():
            grant = resource.acquire()
            assert grant is None
            yield env.delay(5.0)
            resource.release()
            log.append(("released", env.now))

        def waiter(name):
            grant = resource.acquire()
            if grant is not None:
                yield grant
            log.append((name, env.now))
            resource.release()

        env.process(holder())
        env.process(waiter("first"))
        env.process(waiter("second"))
        env.run()
        assert log == [("released", 5.0), ("first", 5.0), ("second", 5.0)]
        assert resource.in_use == 0

    def test_mixes_with_request(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        assert resource.acquire() is None
        queued = resource.request()
        assert not queued.triggered
        resource.release()
        assert queued.triggered


class TestPutNowait:
    def test_hands_to_waiting_getter(self):
        env = Environment()
        store = Store(env)
        log = []

        def getter():
            item = yield store.get()
            log.append(item)

        env.process(getter())
        env.run()
        store.put_nowait("x")
        env.run()
        assert log == ["x"]

    def test_queues_when_room(self):
        env = Environment()
        store = Store(env, capacity=2)
        store.put_nowait("a")
        store.put_nowait("b")
        assert store.items == ["a", "b"]

    def test_item_survives_capacity_backpressure(self):
        env = Environment()
        store = Store(env, capacity=1)
        store.put_nowait("a")
        store.put_nowait("b")  # over capacity: parked, not dropped
        assert store.items == ["a"]
        log = []

        def drain():
            for _ in range(2):
                item = yield store.get()
                log.append(item)

        env.process(drain())
        env.run()
        assert log == ["a", "b"]

    def test_priority_store_orders_nowait_items(self):
        env = Environment()
        store = PriorityStore(env)
        for item in (3, 1, 2):
            store.put_nowait(item)
        log = []

        def drain():
            for _ in range(3):
                item = yield store.get()
                log.append(item)

        env.process(drain())
        env.run()
        assert log == [1, 2, 3]


class TestNICTrySend:
    def _pair(self, env, tx_overhead_s=0.0):
        from repro.net.addressing import IPv4Address, MACAddress
        from repro.net.link import Link
        from repro.net.nic import NIC

        nic_a = NIC(env, "a", MACAddress("02:00:00:00:00:01"),
                    IPv4Address("10.0.0.1"), tx_ring_size=1,
                    tx_overhead_s=tx_overhead_s)
        nic_b = NIC(env, "b", MACAddress("02:00:00:00:00:02"),
                    IPv4Address("10.0.0.2"))
        Link(env, nic_a.port, nic_b.port)
        received = []
        nic_b.set_rx_callback(received.append)
        return nic_a, nic_b, received

    def _frame(self, nic_src, nic_dst, payload):
        from repro.net.packet import Packet

        return Packet.udp(
            src_mac=nic_src.mac, dst_mac=nic_dst.mac,
            src_ip=nic_src.ip, dst_ip=nic_dst.ip,
            src_port=7, dst_port=7, payload=payload,
        )

    def test_sync_accept_and_delivery(self):
        env = Environment()
        nic_a, nic_b, received = self._pair(env)
        packet = self._frame(nic_a, nic_b, b"hello")
        assert nic_a.try_send(packet) is None
        env.run()
        assert [bytes(p.data) for p in received] == [bytes(packet.data)]

    def test_full_ring_returns_blocking_event(self):
        env = Environment()
        # A slow TX loop keeps the 1-slot ring occupied.
        nic_a, nic_b, received = self._pair(env, tx_overhead_s=1.0)
        log = []

        def sender():
            for tag in (b"p0", b"p1", b"p2"):
                pending = nic_a.try_send(self._frame(nic_a, nic_b, tag))
                if pending is not None:
                    log.append((tag, env.now))
                    yield pending

        env.process(sender())
        env.run()
        # p0 went straight to the TX loop, p1 filled the ring's one
        # slot, p2 had to wait for back-pressure.
        assert log == [(b"p2", 0.0)]
        assert len(received) == 3

    def test_host_try_send_udp(self):
        from repro.net.addressing import IPv4Address, MACAddress
        from repro.net.host import Host
        from repro.net.link import Link

        env = Environment()
        alice = Host(env, "alice", MACAddress("02:00:00:00:00:0a"),
                     IPv4Address("10.0.0.10"))
        bob = Host(env, "bob", MACAddress("02:00:00:00:00:0b"),
                   IPv4Address("10.0.0.11"))
        Link(env, alice.nic.port, bob.nic.port)
        pending = alice.try_send_udp(
            dst_mac=bob.mac, dst_ip=bob.ip,
            src_port=9, dst_port=9, payload=b"ping",
        )
        assert pending is None
        log = []

        def reader():
            payload = yield from bob.recv_udp_payload()
            log.append(payload)

        env.process(reader())
        env.run()
        assert log == [b"ping"]
