"""Unit tests for the Microcode lexer, parser, and struct layout."""

import pytest

from repro.microcode import LexError, ParseError, StructLayout, tokenize
from repro.microcode import read_bits, write_bits
from repro.microcode.parser import parse
from repro.microcode import ast_nodes as ast


class TestLexer:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("struct foo begin end goto my_var")
        kinds = [(t.kind, t.text) for t in tokens[:-1]]
        assert kinds == [
            ("keyword", "struct"), ("ident", "foo"), ("keyword", "begin"),
            ("keyword", "end"), ("keyword", "goto"), ("ident", "my_var"),
        ]

    def test_numbers(self):
        tokens = tokenize("42 0x0800 0")
        assert [int(t.text, 0) for t in tokens[:-1]] == [42, 2048, 0]

    def test_operators_maximal_munch(self):
        tokens = tokenize("a->b == c && d << 2")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["->", "==", "&&", "<<"]

    def test_line_comments_skipped(self):
        tokens = tokenize("a // comment\nb")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_block_comments_skipped(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* oops")

    def test_malformed_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_malformed_number_with_letters(self):
        with pytest.raises(LexError):
            tokenize("123abc")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "eof"


class TestBitAccess:
    def test_read_bits_msb_first(self):
        # 0xA5 = 1010 0101
        assert read_bits(b"\xA5", 0, 4) == 0xA
        assert read_bits(b"\xA5", 4, 4) == 0x5
        assert read_bits(b"\xA5", 2, 3) == 0b100

    def test_read_bits_across_bytes(self):
        assert read_bits(b"\x12\x34", 4, 8) == 0x23

    def test_write_bits_roundtrip(self):
        buf = bytearray(4)
        write_bits(buf, 5, 11, 0x5AB)
        assert read_bits(buf, 5, 11) == 0x5AB
        # Neighbours untouched.
        assert read_bits(buf, 0, 5) == 0
        assert read_bits(buf, 16, 16) == 0

    def test_write_masks_oversized_value(self):
        buf = bytearray(1)
        write_bits(buf, 0, 4, 0xFF)
        assert buf[0] == 0xF0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            read_bits(b"\x00", 4, 8)
        with pytest.raises(ValueError):
            write_bits(bytearray(1), -1, 4, 0)
        with pytest.raises(ValueError):
            read_bits(b"\x00", 0, 0)


class TestStructLayout:
    def test_field_offsets(self):
        layout = StructLayout("ether_t", [("dmac", 48), ("smac", 48),
                                          ("etype", 16)])
        assert layout.size_bytes == 14
        assert layout.field("etype").bit_offset == 96

    def test_anonymous_padding(self):
        layout = StructLayout("padded", [("a", 4), (None, 4), ("b", 8)])
        assert layout.size_bytes == 2
        assert layout.field("b").bit_offset == 8
        assert list(layout.fields) == ["a", "b"]

    def test_unaligned_total_rejected(self):
        with pytest.raises(ValueError):
            StructLayout("bad", [("a", 3)])

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            StructLayout("bad", [("a", 4), ("a", 4)])

    def test_non_positive_width_rejected(self):
        with pytest.raises(ValueError):
            StructLayout("bad", [("a", 0)])

    def test_pack_unpack_roundtrip(self):
        layout = StructLayout("hdr", [("x", 4), ("y", 12), ("z", 16)])
        data = layout.pack(x=0xA, y=0x123, z=0xBEEF)
        assert layout.unpack(data) == {"x": 0xA, "y": 0x123, "z": 0xBEEF}

    def test_read_write_at_base_offset(self):
        layout = StructLayout("hdr", [("v", 8)])
        buf = bytearray(10)
        layout.write(buf, 3, "v", 0x7E)
        assert buf[3] == 0x7E
        assert layout.read(buf, 3, "v") == 0x7E

    def test_unknown_field(self):
        layout = StructLayout("hdr", [("v", 8)])
        with pytest.raises(KeyError):
            layout.field("w")


class TestParser:
    def test_struct_definition(self):
        program = parse("struct t { a : 4; : 4; b : 8; };")
        assert len(program.structs) == 1
        assert program.structs[0].fields == [("a", 4), (None, 4), ("b", 8)]

    def test_instruction_block(self):
        program = parse("""
        foo:
        begin
            goto bar;
        end
        """)
        assert program.instructions[0].name == "foo"
        assert isinstance(program.instructions[0].body[0], ast.Goto)

    def test_if_else(self):
        program = parse("""
        reg r;
        foo:
        begin
            if (r == 1) { goto a; } else { goto b; }
        end
        """)
        stmt = program.instructions[0].body[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.then_body[0], ast.Goto)
        assert stmt.else_body[0].label == "b"

    def test_if_without_braces(self):
        program = parse("""
        reg r;
        foo:
        begin
            if (r) goto a;
        end
        """)
        stmt = program.instructions[0].body[0]
        assert stmt.then_body[0].label == "a"

    def test_local_const_pointer(self):
        program = parse("""
        struct t { a : 8; };
        foo:
        begin
            const t *p = 0 + sizeof(t);
            exit;
        end
        """)
        stmt = program.instructions[0].body[0]
        assert isinstance(stmt, ast.LocalConst)
        assert stmt.is_pointer and stmt.type_name == "t"

    def test_untyped_local_const(self):
        program = parse("""
        foo:
        begin
            const : addr = 1 + 2 * 3;
            exit;
        end
        """)
        stmt = program.instructions[0].body[0]
        assert stmt.type_name is None and not stmt.is_pointer

    def test_call_statement(self):
        program = parse("""
        foo:
        begin
            CounterIncPhys(4, r_work.pkt_len);
            exit;
        end
        """)
        stmt = program.instructions[0].body[0]
        assert isinstance(stmt, ast.CallStmt)
        assert stmt.name == "CounterIncPhys"
        assert len(stmt.args) == 2

    def test_precedence(self):
        program = parse("""
        reg r;
        foo:
        begin
            r = 1 + 2 * 3 == 7 && 1;
            exit;
        end
        """)
        expr = program.instructions[0].body[0].expr
        # Top level should be &&.
        assert isinstance(expr, ast.Binary) and expr.op == "&&"
        assert expr.left.op == "=="

    def test_top_level_declarations(self):
        program = parse("""
        const BASE = 0x100;
        reg ir0;
        struct t { a : 8; };
        ptr p = t @ 14;
        """)
        assert program.consts[0].name == "BASE"
        assert program.regs[0].name == "ir0"
        assert program.ptrs[0].struct_name == "t"

    def test_assignment_to_field(self):
        program = parse("""
        struct t { a : 8; };
        ptr p = t @ 0;
        foo:
        begin
            p->a = 5;
            exit;
        end
        """)
        stmt = program.instructions[0].body[0]
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.Member)

    def test_syntax_errors(self):
        for bad in (
            "struct t { a };",              # missing width
            "foo: begin goto ; end",        # missing label
            "foo begin end",                # missing colon
            "const = 5;",                   # missing name
            "foo: begin 1 + 2 end",         # expression is not a statement
        ):
            with pytest.raises(ParseError):
                parse(bad)

    def test_unexpected_top_level(self):
        with pytest.raises(ParseError):
            parse("42")
