"""Determinism regression tests for the experiment sweeps.

The fast-path kernel work (event pooling, coalesced scheduling,
``--parallel`` fan-out) must never change a simulated result.  Each test
runs a sweep point twice — or serially versus through process fan-out —
and demands identical rows AND an identical scheduled-event count, the
kernel-level fingerprint that catches even result-preserving changes in
event bookkeeping.
"""

from repro.harness.experiments import (
    _fig14_point,
    _fig15_point,
    _loss_point,
    _map_points,
)


def test_fig15_point_bit_identical_across_runs():
    args = (256, 5)
    row_a, events_a = _fig15_point(args)
    row_b, events_b = _fig15_point(args)
    assert row_a == row_b
    assert events_a == events_b


def test_fig14_point_bit_identical_across_runs():
    """The straggler-detector path (timeout scans, partial results)."""
    args = (2.5, 4, 64, 20)
    assert _fig14_point(args) == _fig14_point(args)


def test_loss_point_bit_identical_across_runs():
    """The seeded-RNG loss path (drops, retransmissions, replays)."""
    args = (0.05, 6, 64)
    assert _loss_point(args) == _loss_point(args)


def test_fig15_serial_vs_parallel_bit_identical():
    """Process fan-out cannot change any simulated result.

    Every sweep point builds its Environment from its arguments alone
    and ``ProcessPoolExecutor.map`` preserves order, so ``--parallel``
    must return exactly the serial rows and event fingerprints.
    """
    points = [(64, 3), (128, 3), (256, 3)]
    serial = _map_points(_fig15_point, points, parallel=None)
    fanned = _map_points(_fig15_point, points, parallel=2)
    assert serial == fanned


def test_mixed_sweep_serial_vs_parallel_bit_identical():
    """Fan-out preserves the RNG-dependent sweeps too."""
    points = [(0.0, 4, 64), (0.1, 4, 64)]
    serial = _map_points(_loss_point, points, parallel=None)
    fanned = _map_points(_loss_point, points, parallel=2)
    assert serial == fanned
