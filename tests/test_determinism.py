"""Determinism regression tests for the experiment sweeps.

The fast-path kernel work (event pooling, coalesced scheduling,
``--parallel`` fan-out) must never change a simulated result.  Each test
runs a sweep point twice — or serially versus through process fan-out —
and demands identical rows AND an identical scheduled-event count, the
kernel-level fingerprint that catches even result-preserving changes in
event bookkeeping.
"""

import pytest

from repro.harness.experiments import (
    _fig14_point,
    _fig15_point,
    _hybrid_point,
    _loss_point,
    _map_points,
)
from repro.ml.training import DataParallelTrainer, TrainingConfig
from repro.ml.models import MODEL_ZOO
from repro.sim import Environment, default_seed, set_default_seed


def test_fig15_point_bit_identical_across_runs():
    args = (256, 5)
    row_a, events_a = _fig15_point(args)
    row_b, events_b = _fig15_point(args)
    assert row_a == row_b
    assert events_a == events_b


def test_fig14_point_bit_identical_across_runs():
    """The straggler-detector path (timeout scans, partial results)."""
    args = (2.5, 4, 64, 20)
    assert _fig14_point(args) == _fig14_point(args)


def test_loss_point_bit_identical_across_runs():
    """The seeded-RNG loss path (drops, retransmissions, replays)."""
    args = (0.05, 6, 64)
    assert _loss_point(args) == _loss_point(args)


def test_hybrid_point_bit_identical_across_runs():
    """The flow-level path: Poisson workload, max-min solves, packet
    escalations and their lru-cached reference microsims."""
    args = (300, 0.5, 2e6)
    assert _hybrid_point(args) == _hybrid_point(args)


def test_hybrid_sweep_serial_vs_parallel_bit_identical():
    """The hybrid sweep crosses the flow/packet boundary (escalated
    groups re-run packet reference sims inside worker processes); the
    per-scenario cache reset keeps every point self-contained, so
    fan-out must be bit-identical to the serial run."""
    points = [(200, 0.3, 2e6), (200, 0.5, 2e6), (200, 0.7, 2e6)]
    serial = _map_points(_hybrid_point, points, parallel=None)
    fanned = _map_points(_hybrid_point, points, parallel=2)
    assert serial == fanned
    assert all(row.escalated_total > 0 for row in serial)


def test_fig15_serial_vs_parallel_bit_identical():
    """Process fan-out cannot change any simulated result.

    Every sweep point builds its Environment from its arguments alone
    and ``ProcessPoolExecutor.map`` preserves order, so ``--parallel``
    must return exactly the serial rows and event fingerprints.
    """
    points = [(64, 3), (128, 3), (256, 3)]
    serial = _map_points(_fig15_point, points, parallel=None)
    fanned = _map_points(_fig15_point, points, parallel=2)
    assert serial == fanned


def test_mixed_sweep_serial_vs_parallel_bit_identical():
    """Fan-out preserves the RNG-dependent sweeps too."""
    points = [(0.0, 4, 64), (0.1, 4, 64)]
    serial = _map_points(_loss_point, points, parallel=None)
    fanned = _map_points(_loss_point, points, parallel=2)
    assert serial == fanned


# ---------------------------------------------------------------------------
# Seeded RNG streams (Environment.rng_stream and the --seed plumbing).
# ---------------------------------------------------------------------------

@pytest.fixture
def restore_default_seed():
    saved = default_seed()
    yield
    set_default_seed(saved)


def test_rng_stream_unseeded_matches_bare_random():
    """With no env seed, rng_stream(k) must be bit-identical to
    random.Random(k) — the calibrated link-loss streams depend on it."""
    import random

    stream = Environment().rng_stream(1234)
    reference = random.Random(1234)
    assert [stream.random() for _ in range(32)] == \
           [reference.random() for _ in range(32)]


def test_rng_stream_seeded_reproducible_and_key_separated():
    a = Environment(seed=7)
    b = Environment(seed=7)
    assert [a.rng_stream("loss").random() for _ in range(8)] == \
           [b.rng_stream("loss").random() for _ in range(8)]
    # Distinct keys and distinct seeds give distinct streams.
    assert a.rng_stream("loss").random() != a.rng_stream("jitter").random()
    assert Environment(seed=7).rng_stream("loss").random() != \
           Environment(seed=8).rng_stream("loss").random()


def test_rng_stream_rejects_hash_randomised_keys():
    with pytest.raises(TypeError):
        Environment().rng_stream(("link", 0))


def test_default_seed_adopted_by_new_environments(restore_default_seed):
    set_default_seed(99)
    assert Environment().seed == 99
    assert Environment(seed=5).seed == 5  # explicit wins
    set_default_seed(None)
    assert Environment().seed is None


def test_seeded_sweep_serial_vs_parallel_bit_identical(restore_default_seed):
    """--seed must survive the fan-out into worker processes."""
    set_default_seed(21)
    points = [(0.05, 4, 64), (0.1, 4, 64)]
    serial = _map_points(_loss_point, points, parallel=None)
    fanned = _map_points(_loss_point, points, parallel=2)
    assert serial == fanned


def test_seeded_hybrid_sweep_serial_vs_parallel_bit_identical(
        restore_default_seed):
    """--seed reshapes the hybrid workload identically in both layouts,
    and changing the seed actually changes the sampled flows."""
    points = [(200, 0.4, 2e6), (200, 0.6, 2e6)]
    set_default_seed(21)
    serial = _map_points(_hybrid_point, points, parallel=None)
    fanned = _map_points(_hybrid_point, points, parallel=2)
    assert serial == fanned
    set_default_seed(22)
    reseeded = _map_points(_hybrid_point, points, parallel=None)
    assert reseeded != serial


def test_trainer_compute_jitter_reproducible():
    config = TrainingConfig(
        model=MODEL_ZOO["resnet50"], system="trioml",
        straggle_probability=0.1, seed=3, compute_jitter=0.05,
    )
    run_a = DataParallelTrainer(config).run(50)
    run_b = DataParallelTrainer(config).run(50)
    assert [r.duration_s for r in run_a] == [r.duration_s for r in run_b]
    # Jitter actually perturbs iteration times around the calibrated value.
    base = MODEL_ZOO["resnet50"].compute_time_s
    assert any(abs(r.duration_s - run_a[0].duration_s) > 1e-12
               for r in run_a[1:])
    assert all(r.duration_s > base * 0.9 for r in run_a)


def test_trainer_env_seed_tree_reproducible():
    config = TrainingConfig(
        model=MODEL_ZOO["vgg11"], system="switchml",
        straggle_probability=0.08, compute_jitter=0.02,
    )
    run_a = DataParallelTrainer(config, env=Environment(seed=11)).run(40)
    run_b = DataParallelTrainer(config, env=Environment(seed=11)).run(40)
    run_c = DataParallelTrainer(config, env=Environment(seed=12)).run(40)
    durations = [r.duration_s for r in run_a]
    assert durations == [r.duration_s for r in run_b]
    assert durations != [r.duration_s for r in run_c]
