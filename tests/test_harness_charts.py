"""Tests for the ASCII chart renderer."""

import pytest

from repro.harness import experiments as exp
from repro.harness.charts import fig13_chart, fig16_chart, line_chart


class TestLineChart:
    def test_renders_axes_and_legend(self):
        chart = line_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            title="test chart", x_label="x", y_label="y",
        )
        assert "test chart" in chart
        assert "* a" in chart and "o b" in chart
        assert "+" + "-" * 60 in chart

    def test_y_extremes_labelled(self):
        chart = line_chart({"s": [(0, 10), (5, 90)]})
        assert "90" in chart
        assert "10" in chart

    def test_flat_series_does_not_divide_by_zero(self):
        chart = line_chart({"flat": [(0, 5), (1, 5), (2, 5)]})
        assert "*" in chart

    def test_single_point(self):
        chart = line_chart({"dot": [(3, 7)]})
        assert "*" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"s": []})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"s": [(0, 0)]}, width=5, height=2)

    def test_glyphs_cycle_beyond_six_series(self):
        series = {f"s{i}": [(0, i), (1, i + 1)] for i in range(8)}
        chart = line_chart(series)
        assert "* s0" in chart and "* s6" in chart  # glyphs wrap


class TestFigureCharts:
    def test_fig13_chart_shows_three_systems(self):
        results = exp.fig13_iteration_time(
            probabilities=(0.0, 0.08, 0.16), models=["resnet50"]
        )
        chart = fig13_chart(results, "resnet50")
        for name in ("Ideal", "Trio-ML", "SwitchML"):
            assert name in chart
        assert "p (%)" in chart

    def test_fig16_chart(self):
        results = exp.fig16_window_sweep(
            windows=(1, 4, 16), grad_counts=(64,),
            blocks_for=lambda w: 16,
        )
        chart = fig16_chart(results, 64)
        assert "Trio-ML-64" in chart
        assert "Gbps" in chart
