"""Tests for the experiment harness: drivers produce paper-shaped results."""

import pytest

from repro.harness import (
    build_hierarchical_testbed,
    build_single_pfe_testbed,
    experiments as exp,
    figures,
)
from repro.sim import Environment
from repro.trioml import TrioMLJobConfig


class TestTestbeds:
    def test_single_pfe_testbed_shape(self):
        env = Environment()
        testbed = build_single_pfe_testbed(env, num_workers=4)
        assert len(testbed.workers) == 4
        assert testbed.pfe.app is testbed.handle.aggregator

    def test_hierarchical_testbed_matches_fig11b(self):
        env = Environment()
        testbed = build_hierarchical_testbed(env)
        assert len(testbed.workers) == 6
        assert len(testbed.router.pfes) == 6
        assert set(testbed.handle.aggregators) == {"pfe1", "pfe2", "pfe4"}
        assert testbed.handle.runtimes["pfe4"].role == "top"


class TestTable1:
    def test_rows(self):
        rows = exp.table1_models()
        assert {row["model"] for row in rows} == {
            "ResNet50", "VGG11", "DenseNet161"
        }
        rendered = figures.render_table1(rows)
        assert "507 MB" in rendered


class TestFig12:
    def test_speedups_in_paper_band(self):
        results = exp.fig12_time_to_accuracy(models=["resnet50"])
        result = results["resnet50"]
        # Paper: 1.56x; we accept the right regime.
        assert 1.3 <= result.speedup <= 2.1
        assert result.switchml_minutes > result.trioml_minutes
        assert result.trioml_curve[-1][1] == pytest.approx(
            result.target_accuracy
        )
        assert "speedup" in figures.render_fig12(results)


class TestFig13:
    def test_monotone_switchml_flat_trioml(self):
        rows = exp.fig13_iteration_time(
            probabilities=(0.0, 0.08, 0.16), models=["resnet50"]
        )["resnet50"]
        assert rows[0].speedup < rows[-1].speedup
        # SwitchML rises sharply with p; Trio-ML stays near Ideal.
        assert rows[-1].switchml_ms > 1.4 * rows[0].switchml_ms
        assert rows[-1].trioml_ms < 1.25 * rows[0].trioml_ms
        assert rows[-1].trioml_ms < 1.3 * rows[-1].ideal_ms
        figures.render_fig13({"resnet50": rows})

    def test_final_speedup_in_paper_band(self):
        rows = exp.fig13_iteration_time(
            probabilities=(0.16,), models=["vgg11"]
        )["vgg11"]
        assert 1.4 <= rows[0].speedup <= 2.1  # paper: 1.8x


class TestFig14:
    def test_mitigation_within_twice_timeout(self):
        rows = exp.fig14_mitigation(timeouts_ms=(5.0, 10.0), blocks=8)
        for row in rows:
            assert row.blocks_mitigated > 0
            assert row.mean_mitigation_ms <= 2 * row.timeout_ms + 0.5
            assert row.max_mitigation_ms <= 2 * row.timeout_ms + 1.0
            assert row.mean_mitigation_ms >= row.timeout_ms * 0.9
        figures.render_fig14(rows)

    def test_mitigation_scales_with_timeout(self):
        rows = exp.fig14_mitigation(timeouts_ms=(2.5, 20.0), blocks=6)
        assert rows[1].mean_mitigation_ms > rows[0].mean_mitigation_ms * 3


class TestFig15:
    def test_latency_grows_rate_plateaus(self):
        rows = exp.fig15_latency_rate(grad_counts=(64, 256, 1024), blocks=20)
        latencies = [row.latency_us for row in rows]
        rates = [row.rate_grads_per_us for row in rows]
        assert latencies == sorted(latencies)
        # Rate grows then saturates: the last step gains little.
        assert rates[1] > rates[0]
        assert rates[2] / rates[1] < 1.15
        figures.render_fig15(rows)

    def test_sublinear_latency_growth(self):
        rows = exp.fig15_latency_rate(grad_counts=(64, 1024), blocks=20)
        # 16x more gradients costs less than 16x the latency (paper: 6.6x).
        assert rows[1].latency_us / rows[0].latency_us < 16


class TestFig16:
    def test_window_tradeoff(self):
        results = exp.fig16_window_sweep(
            windows=(1, 16, 128), grad_counts=(512,),
            blocks_for=lambda w: max(64, 2 * w),
        )
        rows = results[512]
        latencies = [row.latency_us for row in rows]
        throughputs = [row.throughput_gbps for row in rows]
        assert latencies == sorted(latencies)       # Fig 16a: latency rises
        assert throughputs == sorted(throughputs)   # Fig 16b: tput rises
        figures.render_fig16(results)


class TestProgramAnalysis:
    def test_matches_section_6_3(self):
        analysis = exp.microcode_program_analysis(grads_per_packet=512,
                                                  blocks=8)
        assert analysis.static_instructions == 60
        assert analysis.loop_instructions_per_gradient == pytest.approx(1.2)
        # Measured includes fixed per-packet overheads; still close to 1.2.
        assert 1.1 <= analysis.measured_instructions_per_gradient <= 1.6
        assert analysis.rmw_engines == 12
        assert analysis.rmw_add_rate_ops_per_s == pytest.approx(6e9)
        figures.render_program_analysis(analysis)


class TestAblations:
    def test_rmw_offload_beats_locking(self):
        rows = exp.ablation_rmw_offload(num_threads=16, updates_per_thread=8)
        rmw, lock = rows[0].value, rows[1].value
        assert rmw < lock
        figures.render_ablation("rmw", rows)

    def test_more_scan_threads_scan_faster(self):
        rows = exp.ablation_scan_threads(thread_counts=(1, 10),
                                         num_records=2000)
        assert rows[1].value < rows[0].value

    def test_tail_chunk_64_is_best(self):
        rows = exp.ablation_tail_chunk(chunk_sizes=(16, 64),
                                       grads_per_packet=512, blocks=8)
        assert rows[1].value < rows[0].value  # bigger chunks, fewer XTXNs

    def test_hierarchy_runs(self):
        rows = exp.ablation_hierarchy(blocks=64, grads_per_packet=128,
                                      window=32)
        assert len(rows) == 4
        assert all(row.value > 0 for row in rows)
