"""Unit tests for the kernel benchmark recorder/checker."""

import json

import pytest

from repro.harness import perfjson


def _fake_doc(delay: float, timeout: float,
              probe_ns: float = 50.0) -> dict:
    return {
        "schema": perfjson.SCHEMA,
        "kernel": {
            "delay_events_per_s": delay,
            "timeout_events_per_s": timeout,
        },
        "obs": {
            "null_probe_ns": probe_ns,
            "null_probe_fields_ns": probe_ns,
            "ceiling_ns": perfjson.OBS_PROBE_NS_CEILING,
        },
    }


@pytest.fixture
def measured(monkeypatch):
    """Pin collect() so check() compares against known numbers."""

    def _pin(delay, timeout, probe_ns=50.0):
        monkeypatch.setattr(
            perfjson, "collect",
            lambda quick=False: _fake_doc(delay, timeout, probe_ns),
        )

    return _pin


def test_check_passes_within_tolerance(tmp_path, measured, capsys):
    committed = tmp_path / "bench.json"
    committed.write_text(json.dumps(_fake_doc(1_000_000, 1_000_000)))
    measured(750_000, 900_000)  # -25% and -10%: inside the 30% budget
    assert perfjson.check(committed) == 0
    assert "PASS" in capsys.readouterr().out


def test_check_fails_on_regression(tmp_path, measured, capsys):
    committed = tmp_path / "bench.json"
    committed.write_text(json.dumps(_fake_doc(1_000_000, 1_000_000)))
    measured(500_000, 1_000_000)  # delay path halved: regression
    assert perfjson.check(committed) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "delay_events_per_s" in out


def test_check_improvement_always_passes(tmp_path, measured):
    committed = tmp_path / "bench.json"
    committed.write_text(json.dumps(_fake_doc(1_000_000, 1_000_000)))
    measured(3_000_000, 2_000_000)
    assert perfjson.check(committed) == 0


def test_check_fails_on_obs_probe_over_ceiling(tmp_path, measured, capsys):
    """The obs overhead check is an absolute ceiling, not a ratio."""
    committed = tmp_path / "bench.json"
    committed.write_text(json.dumps(_fake_doc(1_000_000, 1_000_000)))
    measured(1_000_000, 1_000_000,
             probe_ns=perfjson.OBS_PROBE_NS_CEILING * 10)
    assert perfjson.check(committed) == 1
    assert "obs.null_probe_ns" in capsys.readouterr().out


def test_check_guards_trainer_entry(tmp_path, monkeypatch, capsys):
    """A committed trainer.iterations_per_s is regression-checked too."""
    committed_doc = _fake_doc(1_000_000, 1_000_000)
    committed_doc["trainer"] = {"iterations_per_s": 300_000}
    committed = tmp_path / "bench.json"
    committed.write_text(json.dumps(committed_doc))
    measured_doc = _fake_doc(1_000_000, 1_000_000)
    measured_doc["trainer"] = {"iterations_per_s": 100_000}  # -67%
    monkeypatch.setattr(perfjson, "collect",
                        lambda quick=False: measured_doc)
    assert perfjson.check(committed) == 1
    assert "trainer.iterations_per_s" in capsys.readouterr().out


def test_collect_quick_schema():
    doc = perfjson.collect(quick=True)
    assert doc["schema"] == perfjson.SCHEMA
    assert doc["kernel"]["delay_events_per_s"] > 0
    assert doc["kernel"]["timeout_events_per_s"] > 0
    assert doc["macro"]["packets_per_s"] > 0
    assert doc["trainer"]["iterations_per_s"] > 0
    assert doc["fig15_sweep"]["scheduled_events"] > 0
    assert 0 < doc["obs"]["null_probe_ns"]
    assert doc["obs"]["ceiling_ns"] == perfjson.OBS_PROBE_NS_CEILING
    assert set(doc["seed_baseline"]) == {
        "delay_events_per_s", "timeout_events_per_s", "fig15_cpu_s",
    }


def test_main_writes_json(tmp_path, monkeypatch):
    out = tmp_path / "bench.json"
    monkeypatch.setattr(
        perfjson, "collect",
        lambda quick=False, scale=False: _fake_doc(2_000_000, 1_000_000),
    )
    assert perfjson.main(["--output", str(out), "--quick"]) == 0
    doc = json.loads(out.read_text())
    assert doc["kernel"]["delay_events_per_s"] == 2_000_000
