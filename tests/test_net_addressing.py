"""Unit tests for MAC and IPv4 address types."""

import pytest

from repro.net import IPv4Address, MACAddress


class TestMACAddress:
    def test_parse_string(self):
        mac = MACAddress("00:11:22:33:44:55")
        assert int(mac) == 0x001122334455

    def test_format_string(self):
        assert str(MACAddress(0x001122334455)) == "00:11:22:33:44:55"

    def test_roundtrip_bytes(self):
        mac = MACAddress("de:ad:be:ef:00:01")
        assert MACAddress.from_bytes(mac.to_bytes()) == mac

    def test_from_bytes_wrong_length(self):
        with pytest.raises(ValueError):
            MACAddress.from_bytes(b"\x00" * 5)

    def test_broadcast(self):
        assert MACAddress.broadcast().is_broadcast
        assert str(MACAddress.broadcast()) == "ff:ff:ff:ff:ff:ff"
        assert not MACAddress(1).is_broadcast

    def test_multicast_bit(self):
        assert MACAddress("01:00:5e:00:00:01").is_multicast
        assert not MACAddress("00:00:5e:00:00:01").is_multicast

    def test_equality_across_representations(self):
        assert MACAddress("00:00:00:00:00:01") == MACAddress(1)
        assert MACAddress(1) == 1
        assert MACAddress(1) == "00:00:00:00:00:01"
        assert MACAddress(1) != MACAddress(2)

    def test_hashable(self):
        assert len({MACAddress(1), MACAddress(1), MACAddress(2)}) == 2

    def test_malformed_strings_rejected(self):
        for bad in ("00:11:22:33:44", "zz:11:22:33:44:55", "0:0:0:0:0:0:0"):
            with pytest.raises(ValueError):
                MACAddress(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(ValueError):
            MACAddress(2**48)
        with pytest.raises(ValueError):
            MACAddress(-1)

    def test_copy_constructor(self):
        mac = MACAddress(42)
        assert MACAddress(mac) == mac

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            MACAddress(3.14)


class TestIPv4Address:
    def test_parse_string(self):
        assert int(IPv4Address("10.0.0.1")) == 0x0A000001

    def test_format_string(self):
        assert str(IPv4Address(0xC0A80101)) == "192.168.1.1"

    def test_roundtrip_bytes(self):
        ip = IPv4Address("172.16.254.3")
        assert IPv4Address.from_bytes(ip.to_bytes()) == ip

    def test_from_bytes_wrong_length(self):
        with pytest.raises(ValueError):
            IPv4Address.from_bytes(b"\x00" * 3)

    def test_multicast_range(self):
        assert IPv4Address("224.0.0.1").is_multicast
        assert IPv4Address("239.255.255.255").is_multicast
        assert not IPv4Address("223.255.255.255").is_multicast
        assert not IPv4Address("240.0.0.0").is_multicast

    def test_equality_across_representations(self):
        assert IPv4Address("10.0.0.1") == IPv4Address(0x0A000001)
        assert IPv4Address("10.0.0.1") == "10.0.0.1"
        assert IPv4Address("10.0.0.1") != IPv4Address("10.0.0.2")

    def test_hashable(self):
        assert len({IPv4Address("1.2.3.4"), IPv4Address("1.2.3.4")}) == 1

    def test_malformed_strings_rejected(self):
        for bad in ("10.0.0", "10.0.0.256", "a.b.c.d", "1.2.3.4.5"):
            with pytest.raises(ValueError):
                IPv4Address(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(ValueError):
            IPv4Address(2**32)
        with pytest.raises(ValueError):
            IPv4Address(-5)
