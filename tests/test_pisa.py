"""Unit tests for the PISA pipeline model and the Tofino switch."""

import pytest

from repro.net import Host, IPv4Address, MACAddress, Packet, Topology
from repro.pisa import (
    P4Program,
    PipelineError,
    PisaPipeline,
    RegisterArray,
    StageContext,
    TofinoSwitch,
)
from repro.pisa.pipeline import PassResult
from repro.sim import Environment


class TestRegisterArray:
    def test_values_masked_to_width(self):
        reg = RegisterArray("r", stage=0, size=4, width_bits=16)
        reg.write_raw(0, 0x1_2345)
        assert reg.read_raw(0) == 0x2345

    def test_index_bounds(self):
        reg = RegisterArray("r", stage=0, size=4)
        with pytest.raises(PipelineError):
            reg.read_raw(4)
        with pytest.raises(PipelineError):
            reg.write_raw(-1, 0)

    def test_invalid_width_rejected(self):
        with pytest.raises(PipelineError):
            RegisterArray("r", stage=0, size=4, width_bits=24)

    def test_invalid_size_rejected(self):
        with pytest.raises(PipelineError):
            RegisterArray("r", stage=0, size=0)

    def test_bits_footprint(self):
        assert RegisterArray("r", 0, 100, 32).bits == 3200


class TestStageContext:
    def make(self, num_stages=12):
        env = Environment()
        pipeline = PisaPipeline(env, "pipe", num_stages=num_stages)
        return StageContext(pipeline)

    def test_stage_forward_only(self):
        ctx = self.make()
        ctx.stage(3)
        with pytest.raises(PipelineError, match="backwards"):
            ctx.stage(2)

    def test_stage_beyond_depth_rejected(self):
        ctx = self.make(num_stages=4)
        with pytest.raises(PipelineError):
            ctx.stage(4)

    def test_register_only_from_owning_stage(self):
        ctx = self.make()
        reg = RegisterArray("r", stage=5, size=4)
        with pytest.raises(PipelineError, match="stage"):
            ctx.read(reg, 0)
        ctx.stage(5)
        assert ctx.read(reg, 0) == 0

    def test_one_access_per_register_per_pass(self):
        ctx = self.make()
        reg = RegisterArray("r", stage=0, size=4)
        ctx.read(reg, 0)
        with pytest.raises(PipelineError, match="twice"):
            ctx.write(reg, 0, 1)

    def test_per_stage_access_budget(self):
        ctx = self.make()
        regs = [RegisterArray(f"r{i}", stage=0, size=1)
                for i in range(StageContext.MAX_ACCESSES_PER_STAGE + 1)]
        for reg in regs[:-1]:
            ctx.read(reg, 0)
        with pytest.raises(PipelineError, match="budget"):
            ctx.read(regs[-1], 0)

    def test_budget_resets_per_stage(self):
        ctx = self.make()
        limit = StageContext.MAX_ACCESSES_PER_STAGE
        for stage in (0, 1):
            ctx.stage(stage)
            for i in range(limit):
                ctx.read(RegisterArray(f"r{stage}_{i}", stage=stage, size=1), 0)

    def test_read_modify_write_atomic(self):
        ctx = self.make()
        reg = RegisterArray("r", stage=0, size=1)
        reg.write_raw(0, 10)
        old, new = ctx.read_modify_write(reg, 0, lambda v: v + 5)
        assert (old, new) == (10, 15)
        assert reg.read_raw(0) == 15


class TestPisaPipeline:
    def test_program_registers_validated_against_stage_budget(self):
        env = Environment()
        pipeline = PisaPipeline(env, "pipe", num_stages=2)

        class Greedy(P4Program):
            def on_install(self, pipeline):
                # One register bigger than the per-stage SRAM budget.
                self.register("big", stage=0,
                              size=PisaPipeline.STAGE_SRAM_BITS // 32 + 1)

        with pytest.raises(PipelineError, match="budget"):
            pipeline.install(Greedy())

    def test_register_stage_placement_validated(self):
        env = Environment()
        pipeline = PisaPipeline(env, "pipe", num_stages=2)

        class Misplaced(P4Program):
            def on_install(self, pipeline):
                self.register("r", stage=5, size=4)

        with pytest.raises(PipelineError, match="stage"):
            pipeline.install(Misplaced())

    def test_pass_latency_applied(self):
        env = Environment()
        pipeline = PisaPipeline(env, "pipe", pass_latency_s=600e-9,
                                packet_rate_pps=1e9)
        emitted = []
        pipeline.set_emit_handler(lambda p, e: emitted.append(env.now))

        class Echo(P4Program):
            def process(self, ctx, packet, pass_index):
                return PassResult(emit=[(packet, "out")])

        pipeline.install(Echo())
        pipeline.submit(Packet(bytes(64)))
        env.run(until=1e-3)
        assert emitted == [pytest.approx(600e-9 + 1e-9)]

    def test_recirculation_consumes_extra_pass(self):
        env = Environment()
        pipeline = PisaPipeline(env, "pipe")
        done = []

        class TwoPass(P4Program):
            def process(self, ctx, packet, pass_index):
                if pass_index == 0:
                    return PassResult(recirculate=True)
                done.append(pass_index)
                return PassResult(dropped=True)

        pipeline.install(TwoPass())
        pipeline.submit(Packet(bytes(64)))
        env.run(until=1e-3)
        assert done == [1]
        assert pipeline.recirculations == 1
        assert pipeline.passes == 2

    def test_duplicate_register_name_rejected(self):
        program = P4Program()
        program.register("r", 0, 1)
        with pytest.raises(PipelineError):
            program.register("r", 1, 1)

    def test_no_program_drops(self):
        env = Environment()
        pipeline = PisaPipeline(env, "pipe")
        pipeline.submit(Packet(bytes(64)))
        env.run(until=1e-3)
        assert pipeline.drops == 1


class _StageProgram(P4Program):
    """Counts packets in one register, then forwards the original."""

    def __init__(self, name, stage, size=4, width_bits=32):
        super().__init__()
        self.name = name
        self._stage = stage
        self._size = size
        self._width = width_bits

    def on_install(self, pipeline):
        self.counter = self.register(
            f"{self.name}.count", self._stage, self._size, self._width
        )

    def process(self, ctx, packet, pass_index):
        ctx.stage(self._stage)
        ctx.read_modify_write(self.counter, 0, lambda v: v + 1)
        return PassResult(emit=[(packet, "out")])


class TestInstallMany:
    def make(self, num_stages=12):
        return PisaPipeline(Environment(), "pipe", num_stages=num_stages)

    def test_stage_disjoint_programs_compose(self):
        pipeline = self.make()
        a = _StageProgram("a", stage=0)
        b = _StageProgram("b", stage=1)
        composed = pipeline.install_many([a, b])
        assert pipeline.program is composed
        assert set(composed.registers) == {"a.count", "b.count"}

    def test_empty_list_rejected(self):
        with pytest.raises(PipelineError, match="at least one"):
            self.make().install_many([])

    def test_register_name_collision_names_both_programs(self):
        a = _StageProgram("a", stage=0)
        b = _StageProgram("b", stage=1)
        b.name = "a"  # so both declare 'a.count'
        with pytest.raises(PipelineError,
                           match="declared by both 'a' and 'a'"):
            self.make().install_many([a, b])

    def test_stage_sharing_rejected(self):
        a = _StageProgram("a", stage=3)
        b = _StageProgram("b", stage=3)
        with pytest.raises(PipelineError, match="stage-disjoint"):
            self.make().install_many([a, b])

    def test_joint_sram_budget_enforced(self):
        # The SRAM check runs over the union of all composed programs'
        # registers, not just the last one installed.
        big = _StageProgram("big", stage=0,
                            size=PisaPipeline.STAGE_SRAM_BITS // 32 + 1)
        small = _StageProgram("small", stage=1)
        with pytest.raises(PipelineError, match="budget"):
            self.make().install_many([big, small])

    def test_composed_pass_runs_programs_in_order(self):
        env = Environment()
        pipeline = PisaPipeline(env, "pipe")
        a = _StageProgram("a", stage=0)
        b = _StageProgram("b", stage=1)
        pipeline.install_many([a, b])
        emitted = []
        pipeline.set_emit_handler(lambda p, e: emitted.append((p, e)))
        pipeline.submit(Packet(bytes(64)))
        env.run(until=1e-3)
        # Both programs saw the packet; the original egressed exactly once.
        assert a.counter.read_raw(0) == 1
        assert b.counter.read_raw(0) == 1
        assert len(emitted) == 1

    def test_drop_short_circuits_later_programs(self):
        env = Environment()
        pipeline = PisaPipeline(env, "pipe")

        class Dropper(P4Program):
            name = "dropper"

            def process(self, ctx, packet, pass_index):
                return PassResult(dropped=True)

        tail = _StageProgram("tail", stage=1)
        pipeline.install_many([Dropper(), tail])
        pipeline.submit(Packet(bytes(64)))
        env.run(until=1e-3)
        assert tail.counter.read_raw(0) == 0
        assert pipeline.drops == 1

    def test_extra_packets_emitted_immediately(self):
        env = Environment()
        pipeline = PisaPipeline(env, "pipe")
        clone = Packet(bytes(32))

        class Cloner(P4Program):
            name = "cloner"

            def process(self, ctx, packet, pass_index):
                return PassResult(emit=[(packet, "fwd"), (clone, "mirror")])

        tail = _StageProgram("tail", stage=1)
        pipeline.install_many([Cloner(), tail])
        emitted = []
        pipeline.set_emit_handler(lambda p, e: emitted.append((p, e)))
        original = Packet(bytes(64))
        pipeline.submit(original)
        env.run(until=1e-3)
        # The clone egresses; the original continues into 'tail' and
        # egresses last with the egress the last forwarder chose.
        assert emitted == [(clone, "mirror"), (original, "out")]
        assert tail.counter.read_raw(0) == 1

    def test_recirculation_short_circuits(self):
        env = Environment()
        pipeline = PisaPipeline(env, "pipe")

        class OnePassRecirc(P4Program):
            name = "recirc"

            def process(self, ctx, packet, pass_index):
                if pass_index == 0:
                    return PassResult(recirculate=True)
                return PassResult(emit=[(packet, "out")])

        tail = _StageProgram("tail", stage=1)
        pipeline.install_many([OnePassRecirc(), tail])
        pipeline.submit(Packet(bytes(64)))
        env.run(until=1e-3)
        # Pass 0 recirculated before 'tail' ran; pass 1 reached it.
        assert pipeline.recirculations == 1
        assert tail.counter.read_raw(0) == 1


class TestTofinoSwitch:
    def test_port_to_pipeline_mapping(self):
        env = Environment()
        switch = TofinoSwitch(env, num_pipelines=4, ports_per_pipeline=16)
        assert len(switch.ports) == 64
        assert switch.port(2, 5).name == "tofino.pipe2.p5"

    def test_l3_forwarding_between_hosts(self):
        env = Environment()
        switch = TofinoSwitch(env)

        class Forward(P4Program):
            def process(self, ctx, packet, pass_index):
                return PassResult(emit=[(packet, None)])

        switch.install(0, Forward())
        topo = Topology(env)
        h0 = Host(env, "h0", MACAddress(1), IPv4Address("10.0.0.1"))
        h1 = Host(env, "h1", MACAddress(2), IPv4Address("10.0.0.2"))
        topo.connect(h0.nic.port, switch.port(0, 0))
        topo.connect(h1.nic.port, switch.port(0, 1))
        switch.add_route(h1.ip, switch.port(0, 1).name)

        def send():
            yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"via tofino")

        def recv():
            packet = yield h1.recv()
            return packet.parse_udp()[3]

        env.process(send())
        p = env.process(recv())
        assert env.run(until=p) == b"via tofino"

    def test_install_all_gives_independent_instances(self):
        env = Environment()
        switch = TofinoSwitch(env, num_pipelines=2)
        programs = switch.install_all(lambda: P4Program())
        assert programs[0] is not programs[1]

    def test_add_route_validates_port(self):
        env = Environment()
        switch = TofinoSwitch(env)
        with pytest.raises(ValueError):
            switch.add_route(IPv4Address("1.1.1.1"), "ghost")
