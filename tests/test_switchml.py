"""Tests for the SwitchML baseline: protocol, switch program, workers."""

import pytest

from repro.net import IPv4Address, MACAddress, Topology
from repro.pisa import PipelineError
from repro.pisa.pipeline import PisaPipeline
from repro.sim import Environment
from repro.switchml import (
    SwitchMLHeader,
    SwitchMLWorker,
    decode_switchml,
    encode_switchml,
)
from repro.switchml.switch import SwitchMLJob, SwitchMLProgram, build_switchml_switch


class TestProtocol:
    def test_header_roundtrip(self):
        header = SwitchMLHeader(pool_index=17, worker_id=3, num_workers=6,
                                chunk_id=123456, grad_cnt=64, is_result=True)
        assert SwitchMLHeader.unpack(header.pack()) == header

    def test_payload_roundtrip_with_negatives(self):
        header = SwitchMLHeader(pool_index=0, worker_id=0, num_workers=2,
                                chunk_id=0, grad_cnt=4)
        values = [0, -1, 2**31 - 1, -2**31]
        payload = encode_switchml(header, values)
        parsed, decoded = decode_switchml(payload)
        assert decoded == values
        assert parsed.grad_cnt == 4

    def test_count_mismatch_rejected(self):
        header = SwitchMLHeader(pool_index=0, worker_id=0, num_workers=2,
                                chunk_id=0, grad_cnt=4)
        with pytest.raises(ValueError):
            encode_switchml(header, [1, 2])

    def test_truncated_payload_rejected(self):
        header = SwitchMLHeader(pool_index=0, worker_id=0, num_workers=2,
                                chunk_id=0, grad_cnt=4)
        payload = encode_switchml(header, [1, 2, 3, 4])
        with pytest.raises(ValueError):
            decode_switchml(payload[:-1])


class TestJobConfig:
    def test_worker_bitmap_limit(self):
        job = SwitchMLJob(num_workers=2, pool_size=4, grads_per_packet=64)
        with pytest.raises(ValueError):
            job.add_worker(32, IPv4Address("10.0.0.1"), MACAddress(1))

    def test_chain_must_divide_gradients(self):
        job = SwitchMLJob(num_workers=2, pool_size=4, grads_per_packet=100,
                          chain=[0, 1, 2])
        with pytest.raises(ValueError):
            SwitchMLProgram(job, chain_position=0)

    def test_segment_size(self):
        job = SwitchMLJob(num_workers=2, pool_size=4, grads_per_packet=256,
                          chain=[0, 1, 2, 3])
        assert job.segment_size == 64


class TestResourceFit:
    def test_switchml_64_fits_one_pipeline(self):
        env = Environment()
        job = SwitchMLJob(num_workers=2, pool_size=8, grads_per_packet=64)
        pipeline = PisaPipeline(env, "pipe", num_stages=12)
        pipeline.install(SwitchMLProgram(job, chain_position=0))

    def test_switchml_256_does_not_fit_one_pipeline(self):
        # 256 gradient registers (plus count+bitmap) exceed the per-stage
        # budget x 12 stages: this is why SwitchML-256 needs 4 pipelines.
        env = Environment()
        job = SwitchMLJob(num_workers=2, pool_size=8, grads_per_packet=256,
                          chain=[0])
        pipeline = PisaPipeline(env, "pipe", num_stages=12)
        with pytest.raises(PipelineError):
            pipeline.install(SwitchMLProgram(job, chain_position=0))


def build_cluster(env, num_workers=3, pool_size=4, grads_per_packet=64,
                  chain=(0,), hooks=None):
    job = SwitchMLJob(num_workers=num_workers, pool_size=pool_size,
                      grads_per_packet=grads_per_packet, chain=list(chain))
    switch, programs = build_switchml_switch(env, job)
    topo = Topology(env)
    workers = []
    for index in range(num_workers):
        ip = IPv4Address(f"10.0.0.{index + 1}")
        mac = MACAddress(index + 1)
        job.add_worker(index, ip, mac)
        hook = hooks.get(index) if hooks else None
        worker = SwitchMLWorker(env, f"w{index}", index, job, mac, ip,
                                straggle_hook=hook)
        topo.connect(worker.nic.port, switch.port(0, index))
        switch.add_route(ip, switch.port(0, index).name)
        workers.append(worker)
    return job, switch, programs, workers


class TestAggregation:
    def test_allreduce_sums_across_workers(self):
        env = Environment()
        __, __, __, workers = build_cluster(env)
        grads = [[(w + 1) * (i + 1) for i in range(200)] for w in range(3)]
        expected = [sum(g[i] for g in grads) for i in range(200)]
        procs = [env.process(workers[w].allreduce(grads[w]))
                 for w in range(3)]
        env.run(until=env.all_of(procs))
        for proc in procs:
            assert proc.value == expected

    def test_chained_256_matches_single_64(self):
        env = Environment()
        __, __, __, workers = build_cluster(
            env, num_workers=2, grads_per_packet=256, chain=(0, 1, 2, 3)
        )
        grads = [[(w + 2) * i for i in range(512)] for w in range(2)]
        expected = [sum(g[i] for g in grads) for i in range(512)]
        procs = [env.process(workers[w].allreduce(grads[w]))
                 for w in range(2)]
        env.run(until=env.all_of(procs))
        assert procs[0].value == expected

    def test_pool_self_clocking_bounds_outstanding(self):
        env = Environment()
        pool = 2
        __, __, programs, workers = build_cluster(env, pool_size=pool)
        grads = [[1] * (64 * 10)] * 3  # 10 chunks per worker
        procs = [env.process(workers[w].allreduce(grads[w]))
                 for w in range(3)]
        env.run(until=env.all_of(procs))
        assert programs[0].results_emitted == 10
        # Each worker sent exactly its 10 chunks, no retransmissions.
        assert all(w.chunks_sent == 10 for w in workers)

    def test_straggler_stalls_everyone(self):
        env = Environment()
        straggle_s = 0.020
        hooks = {2: lambda chunk: straggle_s if chunk == 0 else 0.0}
        __, __, __, workers = build_cluster(env, hooks=hooks)
        grads = [[1] * 64] * 3
        procs = [env.process(workers[w].allreduce(grads[w]))
                 for w in range(3)]
        env.run(until=env.all_of(procs))
        # No result can be produced before the straggler contributes:
        # SwitchML has no timers, so everyone waits the full straggle.
        assert env.now >= straggle_s

    def test_duplicate_contribution_dropped(self):
        env = Environment()
        job, switch, programs, workers = build_cluster(env, num_workers=2)

        # Worker 0 sends the same chunk twice by replaying the send.
        # Small gaps keep wire arrival order deterministic.
        def replay():
            chunk = [5] * 64
            yield from workers[0]._send_chunk(0, chunk)
            yield env.timeout(5e-6)
            yield from workers[0]._send_chunk(0, chunk)
            yield env.timeout(5e-6)
            yield from workers[1]._send_chunk(0, [7] * 64)

        env.process(replay())
        env.run(until=1e-3)
        assert programs[0].duplicates_dropped == 1

    def test_result_values_correct_after_duplicate(self):
        env = Environment()
        job, switch, programs, workers = build_cluster(env, num_workers=2)

        results = []

        def collect(worker):
            packet = yield worker.recv()
            __, __, __, payload = packet.parse_udp()
            __, values = decode_switchml(payload)
            results.append(values)

        def replay():
            yield from workers[0]._send_chunk(0, [5] * 64)
            yield env.timeout(5e-6)
            yield from workers[0]._send_chunk(0, [5] * 64)  # duplicate
            yield env.timeout(5e-6)
            yield from workers[1]._send_chunk(0, [7] * 64)

        env.process(replay())
        procs = [env.process(collect(w)) for w in workers]
        env.run(until=env.all_of(procs))
        assert results[0] == [12] * 64  # 5 + 7, duplicate ignored


class TestRetransmission:
    """§6.1: SwitchML's retransmission 'creates spurious retransmissions
    during straggling periods', which is why the paper disables it."""

    def test_straggler_triggers_spurious_retransmissions(self):
        env = Environment()
        hooks = {2: lambda chunk: 0.020 if chunk == 0 else 0.0}
        job, switch, programs, workers = build_cluster(env, hooks=hooks)
        for worker in workers[:2]:
            worker.retransmit_timeout_s = 0.001  # the client's 1 ms
        grads = [[w + 1] * 64 for w in range(3)]
        procs = [env.process(workers[w].allreduce(grads[w]))
                 for w in range(3)]
        env.run(until=env.all_of(procs))
        # Nothing was lost, yet the healthy workers retransmitted while
        # the slot waited on the straggler...
        assert workers[0].retransmissions > 5
        # ...and the switch had to burn pipeline passes discarding them.
        assert programs[0].duplicates_dropped > 5
        # Results stay correct despite the churn.
        assert procs[0].value == [1 + 2 + 3] * 64

    def test_no_retransmissions_without_straggler(self):
        env = Environment()
        job, switch, programs, workers = build_cluster(env)
        for worker in workers:
            worker.retransmit_timeout_s = 0.001
        grads = [[1] * 256] * 3
        procs = [env.process(workers[w].allreduce(grads[w]))
                 for w in range(3)]
        env.run(until=env.all_of(procs))
        assert all(w.retransmissions == 0 for w in workers)
        assert programs[0].duplicates_dropped == 0
