"""Tests for datacenter-scale traffic generation (repro.traffic).

Covers the distribution samplers' statistics (moments and skew pinned
at n = 10^5), the scenario registry, seed-tree determinism (same seed
=> identical flow lists; serial == ``--parallel`` fan-out), the widened
escalation taxonomy ("microburst" and "ddos" classes firing in fluid
runs), the packet adapter's validation against the
``firewall -> telemetry`` NF chain, and the golden fingerprints that
pin :mod:`repro.flowsim.scenario`'s output across the sampler dedup
refactor.
"""

import hashlib
import math
from random import Random

import pytest

from repro.flowsim import ScenarioConfig, generate_flows
from repro.harness.experiments import (
    TRAFFIC_CHAIN,
    _map_points,
    _traffic_point,
    traffic_sweep,
)
from repro.nf import FirewallNF, TelemetryNF, compile_chain, run_chain
from repro.sim import Environment
from repro.traffic import (
    CACHE_SIZE_CDF,
    CDFTableSizes,
    ExponentialSizes,
    FabricShape,
    LognormalSizes,
    OnOffArrivals,
    ParetoSizes,
    PoissonArrivals,
    TrafficScenario,
    UnknownScenarioError,
    WEBSEARCH_SIZE_CDF,
    ZipfPopularity,
    available_scenarios,
    fan_in_burst,
    get_scenario,
    packet_stream,
    register_scenario,
    run_fluid,
    unregister_scenario,
)


# ---------------------------------------------------------------------------
# Samplers: statistics at n = 10^5
# ---------------------------------------------------------------------------


class TestSamplers:
    def test_exponential_mean_and_floor(self):
        rng = Random(7)
        sampler = ExponentialSizes(mean_bytes=2e6)
        draws = [sampler.sample(rng) for _ in range(100_000)]
        assert min(draws) >= 1458.0
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(2e6, rel=0.02)

    def test_exponential_matches_handrolled_draws(self):
        """The dedup contract: same RNG calls as the original inline
        expression in flowsim.scenario, so the hybrid sweep is
        bit-identical across the refactor."""
        sampler = ExponentialSizes(mean_bytes=2e6)
        a, b = Random(3), Random(3)
        for _ in range(1000):
            assert sampler.sample(a) == max(
                1458.0, b.expovariate(1.0 / 2e6)
            )

    def test_lognormal_first_moment(self):
        """mu is derived from the mean, so the sample mean must land on
        mean_bytes — the parameterisation the scenarios rely on."""
        rng = Random(11)
        sampler = LognormalSizes(mean_bytes=1e6, sigma=1.0)
        assert sampler.mu == pytest.approx(math.log(1e6) - 0.5)
        draws = [sampler.sample(rng) for _ in range(100_000)]
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(1e6, rel=0.05)

    def test_pareto_mean(self):
        rng = Random(13)
        sampler = ParetoSizes(alpha=2.5, min_bytes=1458.0)
        assert sampler.mean_bytes == pytest.approx(2.5 * 1458.0 / 1.5)
        draws = [sampler.sample(rng) for _ in range(100_000)]
        assert min(draws) >= 1458.0
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(sampler.mean_bytes, rel=0.05)

    def test_pareto_heavy_tail_is_infinite_mean(self):
        assert ParetoSizes(alpha=1.0).mean_bytes == float("inf")

    def test_cdf_table_bounds_and_quantiles(self):
        table = CDFTableSizes(WEBSEARCH_SIZE_CDF)
        assert table.quantile(0.0) == WEBSEARCH_SIZE_CDF[0][0]
        assert table.quantile(1.0) == WEBSEARCH_SIZE_CDF[-1][0]
        rng = Random(17)
        draws = [table.sample(rng) for _ in range(100_000)]
        assert min(draws) >= WEBSEARCH_SIZE_CDF[0][0]
        assert max(draws) <= WEBSEARCH_SIZE_CDF[-1][0]
        mean = sum(draws) / len(draws)
        # The geometric-midpoint approximation of the table mean is
        # coarse; the sample mean must land in the same decade.
        assert mean == pytest.approx(table.mean_bytes, rel=0.5)

    def test_cdf_table_validation(self):
        with pytest.raises(ValueError):
            CDFTableSizes([(100.0, 1.0)])
        with pytest.raises(ValueError):
            CDFTableSizes([(100.0, 0.5), (50.0, 1.0)])
        with pytest.raises(ValueError):
            CDFTableSizes([(100.0, 0.6), (200.0, 0.5)])
        with pytest.raises(ValueError):
            CDFTableSizes([(100.0, 0.5), (200.0, 0.9)])

    def test_cache_cdf_is_mice_dominated(self):
        table = CDFTableSizes(CACHE_SIZE_CDF)
        assert table.quantile(0.85) == pytest.approx(1458.0)

    def test_poisson_mean_interarrival(self):
        rng = Random(19)
        arrivals = PoissonArrivals(rate_per_s=1e4)
        now, n = 0.0, 100_000
        for _ in range(n):
            now = arrivals.next_after(rng, now)
        assert n / now == pytest.approx(1e4, rel=0.02)

    def test_onoff_long_run_rate(self):
        rng = Random(23)
        arrivals = OnOffArrivals(on_rate_per_s=4e4, mean_on_s=1e-3,
                                 mean_off_s=3e-3)
        assert arrivals.mean_rate_per_s == pytest.approx(1e4)
        now, n = 0.0, 100_000
        for _ in range(n):
            now = arrivals.next_after(rng, now)
        assert n / now == pytest.approx(1e4, rel=0.1)

    def test_onoff_arrivals_strictly_increase(self):
        rng = Random(29)
        arrivals = OnOffArrivals(on_rate_per_s=1e5, mean_on_s=1e-4,
                                 mean_off_s=1e-4)
        now = 0.0
        for _ in range(10_000):
            nxt = arrivals.next_after(rng, now)
            assert nxt > now
            now = nxt

    def test_zipf_weights_follow_exponent(self):
        pop = ZipfPopularity(n=64, exponent=1.0)
        assert pop.weight(1) / pop.weight(2) == pytest.approx(2.0)
        assert pop.weight(1) / pop.weight(4) == pytest.approx(4.0)
        assert sum(pop.weight(r) for r in range(1, 65)) == pytest.approx(1.0)

    def test_zipf_sample_frequencies_match_weights(self):
        rng = Random(31)
        pop = ZipfPopularity(n=16, exponent=1.2)
        counts = [0] * 16
        n = 100_000
        for _ in range(n):
            counts[pop.sample(rng)] += 1
        # Rank-1 frequency and the 1 vs 8 ratio both track the weights.
        assert counts[0] / n == pytest.approx(pop.weight(1), rel=0.05)
        assert (counts[0] / counts[7]
                == pytest.approx(pop.weight(1) / pop.weight(8), rel=0.15))

    def test_zipf_uniform_at_zero_exponent(self):
        pop = ZipfPopularity(n=10, exponent=0.0)
        for rank in range(1, 11):
            assert pop.weight(rank) == pytest.approx(0.1)

    def test_fan_in_burst_excludes_target(self):
        rng = Random(37)
        for _ in range(200):
            target, senders = fan_in_burst(rng, 16, 12)
            assert target not in senders
            assert len(senders) == 12
            assert len(set(senders)) == 12

    def test_fan_in_burst_degree_clamped(self):
        rng = Random(41)
        __, senders = fan_in_burst(rng, 4, 100)
        assert len(senders) == 3
        with pytest.raises(ValueError):
            fan_in_burst(rng, 1, 2)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            ExponentialSizes(mean_bytes=0.0)
        with pytest.raises(ValueError):
            LognormalSizes(mean_bytes=-1.0)
        with pytest.raises(ValueError):
            LognormalSizes(mean_bytes=1e6, sigma=0.0)
        with pytest.raises(ValueError):
            ParetoSizes(alpha=0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(rate_per_s=0.0)
        with pytest.raises(ValueError):
            OnOffArrivals(on_rate_per_s=0.0, mean_on_s=1.0, mean_off_s=1.0)
        with pytest.raises(ValueError):
            ZipfPopularity(n=0)
        with pytest.raises(ValueError):
            ZipfPopularity(n=4, exponent=-1.0)
        with pytest.raises(ValueError):
            ZipfPopularity(n=4).weight(5)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtin_families_registered(self):
        names = available_scenarios()
        assert len(names) >= 6
        for name in ("websearch", "cache", "incast", "microburst",
                     "ddos", "heavy-hitter"):
            assert name in names
            assert get_scenario(name).name == name

    def test_unknown_scenario_raises(self):
        with pytest.raises(UnknownScenarioError):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_raises(self):
        scenario = get_scenario("websearch")
        with pytest.raises(ValueError):
            register_scenario(scenario)
        register_scenario(scenario, replace=True)  # idempotent path

    def test_register_unregister_roundtrip(self):
        class Empty(TrafficScenario):
            name = "test-empty"
            description = "no flows"

            def generate(self, env, num_flows):
                return []

        scenario = Empty()
        register_scenario(scenario)
        try:
            assert "test-empty" in available_scenarios()
            assert get_scenario("TEST-EMPTY") is scenario  # case-folded
        finally:
            unregister_scenario("test-empty")
        assert "test-empty" not in available_scenarios()


# ---------------------------------------------------------------------------
# Determinism: seed tree, serial vs parallel
# ---------------------------------------------------------------------------


def _flow_tuple(flow):
    return (flow.flow_id, flow.src, flow.dst, flow.size_bytes,
            flow.start_s, flow.service)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["websearch", "cache", "incast",
                                      "microburst", "ddos", "heavy-hitter"])
    def test_same_seed_same_flows(self, name):
        scenario = get_scenario(name)
        first = scenario.generate(Environment(seed=42), 500)
        second = scenario.generate(Environment(seed=42), 500)
        assert list(map(_flow_tuple, first)) == list(
            map(_flow_tuple, second)
        )
        third = scenario.generate(Environment(seed=43), 500)
        assert list(map(_flow_tuple, first)) != list(
            map(_flow_tuple, third)
        )

    def test_scenarios_draw_distinct_streams(self):
        """Two scenarios under one seed must not replay each other's
        draws: each generates from its own ``traffic/<name>`` key."""
        web = get_scenario("websearch").generate(Environment(seed=1), 200)
        cache = get_scenario("cache").generate(Environment(seed=1), 200)
        assert [f.size_bytes for f in web] != [f.size_bytes for f in cache]

    def test_packet_stream_deterministic(self):
        scenario = get_scenario("ddos")
        first = packet_stream(scenario, 512)
        second = packet_stream(scenario, 512)
        assert first == second
        assert len(first) == 512

    def test_traffic_point_serial_equals_parallel(self):
        """The sweep contract: ``--parallel`` fan-out is bit-identical
        to the serial loop, per-row and per-field."""
        points = [(name, 300, 256) for name in ("microburst", "ddos")]
        serial = _map_points(_traffic_point, points, parallel=None)
        fanned = _map_points(_traffic_point, points, parallel=2)
        assert serial == fanned

    def test_traffic_sweep_driver_parallel_matches_serial(self):
        kwargs = dict(scenarios=["cache"], num_flows=300, chain_packets=256)
        assert traffic_sweep(**kwargs) == traffic_sweep(
            **kwargs, parallel=2
        )


# ---------------------------------------------------------------------------
# Golden pins: the flowsim dedup refactor changed no draw
# ---------------------------------------------------------------------------


def _flows_fingerprint(flows):
    digest = hashlib.sha256()
    for flow in flows:
        digest.update(repr(_flow_tuple(flow)).encode())
    return digest.hexdigest()


class TestGoldenFingerprints:
    """Pinned before the samplers were factored out of
    :mod:`repro.flowsim.scenario`; these hashes are the proof the dedup
    left every hybrid-sweep draw bit-identical."""

    def test_default_config_unseeded(self):
        flows = generate_flows(Environment(), ScenarioConfig())
        assert _flows_fingerprint(flows) == (
            "83cfff751e3b12d9d06455a08ae48dbf1fe9bc98bdcdc63f5a262b265e8d250b"
        )

    def test_default_config_seed_5(self):
        flows = generate_flows(Environment(seed=5), ScenarioConfig())
        assert _flows_fingerprint(flows) == (
            "0ac2b5d8147ffc40e74cf7ef6538823a60edda1f47fe6aa75fc0710595d9b102"
        )

    def test_burst_heavy_config(self):
        flows = generate_flows(Environment(), ScenarioConfig(
            num_flows=500, incast_fraction=0.1, aggregation_fraction=0.1,
        ))
        assert _flows_fingerprint(flows) == (
            "7c8dcf90a8e478bab7dc3491cab94cfcf2420113d474bbe7d38636b07bd8ca70"
        )


# ---------------------------------------------------------------------------
# Fluid adapter: the widened escalation taxonomy
# ---------------------------------------------------------------------------


class TestFluidRuns:
    def test_microburst_class_fires(self):
        result = run_fluid(get_scenario("microburst"), 1500)
        assert result.escalations.get("microburst", 0) > 0
        assert "ddos" not in result.escalations
        assert len(result.records) == 1500

    def test_ddos_class_fires(self):
        result = run_fluid(get_scenario("ddos"), 1500)
        assert result.escalations.get("ddos", 0) > 0
        assert "microburst" not in result.escalations

    def test_all_families_complete(self):
        for name in available_scenarios():
            result = run_fluid(get_scenario(name), 400)
            assert result.scenario == name
            assert len(result.records) == 400
            assert result.summary["flows"] == 400
            assert result.sim_seconds > 0
            assert result.simulated_payload_bytes > 0

    def test_websearch_mostly_fluid(self):
        """The bread-and-butter family must not lean on escalation —
        that would forfeit the hybrid speedup it exists to exercise."""
        result = run_fluid(get_scenario("websearch"), 1500)
        escalated = sum(result.escalations.values())
        assert escalated < 150


# ---------------------------------------------------------------------------
# Packet adapter vs the firewall -> telemetry chain
# ---------------------------------------------------------------------------


class TestPacketValidation:
    def test_ddos_flood_trips_firewall(self):
        """The acceptance check: the DDoS mix, compiled to packets,
        must drive the firewall's per-source policers and blocklist —
        spoofed sources concentrate the flood on a 4-address pool."""
        trace = packet_stream(get_scenario("ddos"), 4096)
        compiled = compile_chain(TRAFFIC_CHAIN)
        result = run_chain(compiled.spec, compiled.nfs,
                           ["trio", "trio"], trace)
        firewall = result.nf_counters["firewall"]
        assert firewall["packets_dropped_policer"] > 0
        assert firewall["sources_blocked"] > 0
        dropped = sum(t[1] for t in result.flow_verdicts.values())
        forwarded = sum(t[0] for t in result.flow_verdicts.values())
        assert dropped > 0
        assert forwarded > 0  # background traffic still flows

    def test_ddos_attack_packets_use_spoofed_pool(self):
        # FlowKey is (src_ip, dst_ip, src_port, dst_port) as ints.
        scenario = get_scenario("ddos")
        trace = packet_stream(scenario, 2048)
        attack_srcs = {pkt.flow[0] for pkt in trace
                       if pkt.flow[3] == 443}
        assert 0 < len(attack_srcs) <= scenario.spoofed_sources
        spoof_prefix = (10 << 8) | 99  # 10.99.0.0/16
        assert all(src >> 16 == spoof_prefix for src in attack_srcs)

    def test_heavy_hitter_exports_from_telemetry(self):
        """Zipf-skewed traffic through a telemetry NF with a matched
        threshold must export heavy hitters; the default 128-per-epoch
        threshold is tuned for line-rate traces, so the test lowers it
        rather than inflating the stream."""
        trace = packet_stream(get_scenario("heavy-hitter"), 4096,
                              max_packets_per_flow=32)
        telemetry = TelemetryNF(heavy_hitter_packets_per_epoch=4)
        result = run_chain("telemetry", [telemetry], ["trio"], trace)
        exports = result.nf_exports["telemetry"]
        assert len(exports) > 0
        tracked = result.nf_counters["telemetry"]["flows_tracked"]
        assert tracked > len(exports)  # hitters are the skewed few

    def test_benign_scenario_passes_clean(self):
        """The websearch mix must not trip the firewall: per-flow
        source ports spread the load far below the policer budgets."""
        trace = packet_stream(get_scenario("websearch"), 2048)
        firewall = FirewallNF()
        result = run_chain("firewall", [firewall], ["trio"], trace)
        counters = result.nf_counters["firewall"]
        # Counters are sparse: an event that never fired has no key.
        assert counters.get("sources_blocked", 0) == 0

    def test_stream_respects_flow_sizes(self):
        """A one-MTU flow contributes exactly one packet; a long flow
        is capped at max_packets_per_flow."""
        scenario = get_scenario("cache")
        env = Environment()
        flows = scenario.generate(env, 256)
        trace = packet_stream(scenario, 10_000, num_flows=256,
                              max_packets_per_flow=4)
        # Total packets = sum of per-flow trains, all emitted.
        expected = sum(
            min(4, max(1, math.ceil(f.size_bytes / 1458.0)))
            for f in flows
        )
        assert len(trace) == min(10_000, expected)

    def test_packet_stream_validates_args(self):
        with pytest.raises(ValueError):
            packet_stream(get_scenario("cache"), 0)


# ---------------------------------------------------------------------------
# Fabric shape
# ---------------------------------------------------------------------------


class TestFabricShape:
    def test_host_addressing_roundtrip(self):
        fabric = FabricShape()
        names = fabric.host_names()
        assert len(names) == fabric.num_hosts == 64
        assert names[0] == "h00-00"
        assert fabric.host_address(17) == (1, 1)

    def test_aggregate_access_bandwidth(self):
        fabric = FabricShape(leaves=2, hosts_per_leaf=4,
                             host_bandwidth_bps=10e9)
        assert fabric.aggregate_access_bps == pytest.approx(80e9)
