"""Tests for the vMX virtual router (VCP commit model, VFP timing)."""

import pytest

from repro.net import Host, IPv4Address, MACAddress, Topology
from repro.sim import Environment
from repro.trio import GENERATIONS, PFE, TrioApplication
from repro.trio.vmx import VMX_VFP_CONFIG, VirtualMX


def wire_pair(env, device_port_a, device_port_b):
    topo = Topology(env)
    h0 = Host(env, "h0", MACAddress(1), IPv4Address("10.0.0.1"))
    h1 = Host(env, "h1", MACAddress(2), IPv4Address("10.0.0.2"))
    topo.connect(h0.nic.port, device_port_a)
    topo.connect(h1.nic.port, device_port_b)
    return h0, h1


class TestVCP:
    def test_changes_take_effect_only_on_commit(self):
        env = Environment()
        vmx = VirtualMX(env)
        h0, h1 = wire_pair(env, vmx.port(0), vmx.port(1))
        vmx.vcp.set_route(h1.ip, f"{vmx.vfp.name}.p1")
        assert vmx.vcp.pending_changes == 1

        def send():
            yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"early")

        env.process(send())
        env.run(until=1e-3)
        assert vmx.vfp.packets_dropped == 1  # no route yet

        vmx.vcp.commit("add host route")
        assert vmx.vcp.pending_changes == 0
        assert vmx.vcp.committed_version == 1

        def send2():
            yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"after commit")

        def recv():
            packet = yield h1.recv()
            return packet.parse_udp()[3]

        env.process(send2())
        p = env.process(recv())
        assert env.run(until=p) == b"after commit"

    def test_rollback_discards_candidate(self):
        env = Environment()
        vmx = VirtualMX(env)
        vmx.vcp.set_route(IPv4Address("10.0.0.2"), f"{vmx.vfp.name}.p1")
        assert vmx.vcp.rollback() == 1
        assert vmx.vcp.pending_changes == 0
        vmx.vcp.commit()
        assert IPv4Address("10.0.0.2") not in vmx.vfp.route_table

    def test_application_install_via_commit(self):
        env = Environment()
        vmx = VirtualMX(env)

        class App(TrioApplication):
            pass

        app = App()
        vmx.vcp.set_application(app)
        assert vmx.vfp.app is None
        vmx.vcp.commit()
        assert vmx.vfp.app is app

    def test_commit_history(self):
        env = Environment()
        vmx = VirtualMX(env)
        vmx.vcp.set_route(IPv4Address("10.0.0.2"), f"{vmx.vfp.name}.p0")
        vmx.vcp.commit("first")
        vmx.vcp.commit("empty")
        assert [c.version for c in vmx.vcp.history] == [1, 2]
        assert vmx.vcp.history[0].description == "first"


class TestVFPTiming:
    def test_vfp_config_is_software_class(self):
        hw = GENERATIONS[5]
        assert VMX_VFP_CONFIG.num_ppes < hw.num_ppes
        assert VMX_VFP_CONFIG.num_rmw_engines < hw.num_rmw_engines
        # Software atomics deliver far fewer adds per second than the
        # hardware RMW complex.
        assert VMX_VFP_CONFIG.rmw_add32_rate_ops_s < hw.rmw_add32_rate_ops_s / 5

    def test_same_application_runs_slower_on_vmx(self):
        """Trio-ML runs unmodified on the VFP, with lower throughput."""
        from repro.harness import build_single_pfe_testbed
        from repro.trioml import TrioMLJobConfig

        def run(chipset):
            env = Environment()
            config = TrioMLJobConfig(grads_per_packet=256, window=8)
            testbed = build_single_pfe_testbed(
                env, config, num_workers=4, chipset=chipset
            )
            vector = [1] * (256 * 16)
            procs = testbed.run_allreduce([vector] * 4)
            env.run(until=env.all_of(procs))
            first = procs[0].value
            assert all(b.values == [4] * 256 for b in first)
            return env.now

    # hardware gen-5 vs x86 VFP
        hw_time = run(None)
        vfp_time = run(VMX_VFP_CONFIG)
        assert vfp_time > hw_time
