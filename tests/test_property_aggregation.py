"""Property-based end-to-end tests: aggregation is exact summation.

Whatever the gradient values, worker count, block size, and window, both
in-network aggregation systems must return the exact per-index int32 sum
to every worker — the core correctness invariant of the reproduction.
"""

from hypothesis import given, settings, strategies as st

from repro.harness import build_single_pfe_testbed
from repro.net import IPv4Address, MACAddress, Topology
from repro.sim import Environment
from repro.switchml import SwitchMLWorker
from repro.switchml.switch import SwitchMLJob, build_switchml_switch
from repro.trioml import TrioMLJobConfig

_small_int32 = st.integers(min_value=-2**24, max_value=2**24)


@settings(max_examples=15, deadline=None)
@given(
    num_workers=st.integers(min_value=2, max_value=4),
    grads_per_packet=st.sampled_from([16, 64, 160]),
    window=st.integers(min_value=1, max_value=6),
    num_gradients=st.integers(min_value=1, max_value=400),
    data=st.data(),
)
def test_trioml_allreduce_is_exact_summation(num_workers, grads_per_packet,
                                             window, num_gradients, data):
    env = Environment()
    config = TrioMLJobConfig(grads_per_packet=grads_per_packet,
                             window=window)
    testbed = build_single_pfe_testbed(env, config,
                                       num_workers=num_workers)
    vectors = [
        data.draw(st.lists(_small_int32, min_size=num_gradients,
                           max_size=num_gradients))
        for __ in range(num_workers)
    ]
    expected = [sum(v[i] for v in vectors) for i in range(num_gradients)]
    procs = testbed.run_allreduce(vectors)
    env.run(until=env.all_of(procs))
    for proc in procs:
        flat = [v for block in proc.value for v in block.values]
        assert flat[:num_gradients] == expected
        assert all(block.src_cnt == num_workers for block in proc.value)


@settings(max_examples=10, deadline=None)
@given(
    num_workers=st.integers(min_value=2, max_value=3),
    pool_size=st.integers(min_value=1, max_value=4),
    num_gradients=st.integers(min_value=1, max_value=300),
    data=st.data(),
)
def test_switchml_allreduce_is_exact_summation(num_workers, pool_size,
                                               num_gradients, data):
    env = Environment()
    job = SwitchMLJob(num_workers=num_workers, pool_size=pool_size,
                      grads_per_packet=64)
    switch, __ = build_switchml_switch(env, job)
    topo = Topology(env)
    workers = []
    for index in range(num_workers):
        ip = IPv4Address(f"10.0.0.{index + 1}")
        mac = MACAddress(index + 1)
        job.add_worker(index, ip, mac)
        worker = SwitchMLWorker(env, f"w{index}", index, job, mac, ip)
        topo.connect(worker.nic.port, switch.port(0, index))
        switch.add_route(ip, switch.port(0, index).name)
        workers.append(worker)
    vectors = [
        data.draw(st.lists(_small_int32, min_size=num_gradients,
                           max_size=num_gradients))
        for __ in range(num_workers)
    ]
    expected = [sum(v[i] for v in vectors) for i in range(num_gradients)]
    procs = [env.process(w.allreduce(v))
             for w, v in zip(workers, vectors)]
    env.run(until=env.all_of(procs))
    for proc in procs:
        assert proc.value == expected


@settings(max_examples=8, deadline=None)
@given(
    loss_seedling=st.integers(min_value=1, max_value=1000),
    num_gradients=st.integers(min_value=32, max_value=256),
)
def test_trioml_exact_under_loss_with_recovery(loss_seedling,
                                               num_gradients):
    """Loss never corrupts sums, only delays them (with recovery on)."""
    env = Environment()
    config = TrioMLJobConfig(grads_per_packet=32, window=4,
                             loss_recovery=True,
                             retransmit_timeout_s=0.001)
    testbed = build_single_pfe_testbed(
        env, config, num_workers=3, link_loss_rate=0.05,
    )
    # Distinct per-worker constants make cross-contamination visible.
    vectors = [[(w + 1) * 7] * num_gradients for w in range(3)]
    expected_value = 7 + 14 + 21
    procs = testbed.run_allreduce(vectors)
    env.run(until=env.all_of(procs))
    for proc in procs:
        flat = [v for block in proc.value for v in block.values]
        assert flat[:num_gradients] == [expected_value] * num_gradients
