"""Tests for the packet tracer."""

import pytest

from repro.net import (
    Host,
    IPv4Address,
    MACAddress,
    Packet,
    PacketTracer,
    Topology,
)
from repro.sim import Environment
from repro.trio import PFE


def two_hosts_one_pfe():
    env = Environment()
    pfe = PFE(env, "pfe1", num_ports=2)
    topo = Topology(env)
    h0 = Host(env, "h0", MACAddress(1), IPv4Address("10.0.0.1"))
    h1 = Host(env, "h1", MACAddress(2), IPv4Address("10.0.0.2"))
    topo.connect(h0.nic.port, pfe.port(0))
    topo.connect(h1.nic.port, pfe.port(1))
    pfe.add_route(h1.ip, "pfe1.p1")
    return env, pfe, h0, h1


class TestPacketTracer:
    def test_captures_rx_and_tx(self):
        env, pfe, h0, h1 = two_hosts_one_pfe()
        tracer = PacketTracer()
        tracer.tap(pfe.port(0))
        tracer.tap(pfe.port(1))

        def send():
            yield h0.send_udp(h1.mac, h1.ip, 1000, 2000, b"traced")

        env.process(send())
        env.run(until=1e-3)
        counts = tracer.counts_by_port()
        assert counts[("pfe1.p0", "rx")] == 1
        assert counts[("pfe1.p1", "tx")] == 1

    def test_capture_does_not_perturb_forwarding(self):
        env, pfe, h0, h1 = two_hosts_one_pfe()
        tracer = PacketTracer()
        tracer.tap(pfe.port(0))

        def send():
            yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"x")

        def recv():
            packet = yield h1.recv()
            return packet.parse_udp()[3]

        env.process(send())
        p = env.process(recv())
        assert env.run(until=p) == b"x"

    def test_summary_includes_five_tuple(self):
        env, pfe, h0, h1 = two_hosts_one_pfe()
        tracer = PacketTracer()
        tracer.tap(pfe.port(0), directions=("rx",))

        def send():
            yield h0.send_udp(h1.mac, h1.ip, 1234, 5678, b"payload")

        env.process(send())
        env.run(until=1e-3)
        frame = tracer.frames[0]
        assert "10.0.0.1:1234 > 10.0.0.2:5678" in frame.summary
        assert frame.direction == "rx"
        assert frame.length == 14 + 20 + 8 + 7

    def test_non_udp_summarised_by_ethertype(self):
        env, pfe, h0, h1 = two_hosts_one_pfe()
        tracer = PacketTracer()
        tracer.tap(pfe.port(0), directions=("rx",))
        from repro.net.headers import EthernetHeader
        ether = EthernetHeader(h1.mac, h0.mac, ethertype=0x0806)

        def send():
            yield h0.nic.send(Packet(ether.pack() + bytes(46)))

        env.process(send())
        env.run(until=1e-3)
        assert "ethertype=0x0806" in tracer.frames[0].summary

    def test_non_udp_ip_summarised_at_ip_layer(self):
        env, pfe, h0, h1 = two_hosts_one_pfe()
        tracer = PacketTracer()
        tracer.tap(pfe.port(0), directions=("rx",))
        from repro.net.headers import (
            ETHERTYPE_IPV4, EthernetHeader, IPv4Header,
        )
        ether = EthernetHeader(h1.mac, h0.mac, ethertype=ETHERTYPE_IPV4)
        payload = b"\x00" * 32
        ip = IPv4Header(src=h0.ip, dst=h1.ip, protocol=6,  # TCP, not UDP
                        total_length=20 + len(payload))

        def send():
            yield h0.nic.send(Packet(ether.pack() + ip.pack() + payload))

        env.process(send())
        env.run(until=1e-3)
        summary = tracer.frames[0].summary
        assert "10.0.0.1 > 10.0.0.2" in summary
        assert "proto=6" in summary
        assert "ethertype" not in summary

    def test_captures_recorded_as_obs_events(self):
        from repro.obs import bus

        env, pfe, h0, h1 = two_hosts_one_pfe()
        tracer = PacketTracer()
        tracer.tap(pfe.port(0))
        session = bus.enable()
        try:
            def send():
                yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"x")

            env.process(send())
            env.run(until=1e-3)
        finally:
            bus.disable()
        frames = session.registry.get("net.frames")
        assert frames.value(direction="rx", port="pfe1.p0") == 1
        exported = session.tracer.export()
        marks = [e for e in exported["events"]
                 if e[0] == "i" and e[1] == "net/pfe1.p0"]
        assert len(marks) == len(tracer.frames)

    def test_filter_and_at_port(self):
        env, pfe, h0, h1 = two_hosts_one_pfe()
        tracer = PacketTracer()
        tracer.tap(pfe.port(0))
        tracer.tap(pfe.port(1))

        def send():
            for __ in range(3):
                yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"x")

        env.process(send())
        env.run(until=1e-3)
        assert len(tracer.at_port("pfe1.p0")) == 3
        big = tracer.filter(lambda f: f.length > 10_000)
        assert big == []

    def test_capacity_cap(self):
        env, pfe, h0, h1 = two_hosts_one_pfe()
        tracer = PacketTracer(max_frames=2)
        tracer.tap(pfe.port(0), directions=("rx",))

        def send():
            for __ in range(5):
                yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"x")

        env.process(send())
        env.run(until=1e-3)
        assert len(tracer.frames) == 2
        assert tracer.dropped_capacity == 3

    def test_render(self):
        env, pfe, h0, h1 = two_hosts_one_pfe()
        tracer = PacketTracer()
        tracer.tap(pfe.port(0))

        def send():
            for __ in range(3):
                yield h0.send_udp(h1.mac, h1.ip, 1, 2, b"x")

        env.process(send())
        env.run(until=1e-3)
        rendered = tracer.render(limit=2)
        assert "pfe1.p0" in rendered
        assert "1 more frames" in rendered

    def test_unknown_direction_rejected(self):
        env = Environment()
        from repro.net import Port
        tracer = PacketTracer()
        with pytest.raises(ValueError):
            tracer.tap(Port(env, "p"), directions=("sideways",))
