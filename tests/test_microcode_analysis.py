"""Static-analysis tests: the bad-program corpus, clean builtins, the
compiler integration, and disassembly round-trips.

``tests/corpus/*.mc`` are deliberately defective programs, one seeded
defect class per file; each test asserts the analyzer reports the
expected diagnostic *code* anchored with a real source location.
"""

import os

import pytest

from repro.microcode import (
    AnalysisError,
    BUILTIN_PROGRAMS,
    TrioCompiler,
    analyze_program,
    disassemble,
)
from repro.microcode.analysis import analyze_program as analyze_direct, main

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")


def _analyze_corpus(filename, entry="main", externs=("out",)):
    path = os.path.join(CORPUS, filename)
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    compiler = TrioCompiler(extern_labels=externs)
    program = compiler.compile(source, entry=entry)
    return analyze_program(program, source=source, filename=path)


def _codes(report):
    return {diag.code for diag in report.diagnostics}


# ---------------------------------------------------------------------------
# The seeded-defect corpus.
# ---------------------------------------------------------------------------

def test_corpus_goto_loop_reports_mc201():
    report = _analyze_corpus("goto_loop.mc", externs=())
    assert "MC201" in _codes(report)
    assert report.errors
    diag = next(d for d in report.diagnostics if d.code == "MC201")
    assert diag.severity == "error"
    assert diag.span is not None and diag.span.line > 0
    assert "goto_loop.mc" in diag.span.filename
    assert not report.entry_budget().bounded


def test_corpus_use_before_def_reports_mc101():
    report = _analyze_corpus("use_before_def.mc")
    assert "MC101" in _codes(report)
    diag = next(d for d in report.diagnostics if d.code == "MC101")
    assert diag.severity == "error"
    assert "r0" in diag.message
    # The span must point into the entry body, not at the reg decl.
    assert diag.span.line >= 7


def test_corpus_bad_pointer_reports_layout_errors():
    report = _analyze_corpus("bad_pointer.mc")
    codes = _codes(report)
    assert "MC301" in codes  # binding extent leaves LMEM
    assert "MC303" in codes  # field the struct never defines
    assert all(
        d.severity == "error"
        for d in report.diagnostics if d.code in ("MC301", "MC303")
    )


def test_corpus_bad_pointer_respects_lmem_size():
    # With a large enough LMEM the extent errors disappear; the
    # undefined field remains.
    path = os.path.join(CORPUS, "bad_pointer.mc")
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    program = TrioCompiler(extern_labels=("out",)).compile(source, entry="main")
    report = analyze_direct(program, source=source, lmem_bytes=4096)
    codes = _codes(report)
    assert "MC301" not in codes
    assert "MC302" not in codes
    assert "MC303" in codes


def test_corpus_unreachable_reports_mc103():
    report = _analyze_corpus("unreachable.mc")
    assert "MC103" in _codes(report)
    diag = next(d for d in report.diagnostics if d.code == "MC103")
    assert diag.severity == "warning"
    assert "orphan" in diag.message
    assert "orphan" not in report.reachable
    assert not report.errors  # dead code alone is not an error


def test_corpus_cli_exit_codes(capsys):
    loop = os.path.join(CORPUS, "goto_loop.mc")
    assert main([loop]) == 1
    out = capsys.readouterr().out
    assert "MC201" in out and "goto_loop.mc" in out
    # Warnings alone pass, unless --werror.
    orphan = os.path.join(CORPUS, "unreachable.mc")
    assert main([orphan, "--extern", "out"]) == 0
    capsys.readouterr()
    assert main([orphan, "--extern", "out", "--werror"]) == 1


# ---------------------------------------------------------------------------
# Builtins must be clean, bounded, and round-trippable.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(BUILTIN_PROGRAMS))
def test_builtin_programs_analyze_clean(name):
    spec = BUILTIN_PROGRAMS[name]
    program = spec.compile()
    report = analyze_program(program, source=spec.source)
    assert report.clean, report.render()
    budget = report.entry_budget()
    assert budget.bounded
    assert 1 <= budget.instructions < 100


@pytest.mark.parametrize("name", sorted(BUILTIN_PROGRAMS))
def test_builtin_programs_compile_under_analyze_error(name):
    spec = BUILTIN_PROGRAMS[name]
    program = spec.compile(analyze="error")
    assert program.analysis is not None
    assert program.analysis.clean


def test_builtins_cli_gate_passes():
    assert main(["--builtins", "--werror"]) == 0


@pytest.mark.parametrize("name", sorted(BUILTIN_PROGRAMS))
def test_builtin_disassembly_round_trips(name):
    spec = BUILTIN_PROGRAMS[name]
    program = spec.compile()
    text = disassemble(program)
    reprogram = TrioCompiler(extern_labels=spec.extern_labels).compile(
        text, entry=spec.entry
    )
    assert disassemble(reprogram) == text
    for struct, layout in program.structs.items():
        assert reprogram.structs[struct].total_bits == layout.total_bits
    # The round-tripped program is just as clean.
    assert analyze_program(reprogram, source=text).clean


@pytest.mark.parametrize("name", sorted(BUILTIN_PROGRAMS))
def test_disassembly_carries_analysis_annotations(name):
    spec = BUILTIN_PROGRAMS[name]
    program = spec.compile()
    report = analyze_program(program, source=spec.source)
    text = disassemble(program, analysis=report)
    assert "// analysis:" in text
    assert "worst case from here:" in text


# ---------------------------------------------------------------------------
# Compiler integration.
# ---------------------------------------------------------------------------

LOOP_SOURCE = """
main:
begin
    goto main;
end
"""


def test_compiler_analyze_error_rejects_divergence():
    compiler = TrioCompiler(analyze="error")
    with pytest.raises(AnalysisError) as excinfo:
        compiler.compile(LOOP_SOURCE)
    assert any(d.code == "MC201" for d in excinfo.value.diagnostics)


def test_compiler_analyze_warn_attaches_report(capsys):
    compiler = TrioCompiler(analyze="warn")
    program = compiler.compile(LOOP_SOURCE)
    assert program.analysis is not None
    assert any(d.code == "MC201" for d in program.analysis.diagnostics)
    assert "MC201" in capsys.readouterr().err


def test_compiler_analyze_off_skips_analysis():
    program = TrioCompiler().compile(LOOP_SOURCE)
    assert program.analysis is None


def test_compiler_rejects_unknown_analyze_mode():
    with pytest.raises(ValueError):
        TrioCompiler(analyze="strict")


def test_data_dependent_loop_is_warning_not_error():
    source = """
reg r0;

main:
begin
    r0 = 0;
    goto step;
end

step:
begin
    r0 = r0 + 1;
    if (r0 == 8) {
        goto out;
    }
    goto step;
end
"""
    program = TrioCompiler(extern_labels=("out",)).compile(source)
    report = analyze_program(program, source=source)
    codes = _codes(report)
    assert "MC203" in codes
    assert "MC201" not in codes
    assert not report.errors
    assert not report.entry_budget().bounded
