"""Unit tests for the hardware hash table and its REF flags."""

import pytest

from repro.sim import Environment
from repro.trio import HardwareHashTable


@pytest.fixture
def table_env():
    env = Environment()
    table = HardwareHashTable(env, num_buckets=64, op_latency_s=70e-9)
    return env, table


def run(env, generator):
    proc = env.process(generator)
    return env.run(until=proc)


class TestBasicOps:
    def test_insert_lookup_delete(self, table_env):
        env, table = table_env

        def proc():
            yield from table.insert(("job", 1), "record")
            record = yield from table.lookup(("job", 1))
            existed = yield from table.delete(("job", 1))
            gone = yield from table.lookup(("job", 1))
            return record.value, existed, gone

        value, existed, gone = run(env, proc())
        assert value == "record"
        assert existed is True
        assert gone is None
        assert len(table) == 0

    def test_insert_overwrites_value(self, table_env):
        env, table = table_env

        def proc():
            yield from table.insert("k", 1)
            yield from table.insert("k", 2)
            record = yield from table.lookup("k")
            return record.value

        assert run(env, proc()) == 2
        assert len(table) == 1

    def test_delete_missing_returns_false(self, table_env):
        env, table = table_env

        def proc():
            existed = yield from table.delete("ghost")
            return existed

        assert run(env, proc()) is False

    def test_insert_if_absent_returns_winner(self, table_env):
        env, table = table_env

        def proc():
            first, created1 = yield from table.insert_if_absent("k", "a")
            second, created2 = yield from table.insert_if_absent("k", "b")
            return first, created1, second, created2

        first, created1, second, created2 = run(env, proc())
        assert created1 and not created2
        assert second is first
        assert first.value == "a"

    def test_ops_charge_latency(self, table_env):
        env, table = table_env

        def proc():
            yield from table.insert("k", 1)
            yield from table.lookup("k")
            return env.now

        assert run(env, proc()) == pytest.approx(2 * 70e-9)

    def test_op_counters(self, table_env):
        env, table = table_env

        def proc():
            yield from table.insert("k", 1)
            yield from table.lookup("k")
            yield from table.delete("k")

        run(env, proc())
        assert (table.inserts, table.lookups, table.deletes) == (1, 1, 1)


class TestRefFlags:
    def test_set_on_create(self, table_env):
        env, table = table_env

        def proc():
            record = yield from table.insert("k", 1)
            return record

        record = run(env, proc())
        assert record.ref_flag is True

    def test_lookup_resets_flag(self, table_env):
        env, table = table_env

        def proc():
            record = yield from table.insert("k", 1)
            record.ref_flag = False  # timer thread cleared it
            yield from table.lookup("k")
            return record

        record = run(env, proc())
        assert record.ref_flag is True

    def test_get_nowait_does_not_touch_flag(self, table_env):
        env, table = table_env

        def proc():
            record = yield from table.insert("k", 1)
            record.ref_flag = False
            return record

        record = run(env, proc())
        assert table.get_nowait("k") is record
        assert record.ref_flag is False


class TestSegments:
    def test_bounds_cover_all_buckets(self, table_env):
        __, table = table_env
        covered = []
        for segment in range(7):
            start, end = table.segment_bounds(segment, 7)
            covered.extend(range(start, end))
        assert sorted(covered) == list(range(table.num_buckets))

    def test_bad_segment_rejected(self, table_env):
        __, table = table_env
        with pytest.raises(ValueError):
            table.segment_bounds(7, 7)

    def test_segments_partition_records(self, table_env):
        env, table = table_env
        for i in range(200):
            table.insert_nowait(("job", i), i)
        seen = []
        for segment in range(5):
            seen.extend(r.key for r in table.segment_records(segment, 5))
        assert sorted(seen) == sorted(("job", i) for i in range(200))

    def test_scan_segment_charges_per_record(self, table_env):
        env, table = table_env
        for i in range(100):
            table.insert_nowait(i, i)

        def proc():
            records = yield from table.scan_segment(0, 1)
            return len(records), env.now

        count, now = run(env, proc())
        assert count == 100
        assert now == pytest.approx(100 * table.scan_entry_latency_s)


class TestControlPlane:
    def test_insert_nowait_and_delete_nowait(self, table_env):
        __, table = table_env
        table.insert_nowait("k", "v")
        assert len(table) == 1
        assert table.delete_nowait("k") is True
        assert table.delete_nowait("k") is False
        assert len(table) == 0

    def test_all_records_iterates_everything(self, table_env):
        __, table = table_env
        for i in range(50):
            table.insert_nowait(i, i)
        assert sorted(r.key for r in table.all_records()) == list(range(50))

    def test_bucket_count_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            HardwareHashTable(env, num_buckets=0)
