#!/usr/bin/env python3
"""In-network DDoS mitigation on the datapath (§7).

A volumetric attacker floods a server through a Trio PFE running the
:class:`~repro.apps.security.DDoSMitigator` application: per-source
policers absorb the first burst, timer threads review offenders and move
the attacker onto the blocklist, and once the attack subsides, the
REF-flag quiet-interval analysis rehabilitates the source — §5's
temporary-vs-permanent straggler analysis, applied to attackers.

Run:  python examples/ddos_mitigation.py
"""

from repro.apps import DDoSMitigator
from repro.net import Host, IPv4Address, MACAddress, Topology
from repro.sim import Environment
from repro.trio import PFE


def main() -> None:
    env = Environment()
    pfe = PFE(env, "pfe1", num_ports=3)
    app = pfe.install_app(
        DDoSMitigator(
            allowed_pps=100_000,
            packet_size_hint=100,
            burst_packets=16,
            strike_threshold=2,
            review_threads=4,
            review_period_s=100e-6,
        )
    )

    topo = Topology(env)
    attacker = Host(env, "attacker", MACAddress(1), IPv4Address("10.0.0.1"))
    legit = Host(env, "legit", MACAddress(2), IPv4Address("10.0.0.2"))
    victim = Host(env, "victim", MACAddress(3), IPv4Address("10.0.0.3"))
    topo.connect(attacker.nic.port, pfe.port(0))
    topo.connect(legit.nic.port, pfe.port(1))
    topo.connect(victim.nic.port, pfe.port(2))
    pfe.add_route(victim.ip, "pfe1.p2")

    def attack():
        # ~1M packets/s for 3 ms, 10x the allowed per-source rate.
        for __ in range(3000):
            yield attacker.send_udp(victim.mac, victim.ip, 666, 80,
                                    b"A" * 72)
            yield env.timeout(1e-6)

    def legitimate():
        for __ in range(30):
            yield env.timeout(200e-6)
            yield legit.send_udp(victim.mac, victim.ip, 5, 80, b"legit")

    delivered = {"attack": 0, "legit": 0}

    def victim_rx():
        while True:
            packet = yield victim.recv()
            __, ip, __, payload = packet.parse_udp()
            delivered["legit" if payload == b"legit" else "attack"] += 1

    env.process(attack())
    env.process(legitimate())
    env.process(victim_rx())
    env.run(until=12e-3)

    print("attack: 3000 packets at ~10x the per-source budget\n")
    for event in app.events:
        source = IPv4Address(event.source_ip)
        print(f"  t={event.time * 1e3:6.2f} ms  {event.action:<8} {source} "
              f"(strikes={event.strikes})")
    print(f"\nvictim received {delivered['attack']} attack packets "
          f"(of 3000) and {delivered['legit']}/30 legitimate packets")
    print(f"dropped at the first instruction of the datapath: "
          f"{app.packets_blocked}")
    print(f"currently blocked: "
          f"{[str(IPv4Address(s)) for s in app.blocked_sources] or 'nobody'} "
          "(attacker rehabilitated after going quiet)")


if __name__ == "__main__":
    main()
