#!/usr/bin/env python3
"""In-network telemetry: a heavy-hitter monitor on Trio (§7).

§7 proposes telemetry as a future Trio use case: "service providers can
leverage Trio's large memory to keep track of incoming packets" and
"Trio's timer threads are suitable for periodic monitoring".  The
:class:`~repro.apps.telemetry.TelemetryMonitor` application implements
exactly that: per-flow Packet/Byte Counters updated at line rate (no
sampling), timer-thread sweeps that export flows above a rate threshold,
and REF-flag-based retirement of idle flow state.

Run:  python examples/telemetry_heavy_hitters.py
"""

from repro.apps import TelemetryMonitor
from repro.net import Host, IPv4Address, MACAddress, Topology
from repro.sim import Environment
from repro.trio import PFE


def main() -> None:
    env = Environment()
    pfe = PFE(env, "pfe1", num_ports=2)
    monitor = pfe.install_app(
        TelemetryMonitor(
            heavy_hitter_pps=100_000,   # export flows above 100 kpps
            scan_threads=4,
            scan_period_s=200e-6,
        )
    )

    src = Host(env, "src", MACAddress(1), IPv4Address("10.0.0.1"))
    dst = Host(env, "dst", MACAddress(2), IPv4Address("10.0.0.2"))
    topo = Topology(env)
    topo.connect(src.nic.port, pfe.port(0))
    topo.connect(dst.nic.port, pfe.port(1))
    pfe.add_route(dst.ip, "pfe1.p1")

    def traffic():
        # One elephant flow and a handful of mice.
        for i in range(300):
            yield src.send_udp(dst.mac, dst.ip, 7777, 80, b"x" * 400)
            if i % 10 == 0:
                yield src.send_udp(dst.mac, dst.ip, 8000 + i, 80, b"y" * 60)
            yield env.timeout(2e-6)

    env.process(traffic())
    env.run(until=4e-3)

    heavy = {report.flow for report in monitor.reports}
    print(f"flows tracked: {monitor.flows_tracked} total, "
          f"{len(pfe.hash_table)} live, {monitor.flows_retired} retired "
          "as idle")
    print(f"heavy-hitter reports: {len(monitor.reports)} "
          f"({len(heavy)} distinct flows)")
    for flow in sorted(heavy):
        src_ip = IPv4Address(flow[0])
        peak = max(r.packets_per_s for r in monitor.reports
                   if r.flow == flow)
        print(f"  heavy hitter: {src_ip}:{flow[2]} -> port {flow[3]} "
              f"(peak {peak / 1e3:.0f} kpps)")
    print(f"packets forwarded at line rate meanwhile: "
          f"{pfe.packets_forwarded}")


if __name__ == "__main__":
    main()
