#!/usr/bin/env python3
"""In-network aggregation for distributed training (§4, Figure 11b).

Builds the paper's hierarchical testbed — six GPU servers, three on PFE1
and three on PFE2, PFE4 as the top-level aggregator — and runs one
allreduce of real float gradients through the full Trio-ML data path:
ATP-style int32 quantisation, window-based streaming, per-PFE partial
aggregation, fabric hops to the top level, and multicast of the final
Result packets.

Run:  python examples/in_network_aggregation.py
"""

import numpy as np

from repro.harness import build_hierarchical_testbed
from repro.ml import GradientQuantizer
from repro.sim import Environment
from repro.trioml import TrioMLJobConfig


def main() -> None:
    num_workers = 6
    num_gradients = 8192
    rng = np.random.default_rng(7)

    env = Environment()
    config = TrioMLJobConfig(grads_per_packet=1024, window=8)
    testbed = build_hierarchical_testbed(env, config)

    # Each worker computed its own float gradients on its mini-batch.
    float_grads = [
        rng.normal(scale=0.01, size=num_gradients) for __ in range(num_workers)
    ]
    expected_mean = np.mean(float_grads, axis=0)

    quantizer = GradientQuantizer(scale=1e6, num_workers=num_workers)
    vectors = [quantizer.quantize(g) for g in float_grads]

    procs = testbed.run_allreduce(vectors)
    env.run(until=env.all_of(procs))

    # Every worker received the same multicast results; check worker 0.
    results = procs[0].value
    ticks = [v for block in results for v in block.values][:num_gradients]
    mean = np.asarray(quantizer.dequantize_mean(ticks, num_workers))
    error = float(np.max(np.abs(mean - expected_mean)))

    print(f"aggregated {num_gradients} gradients across {num_workers} "
          f"workers in {env.now * 1e6:.1f} us (simulated)")
    print(f"max |error| vs exact float mean: {error:.2e} "
          f"(quantisation step {1 / quantizer.scale:.0e})")
    top = testbed.handle.aggregator
    print(f"top-level PFE: {top.packets_aggregated} packets, "
          f"{top.gradients_aggregated} gradients aggregated")
    for name, aggregator in testbed.handle.aggregators.items():
        mean_lat = (
            sum(aggregator.packet_latencies) / len(aggregator.packet_latencies)
            if aggregator.packet_latencies else 0.0
        )
        print(f"  {name}: mean per-packet time in Trio "
              f"{mean_lat * 1e6:.2f} us")


if __name__ == "__main__":
    main()
