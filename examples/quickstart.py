#!/usr/bin/env python3
"""Quickstart: simulate a Trio PFE forwarding traffic between two hosts.

Builds the smallest possible testbed — one PFE, two hosts — and pushes a
UDP packet through the full data path: NIC, link, Dispatch module, a PPE
thread, the Reorder Engine, and the egress port.

Run:  python examples/quickstart.py
"""

from repro.net import Host, IPv4Address, MACAddress, Topology
from repro.sim import Environment
from repro.trio import PFE


def main() -> None:
    env = Environment()

    # One Trio gen-5 PFE with two 100 Gbps ports.
    pfe = PFE(env, "pfe1", num_ports=2)

    alice = Host(env, "alice", MACAddress("02:00:00:00:00:01"),
                 IPv4Address("10.0.0.1"))
    bob = Host(env, "bob", MACAddress("02:00:00:00:00:02"),
               IPv4Address("10.0.0.2"))

    topo = Topology(env)
    topo.add_host(alice)
    topo.add_host(bob)
    topo.connect(alice.nic.port, pfe.port(0))
    topo.connect(bob.nic.port, pfe.port(1))

    # Host routes: the PFE forwards by destination IP.
    pfe.add_route(alice.ip, "pfe1.p0")
    pfe.add_route(bob.ip, "pfe1.p1")

    def alice_sends():
        for i in range(3):
            payload = f"hello #{i}".encode()
            yield alice.send_udp(bob.mac, bob.ip, 5000, 6000, payload)

    def bob_receives():
        for __ in range(3):
            packet = yield bob.recv()
            __, ip, udp, payload = packet.parse_udp()
            print(
                f"t={env.now * 1e6:7.3f} us  bob got {payload!r} "
                f"from {ip.src}:{udp.src_port}"
            )

    env.process(alice_sends())
    done = env.process(bob_receives())
    env.run(until=done)

    print(f"\nPFE stats: {pfe.packets_in} in, {pfe.packets_forwarded} "
          f"forwarded, {pfe.packets_dropped} dropped")
    print(f"threads spawned across {len(pfe.ppes)} PPEs: "
          f"{sum(p.threads_spawned for p in pfe.ppes)}")


if __name__ == "__main__":
    main()
