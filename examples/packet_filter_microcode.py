#!/usr/bin/env python3
"""The §3.2 Microcode example: compile and run the packet filter.

Compiles the paper's filtering application with the Trio Compiler (TC),
installs it on a simulated PFE, sends a mix of traffic through, and reads
the Packet/Byte Counters back out of the Shared Memory System — exactly
the Figure 5 workflow.

Run:  python examples/packet_filter_microcode.py
"""

from repro.microcode.programs import (
    FILTER_PROGRAM_SOURCE,
    build_filter_executor,
)
from repro.net import Host, IPv4Address, MACAddress, Packet, Topology
from repro.net.headers import ETHERTYPE_ARP, EthernetHeader
from repro.sim import Environment
from repro.trio import PFE, TrioApplication


class FilterApp(TrioApplication):
    """Wraps the compiled Microcode program as a PFE application."""

    name = "ip-filter"

    def on_install(self, pfe):
        self.pfe = pfe
        # Two 16-byte Packet/Byte Counters (Figure 6 layout).
        self.counter_base = pfe.memory.alloc(32, region="sram", align=16)
        self.executor = build_filter_executor(self.counter_base)

    def handle_packet(self, tctx, pctx):
        yield from self.executor.run(tctx, pctx)


def main() -> None:
    print("Compiling the filter program with TC …")
    program = build_filter_executor().program
    print(f"  {program.num_instructions} instructions: "
          f"{sorted(program.instructions)}")
    for name, budget in program.budgets.items():
        print(f"  {name:<16} reg reads={budget.reg_reads} "
              f"mem reads={budget.mem_reads} "
              f"reg writes={budget.reg_writes}")

    env = Environment()
    pfe = PFE(env, "pfe1", num_ports=2)
    app = pfe.install_app(FilterApp())

    src = Host(env, "src", MACAddress(1), IPv4Address("10.0.0.1"))
    dst = Host(env, "dst", MACAddress(2), IPv4Address("10.0.0.2"))
    topo = Topology(env)
    topo.connect(src.nic.port, pfe.port(0))
    topo.connect(dst.nic.port, pfe.port(1))
    pfe.add_route(dst.ip, "pfe1.p1")

    def traffic():
        # 5 clean IPv4/UDP packets: forwarded.
        for i in range(5):
            yield src.send_udp(dst.mac, dst.ip, 1000, 2000, b"data" * 8)
        # 3 non-IP frames (ARP): dropped, counted.
        for i in range(3):
            ether = EthernetHeader(dst=dst.mac, src=src.mac,
                                   ethertype=ETHERTYPE_ARP)
            yield src.nic.send(Packet(ether.pack() + bytes(46)))

    env.process(traffic())
    env.run(until=env.now + 1e-3)

    non_ip = pfe.memory.read_raw(app.counter_base, 16)
    ip_opt = pfe.memory.read_raw(app.counter_base + 16, 16)
    print(f"\nforwarded: {pfe.packets_forwarded}, dropped: "
          f"{pfe.packets_dropped}")
    print("non-IP counter:     packets="
          f"{int.from_bytes(non_ip[:8], 'little')} "
          f"bytes={int.from_bytes(non_ip[8:], 'little')}")
    print("IP-options counter: packets="
          f"{int.from_bytes(ip_opt[:8], 'little')} "
          f"bytes={int.from_bytes(ip_opt[8:], 'little')}")


if __name__ == "__main__":
    main()
