#!/usr/bin/env python3
"""Head-to-head: SwitchML on Tofino vs Trio-ML on Trio, with a straggler.

Runs the same small allreduce twice at packet level:

* SwitchML on the PISA model — its pool slots need **every** worker, so a
  straggling worker stalls everyone for the full straggle duration;
* Trio-ML on the Trio model with timer-thread straggler detection — the
  healthy workers receive partial results within ~2x the timeout.

This is the packet-level mechanism behind the Figure 13 gap.  The same
two systems also exist as closed-form plugins in the collective-backend
registry (``repro.collectives``); the run ends by asking each backend
what it *predicts* the straggle costs, so you can see the packet level
and the training-level model agree.

Run:  python examples/switchml_vs_trioml.py
"""

from repro.collectives import get_backend
from repro.harness import build_single_pfe_testbed
from repro.net import IPv4Address, MACAddress, Topology
from repro.sim import Environment
from repro.switchml import SwitchMLWorker
from repro.switchml.switch import SwitchMLJob, build_switchml_switch
from repro.trioml import TrioMLJobConfig

NUM_WORKERS = 4
GRADS_PER_PACKET = 64
BLOCKS = 8
STRAGGLE_S = 0.030  # 30 ms sleep before chunk 2
TIMEOUT_S = 0.005   # Trio-ML detection timeout


def straggle_hook(worker_index):
    if worker_index != 3:
        return None
    return lambda chunk_id: STRAGGLE_S if chunk_id == 2 else 0.0


def run_switchml() -> float:
    env = Environment()
    job = SwitchMLJob(num_workers=NUM_WORKERS, pool_size=4,
                      grads_per_packet=GRADS_PER_PACKET)
    switch, __ = build_switchml_switch(env, job)
    topo = Topology(env)
    workers = []
    for index in range(NUM_WORKERS):
        ip = IPv4Address(f"10.0.0.{index + 1}")
        mac = MACAddress(index + 1)
        job.add_worker(index, ip, mac)
        worker = SwitchMLWorker(
            env, f"w{index}", index, job, mac, ip,
            straggle_hook=straggle_hook(index),
        )
        topo.connect(worker.nic.port, switch.port(0, index))
        switch.add_route(ip, switch.port(0, index).name)
        workers.append(worker)
    vector = [1] * (GRADS_PER_PACKET * BLOCKS)
    procs = [env.process(w.allreduce(vector)) for w in workers]
    finish = {}

    def watch(index, proc):
        yield proc
        finish[index] = env.now

    for index, proc in enumerate(procs):
        env.process(watch(index, proc))
    env.run(until=env.all_of(procs))
    healthy = max(t for i, t in finish.items() if i != 3)
    return healthy


def run_trioml() -> float:
    env = Environment()
    config = TrioMLJobConfig(
        grads_per_packet=GRADS_PER_PACKET, window=4,
        timeout_s=TIMEOUT_S, detector_threads=10,
    )
    testbed = build_single_pfe_testbed(
        env, config, num_workers=NUM_WORKERS, with_detector=True,
        hook_factory=straggle_hook,
    )
    vector = [1] * (GRADS_PER_PACKET * BLOCKS)
    procs = testbed.run_allreduce([vector] * NUM_WORKERS)
    finish = {}

    def watch(index, proc):
        yield proc
        finish[index] = env.now

    for index, proc in enumerate(procs):
        env.process(watch(index, proc))
    env.run(until=env.all_of(procs))
    healthy = max(t for i, t in finish.items() if i != 3)
    return healthy


def closed_form_predictions() -> dict:
    """What each registered backend predicts the straggle costs.

    The backends' ``iteration_duration`` encapsulates exactly the
    semantics the packet level just demonstrated: SwitchML absorbs the
    straggler's full delay, Trio-ML caps it at the detection bound.
    """
    delays = {3: STRAGGLE_S}
    predictions = {}
    for name in ("switchml", "trioml"):
        backend = get_backend(name)
        duration, mitigated = backend.iteration_duration(
            compute_s=0.0, comm_s=0.0, delays=delays,
            mitigation_bound_s=2 * TIMEOUT_S,
        )
        predictions[name] = (backend.display_name, duration, mitigated)
    return predictions


def main() -> None:
    switchml_s = run_switchml()
    trioml_s = run_trioml()
    print(f"one worker straggles for {STRAGGLE_S * 1e3:.0f} ms mid-allreduce\n")
    print(f"SwitchML: healthy workers finish at {switchml_s * 1e3:7.2f} ms "
          "(stalled for the whole straggle)")
    print(f"Trio-ML:  healthy workers finish at {trioml_s * 1e3:7.2f} ms "
          f"(partial results within ~2x the {TIMEOUT_S * 1e3:.0f} ms timeout)")
    print(f"\nspeedup for the healthy workers: {switchml_s / trioml_s:.2f}x")

    print("\nclosed-form backends (repro.collectives) predict the same "
          "straggle overhead:")
    for name, (label, duration, mitigated) in (
            closed_form_predictions().items()):
        tag = "mitigated" if mitigated else "absorbed in full"
        print(f"  {label:<14} +{duration * 1e3:6.2f} ms ({tag})")


if __name__ == "__main__":
    main()
