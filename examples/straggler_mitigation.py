#!/usr/bin/env python3
"""In-network straggler mitigation with timer threads (§5).

Four servers aggregate through one PFE; one of them straggles for 80 ms —
far beyond the 10 ms detection timeout.  Trio's timer threads scan the
aggregation hash table, find the aged-out blocks via their REF flags, and
multicast partial (degraded) results so the healthy servers keep moving.
The run prints when each server finished and what the degraded results
reported, then asks the ``trioml`` collective backend
(``repro.collectives``) what the same straggle would cost a training
iteration — the closed-form view of the mechanism just simulated.

Run:  python examples/straggler_mitigation.py
"""

from repro.collectives import get_backend
from repro.harness import build_single_pfe_testbed
from repro.sim import Environment
from repro.trioml import TrioMLJobConfig


def main() -> None:
    env = Environment()
    config = TrioMLJobConfig(
        grads_per_packet=256,
        window=8,
        timeout_s=0.010,       # 10 ms straggler timeout (§6.1)
        detector_threads=20,
    )

    straggle_s = 0.080

    def hook_factory(worker_index):
        if worker_index != 3:
            return None
        # Server 4 sleeps 80 ms before sending block 2 (and therefore
        # everything after it) — a transient slow worker.
        return lambda block_id: straggle_s if block_id == 2 else 0.0

    testbed = build_single_pfe_testbed(
        env, config, num_workers=4, with_detector=True,
        hook_factory=hook_factory,
    )

    blocks = 6
    vector = [1] * (config.grads_per_packet * blocks)
    procs = testbed.run_allreduce([vector] * 4)

    finish_times = {}

    def watch(index, proc):
        yield proc
        finish_times[index] = env.now

    for index, proc in enumerate(procs):
        env.process(watch(index, proc))
    env.run(until=env.all_of(procs))

    print(f"straggler slept {straggle_s * 1e3:.0f} ms; "
          f"detection timeout {config.timeout_s * 1e3:.0f} ms\n")
    for index, proc in enumerate(procs):
        degraded = [b for b in proc.value if b.degraded]
        tag = " (the straggler)" if index == 3 else ""
        print(f"server{index + 1}{tag}: finished at "
              f"{finish_times[index] * 1e3:6.2f} ms, "
              f"{len(degraded)} degraded blocks "
              f"{[(b.block_id, b.src_cnt) for b in degraded]}")

    detector = next(iter(testbed.handle.detectors.values()))
    print(f"\ntimer threads fired {testbed.handle.aggregator.pfe.timers.groups[0].firings} times, "
          f"scanned {detector.records_scanned} records, "
          f"mitigated {len(detector.mitigations)} blocks")
    for event in detector.mitigations:
        print(f"  block {event.block_id}: aged out after "
              f"{event.waited_s * 1e3:.2f} ms with {event.rcvd_cnt}/4 sources")
    print("\nnon-straggling servers recovered within ~2x the timeout, "
          "instead of waiting the full straggle (Figure 14).")

    # The registry view: the same semantics as a closed-form backend.
    backend = get_backend("trioml")
    bound_s = 1.5 * config.timeout_s
    duration, mitigated = backend.iteration_duration(
        compute_s=0.0, comm_s=0.0, delays={3: straggle_s},
        mitigation_bound_s=bound_s,
    )
    assert mitigated
    print(f"\nthe {backend.display_name} collective backend prices this "
          f"straggle at +{duration * 1e3:.0f} ms per training iteration "
          f"(capped at the {bound_s * 1e3:.0f} ms detection bound, "
          f"not the full {straggle_s * 1e3:.0f} ms)")


if __name__ == "__main__":
    main()
