#!/usr/bin/env python3
"""vMX: the same Microcode, virtualised on x86 (§3.1).

Juniper's vMX runs the Microcode engine on commodity servers behind a
Junos control plane (a virtual control plane driving a virtual
forwarding plane).  This example:

1. installs the §3.2 filter program on a vMX through the VCP's
   candidate/commit configuration flow, and shows traffic only passes
   after ``commit``;
2. runs the *unmodified* Trio-ML aggregation application on both a
   hardware gen-5 PFE and the vMX VFP and compares completion time —
   the portability §3.1 promises, at software speed.

Run:  python examples/vmx_virtual_router.py
"""

from repro.harness import build_single_pfe_testbed
from repro.microcode.programs import build_filter_executor
from repro.net import Host, IPv4Address, MACAddress, Topology
from repro.sim import Environment
from repro.trio import TrioApplication, VirtualMX
from repro.trio.vmx import VMX_VFP_CONFIG
from repro.trioml import TrioMLJobConfig


class FilterApp(TrioApplication):
    """The §3.2 filter, reusable on any forwarding plane."""

    name = "ip-filter"

    def on_install(self, pfe):
        base = pfe.memory.alloc(32, region="sram", align=16)
        self.executor = build_filter_executor(base)

    def handle_packet(self, tctx, pctx):
        yield from self.executor.run(tctx, pctx)


def demo_commit_flow() -> None:
    env = Environment()
    vmx = VirtualMX(env, "vmx1", num_ports=2)
    src = Host(env, "src", MACAddress(1), IPv4Address("10.0.0.1"))
    dst = Host(env, "dst", MACAddress(2), IPv4Address("10.0.0.2"))
    topo = Topology(env)
    topo.connect(src.nic.port, vmx.port(0))
    topo.connect(dst.nic.port, vmx.port(1))

    # Stage configuration on the VCP candidate...
    vmx.vcp.set_application(FilterApp())
    vmx.vcp.set_route(dst.ip, f"{vmx.vfp.name}.p1")

    def send(tag):
        yield src.send_udp(dst.mac, dst.ip, 1, 2, tag)

    env.process(send(b"before commit"))
    env.run(until=1e-3)
    print(f"before commit: {vmx.vfp.packets_dropped} packet dropped "
          "(no route on the VFP yet)")

    version = vmx.vcp.commit("filter + host route")
    print(f"committed configuration version {version}")

    env.process(send(b"after commit"))

    def recv():
        packet = yield dst.recv()
        return packet.parse_udp()[3]

    p = env.process(recv())
    payload = env.run(until=p)
    print(f"after commit: delivered {payload!r}\n")


def aggregation_time(chipset) -> float:
    env = Environment()
    config = TrioMLJobConfig(grads_per_packet=512, window=16)
    testbed = build_single_pfe_testbed(env, config, num_workers=4,
                                       chipset=chipset)
    vector = [1] * (512 * 64)
    procs = testbed.run_allreduce([vector] * 4)
    env.run(until=env.all_of(procs))
    assert all(block.values == [4] * 512 for block in procs[0].value)
    return env.now


def main() -> None:
    demo_commit_flow()

    hw_s = aggregation_time(None)             # gen-5 silicon
    vmx_s = aggregation_time(VMX_VFP_CONFIG)  # Microcode on x86

    print("the unmodified Trio-ML application on both forwarding planes")
    print("(4 workers x 64 blocks x 512 gradients):")
    print(f"  gen-5 PFE (96 PPEs, 12 RMW engines):  "
          f"{hw_s * 1e6:8.1f} us")
    print(f"  vMX VFP   (8 cores, software atomics): "
          f"{vmx_s * 1e6:8.1f} us  ({vmx_s / hw_s:.1f}x slower)")
    print("\nsame binary-compatible behaviour, software-defined speed — "
          "vMX's trade (§3.1).")


if __name__ == "__main__":
    main()
