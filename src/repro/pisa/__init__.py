"""PISA (Protocol Independent Switch Architecture) pipeline model.

The baseline in the paper's evaluation is SwitchML running on an Intel
Tofino switch.  This package models the architectural properties of PISA
devices that the paper contrasts with Trio (§1, §8):

* all packets traverse the **same fixed sequence of match-action stages**
  at line rate — per-packet work is bounded by the stage count;
* each stage owns its **register arrays**; a packet may perform at most
  one read-modify-write per register array per pass, and **pipelines
  cannot access each other's registers**;
* more work than one pass allows requires **recirculation**, which
  consumes pipeline bandwidth and adds latency;
* there are **no timer threads**: processing happens only when a packet
  arrives — the crux of why straggler mitigation is so hard on PISA
  (§5 "Trio to the rescue").
"""

from repro.pisa.pipeline import (
    P4Program,
    PipelineError,
    PisaPipeline,
    RegisterArray,
    StageContext,
)
from repro.pisa.tofino import TofinoSwitch

__all__ = [
    "P4Program",
    "PipelineError",
    "PisaPipeline",
    "RegisterArray",
    "StageContext",
    "TofinoSwitch",
]
