"""The PISA match-action pipeline.

A :class:`PisaPipeline` has a fixed number of stages; each stage owns
register arrays allocated by the installed :class:`P4Program`.  Packets
traverse every stage in order at line rate.  Per-packet register-access
constraints are enforced at run time via :class:`StageContext`: a program
that touches a register array twice in one pass, or touches an array from
the wrong stage, raises :class:`PipelineError` — exactly the class of
restriction that makes rich per-packet processing (and partial/timed
behaviour) so hard on PISA devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.net.packet import Packet
from repro.sim import Environment, Store

__all__ = [
    "ComposedProgram",
    "P4Program",
    "PipelineError",
    "PisaPipeline",
    "RegisterArray",
    "StageContext",
]


class PipelineError(Exception):
    """A P4 program violated a PISA architectural constraint."""


class RegisterArray:
    """A stateful register array owned by one stage.

    ``width_bits`` is the element width (Tofino supports up to 64-bit
    pairs; SwitchML uses 32-bit values); ``size`` is the element count.
    """

    def __init__(self, name: str, stage: int, size: int, width_bits: int = 32):
        if width_bits not in (8, 16, 32, 64):
            raise PipelineError(
                f"register {name!r}: unsupported width {width_bits}"
            )
        if size < 1:
            raise PipelineError(f"register {name!r}: size must be >= 1")
        self.name = name
        self.stage = stage
        self.size = size
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        self._values = [0] * size
        self.accesses = 0

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise PipelineError(
                f"register {self.name!r}: index {index} outside 0..{self.size - 1}"
            )

    def read_raw(self, index: int) -> int:
        """Control-plane read (no per-packet constraint)."""
        self._check_index(index)
        return self._values[index]

    def write_raw(self, index: int, value: int) -> None:
        """Control-plane write (no per-packet constraint)."""
        self._check_index(index)
        self._values[index] = value & self._mask

    @property
    def bits(self) -> int:
        """SRAM footprint of this array."""
        return self.size * self.width_bits


class StageContext:
    """Run-time guard enforcing per-pass stage and register constraints.

    Handed to the P4 program for each packet pass.  The program must call
    :meth:`stage` in non-decreasing order and may access each register
    array at most once per pass, only while in its owning stage.
    """

    #: Register actions one stage can perform on one packet pass
    #: (representative of Tofino's per-stage ALU budget).  SwitchML-64
    #: fits 64 gradients in one pass; SwitchML-256 does not, which is why
    #: it needs all four pipelines (§6.1).
    MAX_ACCESSES_PER_STAGE = 6

    def __init__(self, pipeline: "PisaPipeline"):
        self._pipeline = pipeline
        self._current_stage = 0
        self._touched: Set[str] = set()
        self._stage_accesses = 0

    @property
    def current_stage(self) -> int:
        return self._current_stage

    def stage(self, index: int) -> None:
        """Advance to stage ``index`` (monotonically forward only)."""
        if index < self._current_stage:
            raise PipelineError(
                f"cannot move backwards from stage {self._current_stage} to "
                f"{index}; recirculate instead"
            )
        if index >= self._pipeline.num_stages:
            raise PipelineError(
                f"stage {index} beyond pipeline depth "
                f"{self._pipeline.num_stages}"
            )
        if index != self._current_stage:
            self._stage_accesses = 0
        self._current_stage = index

    def _check(self, reg: RegisterArray) -> None:
        if reg.stage != self._current_stage:
            raise PipelineError(
                f"register {reg.name!r} lives in stage {reg.stage}, accessed "
                f"from stage {self._current_stage}"
            )
        if reg.name in self._touched:
            raise PipelineError(
                f"register {reg.name!r} accessed twice in one pass; PISA "
                "allows one RMW per register per packet"
            )
        if self._stage_accesses >= self.MAX_ACCESSES_PER_STAGE:
            raise PipelineError(
                f"stage {self._current_stage} exceeded its per-pass budget "
                f"of {self.MAX_ACCESSES_PER_STAGE} register actions"
            )
        self._stage_accesses += 1
        self._touched.add(reg.name)

    def read(self, reg: RegisterArray, index: int) -> int:
        """One-shot read of a register element."""
        self._check(reg)
        reg.accesses += 1
        return reg.read_raw(index)

    def write(self, reg: RegisterArray, index: int, value: int) -> None:
        """One-shot write of a register element."""
        self._check(reg)
        reg.accesses += 1
        reg.write_raw(index, value)

    def read_modify_write(
        self, reg: RegisterArray, index: int,
        fn: Callable[[int], int],
    ) -> Tuple[int, int]:
        """Atomic RMW of one element; returns (old, new)."""
        self._check(reg)
        reg.accesses += 1
        old = reg.read_raw(index)
        new = fn(old)
        reg.write_raw(index, new)
        return old, reg.read_raw(index)


@dataclass
class PassResult:
    """Outcome of one pipeline pass."""

    #: Packets to emit (packet, egress port name or None for flood/none).
    emit: List[Tuple[Packet, Optional[str]]] = field(default_factory=list)
    #: Recirculate this packet for another pass.
    recirculate: bool = False
    #: Drop (nothing emitted, no recirculation).
    dropped: bool = False


class P4Program:
    """Base class for programs installed on a PISA pipeline.

    ``process(ctx, packet, pass_index)`` runs once per pipeline pass and
    returns a :class:`PassResult`.  Register arrays are declared through
    :meth:`register` at install time; total per-stage SRAM is checked
    against the stage budget.
    """

    name = "p4-program"

    def __init__(self):
        self.registers: Dict[str, RegisterArray] = {}
        self.pipeline: Optional["PisaPipeline"] = None

    def register(self, name: str, stage: int, size: int,
                 width_bits: int = 32) -> RegisterArray:
        """Declare a register array in ``stage``."""
        if name in self.registers:
            raise PipelineError(f"duplicate register {name!r}")
        reg = RegisterArray(name, stage, size, width_bits)
        self.registers[name] = reg
        return reg

    def on_install(self, pipeline: "PisaPipeline") -> None:
        """Hook for resource declaration; default does nothing."""

    def process(self, ctx: StageContext, packet: Packet,
                pass_index: int) -> PassResult:
        """Process one pass; default drops everything."""
        return PassResult(dropped=True)


class ComposedProgram(P4Program):
    """Several stage-disjoint programs sharing one pipeline.

    Built by :meth:`PisaPipeline.install_many`.  Sub-programs run in
    installation order within the same pass; a sub-program signals
    "continue to the next program" by emitting the original packet (the
    standard forwarding idiom), and the composed program defers that
    emission until the last sub-program has run.  A drop, consume, or
    recirculation by any sub-program ends the pass there — exactly how a
    dropped packet never reaches later stages of a physical pipeline.
    Extra packets (results, clones) are emitted immediately.
    """

    name = "composed"

    def __init__(self, programs: List[P4Program]):
        super().__init__()
        self.programs = list(programs)
        for program in self.programs:
            self.registers.update(program.registers)

    def process(self, ctx: StageContext, packet: Packet,
                pass_index: int) -> PassResult:
        final = PassResult()
        egress: Optional[str] = None
        for program in self.programs:
            result = program.process(ctx, packet, pass_index)
            forwarded = False
            for out_packet, out_egress in result.emit:
                if out_packet is packet:
                    forwarded = True
                    egress = out_egress
                else:
                    final.emit.append((out_packet, out_egress))
            if result.recirculate:
                final.recirculate = True
                return final
            if not forwarded:
                final.dropped = result.dropped
                return final
        final.emit.append((packet, egress))
        return final


class PisaPipeline:
    """One ingress-to-egress pipeline with fixed stages and line-rate flow.

    Timing model: every pass takes ``pass_latency_s`` (parser + stages +
    deparser) and the pipeline admits packets at ``packet_rate_pps``
    (line-rate packet budget shared by fresh and recirculated packets, so
    recirculation halves usable bandwidth, as on real hardware).
    """

    #: Per-stage register SRAM budget in bits (representative of Tofino).
    STAGE_SRAM_BITS = 1_280_000

    def __init__(
        self,
        env: Environment,
        name: str,
        num_stages: int = 12,
        pass_latency_s: float = 600e-9,
        packet_rate_pps: float = 1.0e9,
    ):
        self.env = env
        self.name = name
        self.num_stages = num_stages
        self.pass_latency_s = pass_latency_s
        self.packet_rate_pps = packet_rate_pps
        self.program: Optional[P4Program] = None
        self._intake: Store = Store(env)
        self._emit_handler: Optional[Callable[[Packet, Optional[str]], None]] = None
        self.passes = 0
        self.recirculations = 0
        self.drops = 0
        env.process(self._pipeline_loop(), name=f"pisa:{name}")

    def _validate_registers(self, registers: List[RegisterArray]) -> None:
        """Check stage range and per-stage SRAM for a register set."""
        per_stage_bits: Dict[int, int] = {}
        for reg in registers:
            if not 0 <= reg.stage < self.num_stages:
                raise PipelineError(
                    f"register {reg.name!r} placed in stage {reg.stage}, "
                    f"pipeline has {self.num_stages} stages"
                )
            per_stage_bits[reg.stage] = per_stage_bits.get(reg.stage, 0) + reg.bits
        for stage, bits in sorted(per_stage_bits.items()):
            if bits > self.STAGE_SRAM_BITS:
                raise PipelineError(
                    f"stage {stage} needs {bits} register bits, budget is "
                    f"{self.STAGE_SRAM_BITS}"
                )

    def install(self, program: P4Program) -> P4Program:
        """Install a program, validating its register placement."""
        program.pipeline = self
        program.on_install(self)
        self._validate_registers(list(program.registers.values()))
        self.program = program
        return program

    def install_many(self, programs: List[P4Program]) -> ComposedProgram:
        """Install several programs side by side (stage-disjoint).

        Multi-tenancy on one pipeline: each program keeps its own
        registers, but no stage may be shared between two programs and
        no register name may collide — both raise :class:`PipelineError`
        naming the offending programs, as does blowing a stage's SRAM
        budget.  Returns the :class:`ComposedProgram` that now owns the
        pass loop.
        """
        if not programs:
            raise PipelineError("install_many needs at least one program")
        owner_by_register: Dict[str, str] = {}
        owner_by_stage: Dict[int, str] = {}
        for program in programs:
            program.pipeline = self
            program.on_install(self)
            for reg in program.registers.values():
                if reg.name in owner_by_register:
                    raise PipelineError(
                        f"register {reg.name!r} declared by both "
                        f"{owner_by_register[reg.name]!r} and "
                        f"{program.name!r}"
                    )
                owner_by_register[reg.name] = program.name
                stage_owner = owner_by_stage.get(reg.stage)
                if stage_owner is not None and stage_owner != program.name:
                    raise PipelineError(
                        f"stage {reg.stage} used by both {stage_owner!r} "
                        f"and {program.name!r}; composed programs must be "
                        "stage-disjoint"
                    )
                owner_by_stage[reg.stage] = program.name
        self._validate_registers(
            [reg for program in programs
             for reg in program.registers.values()]
        )
        composed = ComposedProgram(programs)
        composed.pipeline = self
        self.program = composed
        return composed

    def set_emit_handler(
        self, handler: Callable[[Packet, Optional[str]], None]
    ) -> None:
        """Install the function that receives emitted packets."""
        self._emit_handler = handler

    def submit(self, packet: Packet) -> None:
        """Offer a packet to the pipeline (from a port or recirculation)."""
        self._intake.put_nowait((packet, 0))

    def _pipeline_loop(self):
        while True:
            packet, pass_index = yield self._intake.get()
            # Line-rate admission: one packet per 1/pps.
            yield self.env.delay(1.0 / self.packet_rate_pps)
            self.env.process(
                self._run_pass(packet, pass_index),
                name=f"pisa:{self.name}:pass",
            )

    def _run_pass(self, packet: Packet, pass_index: int):
        yield self.env.delay(self.pass_latency_s)
        self.passes += 1
        if self.program is None:
            self.drops += 1
            return
        ctx = StageContext(self)
        result = self.program.process(ctx, packet, pass_index)
        for out_packet, egress in result.emit:
            if self._emit_handler is not None:
                self._emit_handler(out_packet, egress)
        if result.recirculate:
            self.recirculations += 1
            self._intake.put_nowait((packet, pass_index + 1))
        elif result.dropped:
            self.drops += 1
