"""A Tofino-class switch: four independent PISA pipelines (§6.1).

Ports are statically assigned to pipelines (16×100 Gbps per pipeline on
the testbed's 64×100 Gbps switch).  Pipelines cannot access each other's
registers; traffic that must touch state in another pipeline has to cross
via recirculation — which is why SwitchML performs best when all workers
share one pipeline (§6.1) and why the paper connects all six servers to a
single pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.addressing import IPv4Address
from repro.net.headers import HeaderError, IPv4Header
from repro.net.link import Port
from repro.net.packet import Packet
from repro.sim import Environment
from repro.pisa.pipeline import P4Program, PisaPipeline

__all__ = ["TofinoSwitch"]


class TofinoSwitch:
    """A multi-pipeline PISA switch with port-to-pipeline mapping."""

    def __init__(
        self,
        env: Environment,
        name: str = "tofino",
        num_pipelines: int = 4,
        ports_per_pipeline: int = 16,
        pass_latency_s: float = 600e-9,
        packet_rate_pps: float = 1.0e9,
    ):
        self.env = env
        self.name = name
        self.pipelines: List[PisaPipeline] = [
            PisaPipeline(
                env,
                name=f"{name}.pipe{i}",
                pass_latency_s=pass_latency_s,
                packet_rate_pps=packet_rate_pps,
            )
            for i in range(num_pipelines)
        ]
        self.ports: List[Port] = []
        self._port_pipeline: Dict[str, int] = {}
        for pipe_idx in range(num_pipelines):
            for port_idx in range(ports_per_pipeline):
                port = Port(
                    env,
                    name=f"{name}.pipe{pipe_idx}.p{port_idx}",
                    rx_handler=self._on_rx,
                )
                self.ports.append(port)
                self._port_pipeline[port.name] = pipe_idx
        self._ports_by_name = {p.name: p for p in self.ports}
        for i, pipeline in enumerate(self.pipelines):
            pipeline.set_emit_handler(self._emit)
        #: L3 forwarding table used for plain (non-program) traffic and for
        #: program emissions without an explicit egress port.
        self.route_table: Dict[IPv4Address, str] = {}

    def port(self, pipeline: int, index: int) -> Port:
        """The ``index``-th port of ``pipeline``."""
        return self._ports_by_name[f"{self.name}.pipe{pipeline}.p{index}"]

    def install(self, pipeline_index: int, program: P4Program) -> P4Program:
        """Install ``program`` on one pipeline.

        Each pipeline needs its own program instance: PISA pipelines have
        *independent* register state and cannot share (§2.1).  Use
        :meth:`install_all` with a factory to program several pipelines.
        """
        return self.pipelines[pipeline_index].install(program)

    def install_all(self, program_factory) -> List[P4Program]:
        """Install one fresh program instance per pipeline."""
        return [
            pipeline.install(program_factory())
            for pipeline in self.pipelines
        ]

    def add_route(self, dst: IPv4Address, port_name: str) -> None:
        if port_name not in self._ports_by_name:
            raise ValueError(f"unknown port {port_name!r}")
        self.route_table[IPv4Address(dst)] = port_name

    # ------------------------------------------------------------------

    def _on_rx(self, packet: Packet, port: Port) -> None:
        pipeline = self.pipelines[self._port_pipeline[port.name]]
        packet.meta["tofino_ingress"] = port.name
        pipeline.submit(packet)

    def _emit(self, packet: Packet, egress: Optional[str]) -> None:
        if egress is not None:
            port = self._ports_by_name.get(egress)
            if port is not None:
                port.send(packet)
            return
        dst = self._destination_ip(packet)
        if dst is not None and dst in self.route_table:
            self._ports_by_name[self.route_table[dst]].send(packet)

    @staticmethod
    def _destination_ip(packet: Packet) -> Optional[IPv4Address]:
        try:
            __, rest = packet.parse_ethernet()
            ip, __ = IPv4Header.parse(rest, verify_checksum=False)
            return ip.dst
        except HeaderError:
            return None

    def __repr__(self) -> str:
        return f"<TofinoSwitch {self.name} pipes={len(self.pipelines)}>"
