"""Dynamic happens-before race validator for shared data-plane state.

The static MC4xx pass (:mod:`repro.microcode.analysis`) proves atomicity
properties about *Microcode programs*; this module validates the same
contract at *runtime* over everything the simulator executes — Microcode
or native application handlers.  When enabled, every shared-memory XTXN
in :mod:`repro.trio.memory` and every hash-block operation in
:mod:`repro.trio.hashtable` records a **window**: the actor (PPE thread
id), the byte extent touched, whether the operation is engine-serialized
(RMW) or plain, and the simulated-time interval from issue to
completion.  :meth:`RaceCheckSession.analyze` then searches the recorded
windows for happens-before violations:

* **lost update** — one actor performs a plain read followed by a plain
  write of an overlapping shared extent, and some *other* actor's write
  (plain or RMW) commits strictly inside that read→write span.  This is
  the runtime shadow of the static ``MC401``: whatever the other thread
  wrote is silently overwritten.
* **concurrent conflict** — two *plain* accesses from different actors,
  at least one a write, touch overlapping extents in strictly
  overlapping time windows.  The FCFS engine will pick an order, but
  the outcome depends on arrival timing — the runtime shadow of
  ``MC402``.

RMW-vs-anything overlaps are never flagged: delegation to the engine
owning the address *is* the §2.3 synchronization contract (this is why
the fig14 straggler path — a timer thread's ``bulk_read`` racing a
straggler's ``bulk_add32`` — is correct and stays quiet).

Zero-overhead contract (mirrors :mod:`repro.obs.bus`): the module-level
``session()`` returns ``None`` until :func:`enable` installs a
:class:`RaceCheckSession`; call sites hoist one ``session()`` check, so
a disabled run records nothing and adds no simulation events either way
— figures are bit-identical with the checker on or off.

Determinism contract (detlint-enforced): no wall clock, no randomness;
every timestamp is simulated seconds passed in by the call site.

Run the CI scenarios from the command line::

    python -m repro.tools.racecheck builtins --expect-clean
    python -m repro.tools.racecheck injected --expect-races 1
    python -m repro.tools.racecheck fig14 --expect-clean
"""

from __future__ import annotations

import argparse
import itertools
import sys
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "RaceCheckSession",
    "RaceFinding",
    "enable",
    "disable",
    "enabled",
    "session",
    "main",
]

#: Bucket granule for the pair search — matches the RMW engine address
#: interleave, so accesses that could meet at an engine share a bucket.
_BUCKET_BYTES = 64


@dataclass(frozen=True)
class RaceFinding:
    """One detected happens-before violation."""

    kind: str                 # "lost_update" | "concurrent_conflict"
    space: str                # "mem" | "hash"
    lo: int                   # overlapping extent [lo, hi)
    hi: int
    actors: Tuple[str, str]   # (victim, other) for lost updates
    window: Tuple[float, float]
    detail: str

    def describe(self) -> str:
        start, end = self.window
        return (f"{self.kind}: {self.space}[{self.lo:#x}..{self.hi:#x}) "
                f"actors {self.actors[0]} vs {self.actors[1]} during "
                f"[{start * 1e9:.1f}ns, {end * 1e9:.1f}ns): {self.detail}")


class _Access:
    """One recorded shared-state access window."""

    __slots__ = ("actor", "op", "atomic", "space", "addr", "size",
                 "start", "end", "index")

    def __init__(self, actor: str, op: str, atomic: bool, space: str,
                 addr: int, size: int, start: float, end: float,
                 index: int):
        self.actor = actor
        self.op = op            # "read" | "write"
        self.atomic = atomic    # served by an RMW engine / hash block
        self.space = space
        self.addr = addr
        self.size = size
        self.start = start
        self.end = end
        self.index = index

    def overlaps_extent(self, other: "_Access") -> bool:
        return (self.space == other.space
                and self.addr < other.addr + other.size
                and other.addr < self.addr + self.size)

    def overlaps_window(self, other: "_Access") -> bool:
        return self.start < other.end and other.start < self.end


class RaceCheckSession:
    """An active recording of shared-state access windows."""

    def __init__(self) -> None:
        self.accesses: List[_Access] = []
        self._anon = itertools.count()
        self._actor_names: Dict[object, str] = {}
        self._hash_keys: Dict[Hashable, int] = {}
        #: Per-op commits observed at the RMW engines while recording
        #: (engine index -> count); populated by :mod:`repro.trio.rmw`.
        self.engine_commits: Dict[int, int] = {}

    # -- recording (called from the trio models) ------------------------

    def record(self, actor: Optional[object], op: str, addr: int,
               size: int, start: float, end: float, *,
               atomic: bool = False, space: str = "mem") -> None:
        """Record one access window.

        ``actor`` is the PPE thread id when the access came through a
        :class:`~repro.trio.ppe.ThreadContext`; unattributed accesses
        (harness code driving the memory directly) each get a unique
        anonymous actor so they can never fabricate a same-actor
        read→write pair.  Actor ids intern to first-seen-order labels
        (``t0``, ``t1``, ...) so reports are byte-identical across runs
        even though the raw thread-id counter is process-global.
        """
        if actor is None:
            name = f"anon#{next(self._anon)}"
        else:
            interned = self._actor_names.get(actor)
            if interned is None:
                interned = f"t{len(self._actor_names)}"
                self._actor_names[actor] = interned
            name = interned
        self.accesses.append(_Access(
            name, op, atomic, space, addr, max(size, 1), start, end,
            len(self.accesses),
        ))

    def record_hash(self, actor: Optional[object], op: str, key: Hashable,
                    start: float, end: float) -> None:
        """Record a hash-block op; keys intern to a synthetic key space."""
        index = self._hash_keys.get(key)
        if index is None:
            index = len(self._hash_keys)
            self._hash_keys[key] = index
        self.record(actor, op, index, 1, start, end, atomic=True,
                    space="hash")

    def note_engine_commit(self, engine_index: int) -> None:
        """Count a per-op commit at one RMW engine (serialization proof)."""
        self.engine_commits[engine_index] = (
            self.engine_commits.get(engine_index, 0) + 1
        )

    # -- analysis -------------------------------------------------------

    def analyze(self) -> List[RaceFinding]:
        """Search the recorded windows for happens-before violations."""
        findings: List[RaceFinding] = []
        seen: set = set()
        self._find_concurrent_conflicts(findings, seen)
        self._find_lost_updates(findings, seen)
        findings.sort(key=lambda f: (f.window[0], f.space, f.lo, f.kind))
        return findings

    def _buckets(self, accesses: Sequence[_Access]
                 ) -> Dict[Tuple[str, int], List[_Access]]:
        buckets: Dict[Tuple[str, int], List[_Access]] = {}
        for access in accesses:
            first = access.addr // _BUCKET_BYTES
            last = (access.addr + access.size - 1) // _BUCKET_BYTES
            for bucket in range(first, last + 1):
                buckets.setdefault((access.space, bucket), []).append(access)
        return buckets

    def _find_concurrent_conflicts(self, findings: List[RaceFinding],
                                   seen: set) -> None:
        plain = [a for a in self.accesses if not a.atomic]
        for bucket_accesses in self._buckets(plain).values():
            bucket_accesses.sort(key=lambda a: (a.start, a.index))
            for i, first in enumerate(bucket_accesses):
                for second in bucket_accesses[i + 1:]:
                    if second.start >= first.end:
                        break  # sorted by start: nothing later overlaps
                    if first.actor == second.actor:
                        continue
                    if first.op == "read" and second.op == "read":
                        continue
                    if not first.overlaps_extent(second):
                        continue
                    lo = max(first.addr, second.addr)
                    hi = min(first.addr + first.size,
                             second.addr + second.size)
                    # One finding per (kind, location): sixteen threads
                    # hammering one counter is one race, not 120.
                    key = ("concurrent_conflict", first.space, lo)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(RaceFinding(
                        kind="concurrent_conflict",
                        space=first.space, lo=lo, hi=hi,
                        actors=(first.actor, second.actor),
                        window=(max(first.start, second.start),
                                min(first.end, second.end)),
                        detail=(f"plain {first.op} and plain {second.op} "
                                "in overlapping windows; outcome depends "
                                "on XTXN arrival order"),
                    ))

    def _find_lost_updates(self, findings: List[RaceFinding],
                           seen: set) -> None:
        # Candidate victim spans: same actor, plain read then plain write
        # of an overlapping extent with no intervening atomic op by that
        # actor on the same extent.
        writes_by_bucket = self._buckets(
            [a for a in self.accesses if a.op == "write"])
        by_actor: Dict[str, List[_Access]] = {}
        for access in self.accesses:
            by_actor.setdefault(access.actor, []).append(access)
        for actor, accesses in by_actor.items():
            accesses.sort(key=lambda a: (a.start, a.index))
            for i, read in enumerate(accesses):
                if read.op != "read" or read.atomic:
                    continue
                for later in accesses[i + 1:]:
                    if not read.overlaps_extent(later):
                        continue
                    if later.atomic:
                        break  # the actor synchronized; span is closed
                    if later.op != "write":
                        continue
                    self._scan_span(read, later, writes_by_bucket,
                                    findings, seen)
                    break  # only the first read->write pairing
        return

    def _scan_span(self, read: _Access, write: _Access,
                   writes_by_bucket: Dict[Tuple[str, int], List[_Access]],
                   findings: List[RaceFinding], seen: set) -> None:
        first = read.addr // _BUCKET_BYTES
        last = (read.addr + read.size - 1) // _BUCKET_BYTES
        for bucket in range(first, last + 1):
            for other in writes_by_bucket.get((read.space, bucket), ()):
                if other.actor == read.actor:
                    continue
                if not other.overlaps_extent(read):
                    continue
                # The other writer's commit lands strictly inside the
                # victim's read->write span: its update is overwritten.
                if not (read.start < other.end < write.end):
                    continue
                lo = max(read.addr, other.addr)
                hi = min(read.addr + read.size, other.addr + other.size)
                key = ("lost_update", read.space, lo)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(RaceFinding(
                    kind="lost_update",
                    space=read.space, lo=lo, hi=hi,
                    actors=(read.actor, other.actor),
                    window=(read.start, write.end),
                    detail=(f"actor {read.actor} read at "
                            f"{read.start * 1e9:.1f}ns and wrote back at "
                            f"{write.end * 1e9:.1f}ns; actor "
                            f"{other.actor}'s {'RMW ' if other.atomic else ''}"
                            f"write committed at {other.end * 1e9:.1f}ns "
                            "in between and is overwritten"),
                ))

    def summary(self) -> Dict[str, int]:
        plain = sum(1 for a in self.accesses if not a.atomic)
        return {
            "accesses": len(self.accesses),
            "plain": plain,
            "atomic": len(self.accesses) - plain,
            "hash_keys": len(self._hash_keys),
            "engine_commits": sum(self.engine_commits.values()),
        }


# ----------------------------------------------------------------------
# Module-level state (the obs-bus zero-overhead pattern)
# ----------------------------------------------------------------------

_session: Optional[RaceCheckSession] = None


def enable() -> RaceCheckSession:
    """Start recording shared-state access windows."""
    global _session
    _session = RaceCheckSession()
    return _session


def disable() -> Optional[RaceCheckSession]:
    """Stop recording; returns the finished session."""
    global _session
    finished = _session
    _session = None
    return finished


def enabled() -> bool:
    return _session is not None


def session() -> Optional[RaceCheckSession]:
    """The active session, or None when the checker is off.

    Call sites hoist this into a local (``rc = _rc.session()``) and
    guard every record with ``if rc is not None`` — one global load per
    operation when disabled.
    """
    return _session


# ----------------------------------------------------------------------
# CI scenarios
# ----------------------------------------------------------------------

#: The intentionally racy Microcode program: the textbook MC401 lost
#: update (plain load -> register add -> plain store), run by many
#: concurrent packet threads against one shared DMEM word.
RACY_COUNTER_SOURCE = """
// Shared DMEM hit counter, updated the WRONG way: load/modify/store.
const HIT_CNT = 64;
reg r_cnt;

count: begin
    DmemLoad(r_cnt, HIT_CNT);
    r_cnt = r_cnt + 1;
    DmemStore(HIT_CNT, r_cnt);
    goto done;
end
"""

#: The RMW-correct twin: the same counter through the engine.
SAFE_COUNTER_SOURCE = """
// Shared DMEM hit counter, updated the RIGHT way: one RMW add.
const HIT_CNT = 64;

count: begin
    DmemAdd32(HIT_CNT, 1);
    goto done;
end
"""


def _run_microcode_threads(source: str, num_threads: int,
                           stagger_s: float = 10e-9) -> Tuple[int, int]:
    """Run ``num_threads`` packet threads of ``source`` on one PFE.

    Threads start ``stagger_s`` apart — well inside the ~70 ns XTXN
    latency, so the load/store windows of neighbouring threads overlap.
    Returns (final counter value, number of threads).
    """
    from repro.microcode import MicrocodeExecutor, TrioCompiler
    from repro.net import IPv4Address, MACAddress, Packet
    from repro.sim import Environment
    from repro.trio import PFE
    from repro.trio.ppe import PacketContext, ThreadContext

    program = TrioCompiler(extern_labels=("done",)).compile(
        source, entry="count")

    def done(tctx: object, pctx: object) -> Iterator[object]:
        return
        yield  # pragma: no cover - zero-event terminal

    env = Environment()
    pfe = PFE(env, "pfe1", num_ports=1)

    def one_thread(delay_s: float) -> Iterator[object]:
        yield env.delay(delay_s)
        packet = Packet.udp(
            src_mac=MACAddress(1), dst_mac=MACAddress(2),
            src_ip=IPv4Address("1.1.1.1"), dst_ip=IPv4Address("2.2.2.2"),
            src_port=1, dst_port=2, payload=b"x" * 20,
        )
        head, tail = packet.split(pfe.config.head_size_bytes)
        pctx = PacketContext(packet=packet, head=bytearray(head), tail=tail)
        tctx = ThreadContext(
            env=env, ppe=pfe.ppes[0], config=pfe.config,
            memory=pfe.memory, hash_table=pfe.hash_table, packet_ctx=pctx,
        )
        executor = MicrocodeExecutor(program, terminals={"done": done})
        yield from executor.run(tctx, pctx)

    for i in range(num_threads):
        env.process(one_thread(i * stagger_s))
    env.run()
    final = int.from_bytes(pfe.memory.read_raw(64, 4), "little")
    return final, num_threads


def _scenario_injected() -> Tuple[List[RaceFinding], Dict[str, int]]:
    """The intentionally racy program: must detect the lost update."""
    rc = enable()
    final, threads = _run_microcode_threads(RACY_COUNTER_SOURCE, 16)
    disable()
    findings = rc.analyze()
    stats = rc.summary()
    stats["counter_final"] = final
    stats["counter_expected"] = threads
    stats["updates_lost"] = threads - final
    return findings, stats


def _scenario_builtins() -> Tuple[List[RaceFinding], Dict[str, int]]:
    """Builtin programs (plus the RMW-correct counter twin): no races."""
    from repro.microcode.programs import build_filter_executor
    from repro.net import IPv4Address, MACAddress, Packet
    from repro.sim import Environment
    from repro.trio import PFE
    from repro.trio.ppe import PacketContext, ThreadContext

    rc = enable()
    env = Environment()
    pfe = PFE(env, "pfe1", num_ports=1)
    executor = build_filter_executor()

    def one_packet(delay_s: float, drop_me: bool) -> Iterator[object]:
        yield env.delay(delay_s)
        packet = Packet.udp(
            src_mac=MACAddress(1), dst_mac=MACAddress(2),
            src_ip=IPv4Address("10.0.0.1"), dst_ip=IPv4Address("10.0.0.2"),
            src_port=1000, dst_port=53, payload=b"x" * 64,
        )
        head, tail = packet.split(pfe.config.head_size_bytes)
        head = bytearray(head)
        if drop_me:
            # Corrupt the ethertype: the filter sends the packet down
            # the count_dropped path, exercising the shared drop
            # counter via CounterIncPhys — the RMW-correct pattern the
            # checker must stay quiet about even under concurrency.
            head[12:14] = b"\x86\xdd"
        pctx = PacketContext(packet=packet, head=head, tail=tail)
        tctx = ThreadContext(
            env=env, ppe=pfe.ppes[0], config=pfe.config,
            memory=pfe.memory, hash_table=pfe.hash_table, packet_ctx=pctx,
        )
        yield from executor.run(tctx, pctx)

    for i in range(32):
        env.process(one_packet(i * 5e-9, i % 2 == 0))
    env.run()

    final, threads = _run_microcode_threads(SAFE_COUNTER_SOURCE, 16)
    disable()
    findings = rc.analyze()
    stats = rc.summary()
    stats["counter_final"] = final
    stats["counter_expected"] = threads
    return findings, stats


def _scenario_fig14() -> Tuple[List[RaceFinding], Dict[str, int]]:
    """A fig14-shaped Trio-ML slice (straggler detector on): no races."""
    from repro.harness import experiments as exp

    rc = enable()
    try:
        exp.profile_dataplane_slice(blocks=6, grads_per_packet=256,
                                    timeout_ms=2.5, detector_threads=8)
    finally:
        disable()
    return rc.analyze(), rc.summary()


_SCENARIOS = {
    "builtins": _scenario_builtins,
    "injected": _scenario_injected,
    "fig14": _scenario_fig14,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.racecheck",
        description="Dynamic happens-before validation of shared "
                    "data-plane state (the runtime side of the MC4xx "
                    "static checks).",
    )
    parser.add_argument("scenario", choices=sorted(_SCENARIOS),
                        help="workload to record and analyze")
    parser.add_argument("--expect-clean", action="store_true",
                        help="exit non-zero if any race is detected")
    parser.add_argument("--expect-races", type=int, default=None,
                        metavar="N",
                        help="exit non-zero unless exactly N distinct "
                             "racy locations are detected")
    args = parser.parse_args(argv)

    findings, stats = _SCENARIOS[args.scenario]()
    racy_locations = {(f.space, f.lo) for f in findings}

    print(f"== racecheck {args.scenario}")
    for key in sorted(stats):
        print(f"  {key}: {stats[key]}")
    if findings:
        print(f"  {len(findings)} race(s):")
        for finding in findings:
            print(f"    {finding.describe()}")
    else:
        print("  no races detected")

    if args.expect_clean and findings:
        print(f"FAIL: expected no races, found {len(findings)}",
              file=sys.stderr)
        return 1
    if (args.expect_races is not None
            and len(racy_locations) != args.expect_races):
        print(f"FAIL: expected {args.expect_races} racy location(s), "
              f"found {len(racy_locations)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    # Run through the canonical module instance: ``python -m`` executes
    # this file as ``__main__``, but the trio-model hooks read the
    # session global of ``repro.tools.racecheck`` — two copies of this
    # module would mean the hooks never see ``enable()``.
    from repro.tools import racecheck as _canonical

    sys.exit(_canonical.main())
