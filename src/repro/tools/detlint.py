"""Determinism linter for the simulator's own Python sources.

The whole reproduction rests on one invariant: a simulation's result is a
pure function of its inputs.  That is what makes figures reproducible,
lets ``--parallel N`` fan sweep points across processes with bit-identical
output, and lets ``tests/test_determinism.py`` compare scheduled-event
fingerprints.  The invariant is easy to break silently — one
``random.random()`` (module-global RNG, shared mutable state), one
``time.time()`` leaking wall-clock into simulated behaviour, one
iteration over a ``set`` (ordering depends on string-hash randomisation
*per process*) feeding event scheduling — and results drift between runs
or between the serial and fanned-out paths.

``detlint`` walks each file's :mod:`ast` and reports:

==========  =========  ====================================================
code        severity   meaning
==========  =========  ====================================================
``DET101``  error      call to a module-level :mod:`random` function
                       (``random.random()``, ``random.seed()``, bare
                       ``shuffle()`` imported from random, ...) — these
                       share the interpreter-global RNG
``DET102``  error      ``random.Random()`` / ``SystemRandom()``
                       constructed without a seed argument
``DET103``  error      wall-clock call (``time.time``, ``perf_counter``,
                       ``datetime.now``, ...) in simulation code
``DET104``  error      iteration over a ``set``/``frozenset`` expression
                       (set literal, ``set(...)`` call, set
                       comprehension) — order varies across processes
``DET105``  warning    ``for`` over ``dict.values()/keys()/items()``
                       whose body schedules simulation events —
                       insertion-ordered, hence deterministic in-run,
                       but fragile against refactors; prefer an
                       explicitly ordered collection
``DET106``  error      ambient-environment read: ``os.environ`` access,
                       ``os.getenv(...)``, ``os.urandom(...)``, or
                       ``uuid.uuid4()`` — results depend on the host
                       environment or OS entropy, not on simulation
                       inputs
``DET107``  error      mutable default argument (``dict``/``list``/
                       ``set``/``bytearray`` literal, comprehension, or
                       bare constructor call) — the default is created
                       once at function definition and shared by every
                       call, so a mutation in one call leaks into the
                       next: hidden cross-call state, the same family
                       of bug as the global RNG
==========  =========  ====================================================

Findings are suppressed by a pragma comment on the offending line (give a
reason)::

    start = time.perf_counter()  # detlint: ok(wall-clock progress report)

or for a whole file with ``# detlint: skip-file`` near the top.  Usage::

    python -m repro.tools.detlint src             # lint a tree (CI gate)
    python -m repro.tools.detlint --list-codes
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Sequence, Set

from repro.microcode.errors import Diagnostic, SourceSpan

__all__ = ["lint_file", "lint_source", "lint_tree", "main"]

#: Module-level random functions that draw from the shared global RNG.
_GLOBAL_RANDOM_FUNCS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

#: Wall-clock sources: calling any of these inside simulation code makes
#: behaviour depend on the host instead of on simulated time.
_WALLCLOCK_TIME_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
})
_WALLCLOCK_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: Ambient-environment reads (for DET106): values that depend on the
#: host's environment variables or the OS entropy pool.
_OS_AMBIENT_FUNCS = frozenset({"getenv", "urandom"})
_UUID_AMBIENT_FUNCS = frozenset({"uuid1", "uuid4"})

#: Attribute calls that schedule simulation events (for DET105).
_SCHEDULING_ATTRS = frozenset({
    "process", "schedule", "call_later", "timeout", "delay", "succeed",
    "fail",
})

#: Bare constructor calls that build a fresh mutable container — as a
#: default argument these are just as shared as a literal (for DET107).
_MUTABLE_CTORS = frozenset({"dict", "list", "set", "bytearray"})

_PRAGMA = "detlint:"


@dataclass
class _Imports:
    """Names the module binds to the random/time/datetime machinery."""

    random_modules: Set[str] = dataclass_field(default_factory=set)
    random_funcs: Dict[str, str] = dataclass_field(default_factory=dict)
    random_classes: Set[str] = dataclass_field(default_factory=set)
    time_modules: Set[str] = dataclass_field(default_factory=set)
    time_funcs: Dict[str, str] = dataclass_field(default_factory=dict)
    datetime_modules: Set[str] = dataclass_field(default_factory=set)
    datetime_classes: Set[str] = dataclass_field(default_factory=set)
    os_modules: Set[str] = dataclass_field(default_factory=set)
    os_funcs: Dict[str, str] = dataclass_field(default_factory=dict)
    environ_names: Set[str] = dataclass_field(default_factory=set)
    uuid_modules: Set[str] = dataclass_field(default_factory=set)
    uuid_funcs: Dict[str, str] = dataclass_field(default_factory=dict)


def _collect_imports(tree: ast.Module) -> _Imports:
    imports = _Imports()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "random":
                    imports.random_modules.add(bound)
                elif alias.name == "time":
                    imports.time_modules.add(bound)
                elif alias.name == "datetime":
                    imports.datetime_modules.add(bound)
                elif alias.name == "os":
                    imports.os_modules.add(bound)
                elif alias.name == "uuid":
                    imports.uuid_modules.add(bound)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name in ("Random", "SystemRandom"):
                        imports.random_classes.add(bound)
                    elif alias.name in _GLOBAL_RANDOM_FUNCS:
                        imports.random_funcs[bound] = alias.name
            elif node.module == "time":
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name in _WALLCLOCK_TIME_FUNCS:
                        imports.time_funcs[bound] = alias.name
            elif node.module == "datetime":
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name in ("datetime", "date"):
                        imports.datetime_classes.add(bound)
            elif node.module == "os":
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name in _OS_AMBIENT_FUNCS:
                        imports.os_funcs[bound] = alias.name
                    elif alias.name == "environ":
                        imports.environ_names.add(bound)
            elif node.module == "uuid":
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name in _UUID_AMBIENT_FUNCS:
                        imports.uuid_funcs[bound] = alias.name
    return imports


class _Linter(ast.NodeVisitor):
    def __init__(self, imports: _Imports, filename: str):
        self.imports = imports
        self.filename = filename
        self.diagnostics: List[Diagnostic] = []

    # -- helpers ----------------------------------------------------------

    def _diag(self, severity: str, code: str, message: str,
              node: ast.AST, notes: Optional[List[str]] = None) -> None:
        self.diagnostics.append(Diagnostic(
            severity, code, message,
            SourceSpan(node.lineno, getattr(node, "col_offset", 0),
                       self.filename),
            notes=notes or [],
        ))

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")):
            return True
        return False

    # -- random -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if (isinstance(base, ast.Name)
                    and base.id in self.imports.random_modules):
                if func.attr in _GLOBAL_RANDOM_FUNCS:
                    self._diag(
                        "error", "DET101",
                        f"call to module-level random.{func.attr}(): the "
                        "global RNG is shared mutable state",
                        node,
                        notes=["derive a stream from the simulation "
                               "Environment instead: env.rng_stream(key)"],
                    )
                elif (func.attr in ("Random", "SystemRandom")
                        and not node.args and not node.keywords):
                    self._diag(
                        "error", "DET102",
                        f"random.{func.attr}() constructed without a "
                        "seed: every run draws a different stream",
                        node,
                    )
            elif (isinstance(base, ast.Name)
                    and base.id in self.imports.time_modules
                    and func.attr in _WALLCLOCK_TIME_FUNCS):
                self._diag(
                    "error", "DET103",
                    f"wall-clock call time.{func.attr}() in simulation "
                    "code: results must be a function of simulated time "
                    "only (env.now)",
                    node,
                )
            elif (func.attr in _WALLCLOCK_DATETIME_FUNCS
                    and isinstance(base, ast.Name)
                    and base.id in self.imports.datetime_classes):
                self._diag(
                    "error", "DET103",
                    f"wall-clock call {base.id}.{func.attr}() in "
                    "simulation code",
                    node,
                )
            elif (func.attr in _WALLCLOCK_DATETIME_FUNCS
                    and isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id in self.imports.datetime_modules):
                self._diag(
                    "error", "DET103",
                    f"wall-clock call datetime.{base.attr}."
                    f"{func.attr}() in simulation code",
                    node,
                )
            elif (isinstance(base, ast.Name)
                    and base.id in self.imports.os_modules
                    and func.attr in _OS_AMBIENT_FUNCS):
                self._diag(
                    "error", "DET106",
                    f"ambient-environment read os.{func.attr}(): the "
                    "result depends on the host, not on simulation "
                    "inputs",
                    node,
                    notes=["thread configuration in explicitly, or "
                           "derive bytes from env.rng_stream(key)"],
                )
            elif (isinstance(base, ast.Name)
                    and base.id in self.imports.uuid_modules
                    and func.attr in _UUID_AMBIENT_FUNCS):
                self._diag(
                    "error", "DET106",
                    f"ambient-environment read uuid.{func.attr}(): "
                    "draws from the OS entropy pool / host identity, "
                    "so every run produces different ids",
                    node,
                    notes=["derive stable ids from simulation inputs "
                           "(e.g. a counter or env.rng_stream(key))"],
                )
        elif isinstance(func, ast.Name):
            if func.id in self.imports.random_funcs:
                original = self.imports.random_funcs[func.id]
                self._diag(
                    "error", "DET101",
                    f"call to module-level random function "
                    f"{func.id}() (random.{original}): the global RNG "
                    "is shared mutable state",
                    node,
                )
            elif (func.id in self.imports.random_classes
                    and not node.args and not node.keywords):
                self._diag(
                    "error", "DET102",
                    f"{func.id}() constructed without a seed: every "
                    "run draws a different stream",
                    node,
                )
            elif func.id in self.imports.time_funcs:
                original = self.imports.time_funcs[func.id]
                self._diag(
                    "error", "DET103",
                    f"wall-clock call {func.id}() (time.{original}) in "
                    "simulation code",
                    node,
                )
            elif func.id in self.imports.os_funcs:
                original = self.imports.os_funcs[func.id]
                self._diag(
                    "error", "DET106",
                    f"ambient-environment read {func.id}() "
                    f"(os.{original}): the result depends on the host, "
                    "not on simulation inputs",
                    node,
                )
            elif func.id in self.imports.uuid_funcs:
                original = self.imports.uuid_funcs[func.id]
                self._diag(
                    "error", "DET106",
                    f"ambient-environment read {func.id}() "
                    f"(uuid.{original}): draws from the OS entropy "
                    "pool, so every run produces different ids",
                    node,
                )
        self.generic_visit(node)

    # -- ambient environment (DET106) -------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (node.attr == "environ" and isinstance(node.value, ast.Name)
                and node.value.id in self.imports.os_modules):
            self._diag(
                "error", "DET106",
                "ambient-environment read via os.environ: behaviour "
                "becomes a function of the host's environment variables",
                node,
                notes=["thread configuration in explicitly (CLI flag or "
                       "config object) instead of reading the "
                       "environment"],
            )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if (isinstance(node.ctx, ast.Load)
                and node.id in self.imports.environ_names):
            self._diag(
                "error", "DET106",
                f"ambient-environment read via {node.id} (os.environ): "
                "behaviour becomes a function of the host's environment "
                "variables",
                node,
            )
        self.generic_visit(node)

    # -- mutable default arguments (DET107) -------------------------------

    @staticmethod
    def _is_mutable_default(node: ast.AST) -> bool:
        if isinstance(node, (ast.Dict, ast.List, ast.Set,
                             ast.DictComp, ast.ListComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _MUTABLE_CTORS)

    def _check_defaults(self, node: ast.AST) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and self._is_mutable_default(default):
                self._diag(
                    "error", "DET107",
                    "mutable default argument: created once at function "
                    "definition and shared by every call, so mutations "
                    "leak across calls",
                    default,
                    notes=["use None as the sentinel and build the "
                           "container inside the function body"],
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- set / dict-view iteration ---------------------------------------

    def _check_iter(self, iter_node: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            self._diag(
                "error", "DET104",
                "iteration over a set: element order depends on "
                "per-process string-hash randomisation",
                iter_node,
                notes=["wrap in sorted(...) or keep an ordered "
                       "collection alongside the set"],
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self._check_dict_view_scheduling(node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehensions(self, node: ast.AST) -> None:
        for comp in node.generators:
            self._check_iter(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehensions
    visit_SetComp = _visit_comprehensions
    visit_DictComp = _visit_comprehensions
    visit_GeneratorExp = _visit_comprehensions

    def _check_dict_view_scheduling(self, node: ast.For) -> None:
        iter_node = node.iter
        if not (isinstance(iter_node, ast.Call)
                and isinstance(iter_node.func, ast.Attribute)
                and iter_node.func.attr in ("values", "keys", "items")
                and not iter_node.args):
            return
        schedules = [
            sub for sub in ast.walk(node)
            if isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _SCHEDULING_ATTRS
        ]
        if schedules:
            self._diag(
                "warning", "DET105",
                f"for-loop over dict.{iter_node.func.attr}() schedules "
                "simulation events: order is insertion order today, but "
                "any change to the fill order silently reorders events",
                iter_node,
                notes=["prefer an explicitly ordered list, or document "
                       "the insertion order with a pragma"],
            )


def _pragma_lines(source: str) -> Set[int]:
    """1-based line numbers carrying a ``# detlint: ok`` pragma."""
    lines: Set[int] = set()
    for number, text in enumerate(source.splitlines(), start=1):
        marker = text.find("#")
        while marker != -1:
            comment = text[marker + 1:].strip()
            if comment.startswith(_PRAGMA):
                directive = comment[len(_PRAGMA):].strip()
                if directive.startswith("ok"):
                    lines.add(number)
                break
            marker = text.find("#", marker + 1)
    return lines


def _skip_file(source: str) -> bool:
    head = source.splitlines()[:5]
    return any("detlint: skip-file" in line for line in head)


def lint_source(source: str, filename: str = "<source>"
                ) -> List[Diagnostic]:
    """Lint Python source text; returns unsuppressed diagnostics."""
    if _skip_file(source):
        return []
    tree = ast.parse(source, filename=filename)
    linter = _Linter(_collect_imports(tree), filename)
    linter.visit(tree)
    suppressed = _pragma_lines(source)
    return [
        diag for diag in linter.diagnostics
        if diag.span is None or diag.span.line not in suppressed
    ]


def lint_file(path: str) -> List[Diagnostic]:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), filename=path)


def lint_tree(root: str) -> List[Diagnostic]:
    """Lint every ``.py`` file under ``root`` (deterministic order)."""
    diagnostics: List[Diagnostic] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                diagnostics.extend(lint_file(os.path.join(dirpath, name)))
    return diagnostics


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.detlint",
        description="Determinism linter: flags unseeded randomness, "
                    "wall-clock reads, and order-unstable iteration in "
                    "simulation code.",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--list-codes", action="store_true",
                        help="print the diagnostic codes and exit")
    args = parser.parse_args(argv)

    if args.list_codes:
        print(__doc__)
        return 0
    if not args.paths:
        parser.error("give files or directories to lint")

    diagnostics: List[Diagnostic] = []
    for path in args.paths:
        if os.path.isdir(path):
            diagnostics.extend(lint_tree(path))
        else:
            diagnostics.extend(lint_file(path))

    sources: Dict[str, str] = {}
    for diag in diagnostics:
        if diag.span and diag.span.filename not in sources:
            try:
                with open(diag.span.filename, "r", encoding="utf-8") as fh:
                    sources[diag.span.filename] = fh.read()
            except OSError:
                sources[diag.span.filename] = ""
    for diag in diagnostics:
        source = sources.get(diag.span.filename) if diag.span else None
        print(diag.render(source.splitlines() if source else None))
        print()

    errors = sum(1 for d in diagnostics if d.severity == "error")
    warnings = len(diagnostics) - errors
    print(f"detlint: {errors} error(s), {warnings} warning(s)")
    return 1 if diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())
