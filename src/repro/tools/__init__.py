"""Repository tooling: linters and checks that run in CI.

* :mod:`repro.tools.detlint` — static determinism linter over the
  simulator's own Python sources.
"""
