"""The Advanced Forwarding Interface (AFI) (§3.1).

In Trio, packet forwarding is a sequence of operations executed by a PFE;
each operation is a node on a graph of potential packet forwarding
operations, and the PFE executes a series of operations for an individual
packet based on its type/fields.  AFI provides *partial* programmability:
third-party developers control and manage a section of this forwarding
path graph via a small virtual container called a **sandbox**, within
which they may add, remove, and reorder operations for specific packets —
without touching the operator-owned parts of the graph.

Model:

* :class:`ForwardingNode` — one operation: a generator
  ``fn(tctx, pctx) -> next`` where ``next`` is the name of the next node,
  a terminal action (:data:`FORWARD`/:data:`DROP`/:data:`CONSUME`), or
  None to follow the node's static ``next`` edge.
* :class:`ForwardingGraph` — named nodes plus an entry point; walking the
  graph charges each node's instruction cost on the PPE thread.
* :class:`Sandbox` — a sub-graph mounted at one node of the parent graph;
  it exposes only add/remove/reorder operations, so a third party cannot
  escape its container.
* :class:`AFIApplication` — installs a graph as the PFE application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.trio.pfe import PFE, TrioApplication
from repro.trio.ppe import PacketContext, ThreadContext

__all__ = [
    "AFIApplication",
    "AFIError",
    "CONSUME",
    "DROP",
    "FORWARD",
    "ForwardingGraph",
    "ForwardingNode",
    "Sandbox",
]

#: Terminal results a node may return.
FORWARD = "__forward__"
DROP = "__drop__"
CONSUME = "__consume__"
_TERMINALS = (FORWARD, DROP, CONSUME)

#: Safety valve against cyclic graphs.
MAX_NODES_PER_PACKET = 1000


class AFIError(Exception):
    """Graph construction or execution error."""


#: Node operations are generators: ``op(tctx, pctx) -> Optional[str]``.
NodeOp = Callable[[ThreadContext, PacketContext], object]


@dataclass
class ForwardingNode:
    """One operation on the forwarding path.

    ``op`` may be None for a pure connector node.  ``next_node`` is the
    static successor, used when ``op`` returns None.
    """

    name: str
    op: Optional[NodeOp] = None
    next_node: Optional[str] = None
    instruction_cost: int = 2
    packets_seen: int = 0

    def run(self, tctx: ThreadContext, pctx: PacketContext):
        self.packets_seen += 1
        if self.instruction_cost:
            yield from tctx.execute(self.instruction_cost)
        if self.op is None:
            return self.next_node
        result = yield from self.op(tctx, pctx)
        if result is None:
            return self.next_node
        return result


class ForwardingGraph:
    """A graph of forwarding operations with a single entry node."""

    def __init__(self, name: str = "forwarding"):
        self.name = name
        self.nodes: Dict[str, ForwardingNode] = {}
        self.entry: Optional[str] = None

    def add_node(self, node: ForwardingNode,
                 entry: bool = False) -> ForwardingNode:
        if node.name in self.nodes:
            raise AFIError(f"duplicate node {node.name!r}")
        if node.name in _TERMINALS:
            raise AFIError(f"{node.name!r} is a reserved terminal name")
        self.nodes[node.name] = node
        if entry or self.entry is None:
            self.entry = node.name
        return node

    def remove_node(self, name: str) -> None:
        if name not in self.nodes:
            raise AFIError(f"no node named {name!r}")
        del self.nodes[name]
        if self.entry == name:
            self.entry = next(iter(self.nodes), None)

    def set_entry(self, name: str) -> None:
        if name not in self.nodes:
            raise AFIError(f"no node named {name!r}")
        self.entry = name

    def connect(self, src: str, dst: str) -> None:
        """Set the static edge ``src -> dst`` (reordering operations)."""
        if src not in self.nodes:
            raise AFIError(f"no node named {src!r}")
        if dst not in self.nodes and dst not in _TERMINALS:
            raise AFIError(f"no node named {dst!r}")
        self.nodes[src].next_node = dst

    def validate(self) -> None:
        """Check that every static edge points somewhere that exists."""
        if self.entry is None:
            raise AFIError(f"graph {self.name!r} has no entry node")
        for node in self.nodes.values():
            nxt = node.next_node
            if nxt is not None and nxt not in self.nodes \
                    and nxt not in _TERMINALS:
                raise AFIError(
                    f"node {node.name!r} points at unknown node {nxt!r}"
                )

    def run(self, tctx: ThreadContext, pctx: PacketContext):
        """Walk the graph for one packet; returns a terminal action."""
        if self.entry is None:
            raise AFIError(f"graph {self.name!r} has no entry node")
        current = self.entry
        steps = 0
        while True:
            steps += 1
            if steps > MAX_NODES_PER_PACKET:
                raise AFIError(
                    f"packet visited more than {MAX_NODES_PER_PACKET} "
                    "nodes; the forwarding graph likely has a cycle"
                )
            if current in _TERMINALS:
                return current
            node = self.nodes.get(current)
            if node is None:
                raise AFIError(f"walk reached unknown node {current!r}")
            result = yield from node.run(tctx, pctx)
            if result is None:
                raise AFIError(
                    f"node {current!r} has no successor and returned none"
                )
            current = result


class Sandbox:
    """A third-party-controlled section of the forwarding path graph.

    The operator mounts the sandbox at a node of the parent graph; the
    third party gets a private :class:`ForwardingGraph` whose terminal
    :data:`FORWARD` result continues at the operator-chosen exit node.
    The third party cannot reach or modify anything outside the sandbox.
    """

    def __init__(self, name: str, exit_node: str = FORWARD):
        self.name = name
        self.graph = ForwardingGraph(name=f"sandbox:{name}")
        self.exit_node = exit_node
        self.packets_in = 0

    # -- third-party surface -------------------------------------------

    def add_node(self, node: ForwardingNode,
                 entry: bool = False) -> ForwardingNode:
        return self.graph.add_node(node, entry=entry)

    def remove_node(self, name: str) -> None:
        self.graph.remove_node(name)

    def connect(self, src: str, dst: str) -> None:
        self.graph.connect(src, dst)

    def set_entry(self, name: str) -> None:
        self.graph.set_entry(name)

    # -- operator surface -------------------------------------------------

    def as_node(self, name: Optional[str] = None,
                next_node: Optional[str] = None) -> ForwardingNode:
        """The mount point: a parent-graph node that runs this sandbox."""

        def op(tctx: ThreadContext, pctx: PacketContext):
            self.packets_in += 1
            result = yield from self.graph.run(tctx, pctx)
            if result == FORWARD:
                # Leaving the sandbox: continue at the operator's exit.
                return self.exit_node if next_node is None else next_node
            return result

        return ForwardingNode(
            name=name or f"sandbox:{self.name}",
            op=op,
            next_node=next_node,
            instruction_cost=1,
        )


class AFIApplication(TrioApplication):
    """Installs a forwarding graph as the PFE's packet handler."""

    name = "afi"

    def __init__(self, graph: ForwardingGraph):
        graph.validate()
        self.graph = graph

    def handle_packet(self, tctx: ThreadContext, pctx: PacketContext):
        result = yield from self.graph.run(tctx, pctx)
        if result == DROP:
            pctx.drop()
        elif result == CONSUME:
            pctx.consume()
        else:
            pctx.forward(pctx.egress_port)
