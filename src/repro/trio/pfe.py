"""The Packet Forwarding Engine (§2.1, Figure 2).

A PFE is the central processing element of Trio's forwarding plane.  The
model wires together every block of Figure 2:

* network ports whose received frames enter the **Dispatch module**;
* the Dispatch module, which splits each frame into head and tail, stores
  the tail in the Packet Buffer (Memory and Queueing Subsystem), and hands
  the head to an available PPE thread;
* hundreds of multi-threaded **PPEs** running the installed application;
* the **Reorder Engine**, which releases each flow's results in arrival
  order;
* the **Shared Memory System** (with its RMW engines and crossbar), the
  **hash block**, and the **timer** hardware.

Applications subclass :class:`TrioApplication` and implement
``handle_packet(thread_ctx, packet_ctx)`` as a generator — the moral
equivalent of the Microcode program the paper installs.  A PFE with no
application performs plain IP forwarding from its route table.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.net.addressing import IPv4Address
from repro.net.headers import HeaderError
from repro.net.link import Port
from repro.net.multicast import MulticastGroupTable
from repro.net.packet import Packet
from repro.obs import bus as _obs
from repro.sim import Environment, Process, Resource, Store
from repro.trio.chipset import GENERATIONS, TrioChipsetConfig
from repro.trio.crossbar import Crossbar
from repro.trio.hashtable import HardwareHashTable
from repro.trio.memory import SharedMemorySystem
from repro.trio.ppe import (
    ACTION_CONSUME,
    ACTION_DROP,
    ACTION_FORWARD,
    PPE,
    PacketContext,
    ThreadContext,
)
from repro.trio.reorder import ReorderEngine
from repro.trio.timers import TimerManager

__all__ = ["PFE", "TrioApplication"]

#: Fixed hardware cost of dispatching a packet head to a PPE thread
#: (head extraction, thread spawn, LMEM load).  Estimate.
DISPATCH_LATENCY_S = 100e-9


class TrioApplication:
    """Base class for Microcode applications installed on a PFE.

    ``handle_packet`` is a generator that processes one packet on one PPE
    thread; it sets the packet's fate on ``packet_ctx`` (forward / drop /
    consume) and may emit new packets.  ``on_install`` runs once when the
    application is installed (job configuration, memory allocation,
    launching timer threads).
    """

    name = "application"

    def on_install(self, pfe: "PFE") -> None:
        """Hook invoked when the app is installed on ``pfe``."""

    def handle_packet(self, tctx: ThreadContext, pctx: PacketContext):
        """Process one packet; default behaviour forwards it unchanged."""
        yield from tctx.execute(1)
        pctx.forward()


class PFE:
    """One Packet Forwarding Engine with its PPEs and memory system."""

    def __init__(
        self,
        env: Environment,
        name: str,
        config: Optional[TrioChipsetConfig] = None,
        num_ports: int = 4,
        router=None,
    ):
        self.env = env
        self.name = name
        self.config = config or GENERATIONS[5]
        self.router = router

        self.crossbar = Crossbar(env, self.config.crossbar_latency_s)
        self.memory = SharedMemorySystem(env, self.config, self.crossbar)
        self.hash_table = HardwareHashTable(
            env, op_latency_s=self.config.sram_latency_s
        )
        self.ppes: List[PPE] = [
            PPE(env, i, self.config) for i in range(self.config.num_ppes)
        ]
        self._thread_slots = Resource(env, capacity=self.config.total_threads)
        self._next_ppe = 0
        self.timers = TimerManager(env, self, self.config.num_hw_timers)

        self.ports: List[Port] = [
            Port(env, name=f"{name}.p{i}", rx_handler=self._on_rx)
            for i in range(num_ports)
        ]
        self._ports_by_name: Dict[str, Port] = {p.name: p for p in self.ports}

        self._dispatch_queue: Store = Store(env)
        self.reorder = ReorderEngine(release=self._release_output)
        self.app: Optional[TrioApplication] = None
        #: Free list of recycled ThreadContexts (LMEM + register file reuse).
        self._tctx_pool: List[ThreadContext] = []

        #: Local unicast routes: destination IP -> port name.
        self.route_table: Dict[IPv4Address, str] = {}
        #: Local multicast membership.
        self.multicast = MulticastGroupTable()

        self.packets_in = 0
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self.packets_consumed = 0
        if _obs.enabled():
            self.memory.rmw.obs_name = f"{name}.rmw"
            self.hash_table.obs_name = f"{name}.hash"
            _obs.register_collector(self._obs_collect)
        env.process(self._dispatch_loop(), name=f"{name}:dispatch")

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def install_app(self, app: TrioApplication) -> TrioApplication:
        """Install a Microcode application (replaces any existing one)."""
        self.app = app
        app.on_install(self)
        return app

    def add_route(self, dst: IPv4Address, port_name: str) -> None:
        """Add a host route: packets to ``dst`` leave via ``port_name``."""
        if port_name not in self._ports_by_name:
            raise ValueError(f"{port_name!r} is not a port of {self.name}")
        self.route_table[IPv4Address(dst)] = port_name

    def port(self, index: int) -> Port:
        return self.ports[index]

    @property
    def threads_in_use(self) -> int:
        return self._thread_slots.in_use

    @property
    def dispatch_backlog(self) -> int:
        return len(self._dispatch_queue)

    # ------------------------------------------------------------------
    # Ingress path
    # ------------------------------------------------------------------

    def _on_rx(self, packet: Packet, port: Port) -> None:
        self.accept(packet, ingress_port=port.name)

    def accept(self, packet: Packet, ingress_port: Optional[str] = None) -> None:
        """Enqueue a packet for dispatch (from a port or from the fabric)."""
        self.packets_in += 1
        flow_key = packet.flow_key if packet.flow_key is not None else "_anon"
        seq = self.reorder.arrival(flow_key)
        packet.meta["pfe_arrival"] = self.env.now
        self._dispatch_queue.put_nowait((packet, ingress_port, flow_key, seq))

    def _dispatch_loop(self):
        """The Dispatch module: hand heads to PPEs based on availability."""
        while True:
            packet, ingress_port, flow_key, seq = yield self._dispatch_queue.get()
            slot = self._thread_slots.acquire()
            if slot is not None:
                yield slot
            ppe = self.ppes[self._next_ppe]
            self._next_ppe = (self._next_ppe + 1) % len(self.ppes)
            ppe.threads_spawned += 1
            self.env.process(
                self._run_thread(ppe, packet, ingress_port, flow_key, seq),
                name=f"{self.name}:thread:{packet.packet_id}",
            )

    def _checkout_tctx(self, ppe: PPE,
                       pctx: Optional[PacketContext]) -> ThreadContext:
        """Take a recycled ThreadContext from the pool (or build one)."""
        pool = self._tctx_pool
        if pool:
            tctx = pool.pop()
            tctx.reset(ppe, pctx)
            return tctx
        return ThreadContext(
            env=self.env,
            ppe=ppe,
            config=self.config,
            memory=self.memory,
            hash_table=self.hash_table,
            packet_ctx=pctx,
        )

    def _run_thread(self, ppe: PPE, packet: Packet,
                    ingress_port: Optional[str], flow_key, seq: int):
        head, tail = packet.split(self.config.head_size_bytes)
        pctx = PacketContext(
            packet=packet,
            head=bytearray(head),
            tail=tail,
            ingress_port=ingress_port,
            arrival_seq=seq,
            arrival_time=packet.meta.get("pfe_arrival", self.env.now),
        )
        tctx = self._checkout_tctx(ppe, pctx)
        # The dispatch cost coalesces with the thread's first blocking wait.
        tctx.pending_s += DISPATCH_LATENCY_S
        obs = _obs.session()
        if obs is not None:
            started = self.env.now
            obs.observe("pfe.dispatch_latency_s",
                        started - pctx.arrival_time, pfe=self.name)
            obs.sample(f"ppe.threads_in_use/{self.name}",
                       started, self.threads_in_use)
        try:
            handler = self.app.handle_packet if self.app else self._plain_forward
            yield from handler(tctx, pctx)
            yield from tctx.flush()
        finally:
            self._thread_slots.release()
            tctx.packet_ctx = None
            self._tctx_pool.append(tctx)
            if obs is not None:
                obs.complete(f"pkt {packet.packet_id}", started, self.env.now,
                             track=f"{self.name}/threads",
                             ppe=ppe.index, action=pctx.action)
                obs.sample(f"ppe.threads_in_use/{self.name}",
                           self.env.now, self.threads_in_use)
        outputs: List[Tuple[str, Packet, Optional[str]]] = []
        if pctx.action == ACTION_FORWARD:
            outputs.append((ACTION_FORWARD, packet, pctx.egress_port))
            self.packets_forwarded += 1
        elif pctx.action == ACTION_DROP:
            self.packets_dropped += 1
        else:
            self.packets_consumed += 1
        for emitted, egress in pctx.emitted:
            outputs.append((ACTION_FORWARD, emitted, egress))
        self.reorder.complete(flow_key, seq, outputs)
        if obs is not None:
            obs.sample(f"reorder.in_flight/{self.name}",
                       self.env.now, self.reorder.in_flight_flows)

    def _obs_collect(self, registry) -> None:
        """Export counters the model already keeps (runs once at finalize,
        so the packet path pays nothing for them)."""
        pfe = self.name
        packets = registry.counter(
            "pfe.packets", "packets per fate at each PFE", ("fate", "pfe"))
        packets.inc(self.packets_in, fate="in", pfe=pfe)
        packets.inc(self.packets_forwarded, fate="forwarded", pfe=pfe)
        packets.inc(self.packets_dropped, fate="dropped", pfe=pfe)
        packets.inc(self.packets_consumed, fate="consumed", pfe=pfe)

        total_busy = sum(p.busy_s for p in self.ppes)
        registry.counter(
            "ppe.busy_s", "accumulated PPE compute time", ("pfe",)
        ).inc(total_busy, pfe=pfe)
        registry.counter(
            "ppe.instructions", "datapath instructions executed", ("pfe",)
        ).inc(sum(p.instructions_executed for p in self.ppes), pfe=pfe)
        registry.counter(
            "ppe.threads_spawned", "PPE threads spawned", ("pfe",)
        ).inc(sum(p.threads_spawned for p in self.ppes), pfe=pfe)
        elapsed = self.env.now
        if elapsed > 0.0:
            registry.gauge(
                "ppe.occupancy",
                "PPE busy time / (elapsed x num_ppes)", ("pfe",)
            ).set(total_busy / (elapsed * len(self.ppes)), pfe=pfe)

        registry.counter(
            "reorder.released", "outputs released in order", ("pfe",)
        ).inc(self.reorder.released, pfe=pfe)
        registry.gauge(
            "reorder.held_max", "max results held for one flow", ("pfe",)
        ).set(self.reorder.held_max, pfe=pfe)

        table = self.hash_table
        hash_ops = registry.counter(
            "hash.ops", "hash XTXNs by operation", ("op", "table"))
        hash_ops.inc(table.lookups, op="lookup", table=table.obs_name)
        hash_ops.inc(table.inserts, op="insert", table=table.obs_name)
        hash_ops.inc(table.deletes, op="delete", table=table.obs_name)
        registry.gauge(
            "hash.occupancy", "records resident at finalize", ("table",)
        ).set(len(table), table=table.obs_name)

        rmw = self.memory.rmw
        rmw_ops = registry.counter(
            "rmw.ops", "RMW operations serviced", ("complex", "path"))
        rmw_busy = registry.counter(
            "rmw.busy_s", "RMW service time", ("complex", "path"))
        rmw_bytes = registry.counter(
            "rmw.bytes", "bytes serviced by RMW", ("complex", "path"))
        engine_ops = sum(s.ops for s in rmw.engine_stats)
        engine_busy = sum(s.busy_s for s in rmw.engine_stats)
        engine_bytes = sum(s.bytes_serviced for s in rmw.engine_stats)
        rmw_ops.inc(engine_ops, complex=rmw.obs_name, path="engine")
        rmw_busy.inc(engine_busy, complex=rmw.obs_name, path="engine")
        rmw_bytes.inc(engine_bytes, complex=rmw.obs_name, path="engine")
        rmw_ops.inc(rmw.bulk_stats.ops, complex=rmw.obs_name, path="bulk")
        rmw_busy.inc(rmw.bulk_stats.busy_s, complex=rmw.obs_name, path="bulk")
        rmw_bytes.inc(rmw.bulk_stats.bytes_serviced,
                      complex=rmw.obs_name, path="bulk")
        if elapsed > 0.0:
            util = registry.gauge(
                "rmw.utilization",
                "RMW busy time / elapsed (per engine for the engine path)",
                ("complex", "path"))
            util.set(engine_busy / (elapsed * rmw.num_engines),
                     complex=rmw.obs_name, path="engine")
            util.set(rmw.bulk_stats.busy_s / elapsed,
                     complex=rmw.obs_name, path="bulk")

    def _plain_forward(self, tctx: ThreadContext, pctx: PacketContext):
        """Default application: parse and forward by destination IP."""
        yield from tctx.execute(10)  # parse + route lookup, ballpark
        pctx.forward()

    # ------------------------------------------------------------------
    # Internal (timer / event-spawned) threads
    # ------------------------------------------------------------------

    def spawn_internal_thread(self, callback: Callable[[ThreadContext], object],
                              name: str = "internal") -> Process:
        """Run ``callback(thread_ctx)`` as a PPE thread (§2.2: threads can
        start in response to internal events such as timers)."""
        return self.env.process(self._run_internal(callback), name=name)

    def _run_internal(self, callback):
        slot = self._thread_slots.acquire()
        if slot is not None:
            yield slot
        ppe = self.ppes[self._next_ppe]
        self._next_ppe = (self._next_ppe + 1) % len(self.ppes)
        ppe.threads_spawned += 1
        tctx = self._checkout_tctx(ppe, None)
        try:
            yield from callback(tctx)
            yield from tctx.flush()
        finally:
            self._thread_slots.release()
            self._tctx_pool.append(tctx)

    # ------------------------------------------------------------------
    # Egress path
    # ------------------------------------------------------------------

    def _release_output(self, item: Tuple[str, Packet, Optional[str]]) -> None:
        __, packet, egress_port = item
        self.transmit(packet, egress_port)

    def transmit(self, packet: Packet, egress_port: Optional[str] = None) -> None:
        """Send a packet out: explicit port, local route, or the router."""
        if egress_port is not None:
            port = self._ports_by_name.get(egress_port)
            if port is None:
                if self.router is not None:
                    self.router.deliver(packet, egress_hint=egress_port,
                                        from_pfe=self)
                    return
                raise ValueError(f"unknown egress port {egress_port!r}")
            port.send(packet)
            return
        dst = self._destination_ip(packet)
        if dst is not None and dst.is_multicast:
            members = self.multicast.members(dst)
            if members:
                for port_name in members:
                    self._ports_by_name[port_name].send(packet.copy())
                return
            if self.router is not None:
                self.router.deliver(packet, from_pfe=self)
                return
            self.packets_dropped += 1
            return
        if dst is not None and dst in self.route_table:
            self._ports_by_name[self.route_table[dst]].send(packet)
            return
        if self.router is not None:
            self.router.deliver(packet, from_pfe=self)
            return
        self.packets_dropped += 1  # no route: drop

    @staticmethod
    def _destination_ip(packet: Packet) -> Optional[IPv4Address]:
        try:
            __, rest = packet.parse_ethernet()
            from repro.net.headers import IPv4Header

            ip, __ = IPv4Header.parse(rest, verify_checksum=False)
            return ip.dst
        except HeaderError:
            return None

    def __repr__(self) -> str:
        return f"<PFE {self.name} gen{self.config.generation}>"
