"""A multi-PFE Trio router (the MX480 of the testbed, §6.1).

The router owns the chassis-level state: its PFEs, the interconnection
fabric, the global unicast route table (destination IP → (PFE, port)),
and the chassis multicast membership.  Packets arriving at one PFE and
destined to a port on another PFE cross the fabric; hierarchical
aggregation (§4) uses :meth:`send_to_pfe` to feed first-level PFE results
to the top-level aggregator PFE directly, without IP forwarding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.addressing import IPv4Address
from repro.net.headers import HeaderError, IPv4Header
from repro.net.multicast import MulticastGroupTable
from repro.net.packet import Packet
from repro.sim import Environment
from repro.trio.chipset import GENERATIONS, TrioChipsetConfig
from repro.trio.fabric import Fabric
from repro.trio.pfe import PFE

__all__ = ["TrioRouter"]


class TrioRouter:
    """A chassis of PFEs joined by an any-to-any fabric."""

    def __init__(
        self,
        env: Environment,
        name: str = "mx480",
        num_pfes: int = 6,
        ports_per_pfe: int = 4,
        config: Optional[TrioChipsetConfig] = None,
        fabric_bandwidth_bps: float = 400e9,
        fabric_latency_s: float = 500e-9,
    ):
        self.env = env
        self.name = name
        self.config = config or GENERATIONS[5]
        self.fabric = Fabric(
            env, bandwidth_bps=fabric_bandwidth_bps, latency_s=fabric_latency_s
        )
        self.pfes: Dict[str, PFE] = {}
        for i in range(num_pfes):
            pfe_name = f"pfe{i + 1}"
            pfe = PFE(
                env,
                name=pfe_name,
                config=self.config,
                num_ports=ports_per_pfe,
                router=self,
            )
            self.pfes[pfe_name] = pfe
            self.fabric.attach(pfe_name, self._fabric_sink(pfe))
        #: Global unicast routes: destination IP -> (pfe_name, port_name).
        self.route_table: Dict[IPv4Address, Tuple[str, str]] = {}
        #: Chassis multicast: group -> port names "pfeX.pY".
        self.multicast = MulticastGroupTable()
        self.unrouted_drops = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def pfe(self, name: str) -> PFE:
        return self.pfes[name]

    def add_route(self, dst: IPv4Address, pfe_name: str, port_name: str) -> None:
        """Install a host route on the chassis."""
        if pfe_name not in self.pfes:
            raise ValueError(f"unknown PFE {pfe_name!r}")
        self.route_table[IPv4Address(dst)] = (pfe_name, port_name)

    def join_multicast(self, group: IPv4Address, pfe_name: str,
                       port_name: str) -> None:
        """Add a port to a multicast group (IGMP join / static config)."""
        if pfe_name not in self.pfes:
            raise ValueError(f"unknown PFE {pfe_name!r}")
        self.multicast.join(group, f"{pfe_name}:{port_name}")

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def _fabric_sink(self, pfe: PFE):
        def sink(packet: Packet) -> None:
            purpose = packet.meta.pop("fabric_purpose", "egress")
            if purpose == "process":
                pfe.accept(packet, ingress_port=None)
            else:
                egress_port = packet.meta.pop("fabric_egress_port")
                pfe._ports_by_name[egress_port].send(packet)

        return sink

    def send_to_pfe(self, packet: Packet, src_pfe: str, dst_pfe: str) -> None:
        """Hand a packet to another PFE for *processing* (hierarchical
        aggregation path: first-level PFEs feed the top-level PFE
        directly, §4)."""
        packet.meta["fabric_purpose"] = "process"
        self.fabric.send(src_pfe, dst_pfe, packet)

    def deliver(self, packet: Packet, from_pfe: PFE,
                egress_hint: Optional[str] = None) -> None:
        """Route a processed packet to its egress port(s)."""
        if egress_hint is not None:
            pfe_name, __, port_name = egress_hint.partition(":")
            self._egress(packet, from_pfe, pfe_name, port_name or egress_hint)
            return
        dst = self._destination_ip(packet)
        if dst is not None and dst.is_multicast:
            members = self.multicast.members(dst)
            if not members:
                self.unrouted_drops += 1
                return
            for member in members:
                pfe_name, __, port_name = member.partition(":")
                self._egress(packet.copy(), from_pfe, pfe_name, port_name)
            return
        if dst is not None and dst in self.route_table:
            pfe_name, port_name = self.route_table[dst]
            self._egress(packet, from_pfe, pfe_name, port_name)
            return
        self.unrouted_drops += 1

    def _egress(self, packet: Packet, from_pfe: PFE, pfe_name: str,
                port_name: str) -> None:
        target = self.pfes.get(pfe_name)
        if target is None:
            self.unrouted_drops += 1
            return
        if target is from_pfe:
            target._ports_by_name[port_name].send(packet)
            return
        packet.meta["fabric_purpose"] = "egress"
        packet.meta["fabric_egress_port"] = port_name
        self.fabric.send(from_pfe.name, pfe_name, packet)

    @staticmethod
    def _destination_ip(packet: Packet) -> Optional[IPv4Address]:
        try:
            __, rest = packet.parse_ethernet()
            ip, __ = IPv4Header.parse(rest, verify_checksum=False)
            return ip.dst
        except HeaderError:
            return None

    def __repr__(self) -> str:
        return f"<TrioRouter {self.name} pfes={list(self.pfes)}>"
