"""The Shared Memory System (§2.3).

One unified address space spans two architecturally equivalent memories
that differ only in capacity, latency, and bandwidth:

* **On-chip SRAM** — heavily multi-banked, ~70 ns access from the PPE,
  typically 2–8 MB; used for frequently accessed structures.
* **Off-chip DRAM** — several GB at 300–400 ns, fronted by a multi-megabyte
  on-chip cache (modelled as an LRU over 64-byte lines).

All PPE accesses go through XTXNs: request over the crossbar, service at a
read-modify-write engine, reply back.  Region latency models the full
PPE-observed round trip; engine queueing adds on top under contention.
Storage is sparse (4 KB pages allocated on first touch) so multi-gigabyte
regions cost nothing until used.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim import Environment
from repro.tools import racecheck as _rc
from repro.trio.chipset import TrioChipsetConfig
from repro.trio.crossbar import Crossbar
from repro.trio.rmw import RMWComplex, RMWOpKind

__all__ = ["MemoryError_", "MemoryRegion", "SharedMemorySystem"]

_PAGE_SIZE = 4096
_LINE_SIZE = 64


class MemoryError_(Exception):
    """Raised on out-of-range accesses or allocation failure.

    (Named with a trailing underscore to avoid shadowing the builtin.)
    """


@dataclass
class _FreeBlock:
    addr: int
    size: int


class MemoryRegion:
    """One contiguous latency-homogeneous range of the unified address space."""

    def __init__(self, name: str, base: int, size: int, latency_s: float):
        self.name = name
        self.base = base
        self.size = size
        self.latency_s = latency_s
        self._pages: Dict[int, bytearray] = {}
        self._bump = base
        self._free: List[_FreeBlock] = []
        self.allocated_bytes = 0

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    # -- raw storage ----------------------------------------------------

    def read_raw(self, addr: int, size: int) -> bytes:
        self._check_range(addr, size)
        page_idx, offset = divmod(addr, _PAGE_SIZE)
        end = offset + size
        if end <= _PAGE_SIZE:
            # Fast path: the access lives in a single page (every 8-64 B
            # XTXN does, given 64 B alignment of allocations).
            page = self._pages.get(page_idx)
            if page is None:
                return bytes(size)
            return bytes(page[offset:end])
        out = bytearray(size)
        pos = 0
        while pos < size:
            page_idx, offset = divmod(addr + pos, _PAGE_SIZE)
            take = min(_PAGE_SIZE - offset, size - pos)
            page = self._pages.get(page_idx)
            if page is not None:
                out[pos:pos + take] = page[offset:offset + take]
            pos += take
        return bytes(out)

    def write_raw(self, addr: int, data: bytes) -> None:
        size = len(data)
        self._check_range(addr, size)
        page_idx, offset = divmod(addr, _PAGE_SIZE)
        end = offset + size
        if end <= _PAGE_SIZE:
            page = self._pages.get(page_idx)
            if page is None:
                page = bytearray(_PAGE_SIZE)
                self._pages[page_idx] = page
            page[offset:end] = data
            return
        pos = 0
        while pos < size:
            page_idx, offset = divmod(addr + pos, _PAGE_SIZE)
            take = min(_PAGE_SIZE - offset, size - pos)
            page = self._pages.get(page_idx)
            if page is None:
                page = bytearray(_PAGE_SIZE)
                self._pages[page_idx] = page
            page[offset:offset + take] = data[pos:pos + take]
            pos += take

    def read_int(self, addr: int, size: int) -> int:
        """Little-endian unsigned read without a bytes round trip.

        Fast path for the 8-byte-and-under aligned accesses the RMW
        engines issue on every fetch-and-op; falls back to
        :meth:`read_raw` for page-straddling accesses.
        """
        self._check_range(addr, size)
        page_idx, offset = divmod(addr, _PAGE_SIZE)
        end = offset + size
        if end <= _PAGE_SIZE:
            page = self._pages.get(page_idx)
            if page is None:
                return 0
            return int.from_bytes(page[offset:end], "little")
        return int.from_bytes(self.read_raw(addr, size), "little")

    def write_int(self, addr: int, value: int, size: int) -> None:
        """Little-endian unsigned write without a bytes round trip."""
        self._check_range(addr, size)
        page_idx, offset = divmod(addr, _PAGE_SIZE)
        end = offset + size
        if end <= _PAGE_SIZE:
            page = self._pages.get(page_idx)
            if page is None:
                page = bytearray(_PAGE_SIZE)
                self._pages[page_idx] = page
            page[offset:end] = value.to_bytes(size, "little")
            return
        self.write_raw(addr, value.to_bytes(size, "little"))

    def _check_range(self, addr: int, size: int) -> None:
        if size < 0:
            raise MemoryError_(f"negative access size: {size}")
        if addr < self.base or addr + size > self.base + self.size:
            raise MemoryError_(
                f"access [{addr:#x}, {addr + size:#x}) outside region "
                f"{self.name} [{self.base:#x}, {self.end:#x})"
            )

    # -- allocation -----------------------------------------------------

    def alloc(self, size: int, align: int = 64) -> int:
        """First-fit allocation, falling back to the bump pointer."""
        if size <= 0:
            raise MemoryError_(f"allocation size must be positive, got {size}")
        for i, block in enumerate(self._free):
            aligned = (block.addr + align - 1) // align * align
            waste = aligned - block.addr
            if block.size >= size + waste:
                remaining = block.size - size - waste
                if remaining > 0:
                    self._free[i] = _FreeBlock(aligned + size, remaining)
                else:
                    del self._free[i]
                self.allocated_bytes += size
                return aligned
        aligned = (self._bump + align - 1) // align * align
        if aligned + size > self.end:
            raise MemoryError_(
                f"region {self.name} exhausted "
                f"({self.allocated_bytes} bytes allocated, {size} requested)"
            )
        self._bump = aligned + size
        self.allocated_bytes += size
        return aligned

    def free(self, addr: int, size: int) -> None:
        """Return a block to the free list (no coalescing)."""
        self._check_range(addr, size)
        self._free.append(_FreeBlock(addr, size))
        self.allocated_bytes -= size


class _DramCache:
    """LRU tag store over 64-byte lines modelling the on-chip DRAM cache."""

    def __init__(self, capacity_bytes: int):
        self.capacity_lines = max(1, capacity_bytes // _LINE_SIZE)
        self._lines: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, addr: int, size: int) -> bool:
        """Touch the lines covering [addr, addr+size); True if all hit."""
        lines = self._lines
        first = addr // _LINE_SIZE
        last = (addr + max(size, 1) - 1) // _LINE_SIZE
        if first == last:
            # Fast path: the 8-64 B XTXNs live in one line.
            if first in lines:
                lines.move_to_end(first)
                self.hits += 1
                return True
            self.misses += 1
            lines[first] = None
            if len(lines) > self.capacity_lines:
                lines.popitem(last=False)
            return False
        all_hit = True
        for line in range(first, last + 1):
            if line in lines:
                lines.move_to_end(line)
                self.hits += 1
            else:
                all_hit = False
                self.misses += 1
                lines[line] = None
                if len(lines) > self.capacity_lines:
                    lines.popitem(last=False)
        return all_hit


class SharedMemorySystem:
    """The full PFE memory complex: regions, allocator, RMW engines, XTXNs."""

    SRAM_BASE = 0x0000_0000
    DRAM_BASE = 0x1_0000_0000

    def __init__(self, env: Environment, config: TrioChipsetConfig,
                 crossbar: Optional[Crossbar] = None):
        self.env = env
        self.config = config
        self.crossbar = crossbar or Crossbar(env, config.crossbar_latency_s)
        self.sram = MemoryRegion(
            "sram", self.SRAM_BASE, config.sram_bytes, config.sram_latency_s
        )
        self.dram = MemoryRegion(
            "dram", self.DRAM_BASE, config.dram_bytes, config.dram_latency_s
        )
        self._regions = (self.sram, self.dram)
        #: Last region hit — repeated same-address RMW traffic (counters,
        #: aggregation buffers) resolves without rescanning the region list.
        self._region_cache: MemoryRegion = self.sram
        self._dram_cache = _DramCache(config.dram_cache_bytes)
        self.rmw = RMWComplex(
            env,
            storage=self,
            num_engines=config.num_rmw_engines,
            clock_hz=config.clock_hz,
            bytes_per_cycle=config.rmw_bytes_per_cycle,
            add32_cycles=config.rmw_add32_cycles,
        )

    # -- region plumbing -------------------------------------------------

    def region_of(self, addr: int) -> MemoryRegion:
        region = self._region_cache
        if region.base <= addr < region.end:
            return region
        for region in self._regions:
            if region.contains(addr):
                self._region_cache = region
                return region
        raise MemoryError_(f"address {addr:#x} is outside the unified space")

    def read_raw(self, addr: int, size: int) -> bytes:
        """Zero-time raw read (used by RMW engines and tests)."""
        return self.region_of(addr).read_raw(addr, size)

    def write_raw(self, addr: int, data: bytes) -> None:
        """Zero-time raw write (used by RMW engines and tests)."""
        self.region_of(addr).write_raw(addr, data)

    def read_int(self, addr: int, size: int) -> int:
        """Zero-time little-endian read (RMW fetch-and-op fast path)."""
        return self.region_of(addr).read_int(addr, size)

    def write_int(self, addr: int, value: int, size: int) -> None:
        """Zero-time little-endian write (RMW fetch-and-op fast path)."""
        self.region_of(addr).write_int(addr, value, size)

    def alloc(self, size: int, region: str = "sram", align: int = 64) -> int:
        """Allocate ``size`` bytes in the named region; returns the address."""
        if region == "sram":
            return self.sram.alloc(size, align)
        if region == "dram":
            return self.dram.alloc(size, align)
        raise MemoryError_(f"unknown region: {region!r}")

    def free(self, addr: int, size: int) -> None:
        """Free a previously allocated block."""
        self.region_of(addr).free(addr, size)

    def access_latency_s(self, addr: int, size: int = 8) -> float:
        """PPE-observed latency for one access (DRAM cache aware)."""
        region = self.region_of(addr)
        if region is self.dram:
            if self._dram_cache.access(addr, size):
                return self.config.dram_cache_hit_latency_s
            return region.latency_s
        return region.latency_s

    @property
    def dram_cache_hits(self) -> int:
        return self._dram_cache.hits

    @property
    def dram_cache_misses(self) -> int:
        return self._dram_cache.misses

    # -- XTXN API (generators; yield from inside a process) ---------------

    def _validate_xtxn_size(self, size: int) -> None:
        limit = self.config.max_xtxn_bytes
        if size < 1 or size > limit:
            raise MemoryError_(
                f"XTXN size {size} outside 1..{limit} "
                "(memory transactions are 8-64 bytes, §2.3)"
            )

    def read(self, addr: int, size: int = 8, pre_delay_s: float = 0.0,
             actor=None):
        """Synchronous read XTXN; returns the bytes.

        ``pre_delay_s`` folds a caller-side deferred charge (coalesced
        ``execute`` time) into the access wait — one kernel event instead
        of two, identical completion timestamp.  ``actor`` attributes the
        access to a PPE thread for the racecheck validator; recording
        never adds simulation events, so timing is identical either way.
        """
        self._validate_xtxn_size(size)
        rc = _rc.session()
        start = self.env.now + pre_delay_s if rc is not None else 0.0
        yield self.env.delay(pre_delay_s + self.access_latency_s(addr, size))
        result = yield from self.rmw.execute(RMWOpKind.READ, addr, size)
        if rc is not None:
            rc.record(actor, "read", addr, size, start, self.env.now)
        return result

    def write(self, addr: int, data: bytes, pre_delay_s: float = 0.0,
              actor=None):
        """Synchronous write XTXN."""
        self._validate_xtxn_size(len(data))
        rc = _rc.session()
        start = self.env.now + pre_delay_s if rc is not None else 0.0
        yield self.env.delay(
            pre_delay_s + self.access_latency_s(addr, len(data))
        )
        yield from self.rmw.execute(RMWOpKind.WRITE, addr, len(data), data=data)
        if rc is not None:
            rc.record(actor, "write", addr, len(data), start, self.env.now)

    def add32(self, addr: int, operand: int, pre_delay_s: float = 0.0,
              actor=None):
        """32-bit add RMW; returns the old value."""
        rc = _rc.session()
        start = self.env.now + pre_delay_s if rc is not None else 0.0
        yield self.env.delay(pre_delay_s + self.access_latency_s(addr, 4))
        result = yield from self.rmw.execute(RMWOpKind.ADD32, addr, 4,
                                             operand=operand)
        if rc is not None:
            rc.record(actor, "write", addr, 4, start, self.env.now,
                      atomic=True)
        return result

    def fetch_and_op(self, kind: RMWOpKind, addr: int, operand: int,
                     size: int = 8, pre_delay_s: float = 0.0, actor=None):
        """Logical fetch-and-op (AND/OR/XOR/CLEAR/SWAP); returns old value."""
        self._validate_xtxn_size(size)
        rc = _rc.session()
        start = self.env.now + pre_delay_s if rc is not None else 0.0
        yield self.env.delay(pre_delay_s + self.access_latency_s(addr, size))
        result = yield from self.rmw.execute(kind, addr, size, operand=operand)
        if rc is not None:
            rc.record(actor, "write", addr, size, start, self.env.now,
                      atomic=True)
        return result

    def masked_write(self, addr: int, operand: int, mask: int, size: int = 8,
                     pre_delay_s: float = 0.0, actor=None):
        """Masked write RMW; returns the old value."""
        self._validate_xtxn_size(size)
        rc = _rc.session()
        start = self.env.now + pre_delay_s if rc is not None else 0.0
        yield self.env.delay(pre_delay_s + self.access_latency_s(addr, size))
        result = yield from self.rmw.execute(
            RMWOpKind.MASKED_WRITE, addr, size, operand=operand, mask=mask
        )
        if rc is not None:
            rc.record(actor, "write", addr, size, start, self.env.now,
                      atomic=True)
        return result

    def counter_inc(self, addr: int, nbytes: int, pre_delay_s: float = 0.0,
                    actor=None):
        """Packet/Byte Counter increment (the CounterIncPhys XTXN, §3.2)."""
        rc = _rc.session()
        start = self.env.now + pre_delay_s if rc is not None else 0.0
        yield self.env.delay(pre_delay_s + self.access_latency_s(addr, 16))
        yield from self.rmw.execute(RMWOpKind.COUNTER_INC, addr, 16,
                                    operand=nbytes)
        if rc is not None:
            rc.record(actor, "write", addr, 16, start, self.env.now,
                      atomic=True)

    # -- bulk paths used by aggregation ----------------------------------

    def bulk_add32(self, addr: int, values: Sequence[int],
                   pre_delay_s: float = 0.0, actor=None):
        """Aggregate a vector of int32 values into memory (fluid model)."""
        rc = _rc.session()
        start = self.env.now + pre_delay_s if rc is not None else 0.0
        yield self.env.delay(
            pre_delay_s + self.access_latency_s(addr, 4 * len(values))
        )
        yield from self.rmw.bulk_add32(addr, values)
        if rc is not None:
            rc.record(actor, "write", addr, 4 * len(values), start,
                      self.env.now, atomic=True)

    def bulk_read(self, addr: int, size: int, pre_delay_s: float = 0.0,
                  actor=None):
        """Stream ``size`` bytes out of memory; returns the bytes."""
        rc = _rc.session()
        start = self.env.now + pre_delay_s if rc is not None else 0.0
        yield self.env.delay(pre_delay_s + self.access_latency_s(addr, size))
        yield from self.rmw.bulk_transfer(size)
        if rc is not None:
            rc.record(actor, "read", addr, size, start, self.env.now)
        return self.read_raw(addr, size)

    def bulk_write(self, addr: int, data: bytes, pre_delay_s: float = 0.0,
                   actor=None):
        """Stream ``data`` into memory."""
        rc = _rc.session()
        start = self.env.now + pre_delay_s if rc is not None else 0.0
        yield self.env.delay(
            pre_delay_s + self.access_latency_s(addr, len(data))
        )
        yield from self.rmw.bulk_transfer(len(data))
        self.write_raw(addr, data)
        if rc is not None:
            rc.record(actor, "write", addr, len(data), start, self.env.now)
