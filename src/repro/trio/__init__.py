"""The Trio chipset model.

This package models the architecture of §2 of the paper:

* :mod:`repro.trio.chipset` — per-generation configuration (clock, PPE
  count, memory sizes and latencies, RMW engine count).
* :mod:`repro.trio.crossbar` — the XTXN transport between PPEs and the
  Shared Memory System.
* :mod:`repro.trio.rmw` — read-modify-write engines and their operations.
* :mod:`repro.trio.memory` — the Shared Memory System (on-chip SRAM,
  off-chip DRAM with on-chip cache, unified address space, allocator).
* :mod:`repro.trio.hashtable` — the hardware hash block with per-record
  'Recently Referenced' (REF) flags.
* :mod:`repro.trio.counters` — Packet/Byte Counters and policers.
* :mod:`repro.trio.ppe` — multi-threaded Packet Processing Engines and the
  thread context exposed to applications.
* :mod:`repro.trio.dispatch` / :mod:`repro.trio.reorder` — the Dispatch
  module and the Reorder Engine.
* :mod:`repro.trio.timers` — timer threads (§5).
* :mod:`repro.trio.pfe` — the Packet Forwarding Engine tying it together.
* :mod:`repro.trio.router` — a multi-PFE router with interconnect fabric.
"""

from repro.trio.chipset import GENERATIONS, TrioChipsetConfig
from repro.trio.crossbar import Crossbar
from repro.trio.memory import MemoryError_, SharedMemorySystem
from repro.trio.rmw import RMWComplex
from repro.trio.hashtable import HardwareHashTable, HashRecord
from repro.trio.counters import PacketByteCounter, Policer
from repro.trio.ppe import PacketContext, PPE, ThreadContext
from repro.trio.reorder import ReorderEngine
from repro.trio.timers import TimerManager
from repro.trio.pfe import PFE, TrioApplication
from repro.trio.router import TrioRouter
from repro.trio.afi import AFIApplication, ForwardingGraph, ForwardingNode, Sandbox
from repro.trio.vmx import VirtualMX

__all__ = [
    "AFIApplication",
    "Crossbar",
    "ForwardingGraph",
    "ForwardingNode",
    "Sandbox",
    "VirtualMX",
    "GENERATIONS",
    "HardwareHashTable",
    "HashRecord",
    "MemoryError_",
    "PFE",
    "PPE",
    "PacketByteCounter",
    "PacketContext",
    "Policer",
    "RMWComplex",
    "ReorderEngine",
    "SharedMemorySystem",
    "ThreadContext",
    "TimerManager",
    "TrioApplication",
    "TrioChipsetConfig",
    "TrioRouter",
]
