"""The vMX Virtual Router (§3.1).

Juniper's first step toward third-party access to Trio is vMX: a
virtualised Universal Routing Platform with a **virtual control plane**
(VCP, running Junos) and a **virtual forwarding plane** (VFP) that runs
the Microcode engine optimised for x86.

The model reuses the PFE machinery with an x86-calibrated "chipset":
a handful of worker cores instead of ~100 PPEs, deeper effective
instruction latency (interpreted Microcode), cache-hierarchy memory
latencies instead of the hardware's banked SRAM, and software-emulated
read-modify-write (fewer, slower engine equivalents — x86 atomics on a
shared cache line).  The same applications (including Trio-ML) run
unmodified, just slower — which is exactly vMX's value proposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.addressing import IPv4Address
from repro.sim import Environment
from repro.trio.chipset import TrioChipsetConfig
from repro.trio.pfe import PFE, TrioApplication

__all__ = ["VCP", "VirtualMX", "VMX_VFP_CONFIG"]

#: The VFP "chipset": Microcode on x86 (calibration estimates).
VMX_VFP_CONFIG = TrioChipsetConfig(
    generation=0,                 # not a silicon generation
    year=2015,
    pfe_bandwidth_bps=40e9,       # a well-tuned DPDK box
    num_ppes=8,                   # worker cores
    threads_per_ppe=4,            # SMT-ish software threads
    clock_hz=2.5e9,
    pipeline_depth_cycles=60,     # interpreted micro-instruction cost
    head_size_bytes=192,
    sram_bytes=32 * 1024 * 1024,        # "on-chip" = L3-resident
    dram_cache_bytes=32 * 1024 * 1024,
    dram_bytes=16 * 1024 * 1024 * 1024,
    sram_latency_s=40e-9,          # L3 hit
    dram_latency_s=120e-9,         # DRAM on a server
    dram_cache_hit_latency_s=40e-9,
    num_rmw_engines=2,             # software atomics serialise hard
    rmw_add32_cycles=12,           # lock-prefixed RMW on a hot line
    crossbar_latency_s=80e-9,      # inter-core cache-coherence hop
    tail_read_latency_s=200e-9,
    num_hw_timers=32,
)


@dataclass
class _ConfigChange:
    version: int
    description: str


class VCP:
    """The virtual control plane: Junos-style candidate/commit config.

    Changes (routes, application installs) accumulate on a candidate and
    take effect on :meth:`commit`, mirroring Junos's commit model.
    """

    def __init__(self, vfp: PFE):
        self._vfp = vfp
        self._candidate: List = []
        self.committed_version = 0
        self.history: List[_ConfigChange] = []

    def set_route(self, dst: IPv4Address, port_name: str) -> None:
        self._candidate.append(
            ("route", IPv4Address(dst), port_name)
        )

    def set_application(self, app: TrioApplication) -> None:
        self._candidate.append(("app", app))

    @property
    def pending_changes(self) -> int:
        return len(self._candidate)

    def commit(self, comment: str = "") -> int:
        """Apply the candidate configuration to the forwarding plane."""
        for change in self._candidate:
            if change[0] == "route":
                __, dst, port_name = change
                self._vfp.add_route(dst, port_name)
            else:
                self._vfp.install_app(change[1])
        applied = len(self._candidate)
        self._candidate.clear()
        self.committed_version += 1
        self.history.append(
            _ConfigChange(self.committed_version,
                          comment or f"{applied} changes")
        )
        return self.committed_version

    def rollback(self) -> int:
        """Discard the candidate configuration."""
        discarded = len(self._candidate)
        self._candidate.clear()
        return discarded


class VirtualMX:
    """A vMX instance: one VFP (x86 Microcode engine) plus its VCP."""

    def __init__(self, env: Environment, name: str = "vmx",
                 num_ports: int = 4,
                 config: Optional[TrioChipsetConfig] = None):
        self.env = env
        self.name = name
        self.vfp = PFE(env, name=f"{name}-vfp",
                       config=config or VMX_VFP_CONFIG,
                       num_ports=num_ports)
        self.vcp = VCP(self.vfp)

    def port(self, index: int):
        return self.vfp.port(index)

    def __repr__(self) -> str:
        return f"<VirtualMX {self.name} cores={self.vfp.config.num_ppes}>"
