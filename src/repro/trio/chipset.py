"""Per-generation Trio chipset configuration.

The paper gives hard numbers for some parameters (1 GHz clock, 70 ns SRAM
and 300–400 ns DRAM access latency, 8 B/cycle per RMW engine, 12 RMW
engines used by Trio-ML, 192-byte packet head for the evaluated generation,
1.25 KB of thread-local memory, 32×64-bit registers, 16 PPEs in gen 1 and
160 in gen 6, 40 Gbps in gen 1 and 1.6 Tbps in gen 6).  Parameters the
paper leaves out (threads per PPE: "tens"; instruction pipeline depth:
"multiple clock cycles") are set to representative values and marked as
estimates; every model reads them from this config so they can be swept.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["TrioChipsetConfig", "GENERATIONS"]


@dataclass(frozen=True)
class TrioChipsetConfig:
    """All architectural parameters of one Trio PFE generation."""

    generation: int
    year: int
    #: Network bandwidth of one PFE, bits/second.
    pfe_bandwidth_bps: float
    #: Number of Packet Processing Engines per PFE.
    num_ppes: int
    #: Hardware threads per PPE ("tens" in the paper; estimate).
    threads_per_ppe: int = 20
    #: PPE core clock, Hz (§6.3: 1 GHz).
    clock_hz: float = 1e9
    #: Cycles from instruction dispatch to writeback.  A thread cannot issue
    #: its next datapath instruction until the previous one exits the
    #: pipeline (§2.2), so single-thread rate is clock/pipeline_depth while
    #: a fully threaded PPE sustains one instruction per cycle.  Estimate.
    pipeline_depth_cycles: int = 20
    #: Bytes of the packet placed in the head (§4: 192 for this generation).
    head_size_bytes: int = 192
    #: Thread-local memory (§2.2: 1.25 KB).
    lmem_bytes: int = 1280
    #: 64-bit general purpose registers per thread (§2.2).
    registers_per_thread: int = 32
    #: Call-return nesting limit (§2.2).
    call_stack_depth: int = 8
    #: On-chip SRAM size (software configurable, typically 2–8 MB).
    sram_bytes: int = 8 * 1024 * 1024
    #: Off-chip DRAM cache size (typically 8–24 MB).
    dram_cache_bytes: int = 16 * 1024 * 1024
    #: Off-chip DRAM size (several GB).
    dram_bytes: int = 4 * 1024 * 1024 * 1024
    #: SRAM access latency from the PPE (§2.3: ~70 ns).
    sram_latency_s: float = 70e-9
    #: Off-chip DRAM access latency from the PPE (§2.3: 300–400 ns).
    dram_latency_s: float = 350e-9
    #: Latency of a DRAM access that hits the on-chip DRAM cache (estimate:
    #: close to SRAM, plus tag lookup).
    dram_cache_hit_latency_s: float = 100e-9
    #: Number of read-modify-write engines (§6.3: Trio-ML uses 12).
    num_rmw_engines: int = 12
    #: Each RMW engine processes 8 bytes per clock cycle (§2.3).
    rmw_bytes_per_cycle: int = 8
    #: Cycles per 32-bit add performed by an RMW engine (§6.3: 2).
    rmw_add32_cycles: int = 2
    #: One-way crossbar transit latency (estimate; §2.3 says the crossbar
    #: itself never limits memory performance, so this is pure latency).
    crossbar_latency_s: float = 25e-9
    #: Latency to pull a chunk of packet tail from the Memory and Queueing
    #: Subsystem into LMEM via an XTXN (estimate: DRAM-class access).
    tail_read_latency_s: float = 300e-9
    #: Maximum single memory transaction size, bytes (§2.3: 8–64 B).
    max_xtxn_bytes: int = 64
    #: Number of high-resolution hardware timers (§5: "tens").
    num_hw_timers: int = 32

    @property
    def cycle_s(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / self.clock_hz

    @property
    def single_thread_instr_s(self) -> float:
        """Latency of one datapath instruction as seen by one thread."""
        return self.pipeline_depth_cycles * self.cycle_s

    @property
    def total_threads(self) -> int:
        """Hardware threads across all PPEs of the PFE."""
        return self.num_ppes * self.threads_per_ppe

    @property
    def rmw_add32_rate_ops_s(self) -> float:
        """Aggregate 32-bit add rate of the RMW complex (§6.3: 6 Gop/s)."""
        return self.num_rmw_engines * self.clock_hz / self.rmw_add32_cycles

    def scaled(self, **overrides) -> "TrioChipsetConfig":
        """A copy of this config with selected fields overridden."""
        return replace(self, **overrides)


def _gen(generation: int, year: int, bandwidth_gbps: float, num_ppes: int,
         **overrides) -> TrioChipsetConfig:
    return TrioChipsetConfig(
        generation=generation,
        year=year,
        pfe_bandwidth_bps=bandwidth_gbps * 1e9,
        num_ppes=num_ppes,
        **overrides,
    )


#: The six Trio generations (§2: gen 1 in 2009 at 40 Gbps with 16 PPEs,
#: gen 6 in 2022 at 1.6 Tbps with 160 PPEs; §8 confirms the PPE counts).
#: Intermediate generations are interpolated estimates; the evaluation uses
#: generation 5 (MPC10E line cards, §6.1).
GENERATIONS: Dict[int, TrioChipsetConfig] = {
    1: _gen(1, 2009, 40.0, 16, num_rmw_engines=2),
    2: _gen(2, 2011, 130.0, 32, num_rmw_engines=4),
    3: _gen(3, 2013, 130.0, 40, num_rmw_engines=4),
    4: _gen(4, 2016, 240.0, 64, num_rmw_engines=8),
    5: _gen(5, 2019, 400.0, 96, num_rmw_engines=12),
    6: _gen(6, 2022, 1600.0, 160, num_rmw_engines=24),
}

#: The generation the paper evaluates (MX480 with MPC10E line cards).
EVALUATED_GENERATION = 5
