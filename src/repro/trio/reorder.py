"""The Reorder Engine (§2.1).

Packets of the same flow may finish processing out of order (threads run
independently), but must leave the PFE in arrival order.  The Reorder
Engine assigns each arriving packet a per-flow sequence number and holds
completed results until every earlier packet of the same flow has
completed.

Results are lists of output actions (a processed packet may forward
itself, emit new packets, or produce nothing); the engine releases each
flow's results strictly in arrival order to a downstream callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List

__all__ = ["ReorderEngine"]


@dataclass
class _FlowState:
    next_arrival: int = 0
    next_release: int = 0
    pending: Dict[int, List[Any]] = field(default_factory=dict)


class ReorderEngine:
    """Per-flow in-order release of processing results."""

    def __init__(self, release: Callable[[Any], None]):
        """``release(item)`` is called for each output action, in order."""
        self._release = release
        self._flows: Dict[Hashable, _FlowState] = {}
        self.held_max = 0
        self.released = 0

    def arrival(self, flow_key: Hashable) -> int:
        """Register a packet arrival; returns its per-flow sequence number."""
        state = self._flows.setdefault(flow_key, _FlowState())
        seq = state.next_arrival
        state.next_arrival += 1
        return seq

    def complete(self, flow_key: Hashable, seq: int,
                 outputs: List[Any]) -> None:
        """Deliver a finished packet's outputs; releases what is in order."""
        state = self._flows.get(flow_key)
        if state is None:
            raise KeyError(f"unknown flow {flow_key!r}")
        if seq < state.next_release or seq in state.pending:
            raise ValueError(
                f"duplicate completion for flow {flow_key!r} seq {seq}"
            )
        state.pending[seq] = outputs
        self.held_max = max(self.held_max, len(state.pending))
        while state.next_release in state.pending:
            ready = state.pending.pop(state.next_release)
            state.next_release += 1
            for item in ready:
                self.released += 1
                self._release(item)
        # Drop completed flow state so long-running simulations do not
        # accumulate one entry per flow forever.
        if not state.pending and state.next_release == state.next_arrival:
            del self._flows[flow_key]

    @property
    def in_flight_flows(self) -> int:
        return len(self._flows)
