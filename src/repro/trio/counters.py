"""Packet/Byte Counters and policers (§2.3, §3.2).

A Packet/Byte Counter is a 16-byte shared-memory structure: an 8-byte
packet count followed by an 8-byte byte count, updated atomically by the
``CounterIncPhys`` XTXN (packet half +1, byte half +packet length).

A policer is a token bucket evaluated by the read-modify-write engine next
to its state, so hundreds of threads can police the same flow without
moving the state around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.sim import Environment
from repro.trio.memory import SharedMemorySystem
from repro.trio.rmw import RMWOpKind

__all__ = ["PacketByteCounter", "Policer"]


class PacketByteCounter:
    """A 16-byte Packet/Byte Counter living in the Shared Memory System."""

    SIZE = 16

    def __init__(self, memory: SharedMemorySystem, region: str = "sram"):
        self.memory = memory
        self.addr = memory.alloc(self.SIZE, region=region, align=16)

    def increment(self, packet_length: int):
        """CounterIncPhys XTXN: +1 packet, +``packet_length`` bytes.

        Generator — ``yield from counter.increment(len(pkt))``.
        """
        yield from self.memory.counter_inc(self.addr, packet_length)

    def read(self) -> Tuple[int, int]:
        """Zero-time (control-plane) read of (packets, bytes)."""
        raw = self.memory.read_raw(self.addr, self.SIZE)
        packets = int.from_bytes(raw[0:8], "little")
        nbytes = int.from_bytes(raw[8:16], "little")
        return packets, nbytes


class Policer:
    """Single-rate token-bucket policer with shared-memory state.

    State layout (16 bytes): 8-byte token count in millitokens (tokens are
    bytes scaled by 1000 to avoid float state), 8-byte last-update
    timestamp in nanoseconds.
    """

    SIZE = 16

    def __init__(
        self,
        env: Environment,
        memory: SharedMemorySystem,
        rate_bps: float,
        burst_bytes: int,
        region: str = "sram",
    ):
        if rate_bps <= 0:
            raise ValueError(f"policer rate must be positive, got {rate_bps}")
        if burst_bytes <= 0:
            raise ValueError(f"burst must be positive, got {burst_bytes}")
        self.env = env
        self.memory = memory
        self.rate_bytes_per_s = rate_bps / 8.0
        self.burst_bytes = burst_bytes
        self.addr = memory.alloc(self.SIZE, region=region, align=16)
        self._write_state(burst_bytes * 1000, 0)
        self.conformed = 0
        self.exceeded = 0

    def _read_state(self) -> Tuple[int, int]:
        raw = self.memory.read_raw(self.addr, self.SIZE)
        return (
            int.from_bytes(raw[0:8], "little"),
            int.from_bytes(raw[8:16], "little"),
        )

    def _write_state(self, millitokens: int, t_ns: int) -> None:
        self.memory.write_raw(
            self.addr,
            millitokens.to_bytes(8, "little") + t_ns.to_bytes(8, "little"),
        )

    def police(self, nbytes: int):
        """Charge ``nbytes``; returns True if conforming, False if exceeding.

        Generator — the update runs as one RMW-engine operation on the
        policer's address, serialising concurrent updates (§2.3 lists
        policers among the engine-side operations).
        """
        # The engine executes the whole token update atomically; we model
        # the service time with a masked-write-sized op and compute the
        # bucket arithmetic at the engine.
        yield self.env.delay(self.memory.access_latency_s(self.addr, 16))
        yield from self.memory.rmw.execute(
            RMWOpKind.READ, self.addr, 16
        )
        millitokens, last_ns = self._read_state()
        now_ns = int(self.env.now * 1e9)
        elapsed_s = max(0, now_ns - last_ns) / 1e9
        refill = int(elapsed_s * self.rate_bytes_per_s * 1000)
        millitokens = min(self.burst_bytes * 1000, millitokens + refill)
        cost = nbytes * 1000
        if millitokens >= cost:
            self._write_state(millitokens - cost, now_ns)
            self.conformed += 1
            return True
        self._write_state(millitokens, now_ns)
        self.exceeded += 1
        return False
