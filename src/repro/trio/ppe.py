"""Packet Processing Engines and thread contexts (§2.2).

Each PPE is a VLIW multi-threaded Microcode engine.  A thread has exactly
one datapath instruction in flight: the next instruction is not dispatched
until the previous one exits the pipeline, so a single thread progresses at
``clock / pipeline_depth`` instructions per second, while a PPE with
``pipeline_depth`` resident threads sustains one instruction per cycle.
The model charges that per-thread latency directly (``execute(n)``) —
configured with ``threads_per_ppe == pipeline_depth_cycles`` the aggregate
PPE throughput cap is automatically respected.

:class:`ThreadContext` is the API surface handed to applications (and to
the Microcode interpreter): local memory, registers, instruction
execution, synchronous XTXNs to the Shared Memory System and the hash
block, and tail reads from the Memory and Queueing Subsystem.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.net.packet import Packet
from repro.sim import Environment
from repro.trio.chipset import TrioChipsetConfig
from repro.trio.hashtable import HardwareHashTable, HashRecord
from repro.trio.memory import SharedMemorySystem
from repro.trio.rmw import RMWOpKind

__all__ = ["PPE", "PacketContext", "ThreadContext"]


#: Packet fates set by applications on the PacketContext.
ACTION_FORWARD = "forward"
ACTION_DROP = "drop"
ACTION_CONSUME = "consume"


@dataclass
class PacketContext:
    """Per-packet processing state.

    The hardware splits each arriving packet into a head (loaded into the
    thread's LMEM) and a tail (kept in the Packet Buffer, §2.1).
    """

    packet: Packet
    head: bytearray
    tail: bytes
    ingress_port: Optional[str] = None
    arrival_seq: int = 0
    arrival_time: float = 0.0
    #: One of ACTION_FORWARD / ACTION_DROP / ACTION_CONSUME.
    action: str = ACTION_FORWARD
    #: Optional egress port name chosen by the application.
    egress_port: Optional[str] = None
    #: New packets emitted during processing: (packet, egress_port_or_None).
    emitted: List[Tuple[Packet, Optional[str]]] = field(default_factory=list)

    @property
    def length(self) -> int:
        """Original wire length of the packet."""
        return len(self.packet)

    def drop(self) -> None:
        self.action = ACTION_DROP

    def consume(self) -> None:
        """The application took ownership; the packet is freed."""
        self.action = ACTION_CONSUME

    def forward(self, egress_port: Optional[str] = None) -> None:
        self.action = ACTION_FORWARD
        self.egress_port = egress_port

    def emit(self, packet: Packet, egress_port: Optional[str] = None) -> None:
        """Queue a new packet created by this thread (e.g. a Result packet)."""
        self.emitted.append((packet, egress_port))


class PPE:
    """One Packet Processing Engine: bookkeeping for its resident threads."""

    def __init__(self, env: Environment, index: int, config: TrioChipsetConfig):
        self.env = env
        self.index = index
        self.config = config
        self.threads_spawned = 0
        self.instructions_executed = 0
        self.busy_s = 0.0

    def __repr__(self) -> str:
        return f"<PPE {self.index} threads={self.threads_spawned}>"


#: Cached zero patterns for LMEM / register-file reuse, keyed by size.
_ZERO_BYTES: dict = {}
_ZERO_REGS: dict = {}


class ThreadContext:
    """Execution context of one PPE thread.

    Created by the PFE when a packet (or timer/internal event) spawns a
    thread; recycled into a free pool when processing completes, so the
    1.25 KB LMEM buffer and the register file are reused across packets
    instead of reallocated.  All methods that consume simulated time are
    generators used with ``yield from``.

    Back-to-back pure-latency charges are *coalesced*: ``execute`` only
    accumulates its delay, and the next blocking operation (memory XTXN,
    hash XTXN, tail read, or the final :meth:`flush`) folds the pending
    charge into its own wait.  Completion timestamps are identical to
    issuing one kernel event per charge; only the event count drops.
    """

    _ids = itertools.count()

    def __init__(
        self,
        env: Environment,
        ppe: PPE,
        config: TrioChipsetConfig,
        memory: SharedMemorySystem,
        hash_table: HardwareHashTable,
        packet_ctx: Optional[PacketContext] = None,
    ):
        self.env = env
        self.ppe = ppe
        self.config = config
        self.memory = memory
        self.hash_table = hash_table
        self.packet_ctx = packet_ctx
        self.thread_id = next(self._ids)
        #: Thread-local memory (1.25 KB, §2.2).  The packet head is loaded
        #: at offset 0 before the thread starts.
        self.lmem = bytearray(config.lmem_bytes)
        #: 32 private 64-bit general-purpose registers (§2.2).
        self.registers: List[int] = [0] * config.registers_per_thread
        self.instructions = 0
        #: Accumulated pure-delay charge not yet turned into a kernel event.
        self.pending_s = 0.0
        if packet_ctx is not None:
            head = packet_ctx.head[: config.lmem_bytes]
            self.lmem[: len(head)] = head

    def reset(self, ppe: PPE, packet_ctx: Optional[PacketContext]) -> None:
        """Reinitialise a pooled context for a new thread spawn.

        Equivalent to constructing a fresh context (zeroed LMEM and
        registers, new thread id) but reuses the existing buffers.
        """
        config = self.config
        self.ppe = ppe
        self.packet_ctx = packet_ctx
        self.thread_id = next(self._ids)
        self.instructions = 0
        self.pending_s = 0.0
        size = config.lmem_bytes
        zeros = _ZERO_BYTES.get(size)
        if zeros is None:
            zeros = _ZERO_BYTES[size] = bytes(size)
        self.lmem[:] = zeros
        nregs = config.registers_per_thread
        zregs = _ZERO_REGS.get(nregs)
        if zregs is None:
            zregs = _ZERO_REGS[nregs] = (0,) * nregs
        self.registers[:] = zregs
        if packet_ctx is not None:
            head = packet_ctx.head[:size]
            self.lmem[: len(head)] = head

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------

    def execute(self, n_instructions: int):
        """Run ``n_instructions`` datapath instructions on this thread.

        Charges single-thread latency: ``n × pipeline_depth / clock``.
        The charge is deferred and folded into the thread's next blocking
        wait (or its final flush), which is timing-equivalent because a
        pure delay commutes with the delays around it.
        """
        if n_instructions < 0:
            raise ValueError(f"negative instruction count: {n_instructions}")
        self.instructions += n_instructions
        self.ppe.instructions_executed += n_instructions
        delay = n_instructions * self.config.single_thread_instr_s
        self.ppe.busy_s += delay
        self.pending_s += delay
        return
        yield  # pragma: no cover - makes this a (zero-event) generator

    def flush(self):
        """Turn any accumulated deferred charge into one kernel event."""
        if self.pending_s:
            pending, self.pending_s = self.pending_s, 0.0
            yield self.env.delay(pending)

    def _take_pending(self) -> float:
        pending, self.pending_s = self.pending_s, 0.0
        return pending

    @property
    def now(self) -> float:
        """Thread-local simulated time, including deferred charges.

        Equals what ``env.now`` would read if every ``execute`` charge had
        been slept eagerly; model code inside handlers must use this (not
        ``env.now``) when timestamping.
        """
        return self.env.now + self.pending_s

    def set_register(self, index: int, value: int) -> None:
        """Write a 64-bit GPR (wraps modulo 2^64)."""
        self.registers[index] = value & (2**64 - 1)

    def get_register(self, index: int) -> int:
        return self.registers[index]

    # ------------------------------------------------------------------
    # Packet tail access (§4: tail data resides in the Memory and
    # Queueing Subsystem and must be read into LMEM before use)
    # ------------------------------------------------------------------

    def read_tail(self, offset: int, size: int):
        """XTXN pulling ``size`` tail bytes into LMEM; returns the bytes."""
        if self.packet_ctx is None:
            raise RuntimeError("no packet bound to this thread")
        tail = self.packet_ctx.tail
        if offset < 0 or offset > len(tail):
            raise ValueError(
                f"tail offset {offset} outside 0..{len(tail)}"
            )
        yield self.env.delay(
            self._take_pending() + self.config.tail_read_latency_s
        )
        chunk = tail[offset:offset + size]
        self.lmem[: len(chunk)] = chunk  # lands in LMEM scratch space
        return chunk

    def read_tail_chunks(self, num_chunks: int):
        """Charge the latency of ``num_chunks`` sequential tail XTXNs.

        The per-chunk reads of the Figure 10 loop are pure back-to-back
        latency (no shared resource between them), so lumping them into
        one delay is timing-equivalent to issuing them one at a time and
        keeps the event count linear in packets rather than chunks.
        """
        if num_chunks < 0:
            raise ValueError(f"negative chunk count: {num_chunks}")
        total = self._take_pending() + (
            num_chunks * self.config.tail_read_latency_s
        )
        if total:
            yield self.env.delay(total)

    # ------------------------------------------------------------------
    # Shared Memory System XTXNs (synchronous: thread suspends, §3.1)
    # ------------------------------------------------------------------

    def mem_read(self, addr: int, size: int = 8):
        result = yield from self.memory.read(
            addr, size, pre_delay_s=self._take_pending(),
            actor=self.thread_id,
        )
        return result

    def mem_write(self, addr: int, data: bytes):
        yield from self.memory.write(
            addr, data, pre_delay_s=self._take_pending(),
            actor=self.thread_id,
        )

    def mem_add32(self, addr: int, operand: int):
        result = yield from self.memory.add32(
            addr, operand, pre_delay_s=self._take_pending(),
            actor=self.thread_id,
        )
        return result

    def mem_fetch_and_op(self, kind: RMWOpKind, addr: int, operand: int,
                         size: int = 8):
        result = yield from self.memory.fetch_and_op(
            kind, addr, operand, size, pre_delay_s=self._take_pending(),
            actor=self.thread_id,
        )
        return result

    def counter_inc(self, addr: int, nbytes: int):
        """The CounterIncPhys XTXN (§3.2)."""
        yield from self.memory.counter_inc(
            addr, nbytes, pre_delay_s=self._take_pending(),
            actor=self.thread_id,
        )

    # ------------------------------------------------------------------
    # Hash block XTXNs
    # ------------------------------------------------------------------

    def hash_lookup(self, key):
        record = yield from self.hash_table.lookup(
            key, pre_delay_s=self._take_pending(), actor=self.thread_id
        )
        return record

    def hash_insert(self, key, value):
        record = yield from self.hash_table.insert(
            key, value, pre_delay_s=self._take_pending(),
            actor=self.thread_id,
        )
        return record

    def hash_insert_if_absent(self, key, value):
        record, created = yield from self.hash_table.insert_if_absent(
            key, value, pre_delay_s=self._take_pending(),
            actor=self.thread_id,
        )
        return record, created

    def hash_delete(self, key):
        existed = yield from self.hash_table.delete(
            key, pre_delay_s=self._take_pending(), actor=self.thread_id
        )
        return existed

    def __repr__(self) -> str:
        return f"<ThreadContext {self.thread_id} on PPE {self.ppe.index}>"
