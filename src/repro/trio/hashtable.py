"""The hardware hash block with per-record REF flags (§5).

Trio's hash hardware supports lookup/insert/delete over the crossbar and a
per-record 'Recently Referenced' (REF) flag: set when a record is created
and whenever a lookup touches it.  Timer threads periodically walk the
table, test-and-clear each record's REF flag, and treat a clear flag as
"not accessed for at least one timer interval" — the straggler detection
primitive.

The table is bucketed; scans are partitioned into ``num_segments`` equal
bucket ranges so N timer threads can each walk 1/N of the table (§5,
"Multi-thread scanning of large hash tables").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.obs import bus as _obs
from repro.sim import Environment
from repro.tools import racecheck as _rc

__all__ = ["HardwareHashTable", "HashRecord"]


@dataclass
class HashRecord:
    """One record in the hash block.

    ``value`` is the application payload (e.g. a Trio-ML block record);
    ``ref_flag`` is the hardware REF bit.
    """

    key: Hashable
    value: Any
    ref_flag: bool = True

    def __repr__(self) -> str:
        return f"<HashRecord key={self.key!r} ref={self.ref_flag}>"


class HardwareHashTable:
    """Bucketed hash table with latency-charged operations and REF flags."""

    def __init__(
        self,
        env: Environment,
        num_buckets: int = 4096,
        op_latency_s: float = 70e-9,
        scan_entry_latency_s: float = 10e-9,
    ):
        """``op_latency_s`` is the PPE-observed latency of one hash XTXN
        (SRAM-class); ``scan_entry_latency_s`` is the per-record cost of a
        timer-thread scan step."""
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.env = env
        self.num_buckets = num_buckets
        self.op_latency_s = op_latency_s
        self.scan_entry_latency_s = scan_entry_latency_s
        # Buckets allocate lazily: a fresh table is one flat None-list, not
        # ``num_buckets`` empty dicts (constructed once per simulated PFE).
        self._buckets: List[Optional[Dict[Hashable, HashRecord]]] = (
            [None] * num_buckets
        )
        self._count = 0
        self.lookups = 0
        self.inserts = 0
        self.deletes = 0
        #: Display name used for obs tracks/labels; the owning PFE
        #: overrides it with a per-PFE name.
        self.obs_name = "hash"

    def __len__(self) -> int:
        return self._count

    def _bucket_of(self, key: Hashable) -> Dict[Hashable, HashRecord]:
        idx = hash(key) % self.num_buckets
        bucket = self._buckets[idx]
        if bucket is None:
            bucket = self._buckets[idx] = {}
        return bucket

    # ------------------------------------------------------------------
    # Latency-charged operations (generators)
    # ------------------------------------------------------------------

    def lookup(self, key: Hashable, pre_delay_s: float = 0.0, actor=None):
        """Hash lookup XTXN; returns the record (REF set) or None.

        ``pre_delay_s`` folds a caller-side deferred charge into the
        operation's single kernel event (see ThreadContext.execute).
        ``actor`` attributes the op for the racecheck validator; every
        hash op is per-key atomic in hardware, so these windows never
        conflict — they only serve as commit points for the analysis.
        """
        rc = _rc.session()
        start = self.env.now + pre_delay_s if rc is not None else 0.0
        yield self.env.delay(pre_delay_s + self.op_latency_s)
        self.lookups += 1
        record = self._bucket_of(key).get(key)
        if record is not None:
            record.ref_flag = True
        if rc is not None:
            rc.record_hash(actor, "read", key, start, self.env.now)
        return record

    def insert(self, key: Hashable, value: Any, pre_delay_s: float = 0.0,
               actor=None):
        """Hash insert XTXN; returns the new record (REF set).

        Inserting an existing key replaces its value, matching
        insert-or-update hash hardware semantics.
        """
        rc = _rc.session()
        start = self.env.now + pre_delay_s if rc is not None else 0.0
        yield self.env.delay(pre_delay_s + self.op_latency_s)
        self.inserts += 1
        bucket = self._bucket_of(key)
        if rc is not None:
            rc.record_hash(actor, "write", key, start, self.env.now)
        existing = bucket.get(key)
        if existing is not None:
            existing.value = value
            existing.ref_flag = True
            return existing
        record = HashRecord(key=key, value=value)
        bucket[key] = record
        self._count += 1
        self._obs_occupancy()
        return record

    def insert_if_absent(self, key: Hashable, value: Any,
                         pre_delay_s: float = 0.0, actor=None):
        """Atomic insert-or-get XTXN; returns (record, created).

        The hash hardware serialises operations on one key, so two threads
        racing to create the same record see a single winner; the loser
        gets the winner's record back.
        """
        rc = _rc.session()
        start = self.env.now + pre_delay_s if rc is not None else 0.0
        yield self.env.delay(pre_delay_s + self.op_latency_s)
        self.inserts += 1
        bucket = self._bucket_of(key)
        if rc is not None:
            rc.record_hash(actor, "write", key, start, self.env.now)
        existing = bucket.get(key)
        if existing is not None:
            existing.ref_flag = True
            return existing, False
        record = HashRecord(key=key, value=value)
        bucket[key] = record
        self._count += 1
        self._obs_occupancy()
        return record, True

    def delete(self, key: Hashable, pre_delay_s: float = 0.0, actor=None):
        """Hash delete XTXN; returns True if the key existed."""
        rc = _rc.session()
        start = self.env.now + pre_delay_s if rc is not None else 0.0
        yield self.env.delay(pre_delay_s + self.op_latency_s)
        self.deletes += 1
        bucket = self._bucket_of(key)
        if rc is not None:
            rc.record_hash(actor, "write", key, start, self.env.now)
        if key in bucket:
            del bucket[key]
            self._count -= 1
            self._obs_occupancy()
            return True
        return False

    def scan_segment(self, segment: int, num_segments: int):
        """Walk 1/``num_segments`` of the buckets; returns the records.

        Charges per-record scan latency, so a big segment takes a timer
        thread proportionally longer — the motivation for deploying N
        parallel scanning threads (§5).
        """
        records = self.segment_records(segment, num_segments)
        cost = max(1, len(records)) * self.scan_entry_latency_s
        yield self.env.delay(cost)
        obs = _obs.session()
        if obs is not None:
            obs.probe("hash.scan_sweeps", table=self.obs_name)
            obs.observe("hash.scan_records", len(records),
                        table=self.obs_name)
        return records

    def _obs_occupancy(self) -> None:
        """Sample table occupancy onto the trace after a count change."""
        obs = _obs.session()
        if obs is not None:
            obs.sample(f"hash.occupancy/{self.obs_name}",
                       self.env.now, self._count)

    # ------------------------------------------------------------------
    # Zero-time accessors (control plane / tests)
    # ------------------------------------------------------------------

    def segment_bounds(self, segment: int, num_segments: int) -> Tuple[int, int]:
        """Bucket index range [start, end) owned by ``segment``."""
        if not 0 <= segment < num_segments:
            raise ValueError(
                f"segment {segment} outside 0..{num_segments - 1}"
            )
        per = (self.num_buckets + num_segments - 1) // num_segments
        start = segment * per
        end = min(start + per, self.num_buckets)
        return start, end

    def segment_records(self, segment: int, num_segments: int
                        ) -> List[HashRecord]:
        """Records in the buckets owned by ``segment`` (zero time)."""
        start, end = self.segment_bounds(segment, num_segments)
        records: List[HashRecord] = []
        for bucket in self._buckets[start:end]:
            if bucket:
                records.extend(bucket.values())
        return records

    def insert_nowait(self, key: Hashable, value: Any) -> HashRecord:
        """Zero-time insert used by control-plane configuration."""
        bucket = self._bucket_of(key)
        existing = bucket.get(key)
        if existing is not None:
            existing.value = value
            existing.ref_flag = True
            return existing
        record = HashRecord(key=key, value=value)
        bucket[key] = record
        self._count += 1
        return record

    def delete_nowait(self, key: Hashable) -> bool:
        """Zero-time delete used by control-plane teardown."""
        bucket = self._bucket_of(key)
        if key in bucket:
            del bucket[key]
            self._count -= 1
            return True
        return False

    def get_nowait(self, key: Hashable) -> Optional[HashRecord]:
        """Zero-time peek that does NOT set the REF flag."""
        return self._bucket_of(key).get(key)

    def all_records(self) -> Iterator[HashRecord]:
        """Iterate every record (zero time)."""
        for bucket in self._buckets:
            if bucket:
                yield from bucket.values()
