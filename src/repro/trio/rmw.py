"""Read-modify-write engines (§2.3).

Packet processing needs extremely high-rate read-modify-write operations,
so Trio offloads them to engines that sit next to the memory banks: a range
of addresses is owned by one engine, concurrent requests to the same
location are serialised by that engine, and no coherence traffic is needed.

Two service paths are modelled:

* **Per-op path** (:meth:`RMWComplex.execute`): a single operation is
  queued FCFS on the engine owning its address and served at 8 bytes per
  clock cycle (adds take 2 cycles per 32-bit word).  This is what counters,
  policers, fetch-and-ops, and record updates use.
* **Bulk path** (:meth:`RMWComplex.bulk_add32`): gradient aggregation
  writes whole 64-byte chunks whose words interleave across all engines.
  Per-word event simulation would be prohibitive, so the bulk path models
  the engine complex as a fluid FCFS server with the exact aggregate rate
  of the hardware — ``num_engines × clock / add_cycles`` adds per second
  (6 G adds/s for the evaluated generation, §6.3).  Aggregate-rate
  contention between concurrent aggregations is preserved; per-word
  ordering detail is not (documented deviation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.obs import bus as _obs
from repro.sim import Environment, Resource
from repro.tools import racecheck as _rc

__all__ = ["RMWComplex", "RMWOpKind", "RMWStats"]


class RMWOpKind(enum.Enum):
    """The read-modify-write operations the memory system supports (§2.3)."""

    READ = "read"
    WRITE = "write"
    ADD32 = "add32"
    FETCH_AND_AND = "fetch_and_and"
    FETCH_AND_OR = "fetch_and_or"
    FETCH_AND_XOR = "fetch_and_xor"
    FETCH_AND_CLEAR = "fetch_and_clear"
    FETCH_AND_SWAP = "fetch_and_swap"
    MASKED_WRITE = "masked_write"
    COUNTER_INC = "counter_inc"


@dataclass
class RMWStats:
    """Operation counters for one engine or the whole complex."""

    ops: int = 0
    bytes_serviced: int = 0
    busy_s: float = 0.0


class RMWComplex:
    """All RMW engines of one PFE plus the fluid bulk-aggregation server."""

    #: Address-interleave granule: consecutive 64 B blocks map to
    #: consecutive engines, spreading hot structures across the complex.
    INTERLEAVE_BYTES = 64

    def __init__(
        self,
        env: Environment,
        storage,
        num_engines: int = 12,
        clock_hz: float = 1e9,
        bytes_per_cycle: int = 8,
        add32_cycles: int = 2,
    ):
        """``storage`` must expose ``read_raw(addr, size)`` and
        ``write_raw(addr, data)``; latency is charged here, not there."""
        if num_engines < 1:
            raise ValueError(f"need at least one RMW engine, got {num_engines}")
        self.env = env
        self.storage = storage
        self.num_engines = num_engines
        self.clock_hz = float(clock_hz)
        self.bytes_per_cycle = bytes_per_cycle
        self.add32_cycles = add32_cycles
        self._engines: List[Resource] = [Resource(env) for __ in range(num_engines)]
        self._bulk_server = Resource(env)
        self.engine_stats: List[RMWStats] = [RMWStats() for __ in range(num_engines)]
        self.bulk_stats = RMWStats()
        #: Display name used for obs tracks/labels; the owning PFE
        #: overrides it with a per-PFE name.
        self.obs_name = "rmw"
        self._obs_busy = 0
        self._obs_bulk_busy = 0

    # ------------------------------------------------------------------
    # Rates
    # ------------------------------------------------------------------

    @property
    def cycle_s(self) -> float:
        return 1.0 / self.clock_hz

    @property
    def add32_rate_ops_s(self) -> float:
        """Aggregate 32-bit-add rate of the whole complex."""
        return self.num_engines * self.clock_hz / self.add32_cycles

    def engine_for(self, addr: int) -> int:
        """Index of the engine owning ``addr``."""
        return (addr // self.INTERLEAVE_BYTES) % self.num_engines

    def _service_cycles(self, kind: RMWOpKind, size: int) -> int:
        words8 = max(1, (size + self.bytes_per_cycle - 1) // self.bytes_per_cycle)
        if kind is RMWOpKind.ADD32:
            # Two cycles per 32-bit add; `size` bytes hold size/4 adds.
            return self.add32_cycles * max(1, size // 4)
        if kind is RMWOpKind.COUNTER_INC:
            # 16-byte Packet/Byte Counter: two 8-byte add updates.
            return 2 * self.add32_cycles
        return words8

    # ------------------------------------------------------------------
    # Per-op path
    # ------------------------------------------------------------------

    def execute(
        self,
        kind: RMWOpKind,
        addr: int,
        size: int = 8,
        data: Optional[bytes] = None,
        operand: int = 0,
        mask: int = 0,
    ):
        """Run one operation on the owning engine; returns the old value.

        Generator — use as ``result = yield from rmw.execute(...)``.
        Semantic summary (all integer ops little-endian over ``size``
        bytes unless noted):

        * READ: returns stored bytes.
        * WRITE: stores ``data``; returns None.
        * ADD32: adds ``operand`` to the 32-bit word at ``addr`` (wraps);
          returns the old value.
        * FETCH_AND_AND/OR/XOR: applies the logic op with ``operand``;
          returns the old value.
        * FETCH_AND_CLEAR: clears bits in ``operand``; returns old value.
        * FETCH_AND_SWAP: stores ``operand``; returns old value.
        * MASKED_WRITE: ``new = (old & ~mask) | (operand & mask)``;
          returns old value.
        * COUNTER_INC: treats ``addr`` as a 16-byte Packet/Byte Counter;
          adds 1 to the packet half and ``operand`` to the byte half.
        """
        engine_idx = self.engine_for(addr)
        engine = self._engines[engine_idx]
        stats = self.engine_stats[engine_idx]
        obs = _obs.session()
        queued_at = self.env.now if obs is not None else 0.0
        grant = engine.acquire()
        if grant is not None:
            yield grant
        if obs is not None:
            obs.observe("rmw.queue_wait_s", self.env.now - queued_at,
                        complex=self.obs_name)
            self._obs_busy += 1
            obs.sample(f"rmw.engines_busy/{self.obs_name}",
                       self.env.now, self._obs_busy)
        try:
            service_s = self._service_cycles(kind, size) * self.cycle_s
            yield self.env.delay(service_s)
            stats.ops += 1
            stats.bytes_serviced += size
            stats.busy_s += service_s
            rc = _rc.session()
            if rc is not None:
                # Commit point: the engine applies the op while holding
                # its FCFS grant — the serialization the MC4xx contract
                # relies on.  Recorded as evidence, never as a conflict.
                rc.note_engine_commit(engine_idx)
            return self._apply(kind, addr, size, data, operand, mask)
        finally:
            engine.release()
            if obs is not None:
                self._obs_busy -= 1
                obs.sample(f"rmw.engines_busy/{self.obs_name}",
                           self.env.now, self._obs_busy)

    def _apply(self, kind: RMWOpKind, addr: int, size: int,
               data: Optional[bytes], operand: int, mask: int):
        storage = self.storage
        if kind is RMWOpKind.READ:
            return storage.read_raw(addr, size)
        if kind is RMWOpKind.WRITE:
            if data is None:
                raise ValueError("WRITE needs data")
            storage.write_raw(addr, data)
            return None
        if kind is RMWOpKind.COUNTER_INC:
            read_int = getattr(storage, "read_int", None)
            if read_int is not None:
                write_int = storage.write_int
                for offset, delta in ((0, 1), (8, operand)):
                    value = (read_int(addr + offset, 8) + delta) & (2**64 - 1)
                    write_int(addr + offset, value, 8)
            else:
                for offset, delta in ((0, 1), (8, operand)):
                    raw = storage.read_raw(addr + offset, 8)
                    value = (int.from_bytes(raw, "little") + delta) & (2**64 - 1)
                    storage.write_raw(addr + offset, value.to_bytes(8, "little"))
            return None

        read_int = getattr(storage, "read_int", None)
        if read_int is not None:
            old = read_int(addr, size)
        else:
            old = int.from_bytes(storage.read_raw(addr, size), "little")
        limit = (1 << (size * 8)) - 1
        if kind is RMWOpKind.ADD32:
            if size != 4:
                raise ValueError("ADD32 operates on 4-byte words")
            new = (old + operand) & 0xFFFFFFFF
        elif kind is RMWOpKind.FETCH_AND_AND:
            new = old & operand
        elif kind is RMWOpKind.FETCH_AND_OR:
            new = old | operand
        elif kind is RMWOpKind.FETCH_AND_XOR:
            new = old ^ operand
        elif kind is RMWOpKind.FETCH_AND_CLEAR:
            new = old & ~operand & limit
        elif kind is RMWOpKind.FETCH_AND_SWAP:
            new = operand & limit
        elif kind is RMWOpKind.MASKED_WRITE:
            new = (old & ~mask & limit) | (operand & mask)
        else:
            raise ValueError(f"unsupported RMW op: {kind}")
        write_int = getattr(storage, "write_int", None)
        if write_int is not None:
            write_int(addr, new, size)
        else:
            storage.write_raw(addr, new.to_bytes(size, "little"))
        return old

    # ------------------------------------------------------------------
    # Bulk path
    # ------------------------------------------------------------------

    def bulk_add32(self, addr: int, values: Sequence[int]):
        """Add a vector of 32-bit values into memory starting at ``addr``.

        Generator — the calling thread blocks for the complex's aggregate
        service time of ``len(values)`` adds, FCFS against all other bulk
        work.  Values and memory words wrap modulo 2^32 (the aggregation
        semantics of int32 gradient summation).
        """
        n_ops = len(values)
        if n_ops == 0:
            return
        obs = _obs.session()
        queued_at = self.env.now if obs is not None else 0.0
        grant = self._bulk_server.acquire()
        if grant is not None:
            yield grant
        if obs is not None:
            obs.observe("rmw.bulk_wait_s", self.env.now - queued_at,
                        complex=self.obs_name)
            self._obs_bulk_busy += 1
            obs.sample(f"rmw.bulk_busy/{self.obs_name}",
                       self.env.now, self._obs_bulk_busy)
        try:
            service_s = n_ops * self.add32_cycles / (self.num_engines * self.clock_hz)
            yield self.env.delay(service_s)
            self.bulk_stats.ops += n_ops
            self.bulk_stats.bytes_serviced += 4 * n_ops
            self.bulk_stats.busy_s += service_s
            raw = self.storage.read_raw(addr, 4 * n_ops)
            current = np.frombuffer(raw, dtype="<u4").astype(np.int64)
            # One final mask suffices: (a + b) mod 2^32 == (a + b mod 2^32).
            summed = (current + np.asarray(values, dtype=np.int64)) & 0xFFFFFFFF
            self.storage.write_raw(addr, summed.astype("<u4").tobytes())
        finally:
            self._bulk_server.release()
            if obs is not None:
                self._obs_bulk_busy -= 1
                obs.sample(f"rmw.bulk_busy/{self.obs_name}",
                           self.env.now, self._obs_bulk_busy)

    def bulk_transfer(self, nbytes: int):
        """Charge bulk read/write bandwidth for ``nbytes`` (no mutation).

        Generator — used for streaming whole buffers (e.g. building the
        Result packet from the aggregation buffer) at the complex's
        aggregate 8 B/cycle/engine rate, FCFS with other bulk work.
        """
        if nbytes <= 0:
            return
        obs = _obs.session()
        queued_at = self.env.now if obs is not None else 0.0
        grant = self._bulk_server.acquire()
        if grant is not None:
            yield grant
        if obs is not None:
            obs.observe("rmw.bulk_wait_s", self.env.now - queued_at,
                        complex=self.obs_name)
            self._obs_bulk_busy += 1
            obs.sample(f"rmw.bulk_busy/{self.obs_name}",
                       self.env.now, self._obs_bulk_busy)
        try:
            cycles = (nbytes + self.bytes_per_cycle - 1) // self.bytes_per_cycle
            service_s = cycles / (self.num_engines * self.clock_hz)
            yield self.env.delay(service_s)
            self.bulk_stats.ops += 1
            self.bulk_stats.bytes_serviced += nbytes
            self.bulk_stats.busy_s += service_s
        finally:
            self._bulk_server.release()
            if obs is not None:
                self._obs_bulk_busy -= 1
                obs.sample(f"rmw.bulk_busy/{self.obs_name}",
                           self.env.now, self._obs_bulk_busy)

    @property
    def total_ops(self) -> int:
        """Ops serviced across all engines and the bulk server."""
        return self.bulk_stats.ops + sum(s.ops for s in self.engine_stats)
