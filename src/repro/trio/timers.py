"""Timer threads (§5).

Trio contains tens of high-resolution hardware timers that can launch
Microcode threads periodically.  For straggler detection, N timer threads
are launched with an interarrival of ``period / N`` so that each visits
1/N of the aggregation hash table once per period; no PPE is reserved —
every firing grabs any available PPE thread.

:class:`TimerManager` owns the timer configuration and drives the firings;
the actual work is a user callback run on a PFE thread (so it competes
with packet processing for thread slots, as on the hardware).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.sim import Environment, Process

__all__ = ["TimerManager", "TimerGroup"]

#: Signature of timer work: callback(thread_ctx, thread_index) -> generator.
TimerCallback = Callable[[object, int], object]


@dataclass
class TimerGroup:
    """One family of N phase-staggered periodic timer threads."""

    name: str
    num_threads: int
    period_s: float
    callback: TimerCallback = field(repr=False, default=None)
    firings: int = 0
    cancelled: bool = False


class TimerManager:
    """Launches and tracks periodic timer-thread groups on one PFE."""

    def __init__(self, env: Environment, pfe, num_hw_timers: int = 32):
        """``pfe`` must expose ``spawn_internal_thread(callback, name=...)``
        returning a :class:`~repro.sim.Process`."""
        self.env = env
        self.pfe = pfe
        self.num_hw_timers = num_hw_timers
        self.groups: List[TimerGroup] = []

    def launch_periodic(
        self,
        name: str,
        num_threads: int,
        period_s: float,
        callback: TimerCallback,
    ) -> TimerGroup:
        """Start ``num_threads`` periodic threads with period ``period_s``.

        Thread *i* first fires at ``i × period / num_threads`` and then
        every ``period`` (§5: the interarrival interval between
        back-to-back threads is 1/N of the desired timeout interval).
        Each firing runs ``callback(thread_ctx, thread_index)`` as a
        generator on any available PPE thread.
        """
        if num_threads < 1:
            raise ValueError(f"need at least one timer thread, got {num_threads}")
        if period_s <= 0:
            raise ValueError(f"timer period must be positive, got {period_s}")
        group = TimerGroup(
            name=name, num_threads=num_threads, period_s=period_s,
            callback=callback,
        )
        self.groups.append(group)
        for i in range(num_threads):
            self.env.process(
                self._timer_loop(group, i), name=f"timer:{name}:{i}"
            )
        return group

    def cancel(self, group: TimerGroup) -> None:
        """Stop all threads of a group after their current firing."""
        group.cancelled = True

    def _timer_loop(self, group: TimerGroup, index: int):
        phase = index * group.period_s / group.num_threads
        if phase:
            yield self.env.delay(phase)
        while not group.cancelled:
            group.firings += 1
            worker: Process = self.pfe.spawn_internal_thread(
                lambda tctx, i=index: group.callback(tctx, i),
                name=f"timer:{group.name}:{index}",
            )
            yield worker
            yield self.env.delay(group.period_s)
