"""The crossbar connecting PPEs to the Shared Memory System and MQSS.

§2.3: "Trio's Crossbar is designed to support all read-modify-write
engines, such that the Crossbar itself will never limit the memory
performance."  We therefore model the crossbar as pure transit latency with
unbounded internal bandwidth; backpressure arises at the RMW engines (which
*are* modelled as queueing servers), matching the paper's description that
"if the load offered to a given read-modify-write engine exceeds the
8-bytes per cycle throughput, there will be backpressure through the
Crossbar".
"""

from __future__ import annotations

from repro.sim import Environment

__all__ = ["Crossbar"]


class Crossbar:
    """Fixed-latency any-to-any transport for external transactions (XTXNs)."""

    def __init__(self, env: Environment, latency_s: float = 25e-9):
        if latency_s < 0:
            raise ValueError(f"negative crossbar latency: {latency_s}")
        self.env = env
        self.latency_s = float(latency_s)
        self.xtxn_count = 0
        self.xtxn_bytes = 0

    def transit(self, nbytes: int = 8):
        """One-way crossbar traversal for an XTXN of ``nbytes``.

        Usage (inside a process)::

            yield crossbar.transit(8)
        """
        self.xtxn_count += 1
        self.xtxn_bytes += nbytes
        return self.env.timeout(self.latency_s)

    def round_trip_s(self) -> float:
        """Request + reply transit time (no queueing)."""
        return 2.0 * self.latency_s
