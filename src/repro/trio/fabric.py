"""The interconnection fabric between PFEs (§2.1).

Larger routers connect multiple PFEs through an any-to-any fabric that
"expands the bandwidth of a device much farther than a single chip could
support".  We model each directed PFE pair as an independent channel with
a serialisation rate and fixed transit latency, preserving per-pair
ordering (cells of one packet stay together at this abstraction level).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.net.packet import Packet
from repro.sim import Environment, Store

__all__ = ["Fabric"]


class Fabric:
    """Any-to-any interconnect between named PFEs."""

    def __init__(
        self,
        env: Environment,
        bandwidth_bps: float = 400e9,
        latency_s: float = 500e-9,
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"fabric bandwidth must be positive: {bandwidth_bps}")
        self.env = env
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self._channels: Dict[Tuple[str, str], Store] = {}
        self._sinks: Dict[str, Callable[[Packet], None]] = {}
        self.packets = 0
        self.bytes = 0

    def attach(self, pfe_name: str, sink: Callable[[Packet], None]) -> None:
        """Register the delivery callback for one PFE."""
        self._sinks[pfe_name] = sink

    def send(self, src: str, dst: str, packet: Packet) -> None:
        """Queue ``packet`` on the (src, dst) channel."""
        if dst not in self._sinks:
            raise KeyError(f"no PFE named {dst!r} attached to the fabric")
        key = (src, dst)
        channel = self._channels.get(key)
        if channel is None:
            channel = Store(self.env)
            self._channels[key] = channel
            self.env.process(
                self._channel_loop(channel, dst), name=f"fabric:{src}->{dst}"
            )
        self.packets += 1
        self.bytes += len(packet)
        channel.put_nowait(packet)

    def _channel_loop(self, channel: Store, dst: str):
        sinks = self._sinks
        while True:
            packet = yield channel.get()
            yield self.env.delay(packet.bits / self.bandwidth_bps)
            # Fabric latency elapses in parallel with the next frame's
            # serialisation: one scheduled delivery, no per-frame process.
            self.env.call_later(self.latency_s, sinks[dst], packet)
