"""trio-repro: a full-system reproduction of *Using Trio — Juniper
Networks' Programmable Chipset — for Emerging In-Network Applications*
(SIGCOMM 2022).

Subpackages, bottom-up:

* :mod:`repro.sim` — discrete-event simulation kernel.
* :mod:`repro.net` — byte-accurate packets, links, NICs, hosts.
* :mod:`repro.trio` — the Trio chipset: PFEs, multi-threaded PPEs, the
  Shared Memory System with read-modify-write engines, hash block, timer
  threads, multi-PFE routers, AFI, and vMX.
* :mod:`repro.microcode` — the Microcode language, Trio Compiler, and
  interpreter.
* :mod:`repro.pisa` / :mod:`repro.switchml` — the PISA/Tofino model and
  the SwitchML baseline.
* :mod:`repro.trioml` — the Trio-ML in-network aggregation application
  with timer-thread straggler mitigation.
* :mod:`repro.ml` — DNN training workload models.
* :mod:`repro.apps` — the §7 telemetry and security use cases.
* :mod:`repro.harness` — experiment drivers for every table and figure.

See DESIGN.md for the architecture and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"
