"""The built-in collective backends (§6.1's three systems, plus one).

Each class ports one arm of the pre-refactor ``if/else`` ladder out of
``ml/training.py`` into a self-contained plugin.  The closed-form
communication formulas stay in :mod:`repro.ml.allreduce` (they are public
API and the calibration record lives with them); backends bind a formula
to straggler semantics and metadata.

The float arithmetic below reproduces the pre-refactor expressions
*term for term* (e.g. ``compute + max_delay + comm`` vs
``compute + comm + mitigation``), so every figure the harness produced
before the refactor is bit-identical after it.

``ring-straggler`` is the extensibility proof: a backend the paper never
plots (an NCCL ring that, like any barrier collective, absorbs the
slowest worker's full delay), registered in ~30 lines and immediately
sweepable through the harness (``python -m repro.harness backends``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.collectives.base import CollectiveBackend
from repro.collectives.registry import register_backend
from repro.ml.allreduce import (
    LINK_BANDWIDTH_BPS,
    RING_EFFICIENCY,
    SWITCHML_GOODPUT_BPS,
    TRIOML_GOODPUT_BPS,
    in_network_allreduce_time,
    ring_allreduce_time,
)

__all__ = [
    "IdealRingBackend",
    "RingStragglerBackend",
    "SwitchMLBackend",
    "TrioMLBackend",
]


def _max_delay(delays: Dict[int, float]) -> float:
    return max(delays.values(), default=0.0)


class IdealRingBackend(CollectiveBackend):
    """The paper's Ideal baseline: NCCL ring over RDMA, no stragglers."""

    name = "ideal"
    display_name = "Ideal (NCCL ring)"
    description = ("Bandwidth-optimal ring allreduce over RDMA; "
                   "stragglers are never injected.")
    paper_ref = "§6.1, Figures 12-13"
    injects_stragglers = False

    def __init__(self, bandwidth_bps: float = LINK_BANDWIDTH_BPS,
                 efficiency: float = RING_EFFICIENCY):
        self.bandwidth_bps = bandwidth_bps
        self.efficiency = efficiency

    def allreduce_time_s(self, model_bytes: int, num_workers: int) -> float:
        return ring_allreduce_time(model_bytes, num_workers,
                                   bandwidth_bps=self.bandwidth_bps,
                                   efficiency=self.efficiency)

    def iteration_duration(self, compute_s: float, comm_s: float,
                           delays: Dict[int, float],
                           mitigation_bound_s: float = 0.0
                           ) -> Tuple[float, bool]:
        return compute_s + comm_s, False


class RingStragglerBackend(IdealRingBackend):
    """NCCL ring exposed to stragglers (not plotted in the paper).

    A ring allreduce is a barrier collective: every worker's reduce-
    scatter step waits on its neighbour, so the slowest worker's full
    delay serialises into everyone's iteration — the same semantic root
    as SwitchML's all-contributors slots, but at ring (not in-network)
    communication cost.  Plotting it against Ideal isolates how much of
    Figure 13's gap is straggler semantics rather than wire time.
    """

    name = "ring-straggler"
    display_name = "NCCL ring (stragglers)"
    description = ("Ring allreduce whose barrier absorbs the slowest "
                   "worker's full delay each iteration.")
    paper_ref = "extension (not in the paper)"
    injects_stragglers = True

    def iteration_duration(self, compute_s: float, comm_s: float,
                           delays: Dict[int, float],
                           mitigation_bound_s: float = 0.0
                           ) -> Tuple[float, bool]:
        return compute_s + _max_delay(delays) + comm_s, False


class SwitchMLBackend(CollectiveBackend):
    """SwitchML-256 on Tofino with the DPDK client (§6.1)."""

    name = "switchml"
    display_name = "SwitchML-256"
    description = ("In-network aggregation with all-contributors pool "
                   "slots; one straggler stalls the whole job.")
    paper_ref = "§6.1, Figures 12-13"

    def __init__(self, goodput_bps: float = SWITCHML_GOODPUT_BPS):
        self.goodput_bps = goodput_bps

    def allreduce_time_s(self, model_bytes: int, num_workers: int) -> float:
        return in_network_allreduce_time(model_bytes, self.goodput_bps)

    def iteration_duration(self, compute_s: float, comm_s: float,
                           delays: Dict[int, float],
                           mitigation_bound_s: float = 0.0
                           ) -> Tuple[float, bool]:
        # Every slot needs every worker: the job absorbs the slowest
        # worker's full delay.
        return compute_s + _max_delay(delays) + comm_s, False


class TrioMLBackend(CollectiveBackend):
    """Trio-ML with timer-thread straggler mitigation (§5, §6.1)."""

    name = "trioml"
    display_name = "Trio-ML"
    description = ("In-network aggregation on Trio; straggling blocks "
                   "age out after the timeout and complete partially.")
    paper_ref = "§5-6, Figures 12-14"

    def __init__(self, goodput_bps: float = TRIOML_GOODPUT_BPS):
        self.goodput_bps = goodput_bps

    def allreduce_time_s(self, model_bytes: int, num_workers: int) -> float:
        return in_network_allreduce_time(model_bytes, self.goodput_bps)

    def iteration_duration(self, compute_s: float, comm_s: float,
                           delays: Dict[int, float],
                           mitigation_bound_s: float = 0.0
                           ) -> Tuple[float, bool]:
        max_delay = _max_delay(delays)
        if max_delay > 0:
            # Straggling blocks age out; everyone else proceeds after
            # the detection bound.  The straggler drops its stale
            # blocks and rejoins (§5).
            mitigation = min(max_delay, mitigation_bound_s)
            return compute_s + comm_s + mitigation, True
        return compute_s + comm_s, False


register_backend(IdealRingBackend())
register_backend(RingStragglerBackend())
register_backend(SwitchMLBackend())
register_backend(TrioMLBackend())
