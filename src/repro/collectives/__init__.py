"""Pluggable collective-backend layer.

Every gradient-aggregation system the training-level experiments compare
(Figures 12-13) is a :class:`CollectiveBackend` plugin in a name-keyed
registry:

>>> from repro.collectives import available_backends, get_backend
>>> available_backends()
('ideal', 'ring-straggler', 'switchml', 'trioml')
>>> get_backend("TrioML").allreduce_time_s(98 * 2**20, 6)  # doctest: +ELLIPSIS
0.018...

* :mod:`repro.collectives.base` — the backend interface (closed-form
  communication model + straggler semantics + metadata).
* :mod:`repro.collectives.registry` — ``register_backend`` /
  ``get_backend`` / ``available_backends``.
* :mod:`repro.collectives.backends` — the built-ins: ``ideal``,
  ``switchml``, ``trioml``, and the extension ``ring-straggler``.
* :mod:`repro.collectives.calibrate` — the bridge that derives the
  closed-form goodput constants from the packet-level testbeds
  (``python -m repro.collectives.calibrate``).

See EXPERIMENTS.md ("Adding a collective backend") for the plugin
recipe.
"""

from repro.collectives.base import CollectiveBackend
from repro.collectives.registry import (
    UnknownBackendError,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.collectives.backends import (
    IdealRingBackend,
    RingStragglerBackend,
    SwitchMLBackend,
    TrioMLBackend,
)

__all__ = [
    "CollectiveBackend",
    "IdealRingBackend",
    "RingStragglerBackend",
    "SwitchMLBackend",
    "TrioMLBackend",
    "UnknownBackendError",
    "available_backends",
    "get_backend",
    "register_backend",
    "unregister_backend",
]
