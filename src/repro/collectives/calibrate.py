"""Calibration bridge: derive the closed-form goodput constants from the
packet level.

The training-level experiments (Figures 12-13) use closed-form
communication models whose goodput constants
(:data:`repro.ml.allreduce.TRIOML_GOODPUT_BPS`,
:data:`repro.ml.allreduce.SWITCHML_GOODPUT_BPS`) were hand-calibrated and
documented as "sanity-checked against" the packet-level simulation.
This module actually closes that loop: it *runs* the packet-level
testbeds (Figures 14-16's ground truth) and derives the constants,
asserting the hand values and the derived values agree within a declared
band.

Two regimes, matching §6.1's framing:

* **Trio-ML is fabric-limited** in our model: 4 KB (1024-gradient)
  packets keep the DPDK end host off the critical path, so the derived
  goodput is the steady-state per-worker goodput measured on the
  single-PFE testbed (:func:`repro.harness.testbed.build_single_pfe_testbed`)
  at a deep window.
* **SwitchML is client-limited**: its wire path (1 KB packets through
  the four-pipeline Tofino chain) runs near line rate, but the
  open-source DPDK client — per-packet framing plus the PyTorch
  integration copies — caps the end-to-end goodput.  The derived value
  serialises the measured per-packet wire time with a documented
  per-packet client overhead (:data:`SWITCHML_CLIENT_OVERHEAD_S`).

The hand constants remain the shipped defaults (so all figures stay
bit-identical run to run); the calibration is a *consistency gate*, run
from the test suite and ``python -m repro.collectives.calibrate``, and
:func:`calibrated_backend` builds backend instances that use the derived
numbers instead for sensitivity studies.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Dict, Optional

from repro.collectives.base import CollectiveBackend
from repro.collectives.backends import SwitchMLBackend, TrioMLBackend
from repro.ml.allreduce import SWITCHML_GOODPUT_BPS, TRIOML_GOODPUT_BPS

__all__ = [
    "CALIBRATION_BAND",
    "SWITCHML_CLIENT_OVERHEAD_S",
    "CalibrationSpec",
    "GoodputCalibration",
    "calibrate",
    "calibrated_backend",
    "client_bound_goodput",
    "main",
    "measure_switchml_wire_goodput",
    "measure_trioml_wire_goodput",
    "render_calibration",
]

#: Maximum hand/derived disagreement the bridge tolerates, as a ratio.
#: The two layers model different amounts of detail (the closed form has
#: no ramp-up, no window self-clocking, no per-chunk pipelining), so
#: exact agreement is not expected; a factor-1.8 band keeps them honest
#: while the packet model stays the ground truth.
CALIBRATION_BAND = 1.8

#: Per-packet overhead of the open-source SwitchML DPDK client (framing
#: plus the PyTorch integration copy), the documented reason the §6.1
#: SwitchML goodput sits far below line rate.  250 ns/packet puts the
#: 256-gradient client at ~24 Gbps against a near-line-rate wire.
SWITCHML_CLIENT_OVERHEAD_S = 250e-9


@dataclass(frozen=True)
class CalibrationSpec:
    """Sizing of the packet-level calibration runs.

    Defaults are chosen to reach steady state (deep windows, enough
    blocks to amortise ramp-up) while keeping the bridge fast enough to
    run inside the test suite.  The runs are deterministic discrete-event
    simulations, so the derived numbers are exactly reproducible.
    """

    num_workers: int = 4
    #: Trio-ML run: §6.1's 1024-gradient (4 KB) packets.
    trioml_grads_per_packet: int = 1024
    trioml_window: int = 1024
    trioml_blocks: int = 300
    #: SwitchML run: SwitchML-256 across the four-pipeline chain.
    switchml_grads_per_packet: int = 256
    switchml_pool_size: int = 64
    switchml_blocks: int = 256
    switchml_client_overhead_s: float = SWITCHML_CLIENT_OVERHEAD_S
    band: float = CALIBRATION_BAND


@dataclass(frozen=True)
class GoodputCalibration:
    """One system's packet-derived goodput versus its hand constant."""

    system: str
    #: Steady-state per-worker goodput measured at packet level.
    wire_goodput_bps: float
    #: The constant the packet level implies for the closed form (equal
    #: to the wire goodput for fabric-limited systems; client-bound for
    #: SwitchML).
    derived_goodput_bps: float
    #: The hand-calibrated constant the backend ships with.
    default_goodput_bps: float
    band: float = CALIBRATION_BAND

    @property
    def ratio(self) -> float:
        """hand / derived — 1.0 means the layers agree exactly."""
        return self.default_goodput_bps / self.derived_goodput_bps

    @property
    def within_band(self) -> bool:
        return 1.0 / self.band <= self.ratio <= self.band


def measure_trioml_wire_goodput(spec: Optional[CalibrationSpec] = None
                                ) -> float:
    """Per-worker goodput (bps) of the packet-level Trio-ML testbed.

    Runs the §6.3 single-PFE topology end to end — worker encode, NIC
    and link transport, PPE dispatch, hash lookup, RMW aggregation,
    result multicast — and reports model bits sent per worker divided by
    completion time.
    """
    from repro.harness.testbed import build_single_pfe_testbed
    from repro.sim import Environment
    from repro.trioml.config import TrioMLJobConfig

    spec = spec or CalibrationSpec()
    env = Environment()
    config = TrioMLJobConfig(
        grads_per_packet=spec.trioml_grads_per_packet,
        window=spec.trioml_window,
    )
    testbed = build_single_pfe_testbed(
        env, config, num_workers=spec.num_workers
    )
    vector = [1] * (spec.trioml_grads_per_packet * spec.trioml_blocks)
    procs = testbed.run_allreduce([vector] * spec.num_workers)
    env.run(until=env.all_of(procs))
    bits_per_worker = len(vector) * 32
    return bits_per_worker / env.now


def measure_switchml_wire_goodput(spec: Optional[CalibrationSpec] = None
                                  ) -> float:
    """Per-worker goodput (bps) of the packet-level SwitchML baseline.

    Runs SwitchML-256 on the PISA/Tofino model (the four-pipeline chain
    of §6.1) with self-clocking workers and reports model bits per
    worker divided by completion time — the *wire* capability, before
    the DPDK client bottleneck.
    """
    from repro.net import IPv4Address, MACAddress, Topology
    from repro.sim import Environment
    from repro.switchml import SwitchMLWorker
    from repro.switchml.switch import SwitchMLJob, build_switchml_switch

    spec = spec or CalibrationSpec()
    env = Environment()
    job = SwitchMLJob(
        num_workers=spec.num_workers,
        pool_size=spec.switchml_pool_size,
        grads_per_packet=spec.switchml_grads_per_packet,
    )
    if spec.switchml_grads_per_packet > 64:
        job.chain = [0, 1, 2, 3]
    switch, __ = build_switchml_switch(env, job)
    topology = Topology(env)
    workers = []
    for index in range(spec.num_workers):
        ip = IPv4Address(f"10.0.0.{index + 1}")
        mac = MACAddress(index + 1)
        job.add_worker(index, ip, mac)
        worker = SwitchMLWorker(env, f"w{index}", index, job, mac, ip)
        topology.connect(worker.nic.port, switch.port(0, index))
        switch.add_route(ip, switch.port(0, index).name)
        workers.append(worker)
    vector = [1] * (spec.switchml_grads_per_packet * spec.switchml_blocks)
    procs = [env.process(w.allreduce(vector)) for w in workers]
    env.run(until=env.all_of(procs))
    bits_per_worker = len(vector) * 32
    return bits_per_worker / env.now


def client_bound_goodput(wire_goodput_bps: float, payload_bits: int,
                         client_overhead_s: float) -> float:
    """Effective goodput when a per-packet client overhead serialises
    with the wire time of each packet."""
    wire_time_s = payload_bits / wire_goodput_bps
    return payload_bits / (wire_time_s + client_overhead_s)


def calibrate(spec: Optional[CalibrationSpec] = None
              ) -> Dict[str, GoodputCalibration]:
    """Run both packet-level calibrations; returns one record per
    in-network system, keyed by backend name."""
    spec = spec or CalibrationSpec()
    trioml_wire = measure_trioml_wire_goodput(spec)
    switchml_wire = measure_switchml_wire_goodput(spec)
    switchml_derived = client_bound_goodput(
        switchml_wire,
        spec.switchml_grads_per_packet * 32,
        spec.switchml_client_overhead_s,
    )
    return {
        "trioml": GoodputCalibration(
            system="trioml",
            wire_goodput_bps=trioml_wire,
            derived_goodput_bps=trioml_wire,
            default_goodput_bps=TRIOML_GOODPUT_BPS,
            band=spec.band,
        ),
        "switchml": GoodputCalibration(
            system="switchml",
            wire_goodput_bps=switchml_wire,
            derived_goodput_bps=switchml_derived,
            default_goodput_bps=SWITCHML_GOODPUT_BPS,
            band=spec.band,
        ),
    }


def calibrated_backend(name: str,
                       calibrations: Optional[
                           Dict[str, GoodputCalibration]] = None,
                       spec: Optional[CalibrationSpec] = None
                       ) -> CollectiveBackend:
    """A backend instance whose goodput is the packet-derived value.

    Pass the result of :func:`calibrate` to avoid re-running the packet
    simulations.  The instance is *not* registered; callers exploring
    sensitivity can ``register_backend(..., replace=True)`` or register
    it under a new name (e.g. ``trioml-calibrated``) themselves.
    """
    calibrations = calibrations or calibrate(spec)
    factories = {"trioml": TrioMLBackend, "switchml": SwitchMLBackend}
    if name not in factories:
        raise ValueError(
            f"no calibrated variant for {name!r}; available: "
            f"{', '.join(sorted(factories))}"
        )
    backend = factories[name](
        goodput_bps=calibrations[name].derived_goodput_bps
    )
    return backend


def render_calibration(calibrations: Dict[str, GoodputCalibration]) -> str:
    """The calibration report table."""
    lines = [
        "Calibration bridge: packet-level derived vs closed-form goodputs",
        "-" * 72,
        f"{'system':<10} {'wire Gbps':>10} {'derived Gbps':>13} "
        f"{'hand Gbps':>10} {'hand/derived':>13}  band",
    ]
    for record in calibrations.values():
        status = "ok" if record.within_band else "OUT OF BAND"
        lines.append(
            f"{record.system:<10} {record.wire_goodput_bps / 1e9:>10.2f} "
            f"{record.derived_goodput_bps / 1e9:>13.2f} "
            f"{record.default_goodput_bps / 1e9:>10.2f} "
            f"{record.ratio:>12.2f}x  [{1 / record.band:.2f}x, "
            f"{record.band:.2f}x] {status}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.collectives.calibrate",
        description="Derive the closed-form goodput constants from the "
                    "packet-level testbeds and check the calibration "
                    "band.",
    )
    parser.add_argument(
        "--werror", action="store_true",
        help="exit non-zero when any system falls outside the band",
    )
    args = parser.parse_args(argv)
    calibrations = calibrate()
    print(render_calibration(calibrations))
    out_of_band = [c.system for c in calibrations.values()
                   if not c.within_band]
    if out_of_band:
        print(f"\nout of band: {', '.join(out_of_band)}", file=sys.stderr)
        return 1 if args.werror else 0
    print("\nall systems within the calibration band")
    return 0


if __name__ == "__main__":
    sys.exit(main())
