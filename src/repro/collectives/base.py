"""The pluggable collective-backend interface.

A *collective backend* is one gradient-aggregation system — NCCL ring,
SwitchML, Trio-ML, or anything a future experiment wants to plot — as a
first-class object.  The training loop (:mod:`repro.ml.training`) and the
harness sweeps are written against this interface only, so a new
aggregation scheme is a ~100-line plugin:

* :meth:`CollectiveBackend.allreduce_time_s` — the closed-form
  communication-time model (how long one allreduce of ``model_bytes``
  takes with ``num_workers`` workers, stragglers aside);
* :meth:`CollectiveBackend.iteration_duration` — the system's straggler
  semantics (what one iteration costs given the per-worker straggle
  delays of that iteration);
* :attr:`CollectiveBackend.injects_stragglers` — whether the system is
  exposed to stragglers at all (the paper's Ideal baseline is plotted
  with stragglers never injected, §6.1);
* metadata (:attr:`name`, :attr:`display_name`, :attr:`description`,
  :attr:`paper_ref`) for registries, tables, and figure legends.

Backends are stateless: one shared instance per system lives in the
registry (:mod:`repro.collectives.registry`) and is safe to use from any
number of trainers or sweep processes.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.ml.models import DNNModel

__all__ = ["CollectiveBackend"]


class CollectiveBackend(abc.ABC):
    """One aggregation system's timing model and straggler semantics."""

    #: Registry key (lowercase; :func:`repro.collectives.get_backend`
    #: accepts any casing and resolves to this).
    name: str = ""
    #: Human-readable name for tables and figure legends.
    display_name: str = ""
    #: One-line description of what the backend models.
    description: str = ""
    #: Paper anchor (section/figure) the backend reproduces, if any.
    paper_ref: str = ""
    #: Whether straggle delays are sampled for this system at all.  The
    #: paper's Ideal baseline is defined straggler-free (§6.1).
    injects_stragglers: bool = True

    # ------------------------------------------------------------------
    # Timing model
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def allreduce_time_s(self, model_bytes: int, num_workers: int) -> float:
        """Seconds to allreduce ``model_bytes`` across ``num_workers``
        workers, stragglers aside (the closed-form model of §6.2)."""

    def typical_iteration_s(self, model: "DNNModel",
                            num_workers: int) -> float:
        """Iteration time with no stragglers under this backend:
        GPU compute plus one allreduce."""
        return model.compute_time_s + self.allreduce_time_s(
            model.size_bytes, num_workers
        )

    # ------------------------------------------------------------------
    # Straggler semantics
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def iteration_duration(
        self,
        compute_s: float,
        comm_s: float,
        delays: Dict[int, float],
        mitigation_bound_s: float = 0.0,
    ) -> Tuple[float, bool]:
        """One iteration's wall time under this system's semantics.

        ``compute_s`` is this iteration's GPU compute time, ``comm_s``
        the allreduce time (normally :meth:`allreduce_time_s`, hoisted
        out of the loop by the trainer), and ``delays`` maps straggling
        worker index to its extra delay in seconds (empty when nobody
        straggles).  ``mitigation_bound_s`` is the maximum extra wait a
        straggler can impose on systems that detect and age out missing
        contributions (ignored by systems without mitigation).

        Returns ``(duration_s, mitigated)`` where ``mitigated`` is True
        when the system's straggler mitigation actually engaged.
        """

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
