"""Name-keyed registry of collective backends.

The registry is the single source of truth for which aggregation systems
exist: :class:`repro.ml.training.TrainingConfig` resolves its ``system``
string here, the harness enumerates sweep series from here, and error
messages report whatever is registered *right now* — adding a backend
never requires touching the training loop again.

Lookups are case-insensitive; canonical keys are lowercase.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.collectives.base import CollectiveBackend

__all__ = [
    "UnknownBackendError",
    "available_backends",
    "get_backend",
    "register_backend",
    "unregister_backend",
]


class UnknownBackendError(ValueError):
    """Raised when a backend name is not in the registry.

    Subclasses :class:`ValueError` so pre-refactor callers that caught
    the training layer's ``ValueError`` keep working unchanged.
    """


_REGISTRY: Dict[str, CollectiveBackend] = {}


def register_backend(backend: CollectiveBackend,
                     replace: bool = False) -> CollectiveBackend:
    """Add ``backend`` under ``backend.name`` (lowercased).

    Registering a name twice is an error unless ``replace=True`` —
    silent shadowing would make figure provenance ambiguous.  Returns
    the backend so calls can be used as expressions.
    """
    name = str(backend.name).strip().lower()
    if not name:
        raise ValueError("backend must have a non-empty name")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {name!r} is already registered; pass replace=True "
            "to override it"
        )
    backend.name = name
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> CollectiveBackend:
    """Remove and return a backend (mainly for tests and calibration
    experiments that register temporary variants)."""
    key = str(name).strip().lower()
    try:
        return _REGISTRY.pop(key)
    except KeyError:
        raise UnknownBackendError(
            f"unknown collective backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None


def get_backend(name: str) -> CollectiveBackend:
    """Resolve a backend by name, case-insensitively."""
    key = str(name).strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownBackendError(
            f"unknown collective backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Canonical names of every registered backend, sorted."""
    return tuple(sorted(_REGISTRY))
