"""repro.obs — observability for the simulated data plane.

Three pieces, one switch:

* :mod:`repro.obs.metrics` — labeled ``Counter``/``Gauge``/``Histogram``
  registry with deterministic JSON snapshots and a Prometheus-style
  text dump;
* :mod:`repro.obs.trace` — span/instant/counter tracer on the simulated
  clock exporting Chrome ``trace_event`` JSON (Perfetto-loadable) plus
  an ASCII timeline renderer;
* :mod:`repro.obs.bus` — the probe API (``obs.probe``, ``obs.observe``,
  ``obs.span``, ``obs.traced``) whose disabled fast path is a
  module-level null sink, so instrumented code costs nothing when
  observability is off.

Typical use::

    from repro import obs

    session = obs.enable()
    run_experiment()
    obs.disable()
    print(session.registry.render_prom())
    json.dump(session.tracer.to_chrome(), open("trace.json", "w"))

or from the harness: ``python -m repro.harness profile fig15 --fast
--trace out.json --metrics metrics.json``.

Everything here is deterministic: probes read only the simulated clock,
never schedule events, and never draw randomness (detlint-enforced), so
observed runs stay bit-identical to unobserved runs and parallel sweeps
snapshot identically to serial ones.
"""

from repro.obs.bus import (
    CapturedWorker,
    ObsSession,
    complete,
    disable,
    enable,
    enabled,
    gauge,
    instant,
    observe,
    probe,
    register_collector,
    sample,
    session,
    span,
    suppressed,
    traced,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
)
from repro.obs.trace import Tracer, render_timeline, validate_chrome_trace

__all__ = [
    "CapturedWorker",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSession",
    "SNAPSHOT_SCHEMA",
    "Tracer",
    "complete",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "instant",
    "observe",
    "probe",
    "register_collector",
    "render_timeline",
    "sample",
    "session",
    "span",
    "suppressed",
    "traced",
    "validate_chrome_trace",
]
