"""Span/event tracer driven off the *simulated* clock.

The tracer is the timeline half of :mod:`repro.obs`.  Call sites record

* **complete spans** — ``complete(name, start_s, end_s, track=...)`` for
  anything with a duration (a PPE thread, a TrioML block lifetime, a
  training iteration phase);
* **instants** — ``instant(name, ts_s, track=...)`` for point events
  (a straggler mitigation, a heavy-hitter report);
* **counter samples** — ``sample(track, ts_s, value)`` for stepped
  series (threads in use, RMW engines busy, hash-table occupancy).

Timestamps are simulated seconds; export converts to the microseconds
Chrome's ``trace_event`` format expects, so a recorded trace loads
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
Each *track* becomes its own thread row; counter tracks render as
Perfetto counter lanes.

Because only the simulated clock is read, traces are deterministic:
the same experiment produces the same trace file byte-for-byte, and
:meth:`Tracer.merge` recombines per-worker exports from a parallel
sweep into the same document a serial run would have written.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "Tracer",
    "validate_chrome_trace",
    "render_timeline",
]

#: Hard cap on buffered events; beyond this the tracer counts drops
#: instead of growing without bound on long runs.
DEFAULT_MAX_EVENTS = 500_000

_PRIMARY_PID = 1


class Tracer:
    """Buffers trace events and exports Chrome ``trace_event`` JSON."""

    def __init__(self, scope: str = "main",
                 max_events: int = DEFAULT_MAX_EVENTS):
        self.scope = scope
        self.max_events = max_events
        self.dropped = 0
        # Each event: (kind, track, name, ts_s, dur_s, args)
        self._events: List[Tuple[str, str, str, float, float,
                                 Optional[dict]]] = []
        # Track registration order fixes tid assignment deterministically.
        self._tracks: Dict[str, int] = {}
        # Merged (pid, scope, export) triples from worker tracers.
        self._merged: List[Tuple[int, str, dict]] = []

    def __len__(self) -> int:
        return len(self._events)

    def _tid(self, track: str) -> int:
        tid = self._tracks.get(track)
        if tid is None:
            tid = self._tracks[track] = len(self._tracks) + 1
        return tid

    def _push(self, kind: str, track: str, name: str, ts_s: float,
              dur_s: float, args: Optional[dict]) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._tid(track)
        self._events.append((kind, track, name, ts_s, dur_s, args))

    def complete(self, name: str, start_s: float, end_s: float,
                 track: str = "spans", **args) -> None:
        """Record a span with explicit start and end (``ph: "X"``)."""
        self._push("X", track, name, start_s, max(0.0, end_s - start_s),
                   args or None)

    def instant(self, name: str, ts_s: float,
                track: str = "events", **args) -> None:
        """Record a point event (``ph: "i"``)."""
        self._push("i", track, name, ts_s, 0.0, args or None)

    def sample(self, track: str, ts_s: float, value: float) -> None:
        """Record one sample of a stepped counter series (``ph: "C"``)."""
        self._push("C", track, track, ts_s, 0.0, {"value": value})

    # ------------------------------------------------------------------
    # Export / merge
    # ------------------------------------------------------------------

    def export(self) -> dict:
        """Picklable raw dump for cross-process merging."""
        return {
            "scope": self.scope,
            "events": list(self._events),
            "tracks": list(self._tracks),
            "dropped": self.dropped,
        }

    def merge(self, exported: dict, pid: Optional[int] = None) -> None:
        """Fold a worker's :meth:`export` in under its own process row.

        Each merged scope gets a fresh ``pid`` so Perfetto shows sweep
        points as separate process groups; merge order (sweep-point
        order) fixes pid assignment deterministically.
        """
        scope = exported["scope"]
        if pid is None:
            pid = _PRIMARY_PID + 1 + len(self._merged)
        self._merged.append((pid, scope, exported))
        self.dropped += exported["dropped"]

    def to_chrome(self) -> dict:
        """Chrome ``trace_event`` JSON document (object format)."""
        events: List[dict] = []
        self._emit_scope(events, _PRIMARY_PID, self.scope,
                         self._events, list(self._tracks))
        for pid, scope, exported in self._merged:
            self._emit_scope(events, pid, scope,
                             exported["events"], exported["tracks"])
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs",
                "clock": "simulated",
                "dropped_events": self.dropped,
            },
        }

    @staticmethod
    def _emit_scope(out: List[dict], pid: int, scope: str,
                    events, tracks: List[str]) -> None:
        out.append({
            "ph": "M", "pid": pid, "tid": 0,
            "name": "process_name", "args": {"name": scope},
        })
        tids = {track: i + 1 for i, track in enumerate(tracks)}
        for track, tid in tids.items():
            out.append({
                "ph": "M", "pid": pid, "tid": tid,
                "name": "thread_name", "args": {"name": track},
            })
        for kind, track, name, ts_s, dur_s, args in events:
            event = {
                "ph": kind, "pid": pid, "tid": tids[track],
                "name": name, "ts": ts_s * 1e6,
            }
            if kind == "X":
                event["dur"] = dur_s * 1e6
            elif kind == "i":
                event["s"] = "t"
            if args:
                event["args"] = args
            out.append(event)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render_timeline(self, width: int = 72,
                        max_rows_per_track: int = 8) -> str:
        return render_timeline(self.to_chrome(), width=width,
                               max_rows_per_track=max_rows_per_track)


# ----------------------------------------------------------------------
# Chrome trace-event schema validation
# ----------------------------------------------------------------------

_REQUIRED_BY_PHASE = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "pid", "tid"),
    "C": ("name", "ts", "pid", "tid", "args"),
    "M": ("name", "pid", "tid", "args"),
}


def validate_chrome_trace(doc: dict) -> List[str]:
    """Check a document against the Chrome trace-event schema.

    Returns a list of human-readable problems; empty means the trace is
    well-formed (object format, known phases, required keys present,
    numeric non-negative timestamps).
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        required = _REQUIRED_BY_PHASE.get(phase)
        if required is None:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        for key in required:
            if key not in event:
                errors.append(f"{where}: phase {phase!r} missing {key!r}")
        for key in ("ts", "dur"):
            if key in event:
                value = event[key]
                if not isinstance(value, (int, float)):
                    errors.append(f"{where}: {key} not numeric")
                elif value < 0:
                    errors.append(f"{where}: {key} negative ({value})")
        if phase == "i" and event.get("s") not in (None, "g", "p", "t"):
            errors.append(f"{where}: bad instant scope {event.get('s')!r}")
    return errors


# ----------------------------------------------------------------------
# ASCII timeline
# ----------------------------------------------------------------------

def render_timeline(doc: dict, width: int = 72,
                    max_rows_per_track: int = 8) -> str:
    """Render a Chrome trace document as an ASCII timeline.

    Span tracks draw one bar lane per span (up to
    ``max_rows_per_track``); counter tracks summarise to
    min/avg/max/samples.  Purely cosmetic — the JSON export is the
    canonical artifact.
    """
    spans: Dict[Tuple[int, str], List[Tuple[float, float, str]]] = {}
    instants: Dict[Tuple[int, str], List[Tuple[float, str]]] = {}
    counters: Dict[Tuple[int, str], List[float]] = {}
    names: Dict[Tuple[int, int], str] = {}
    scopes: Dict[int, str] = {}
    t_max = 0.0

    for event in doc.get("traceEvents", ()):
        phase = event.get("ph")
        pid, tid = event.get("pid", 0), event.get("tid", 0)
        if phase == "M":
            if event["name"] == "thread_name":
                names[(pid, tid)] = event["args"]["name"]
            elif event["name"] == "process_name":
                scopes[pid] = event["args"]["name"]
            continue
        track = (pid, names.get((pid, tid), f"tid{tid}"))
        ts = event.get("ts", 0.0)
        if phase == "X":
            dur = event.get("dur", 0.0)
            spans.setdefault(track, []).append((ts, dur, event["name"]))
            t_max = max(t_max, ts + dur)
        elif phase == "i":
            instants.setdefault(track, []).append((ts, event["name"]))
            t_max = max(t_max, ts)
        elif phase == "C":
            counters.setdefault(track, []).append(
                event.get("args", {}).get("value", 0.0))
            t_max = max(t_max, ts)

    if t_max <= 0.0:
        t_max = 1.0

    def bar(ts: float, dur: float) -> str:
        start = int(ts / t_max * (width - 1))
        length = max(1, int(dur / t_max * width))
        end = min(width, start + length)
        return " " * start + "#" * (end - start)

    lines: List[str] = [f"timeline  0 .. {t_max:.1f} us  (simulated)"]
    label_w = 28
    for track in sorted(set(spans) | set(instants)):
        pid, name = track
        scope = scopes.get(pid, "")
        title = f"{scope}:{name}" if scope and scope != "main" else name
        lines.append(f"[{title}]")
        rows = sorted(spans.get(track, ()))
        shown = rows[:max_rows_per_track]
        for ts, dur, span_name in shown:
            label = span_name[:label_w].ljust(label_w)
            lines.append(f"  {label}|{bar(ts, dur)}")
        if len(rows) > len(shown):
            lines.append(f"  ... {len(rows) - len(shown)} more spans")
        marks = sorted(instants.get(track, ()))
        if marks:
            lane = [" "] * width
            for ts, __ in marks:
                lane[min(width - 1, int(ts / t_max * (width - 1)))] = "!"
            label = f"{len(marks)} events"[:label_w].ljust(label_w)
            lines.append(f"  {label}|{''.join(lane)}")
    for track in sorted(counters):
        pid, name = track
        values = counters[track]
        scope = scopes.get(pid, "")
        title = f"{scope}:{name}" if scope and scope != "main" else name
        lines.append(
            f"[{title}] samples={len(values)} "
            f"min={min(values):g} avg={sum(values) / len(values):.3g} "
            f"max={max(values):g}"
        )
    return "\n".join(lines) + "\n"
