"""Instrumentation bus: the dispatch layer between probes and sinks.

Call sites throughout the simulator call the module-level functions
(:func:`probe`, :func:`observe`, :func:`gauge`, :func:`sample`,
:func:`instant`, :func:`complete`) unconditionally cheaply *guarded* by
:func:`enabled`; hot loops hoist a single :func:`enabled`/:func:`session`
check so a disabled run pays nothing per event.

The zero-overhead contract: ``_sink`` is a module global that is a
:class:`NullSink` (every method a no-op, ``enabled`` False) until
:func:`enable` swaps in an :class:`ObsSession`.  A disabled
``obs.probe(...)`` is therefore one global load + one no-op method call
— measured by ``perfjson`` as ``obs.null_probe_ns`` and guarded in CI.

Determinism contract (detlint-enforced): sinks never read the wall
clock, never draw randomness, and never schedule simulation events.
All timestamps are simulated seconds passed in by the call site.
"""

from __future__ import annotations

import functools
from typing import Callable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "ObsSession",
    "enable",
    "disable",
    "enabled",
    "session",
    "probe",
    "observe",
    "gauge",
    "sample",
    "instant",
    "complete",
    "register_collector",
    "span",
    "suppressed",
    "traced",
    "CapturedWorker",
]


class NullSink:
    """Disabled-mode sink: every probe is a no-op."""

    __slots__ = ()
    enabled = False

    def probe(self, name, value=1.0, **fields):
        pass

    def observe(self, name, value, **labels):
        pass

    def gauge(self, name, value, **labels):
        pass

    def sample(self, track, ts_s, value):
        pass

    def instant(self, name, ts_s, track="events", **args):
        pass

    def complete(self, name, start_s, end_s, track="spans", **args):
        pass

    def register_collector(self, fn):
        pass


NULL_SINK = NullSink()


class ObsSession:
    """An active recording: one metrics registry + one tracer.

    Collectors are zero-data-path-cost exporters: model objects register
    a callable at construction time and :meth:`finalize` runs each one
    once against the registry, pulling counters the models already keep
    (PPE busy time, RMW stats, app counters) into the snapshot.
    """

    enabled = True

    def __init__(self, scope: str = "main"):
        self.scope = scope
        self.registry = MetricsRegistry()
        self.tracer = Tracer(scope=scope)
        self._collectors: List[Callable[[MetricsRegistry], None]] = []
        self._finalized = False

    # -- probe surface (same shape as NullSink) ------------------------

    def probe(self, name: str, value: float = 1.0, **fields) -> None:
        """Increment counter ``name``; keyword args become labels."""
        counter = self.registry.counter(
            name, labels=tuple(sorted(fields)))
        counter.inc(value, **{k: str(v) for k, v in fields.items()})

    def observe(self, name: str, value: float, **labels) -> None:
        hist = self.registry.histogram(name, labels=tuple(sorted(labels)))
        hist.observe(value, **{k: str(v) for k, v in labels.items()})

    def gauge(self, name: str, value: float, **labels) -> None:
        metric = self.registry.gauge(name, labels=tuple(sorted(labels)))
        metric.set(value, **{k: str(v) for k, v in labels.items()})

    def sample(self, track: str, ts_s: float, value: float) -> None:
        self.tracer.sample(track, ts_s, value)

    def instant(self, name: str, ts_s: float,
                track: str = "events", **args) -> None:
        self.tracer.instant(name, ts_s, track=track, **args)

    def complete(self, name: str, start_s: float, end_s: float,
                 track: str = "spans", **args) -> None:
        self.tracer.complete(name, start_s, end_s, track=track, **args)

    def register_collector(
            self, fn: Callable[[MetricsRegistry], None]) -> None:
        self._collectors.append(fn)

    # -- lifecycle -----------------------------------------------------

    def finalize(self) -> None:
        """Run registered collectors once (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        for fn in self._collectors:
            fn(self.registry)

    def export(self) -> dict:
        """Picklable dump for cross-process merging."""
        self.finalize()
        return {
            "scope": self.scope,
            "metrics": self.registry.snapshot(),
            "trace": self.tracer.export(),
        }

    def merge(self, exported: dict) -> None:
        """Fold a worker session's :meth:`export` into this one."""
        self.registry.merge(exported["metrics"])
        self.tracer.merge(exported["trace"])


# ----------------------------------------------------------------------
# Module-level state + dispatch
# ----------------------------------------------------------------------

_sink = NULL_SINK
_stack: List[ObsSession] = []


def enable(scope: str = "main") -> ObsSession:
    """Start recording; returns the new active session (stackable)."""
    global _sink
    new_session = ObsSession(scope)
    _stack.append(new_session)
    _sink = new_session
    return new_session


def disable() -> Optional[ObsSession]:
    """Stop the active session and return it (finalized)."""
    global _sink
    if not _stack:
        return None
    finished = _stack.pop()
    finished.finalize()
    _sink = _stack[-1] if _stack else NULL_SINK
    return finished


def enabled() -> bool:
    return _sink.enabled


def session() -> Optional[ObsSession]:
    """The active session, or None when observability is disabled."""
    return _sink if _sink.enabled else None


def probe(name, value=1.0, **fields):
    _sink.probe(name, value, **fields)


def observe(name, value, **labels):
    _sink.observe(name, value, **labels)


def gauge(name, value, **labels):
    _sink.gauge(name, value, **labels)


def sample(track, ts_s, value):
    _sink.sample(track, ts_s, value)


def instant(name, ts_s, track="events", **args):
    _sink.instant(name, ts_s, track=track, **args)


def complete(name, start_s, end_s, track="spans", **args):
    _sink.complete(name, start_s, end_s, track=track, **args)


def register_collector(fn):
    _sink.register_collector(fn)


class suppressed:
    """Context manager silencing probes without ending the session.

    Used around *reference* sub-simulations — the flow-level engine's
    packet-level escalation and calibration runs — whose internal
    environments start at time zero and have no relation to the outer
    simulated timeline.  Recording their spans would splice bogus
    timestamps into the active trace, so the bus is pointed at the null
    sink for the duration; the enclosing session resumes untouched. ::

        with obs.bus.suppressed():
            result = packet_fan_in(32, 20_000)
    """

    __slots__ = ("_saved",)

    def __enter__(self):
        global _sink
        self._saved = _sink
        _sink = NULL_SINK
        return self

    def __exit__(self, exc_type, exc, tb):
        global _sink
        _sink = self._saved
        return False


# ----------------------------------------------------------------------
# Span helpers
# ----------------------------------------------------------------------

class span:
    """Context manager recording a complete span off a simulated clock.

    ``clock`` is any object with a ``now`` attribute in simulated
    seconds (an ``Environment`` or a PPE ``ThreadContext``)::

        with obs.span("aggregate", env, track="trioml/blocks", job=3):
            ...
    """

    __slots__ = ("name", "clock", "track", "args", "_start", "_sink")

    def __init__(self, name: str, clock, track: str = "spans", **args):
        self.name = name
        self.clock = clock
        self.track = track
        self.args = args
        self._start = 0.0
        self._sink = None

    def __enter__(self):
        self._sink = _sink
        if self._sink.enabled:
            self._start = self.clock.now
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._sink.enabled:
            self._sink.complete(self.name, self._start, self.clock.now,
                                track=self.track, **self.args)
        return False


def traced(name: Optional[str] = None, track: str = "spans",
           clock: str = "env"):
    """Decorator tracing an instance method as a complete span.

    ``clock`` names the attribute on ``self`` holding the simulated
    clock (default ``env``).  Overhead when disabled is one global load
    + attribute check per call, so reserve it for non-hot methods.
    """

    def decorate(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            active = _sink
            if not active.enabled:
                return fn(self, *args, **kwargs)
            clk = getattr(self, clock)
            start = clk.now
            try:
                return fn(self, *args, **kwargs)
            finally:
                active.complete(span_name, start, clk.now, track=track)

        return wrapper

    return decorate


# ----------------------------------------------------------------------
# Parallel-sweep capture
# ----------------------------------------------------------------------

class CapturedWorker:
    """Picklable wrapper running a sweep worker under a fresh session.

    Used by the harness's ``_map_points``: each sweep point runs with
    its own scoped session and returns ``(result, session.export())``;
    the parent merges exports in point order, so serial and parallel
    runs produce bit-identical snapshots.
    """

    __slots__ = ("worker",)

    def __init__(self, worker):
        self.worker = worker

    def __call__(self, indexed_point):
        # Deferred import: keeps repro.obs a leaf package (repro.net
        # itself imports obs for the packet-tracer probes).
        from repro.net.packet import reset_packet_ids

        index, point = indexed_point
        # Packet ids are drawn from a process-global stream, so span
        # names like "pkt 181" would depend on what ran earlier in the
        # process.  Each sweep point is an independent simulation:
        # restarting the stream makes serial and parallel captures
        # byte-identical.
        reset_packet_ids()
        enable(scope=f"point{index:03d}")
        try:
            result = self.worker(point)
        finally:
            captured = disable()
        return result, captured.export()
