"""CLI for inspecting recorded observability artifacts.

Usage::

    python -m repro.obs validate trace.json     # Chrome schema check
    python -m repro.obs timeline trace.json     # ASCII timeline render

``validate`` exits non-zero if the trace violates the Chrome
``trace_event`` schema — CI runs it against the smoke-test trace.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.trace import render_timeline, validate_chrome_trace


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Validate or render recorded obs traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser(
        "validate", help="check a trace against the Chrome trace-event schema"
    )
    validate.add_argument("trace", help="trace JSON path")

    timeline = sub.add_parser(
        "timeline", help="render a trace as an ASCII timeline"
    )
    timeline.add_argument("trace", help="trace JSON path")
    timeline.add_argument("--width", type=int, default=72)

    args = parser.parse_args(argv)

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2

    if args.command == "validate":
        errors = validate_chrome_trace(doc)
        if errors:
            for line in errors[:20]:
                print(f"error: {line}", file=sys.stderr)
            if len(errors) > 20:
                print(f"error: ... {len(errors) - 20} more", file=sys.stderr)
            return 1
        events = doc.get("traceEvents", [])
        tracks = sum(1 for e in events
                     if e.get("ph") == "M" and e.get("name") == "thread_name")
        print(f"{args.trace}: OK ({len(events)} events, {tracks} tracks)")
        return 0

    print(render_timeline(doc, width=args.width), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
