"""Labeled metrics: Counter, Gauge, Histogram, and their registry.

The registry is the metrics half of :mod:`repro.obs`.  Every metric is a
named family of *series* keyed by label values (``Counter("sim.events",
labels=("kind",))`` holds one monotonic value per event class), and the
whole registry snapshots to a plain-dict document that is

* deterministic — metric families and series are emitted in sorted
  order, so two runs that made the same observations produce equal
  snapshots byte-for-byte when JSON-encoded with ``sort_keys``;
* mergeable — :meth:`MetricsRegistry.merge` folds a snapshot from
  another registry (typically a ``--parallel`` worker process) into this
  one: counters and histograms add, gauges keep the last merged value.
  Merging per-point snapshots in sweep order makes a parallel run's
  aggregate bit-identical to a serial run's.

Exports: :meth:`MetricsRegistry.snapshot` (plain dict), ``to_json``,
and :meth:`MetricsRegistry.render_prom` (Prometheus text exposition).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA",
]

SNAPSHOT_SCHEMA = "trio-repro/obs-metrics/v1"

#: Default histogram buckets: decades from 1 ns to 10 s — wide enough
#: for every simulated-latency family without per-call-site tuning.
DEFAULT_BUCKETS = tuple(10.0 ** e for e in range(-9, 2))


def _json_number(value: float):
    """Integral floats snapshot as ints (tidier JSON, still deterministic)."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


class _Metric:
    """Shared machinery: a named family of label-keyed series."""

    kind = "metric"

    __slots__ = ("name", "help", "label_names", "_series")

    def __init__(self, name: str, help: str = "",
                 label_names: Tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._series: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        try:
            return tuple(str(labels[label]) for label in self.label_names)
        except KeyError as exc:
            raise ValueError(
                f"{self.name}: missing label {exc.args[0]!r} "
                f"(expected {self.label_names})"
            ) from None

    @property
    def series_count(self) -> int:
        return len(self._series)


class Counter(_Metric):
    """Monotonically increasing value per label set."""

    kind = "counter"
    __slots__ = ()

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ValueError(f"{self.name}: counters only go up, got {value}")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels) -> float:
        return self._series.get(self._key(labels), 0.0)

    def _snapshot_series(self, key: Tuple[str, ...]) -> dict:
        return {"labels": list(key),
                "value": _json_number(self._series[key])}

    def _merge_series(self, key: Tuple[str, ...], data: dict) -> None:
        self._series[key] = self._series.get(key, 0.0) + data["value"]


class Gauge(_Metric):
    """Last-written value per label set (set/add semantics)."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels) -> None:
        self._series[self._key(labels)] = value

    def add(self, value: float, **labels) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels) -> float:
        return self._series.get(self._key(labels), 0.0)

    def _snapshot_series(self, key: Tuple[str, ...]) -> dict:
        return {"labels": list(key),
                "value": _json_number(self._series[key])}

    def _merge_series(self, key: Tuple[str, ...], data: dict) -> None:
        # Gauges are point-in-time readings; the last merged snapshot
        # wins.  Merge order is the sweep-point order, so this stays
        # deterministic (and identical between serial and parallel runs).
        self._series[key] = data["value"]


class _HistSeries:
    __slots__ = ("bucket_counts", "count", "sum", "min", "max")

    def __init__(self, num_buckets: int):
        self.bucket_counts = [0] * (num_buckets + 1)  # + overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None


class Histogram(_Metric):
    """Bucketed distribution with count/sum/min/max per label set."""

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(self, name: str, help: str = "",
                 label_names: Tuple[str, ...] = (),
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, label_names)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"{self.name}: need at least one bucket bound")

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistSeries(len(self.buckets))
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        series.bucket_counts[index] += 1
        series.count += 1
        series.sum += value
        series.min = value if series.min is None else min(series.min, value)
        series.max = value if series.max is None else max(series.max, value)

    def stats(self, **labels) -> Optional[dict]:
        series = self._series.get(self._key(labels))
        if series is None:
            return None
        return {"count": series.count, "sum": series.sum,
                "min": series.min, "max": series.max}

    def _snapshot_series(self, key: Tuple[str, ...]) -> dict:
        series = self._series[key]
        return {
            "labels": list(key),
            "count": series.count,
            "sum": series.sum,
            "min": series.min,
            "max": series.max,
            "bucket_counts": list(series.bucket_counts),
        }

    def _merge_series(self, key: Tuple[str, ...], data: dict) -> None:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistSeries(len(self.buckets))
        incoming = data["bucket_counts"]
        if len(incoming) != len(series.bucket_counts):
            raise ValueError(
                f"{self.name}: bucket layout mismatch on merge "
                f"({len(incoming)} vs {len(series.bucket_counts)})"
            )
        for i, count in enumerate(incoming):
            series.bucket_counts[i] += count
        series.count += data["count"]
        series.sum += data["sum"]
        for attr, pick in (("min", min), ("max", max)):
            theirs = data[attr]
            if theirs is None:
                continue
            ours = getattr(series, attr)
            setattr(series, attr,
                    theirs if ours is None else pick(ours, theirs))


class MetricsRegistry:
    """Name-keyed collection of metrics with get-or-create accessors."""

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Tuple[str, ...], **kwargs) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(
                name, help=help, label_names=tuple(labels), **kwargs
            )
            return metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"{name} already registered as {metric.kind}, "
                f"wanted {cls.kind}"
            )
        if metric.label_names != tuple(labels):
            raise ValueError(
                f"{name}: label mismatch — registered "
                f"{metric.label_names}, requested {tuple(labels)}"
            )
        return metric

    def counter(self, name: str, help: str = "",
                labels: Tuple[str, ...] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Tuple[str, ...] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Tuple[str, ...] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._get_or_create(Histogram, name, help, labels,
                                     buckets=buckets)
        if metric.buckets != tuple(sorted(buckets)):
            raise ValueError(f"{name}: bucket layout mismatch")
        return metric

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict document of every metric, deterministically ordered."""
        metrics = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry = {
                "type": metric.kind,
                "help": metric.help,
                "labels": list(metric.label_names),
                "series": [
                    metric._snapshot_series(key)
                    for key in sorted(metric._series)
                ],
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            metrics[name] = entry
        return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"not a metrics snapshot: schema={snapshot.get('schema')!r}"
            )
        kinds = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        for name, entry in snapshot["metrics"].items():
            cls = kinds[entry["type"]]
            if cls is Histogram:
                metric = self.histogram(name, entry["help"],
                                        tuple(entry["labels"]),
                                        buckets=entry["buckets"])
            else:
                metric = self._get_or_create(cls, name, entry["help"],
                                             tuple(entry["labels"]))
            for data in entry["series"]:
                metric._merge_series(tuple(data["labels"]), data)

    def render_prom(self) -> str:
        """Prometheus text-exposition dump of the registry."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            prom_name = name.replace(".", "_").replace("-", "_")
            if metric.help:
                lines.append(f"# HELP {prom_name} {metric.help}")
            lines.append(f"# TYPE {prom_name} {metric.kind}")
            for key in sorted(metric._series):
                label_str = _prom_labels(metric.label_names, key)
                if isinstance(metric, Histogram):
                    series = metric._series[key]
                    cumulative = 0
                    for bound, count in zip(metric.buckets,
                                            series.bucket_counts):
                        cumulative += count
                        le = _prom_labels(
                            metric.label_names + ("le",),
                            key + (_format_number(bound),),
                        )
                        lines.append(f"{prom_name}_bucket{le} {cumulative}")
                    le = _prom_labels(metric.label_names + ("le",),
                                      key + ("+Inf",))
                    lines.append(f"{prom_name}_bucket{le} {series.count}")
                    lines.append(f"{prom_name}_sum{label_str} "
                                 f"{_format_number(series.sum)}")
                    lines.append(f"{prom_name}_count{label_str} "
                                 f"{series.count}")
                else:
                    value = metric._series[key]
                    lines.append(f"{prom_name}{label_str} "
                                 f"{_format_number(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_number(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _prom_labels(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{value}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"
