"""Disassembler / pretty-printer for compiled Microcode programs.

Renders a :class:`~repro.microcode.compiler.CompiledProgram` back to
readable source-like text, annotated with what TC resolved: struct sizes,
constant values, register assignments, pointer bindings, and each
instruction's operand-budget usage.  Used for debugging programs and for
golden-output tests of the compiler.
"""

from __future__ import annotations

from typing import List, Optional

from repro.microcode import ast_nodes as ast
from repro.microcode.compiler import CompiledProgram

__all__ = ["disassemble", "format_expr", "format_stmt"]

#: Duck-typed to avoid importing repro.microcode.analysis at module
#: load (analysis imports the compiler; disasm only renders reports).
AnalysisReportLike = object

_INDENT = "    "


def format_expr(expr: object) -> str:
    """Render an expression AST back to source text."""
    if isinstance(expr, ast.IntLit):
        return hex(expr.value) if expr.value >= 4096 else str(expr.value)
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.SizeOf):
        return f"sizeof({expr.type_name})"
    if isinstance(expr, ast.Member):
        joiner = "->" if expr.arrow else "."
        return f"{format_expr(expr.base)}{joiner}{expr.field_name}"
    if isinstance(expr, ast.Unary):
        return f"{expr.op}{format_expr(expr.operand)}"
    if isinstance(expr, ast.Binary):
        return (f"({format_expr(expr.left)} {expr.op} "
                f"{format_expr(expr.right)})")
    return f"<?{type(expr).__name__}?>"


def format_stmt(stmt: object, depth: int = 1) -> List[str]:
    """Render one statement as indented source lines."""
    pad = _INDENT * depth
    if isinstance(stmt, ast.Assign):
        return [f"{pad}{format_expr(stmt.target)} = {format_expr(stmt.expr)};"]
    if isinstance(stmt, ast.LocalConst):
        if stmt.is_pointer:
            decl = f"const {stmt.type_name} *{stmt.name}"
        else:
            decl = f"const : {stmt.name}"
        return [f"{pad}{decl} = {format_expr(stmt.expr)};"]
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({format_expr(stmt.cond)}) {{"]
        for sub in stmt.then_body:
            lines.extend(format_stmt(sub, depth + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for sub in stmt.else_body:
                lines.extend(format_stmt(sub, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.Goto):
        return [f"{pad}goto {stmt.label};"]
    if isinstance(stmt, ast.ExitStmt):
        return [f"{pad}exit;"]
    if isinstance(stmt, ast.CallSub):
        return [f"{pad}call {stmt.label};"]
    if isinstance(stmt, ast.ReturnStmt):
        return [f"{pad}return;"]
    if isinstance(stmt, ast.CallStmt):
        args = ", ".join(format_expr(arg) for arg in stmt.args)
        return [f"{pad}{stmt.name}({args});"]
    if isinstance(stmt, ast.Switch):
        lines = [f"{pad}switch ({format_expr(stmt.selector)}) {{"]
        for case in stmt.cases:
            if case.values is None:
                lines.append(f"{pad}{_INDENT}default:")
            else:
                values = ", ".join(format_expr(v) for v in case.values)
                lines.append(f"{pad}{_INDENT}case {values}:")
            for sub in case.body:
                lines.extend(format_stmt(sub, depth + 2))
        lines.append(f"{pad}}}")
        return lines
    return [f"{pad}<?{type(stmt).__name__}?>"]


def disassemble(program: CompiledProgram,
                analysis: Optional[AnalysisReportLike] = None) -> str:
    """Render the whole compiled program with TC's resolution annotations.

    Pass an :class:`~repro.microcode.analysis.AnalysisReport` (from
    ``analyze_program`` or ``TrioCompiler(analyze=...)``) to annotate
    each instruction with its worst-case bound, reachability, and any
    diagnostics anchored on its body.
    """
    lines: List[str] = []
    lines.append(f"// entry: {program.entry}")
    if program.extern_labels:
        lines.append(
            "// externs: " + ", ".join(sorted(program.extern_labels))
        )
    if analysis is not None:
        budget = analysis.entry_budget()
        lines.append(f"// analysis: {budget.describe()}")
        lines.append(
            f"// analysis: {len(analysis.errors)} error(s), "
            f"{len(analysis.warnings)} warning(s)"
        )
    lines.append("")

    for name, layout in program.structs.items():
        lines.append(f"struct {name} {{  // {layout.size_bytes} bytes")
        # Reconstruct unnamed padding from gaps between named fields so
        # the rendered struct re-compiles to an identical layout.
        cursor = 0
        for field in layout.fields.values():
            if field.bit_offset > cursor:
                lines.append(
                    f"{_INDENT}: {field.bit_offset - cursor};"
                    f"  // padding, bit offset {cursor}"
                )
            lines.append(
                f"{_INDENT}{field.name} : {field.width};"
                f"  // bit offset {field.bit_offset}"
            )
            cursor = field.bit_offset + field.width
        if layout.total_bits > cursor:
            lines.append(
                f"{_INDENT}: {layout.total_bits - cursor};"
                f"  // padding, bit offset {cursor}"
            )
        lines.append("};")
        lines.append("")

    for name, value in program.consts.items():
        lines.append(f"const {name} = {value:#x};")
    for name, index in program.reg_map.items():
        lines.append(f"reg {name};  // GPR r{index}")
    for name, (struct_name, offset) in program.ptr_map.items():
        lines.append(f"ptr {name} = {struct_name} @ {offset};  // LMEM byte "
                     f"{offset}")
    if program.consts or program.reg_map or program.ptr_map:
        lines.append("")

    for name, instr in program.instructions.items():
        budget = program.budgets.get(name)
        if budget is not None:
            lines.append(
                f"{name}:  // reads: {budget.reg_reads} reg "
                f"/ {budget.mem_reads} mem; writes: {budget.reg_writes} reg "
                f"/ {budget.mem_writes} mem"
            )
        else:
            lines.append(f"{name}:")
        if analysis is not None:
            path = analysis.path_budgets.get(name)
            if path is not None:
                wcet = ("unbounded" if not path.bounded
                        else f"{int(path.instructions)} instr")
                reach = ("" if name in analysis.reachable
                         else "; UNREACHABLE from entry")
                lines.append(f"//   worst case from here: {wcet}{reach}")
            # An instruction owns the source lines from its label up to
            # the next instruction's label (or EOF).
            starts = sorted(i.line for i in program.instructions.values())
            next_starts = [s for s in starts if s > instr.line]
            end_line = next_starts[0] if next_starts else float("inf")
            for diag in analysis.diagnostics:
                if diag.span is None:
                    continue
                if instr.line <= diag.span.line < end_line:
                    lines.append(
                        f"//   {diag.severity}[{diag.code}]: {diag.message}"
                    )
        lines.append("begin")
        for stmt in instr.body:
            lines.extend(format_stmt(stmt))
        lines.append("end")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
