"""Static analysis of compiled Microcode programs.

The Trio Compiler's per-instruction budget check (§3.1) guarantees each
instruction fits the hardware, but says nothing about the *program*:
run-to-completion PPE threads (§2.2) additionally require that control
flow terminates and that every pointer access stays inside the thread's
local memory.  Until now those properties were only enforced at runtime
(the ``MAX_EXECUTED_INSTRUCTIONS`` valve in :mod:`repro.microcode.interp`
and bit-range checks in :mod:`repro.microcode.layout`), so a bad program
failed mid-simulation instead of at compile time.

:func:`analyze_program` builds a control-flow graph over the compiled
instructions — one node per ``InstructionDef``, edges from ``goto``,
``switch`` arms, fall-through, and ``call`` — and runs four passes:

* **Termination** — instructions from which *no* path reaches an exit
  (``exit``, fall-off-end, or a transfer to an extern label) form a goto
  cycle not broken by any conditional: ``MC201``.  For terminating
  programs the pass computes a worst-case executed-instruction bound per
  entry label and cross-checks it against ``MAX_EXECUTED_INSTRUCTIONS``
  (``MC202``); data-dependent loops that are statically unbounded but
  can terminate get ``MC203``, recursive ``call`` chains ``MC204``.
* **Def-use** — registers read on some path before any write (``MC101``),
  writes that are re-written before any read or escape (``MC102``),
  instructions unreachable from the entry (``MC103``), and statements
  unreachable inside a body (``MC104``).  Transfers to extern labels and
  ``exit`` treat every register as live-out: the surrounding codebase
  (Figure 4) owns the register file afterwards.
* **Pointer/layout safety** — ``ptr`` bindings and typed local-const
  pointers whose extent leaves thread-local memory (``MC301``), field
  accesses beyond local memory (``MC302``), and accesses to fields the
  struct layout does not define (``MC303``).
* **Shared-state atomicity (MC4xx)** — classifies every intrinsic
  memory access (:data:`repro.microcode.intrinsics.SHARED_INTRINSICS`)
  as thread-local (LMEM) vs shared (DMEM / counter space) and walks the
  paths from the entry: a plain load whose value flows into a plain
  store of an overlapping shared location is a lost-update race
  (``MC401`` — hundreds of PPE threads run this code unsynchronized,
  §2.3); a plain read and plain write of overlapping extents on one
  path without an intervening RMW barrier is a torn access (``MC402``);
  an RMW op whose address provably resolves to thread-local memory is
  needless serialization at the RMW engines (``MC403``, a perf note).
* **Budget accounting** — aggregates each instruction's
  :class:`~repro.microcode.compiler.InstructionBudget` along worst-case
  CFG paths, reporting the peak register/local-memory operand traffic a
  single packet can generate from each entry label.

Diagnostic codes
----------------

==========  =========  ====================================================
code        severity   meaning
==========  =========  ====================================================
``MC101``   error      register may be read before any write
``MC102``   warning    dead register write (overwritten before read/escape)
``MC103``   warning    instruction unreachable from the entry label
``MC104``   warning    statement unreachable inside an instruction body
``MC201``   error      goto cycle with no exit path (guaranteed divergence)
``MC202``   error      worst-case bound exceeds MAX_EXECUTED_INSTRUCTIONS
``MC203``   warning    loop statically unbounded (broken only by data)
``MC204``   warning    recursive subroutine call chain
``MC301``   error      pointer binding extends beyond local memory
``MC302``   error      field access extends beyond local memory
``MC303``   error      field not defined by the pointer's struct layout
``MC401``   error      shared load→modify→store not routed through an RMW
                       op (lost-update race)
``MC402``   error      shared read+write of overlapping extents on one
                       path with no RMW barrier (torn access)
``MC403``   warning    RMW op on a provably thread-local location
                       (needless serialization)
==========  =========  ====================================================

Run it from the command line with rustc-style output::

    python -m repro.microcode.analysis prog.mc --extern forward_packet
    python -m repro.microcode.analysis --builtins   # CI gate over programs.py
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.microcode import ast_nodes as ast
from repro.microcode.compiler import (
    BUILTIN_NAMESPACES,
    CompiledProgram,
    apply_binary,
)
from repro.microcode.errors import (
    Diagnostic,
    MicrocodeError,
    SourceSpan,
    render_diagnostics,
)
from repro.microcode.intrinsics import SHARED_INTRINSICS, IntrinsicSpec

__all__ = [
    "AnalysisReport",
    "CFGNode",
    "PathBudget",
    "analyze_program",
    "main",
]

#: Default thread-local memory size, matching TrioConfig.lmem_bytes
#: (1.25 KB, §2.2).  Kept as a literal so the microcode package stays
#: independent of the chipset model; pass ``lmem_bytes=`` to override.
DEFAULT_LMEM_BYTES = 1280

_INF = float("inf")


# ---------------------------------------------------------------------------
# Control-flow graph
# ---------------------------------------------------------------------------


@dataclass
class CFGNode:
    """Per-instruction control-flow summary.

    ``successors`` maps each possible ``goto`` target (internal or
    extern) to the statement that transfers there; ``calls`` lists
    subroutine targets; ``may_exit`` is True when some path through the
    body ends in ``exit``, fall-off-end, or ``return``.
    """

    name: str
    instr: ast.InstructionDef
    successors: Dict[str, ast.Goto] = field(default_factory=dict)
    calls: List[ast.CallSub] = field(default_factory=list)
    may_exit: bool = False


class _BodyWalker:
    """Extracts successors/calls and flags unreachable statements."""

    def __init__(self, node: CFGNode, diagnostics: List[Diagnostic],
                 filename: str):
        self.node = node
        self.diagnostics = diagnostics
        self.filename = filename

    def walk(self, body: Sequence[object]) -> bool:
        """Process a statement sequence; returns True when the sequence
        may complete normally (fall through to whatever follows)."""
        completes = True
        for index, stmt in enumerate(body):
            if not completes:
                self.diagnostics.append(Diagnostic(
                    "warning", "MC104",
                    f"statement unreachable in instruction "
                    f"{self.node.name!r}: every prior path has already "
                    "transferred control",
                    _span(stmt, self.filename),
                ))
                break
            completes = self.walk_stmt(stmt)
        return completes

    def walk_stmt(self, stmt: object) -> bool:
        node = self.node
        if isinstance(stmt, ast.Goto):
            node.successors.setdefault(stmt.label, stmt)
            return False
        if isinstance(stmt, ast.ExitStmt):
            node.may_exit = True
            return False
        if isinstance(stmt, ast.ReturnStmt):
            # Ends the enclosing subroutine; from the caller's point of
            # view the instruction chain terminated normally.
            node.may_exit = True
            return False
        if isinstance(stmt, ast.CallSub):
            node.calls.append(stmt)
            return True
        if isinstance(stmt, ast.If):
            then_completes = self.walk(stmt.then_body)
            if stmt.else_body:
                else_completes = self.walk(stmt.else_body)
            else:
                else_completes = True  # false condition falls through
            return then_completes or else_completes
        if isinstance(stmt, ast.Switch):
            has_default = any(c.values is None for c in stmt.cases)
            completes = not has_default  # unmatched selector falls through
            for case in stmt.cases:
                if self.walk(case.body):
                    completes = True
            return completes
        return True  # Assign / LocalConst / CallStmt


def _span(stmt: object, filename: str) -> Optional[SourceSpan]:
    line = getattr(stmt, "line", 0)
    return SourceSpan(line, filename=filename) if line else None


def build_cfg(program: CompiledProgram, diagnostics: List[Diagnostic],
              filename: str) -> Dict[str, CFGNode]:
    """One CFG node per instruction, with goto/call edges extracted."""
    cfg: Dict[str, CFGNode] = {}
    for name, instr in program.instructions.items():
        node = CFGNode(name=name, instr=instr)
        completes = _BodyWalker(node, diagnostics, filename).walk(instr.body)
        if completes:
            node.may_exit = True  # fall off the end: thread terminates
        cfg[name] = node
    return cfg


# ---------------------------------------------------------------------------
# Termination and worst-case bounds
# ---------------------------------------------------------------------------


def _terminating_labels(cfg: Dict[str, CFGNode],
                        extern: Set[str]) -> Set[str]:
    """Labels from which at least one path reaches an exit.

    Computed as a least fixpoint: a node terminates if its body may
    exit, it can transfer to an extern label, or it can transfer to a
    terminating node.
    """
    terminating: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, node in cfg.items():
            if name in terminating:
                continue
            if node.may_exit or any(
                succ in extern or succ in terminating
                for succ in node.successors
            ):
                terminating.add(name)
                changed = True
    return terminating


def _reachable_from(cfg: Dict[str, CFGNode], entry: str) -> Set[str]:
    seen: Set[str] = set()
    stack = [entry]
    while stack:
        label = stack.pop()
        if label in seen or label not in cfg:
            continue
        seen.add(label)
        node = cfg[label]
        stack.extend(node.successors)
        stack.extend(call.label for call in node.calls)
    return seen


@dataclass
class PathBudget:
    """Worst-case operand traffic along any path from an entry label.

    ``instructions`` is the worst-case executed-instruction bound (the
    static analogue of the interpreter's runtime valve); all fields are
    ``inf`` when a data-dependent loop makes the path length unbounded.
    """

    instructions: float = 0.0
    reg_reads: float = 0.0
    mem_reads: float = 0.0
    reg_writes: float = 0.0
    mem_writes: float = 0.0

    @property
    def bounded(self) -> bool:
        return self.instructions != _INF

    def describe(self) -> str:
        def fmt(value: float) -> str:
            return "unbounded" if value == _INF else str(int(value))

        return (f"worst case: {fmt(self.instructions)} instructions, "
                f"reads {fmt(self.reg_reads)} reg / {fmt(self.mem_reads)} "
                f"mem, writes {fmt(self.reg_writes)} reg / "
                f"{fmt(self.mem_writes)} mem")


class _BoundSolver:
    """Memoized longest-path solver over the (possibly cyclic) CFG.

    Cycles yield ``inf``; subroutine calls add the callee's bound (every
    call in a body is charged — a sound upper bound even when the calls
    are on exclusive branches).
    """

    def __init__(self, program: CompiledProgram, cfg: Dict[str, CFGNode],
                 diagnostics: List[Diagnostic], filename: str):
        self.program = program
        self.cfg = cfg
        self.diagnostics = diagnostics
        self.filename = filename
        self.extern = set(program.extern_labels)
        self._memo: Dict[str, PathBudget] = {}
        self._visiting: Set[str] = set()
        self._reported_recursion: Set[str] = set()

    def bound(self, label: str) -> PathBudget:
        if label in self.extern or label not in self.cfg:
            return PathBudget()
        if label in self._memo:
            return self._memo[label]
        if label in self._visiting:
            return PathBudget(_INF, _INF, _INF, _INF, _INF)
        self._visiting.add(label)
        node = self.cfg[label]
        budget = self.program.budgets.get(label)

        result = PathBudget(
            instructions=1.0,
            reg_reads=float(budget.reg_reads) if budget else 0.0,
            mem_reads=float(budget.mem_reads) if budget else 0.0,
            reg_writes=float(budget.reg_writes) if budget else 0.0,
            mem_writes=float(budget.mem_writes) if budget else 0.0,
        )
        for call in node.calls:
            if call.label in self._visiting:
                if call.label not in self._reported_recursion:
                    self._reported_recursion.add(call.label)
                    self.diagnostics.append(Diagnostic(
                        "warning", "MC204",
                        f"recursive subroutine call chain through "
                        f"{call.label!r}; the PPE call stack nests at "
                        "most 8 levels (§2.2)",
                        _span(call, self.filename),
                    ))
                sub = PathBudget(_INF, _INF, _INF, _INF, _INF)
            else:
                sub = self.bound(call.label)
            result.instructions += sub.instructions
            result.reg_reads += sub.reg_reads
            result.mem_reads += sub.mem_reads
            result.reg_writes += sub.reg_writes
            result.mem_writes += sub.mem_writes

        best = PathBudget()  # exit / fall-through path costs nothing more
        for succ in node.successors:
            if succ in self.extern:
                continue
            tail = self.bound(succ)
            best.instructions = max(best.instructions, tail.instructions)
            best.reg_reads = max(best.reg_reads, tail.reg_reads)
            best.mem_reads = max(best.mem_reads, tail.mem_reads)
            best.reg_writes = max(best.reg_writes, tail.reg_writes)
            best.mem_writes = max(best.mem_writes, tail.mem_writes)
        result.instructions += best.instructions
        result.reg_reads += best.reg_reads
        result.mem_reads += best.mem_reads
        result.reg_writes += best.reg_writes
        result.mem_writes += best.mem_writes

        self._visiting.discard(label)
        self._memo[label] = result
        return result


def _check_termination(
    program: CompiledProgram,
    cfg: Dict[str, CFGNode],
    reachable: Set[str],
    diagnostics: List[Diagnostic],
    filename: str,
    max_instructions: int,
) -> Dict[str, PathBudget]:
    extern = set(program.extern_labels)
    terminating = _terminating_labels(cfg, extern)

    # Guaranteed divergence: reachable nodes with no path to an exit.
    # Report each connected trap region once, anchored at its first goto.
    doomed = sorted(
        (reachable & set(cfg)) - terminating,
        key=lambda name: cfg[name].instr.line,
    )
    reported: Set[str] = set()
    for name in doomed:
        if name in reported:
            continue
        region = {
            label for label in _reachable_from(cfg, name)
            if label in cfg and label not in terminating
        }
        reported |= region
        node = cfg[name]
        anchor: object = node.instr
        for succ, goto in node.successors.items():
            if succ in region:
                anchor = goto
                break
        cycle = " -> ".join(sorted(region, key=lambda n: cfg[n].instr.line))
        diagnostics.append(Diagnostic(
            "error", "MC201",
            f"instructions form a goto cycle with no exit path: {cycle}",
            _span(anchor, filename),
            notes=["every path loops forever; the runtime valve "
                   f"(MAX_EXECUTED_INSTRUCTIONS={max_instructions}) would "
                   "kill the thread mid-simulation"],
        ))

    solver = _BoundSolver(program, cfg, diagnostics, filename)
    bounds = {label: solver.bound(label) for label in cfg}

    entry_bound = bounds.get(program.entry)
    if entry_bound is not None:
        if not entry_bound.bounded:
            if program.entry in terminating and not doomed:
                diagnostics.append(Diagnostic(
                    "warning", "MC203",
                    f"entry {program.entry!r} sits on a loop broken only "
                    "by a data-dependent conditional: the executed-"
                    "instruction count is statically unbounded",
                    _span(cfg[program.entry].instr, filename),
                    notes=["the interpreter enforces "
                           f"MAX_EXECUTED_INSTRUCTIONS={max_instructions} "
                           "at runtime"],
                ))
        elif entry_bound.instructions > max_instructions:
            diagnostics.append(Diagnostic(
                "error", "MC202",
                f"worst-case bound from entry {program.entry!r} is "
                f"{int(entry_bound.instructions)} executed instructions, "
                f"above MAX_EXECUTED_INSTRUCTIONS={max_instructions}",
                _span(cfg[program.entry].instr, filename),
            ))
    return bounds


# ---------------------------------------------------------------------------
# Def-use analysis
# ---------------------------------------------------------------------------


def _expr_reg_reads(expr: object, reg_map: Dict[str, int],
                    out: List[ast.Name]) -> None:
    if isinstance(expr, ast.Name):
        if expr.ident in reg_map:
            out.append(expr)
    elif isinstance(expr, ast.Member):
        _expr_reg_reads(expr.base, reg_map, out)
    elif isinstance(expr, ast.Unary):
        _expr_reg_reads(expr.operand, reg_map, out)
    elif isinstance(expr, ast.Binary):
        _expr_reg_reads(expr.left, reg_map, out)
        _expr_reg_reads(expr.right, reg_map, out)


class _DefUse:
    """Forward must-def plus backward liveness over the goto graph.

    Must-def catches reads on paths where no write has happened yet
    (MC101); liveness catches writes that every continuation overwrites
    before reading (MC102).  Extern transfers and ``exit`` make all
    registers live: the surrounding codebase reads them (Figure 4 hands
    parse results to the aggregation code through registers).
    """

    def __init__(self, program: CompiledProgram, cfg: Dict[str, CFGNode],
                 reachable: Set[str], diagnostics: List[Diagnostic],
                 filename: str):
        self.program = program
        self.cfg = cfg
        self.reachable = reachable
        self.diagnostics = diagnostics
        self.filename = filename
        self.regs = set(program.reg_map)
        self.extern = set(program.extern_labels)

    # -- forward must-def -------------------------------------------------

    def run_must_def(self) -> None:
        # in-state per label: None = not yet seen; else frozenset of regs
        # definitely written on every path reaching the label.
        in_state: Dict[str, Optional[frozenset]] = {
            label: None for label in self.cfg
        }
        in_state[self.program.entry] = frozenset()
        worklist = [self.program.entry]
        # Collect (stmt, reg) pairs so fixpoint iterations do not emit
        # duplicate diagnostics.
        flagged: Set[Tuple[int, str]] = set()
        while worklist:
            label = worklist.pop(0)
            if label not in self.cfg:
                continue
            state = in_state[label]
            assert state is not None
            outs: Dict[str, frozenset] = {}
            self._walk_must(self.cfg[label].instr.body, set(state), outs,
                            flagged, report=False)
            for succ, out in outs.items():
                if succ in self.extern or succ not in self.cfg:
                    continue
                previous = in_state[succ]
                joined = out if previous is None else (previous & out)
                if previous is None or joined != previous:
                    in_state[succ] = frozenset(joined)
                    worklist.append(succ)
        # Second pass with stable in-states: emit diagnostics.
        for label in self.cfg:
            state = in_state[label]
            if state is None:
                continue  # unreachable; MC103 covers it
            self._walk_must(self.cfg[label].instr.body, set(state), {},
                            flagged, report=True)

    def _walk_must(self, body: Sequence[object], defined: Set[str],
                   outs: Dict[str, frozenset],
                   flagged: Set[Tuple[int, str]], report: bool) -> bool:
        """Returns True when the sequence may complete; updates ``outs``
        with the defined-set flowing along each goto edge."""
        for stmt in body:
            if isinstance(stmt, ast.Goto):
                previous = outs.get(stmt.label)
                current = frozenset(defined)
                outs[stmt.label] = (current if previous is None
                                    else previous & current)
                return False
            if isinstance(stmt, (ast.ExitStmt, ast.ReturnStmt)):
                return False
            if isinstance(stmt, ast.Assign):
                self._check_reads(stmt.expr, defined, flagged, report)
                if isinstance(stmt.target, ast.Member):
                    self._check_reads(stmt.target.base, defined, flagged,
                                      report)
                elif (isinstance(stmt.target, ast.Name)
                      and stmt.target.ident in self.regs):
                    defined.add(stmt.target.ident)
                continue
            if isinstance(stmt, ast.LocalConst):
                self._check_reads(stmt.expr, defined, flagged, report)
                continue
            if isinstance(stmt, ast.CallStmt):
                spec = SHARED_INTRINSICS.get(stmt.name)
                out_reg = spec.out_reg if spec is not None else None
                for index, arg in enumerate(stmt.args):
                    if index != out_reg:
                        self._check_reads(arg, defined, flagged, report)
                if out_reg is not None and out_reg < len(stmt.args):
                    arg = stmt.args[out_reg]
                    if isinstance(arg, ast.Name) and arg.ident in self.regs:
                        # The intrinsic writes this register (the XTXN
                        # reply lands there) — a definition, not a read.
                        defined.add(arg.ident)
                continue
            if isinstance(stmt, ast.CallSub):
                # Callee reads run under the caller's defined set; its
                # writes are not guaranteed on every path, so the set is
                # unchanged (sound for must-def).
                self._propagate_call(stmt.label, defined, outs, flagged,
                                     report)
                continue
            if isinstance(stmt, ast.If):
                self._check_reads(stmt.cond, defined, flagged, report)
                then_set = set(defined)
                then_completes = self._walk_must(stmt.then_body, then_set,
                                                 outs, flagged, report)
                else_set = set(defined)
                if stmt.else_body:
                    else_completes = self._walk_must(
                        stmt.else_body, else_set, outs, flagged, report)
                else:
                    else_completes = True  # false condition falls through
                completing = [s for s, done in
                              ((then_set, then_completes),
                               (else_set, else_completes)) if done]
                if not completing:
                    return False
                joined = completing[0]
                for arm in completing[1:]:
                    joined = joined & arm
                defined.clear()
                defined.update(joined)
                continue
            if isinstance(stmt, ast.Switch):
                self._check_reads(stmt.selector, defined, flagged, report)
                arm_sets: List[Set[str]] = []
                all_transfer = True
                has_default = any(c.values is None for c in stmt.cases)
                for case in stmt.cases:
                    arm = set(defined)
                    completes = self._walk_must(case.body, arm, outs,
                                                flagged, report)
                    if completes:
                        arm_sets.append(arm)
                        all_transfer = False
                if not has_default:
                    arm_sets.append(set(defined))
                    all_transfer = False
                if all_transfer and not arm_sets:
                    return False
                joined = arm_sets[0]
                for arm in arm_sets[1:]:
                    joined &= arm
                defined.clear()
                defined.update(joined)
                continue
        return True

    def _propagate_call(self, label: str, defined: Set[str],
                        outs: Dict[str, frozenset],
                        flagged: Set[Tuple[int, str]], report: bool) -> None:
        if label in self.extern or label not in self.cfg:
            return
        # Reads inside the callee happen with (at least) the caller's
        # defined registers; checking with exactly that set is the
        # intersection semantics the fixpoint would give us.
        self._walk_must(self.cfg[label].instr.body, set(defined), outs,
                        flagged, report)

    def _check_reads(self, expr: object, defined: Set[str],
                     flagged: Set[Tuple[int, str]], report: bool) -> None:
        reads: List[ast.Name] = []
        _expr_reg_reads(expr, self.program.reg_map, reads)
        for name in reads:
            if name.ident in defined:
                continue
            if not report:
                continue
            key = (id(name), name.ident)
            if key in flagged:
                continue
            flagged.add(key)
            self.diagnostics.append(Diagnostic(
                "error", "MC101",
                f"register {name.ident!r} may be read before any "
                f"write on a path from entry {self.program.entry!r}",
                _span(name, self.filename),
                notes=["intermediate registers are thread-scratch "
                       "state; initialise before use (§3.1)"],
            ))

    # -- backward liveness -------------------------------------------------

    def run_liveness(self) -> None:
        all_regs = frozenset(self.regs)
        live_in: Dict[str, frozenset] = {
            label: frozenset() for label in self.cfg
        }
        changed = True
        while changed:
            changed = False
            for label in self.cfg:
                new = self._body_live(
                    self.cfg[label].instr.body, live_in, all_regs,
                    report=False,
                )
                if new != live_in[label]:
                    live_in[label] = new
                    changed = True
        for label in self.cfg:
            if label not in self.reachable:
                continue
            self._body_live(self.cfg[label].instr.body, live_in, all_regs,
                            report=True)

    def _body_live(self, body: Sequence[object],
                   live_in: Dict[str, frozenset],
                   all_regs: frozenset, report: bool) -> frozenset:
        """Live registers at the start of ``body``.

        Fall-off-end terminates the thread with the surrounding codebase
        holding the register file, so the sequence's live-out is
        ``all_regs``.
        """
        return self._seq_live(list(body), live_in, all_regs, all_regs,
                              report)

    def _seq_live(self, stmts: Sequence[object],
                  live_in: Dict[str, frozenset], all_regs: frozenset,
                  live_out: frozenset, report: bool) -> frozenset:
        live = set(live_out)
        for stmt in reversed(stmts):
            live = self._stmt_live(stmt, live_in, all_regs,
                                   frozenset(live), report)
        return frozenset(live)

    def _stmt_live(self, stmt: object, live_in: Dict[str, frozenset],
                   all_regs: frozenset, live_out: frozenset,
                   report: bool) -> Set[str]:
        live = set(live_out)
        if isinstance(stmt, ast.Goto):
            if stmt.label in self.extern or stmt.label not in self.cfg:
                return set(all_regs)
            return set(live_in[stmt.label])
        if isinstance(stmt, (ast.ExitStmt, ast.ReturnStmt)):
            return set(all_regs)
        if isinstance(stmt, ast.Assign):
            target = stmt.target
            if isinstance(target, ast.Name) and target.ident in self.regs:
                if target.ident not in live and report:
                    self.diagnostics.append(Diagnostic(
                        "warning", "MC102",
                        f"dead write to register {target.ident!r}: every "
                        "following path overwrites it before reading",
                        _span(target, self.filename),
                    ))
                live.discard(target.ident)
            elif isinstance(target, ast.Member):
                self._add_reads(target.base, live)
            self._add_reads(stmt.expr, live)
            return live
        if isinstance(stmt, ast.LocalConst):
            self._add_reads(stmt.expr, live)
            return live
        if isinstance(stmt, ast.CallStmt):
            spec = SHARED_INTRINSICS.get(stmt.name)
            out_reg = spec.out_reg if spec is not None else None
            if out_reg is not None and out_reg < len(stmt.args):
                arg = stmt.args[out_reg]
                if isinstance(arg, ast.Name) and arg.ident in self.regs:
                    # Written, not read.  No MC102 here: the load's XTXN
                    # is a real memory access even if the reply is unused.
                    live.discard(arg.ident)
            for index, arg in enumerate(stmt.args):
                if index != out_reg:
                    self._add_reads(arg, live)
            return live
        if isinstance(stmt, ast.CallSub):
            # The callee may read any register before control returns.
            return set(all_regs)
        if isinstance(stmt, ast.If):
            then_live = self._seq_live(stmt.then_body, live_in, all_regs,
                                       live_out, report)
            else_live = self._seq_live(stmt.else_body, live_in, all_regs,
                                       live_out, report) \
                if stmt.else_body else live_out
            live = set(then_live) | set(else_live)
            self._add_reads(stmt.cond, live)
            return live
        if isinstance(stmt, ast.Switch):
            merged: Set[str] = set()
            has_default = False
            for case in stmt.cases:
                if case.values is None:
                    has_default = True
                merged |= set(self._seq_live(case.body, live_in, all_regs,
                                             live_out, report))
            if not has_default:
                merged |= set(live_out)
            self._add_reads(stmt.selector, merged)
            return merged
        return live

    def _add_reads(self, expr: object, live: Set[str]) -> None:
        reads: List[ast.Name] = []
        _expr_reg_reads(expr, self.program.reg_map, reads)
        live.update(name.ident for name in reads)


# ---------------------------------------------------------------------------
# Pointer / layout safety
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _AbstractPtr:
    struct_name: Optional[str]  # None once arithmetic strips the type
    offset: Optional[int]       # None when not statically known


class _PointerChecker:
    """Abstract interpretation of pointer expressions against LMEM."""

    def __init__(self, program: CompiledProgram, lmem_bytes: int,
                 diagnostics: List[Diagnostic], filename: str):
        self.program = program
        self.lmem_bytes = lmem_bytes
        self.diagnostics = diagnostics
        self.filename = filename
        # Flow-insensitive pointer environment: every binding a name can
        # take anywhere in the program.
        self.env: Dict[str, List[_AbstractPtr]] = {}
        for name, (struct_name, offset) in program.ptr_map.items():
            self.env[name] = [_AbstractPtr(struct_name, offset)]

    def run(self) -> None:
        for name, (struct_name, offset) in self.program.ptr_map.items():
            layout = self.program.structs[struct_name]
            extent = offset + layout.size_bytes
            if offset < 0 or extent > self.lmem_bytes:
                self.diagnostics.append(Diagnostic(
                    "error", "MC301",
                    f"ptr {name!r} binds {struct_name} at byte {offset}: "
                    f"extent {extent} exceeds the {self.lmem_bytes}-byte "
                    "thread-local memory (§2.2)",
                ))
        # Pass 1: collect typed local-const pointers program-wide.
        for instr in self.program.instructions.values():
            self._collect(instr.body)
        # Pass 2: check every member access.
        for instr in self.program.instructions.values():
            self._check_body(instr.body)

    # -- collection -------------------------------------------------------

    def _collect(self, body: Sequence[object]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.LocalConst):
                value = self._eval_ptr(stmt.expr)
                if stmt.is_pointer:
                    if value is None:
                        value = _AbstractPtr(stmt.type_name, None)
                    else:
                        value = _AbstractPtr(stmt.type_name, value.offset)
                    layout = self.program.structs.get(stmt.type_name)
                    if layout is not None and value.offset is not None:
                        extent = value.offset + layout.size_bytes
                        if value.offset < 0 or extent > self.lmem_bytes:
                            self.diagnostics.append(Diagnostic(
                                "error", "MC301",
                                f"pointer {stmt.name!r} points "
                                f"{stmt.type_name} at byte {value.offset}: "
                                f"extent {extent} exceeds the "
                                f"{self.lmem_bytes}-byte thread-local "
                                "memory (§2.2)",
                                _span(stmt, self.filename),
                            ))
                if value is not None:
                    self.env.setdefault(stmt.name, []).append(value)
            elif isinstance(stmt, ast.If):
                self._collect(stmt.then_body)
                self._collect(stmt.else_body)
            elif isinstance(stmt, ast.Switch):
                for case in stmt.cases:
                    self._collect(case.body)

    def _eval_ptr(self, expr: object) -> Optional[_AbstractPtr]:
        """Abstract pointer value of ``expr``, or None when scalar/unknown."""
        if isinstance(expr, ast.Name):
            values = self.env.get(expr.ident)
            if values:
                return values[0]
            return None
        if isinstance(expr, ast.Binary) and expr.op == "+":
            left = self._eval_ptr(expr.left)
            if left is not None:
                delta = self._eval_int(expr.right)
                if left.offset is None or delta is None:
                    return _AbstractPtr(None, None)
                return _AbstractPtr(None, left.offset + delta)
            right = self._eval_ptr(expr.right)
            if right is not None:
                delta = self._eval_int(expr.left)
                if right.offset is None or delta is None:
                    return _AbstractPtr(None, None)
                return _AbstractPtr(None, right.offset + delta)
        return None

    def _eval_int(self, expr: object) -> Optional[int]:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.SizeOf):
            layout = self.program.structs.get(expr.type_name)
            return layout.size_bytes if layout else None
        if isinstance(expr, ast.Name):
            return self.program.consts.get(expr.ident)
        if isinstance(expr, ast.Unary) and expr.op == "-":
            value = self._eval_int(expr.operand)
            return -value if value is not None else None
        if isinstance(expr, ast.Binary):
            left = self._eval_int(expr.left)
            right = self._eval_int(expr.right)
            if left is None or right is None:
                return None
            try:
                return apply_binary(expr.op, left, right)
            except MicrocodeError:
                return None
        return None

    # -- access checks ----------------------------------------------------

    def _check_body(self, body: Sequence[object]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                self._check_expr(stmt.expr)
                if isinstance(stmt.target, ast.Member):
                    self._check_member(stmt.target)
            elif isinstance(stmt, ast.LocalConst):
                self._check_expr(stmt.expr)
            elif isinstance(stmt, ast.CallStmt):
                for arg in stmt.args:
                    self._check_expr(arg)
            elif isinstance(stmt, ast.If):
                self._check_expr(stmt.cond)
                self._check_body(stmt.then_body)
                self._check_body(stmt.else_body)
            elif isinstance(stmt, ast.Switch):
                self._check_expr(stmt.selector)
                for case in stmt.cases:
                    self._check_body(case.body)

    def _check_expr(self, expr: object) -> None:
        if isinstance(expr, ast.Member):
            self._check_member(expr)
        elif isinstance(expr, ast.Unary):
            self._check_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            self._check_expr(expr.left)
            self._check_expr(expr.right)

    def _check_member(self, member: ast.Member) -> None:
        base = member.base
        if isinstance(base, ast.Name) and base.ident in BUILTIN_NAMESPACES:
            return
        if isinstance(base, ast.Member):
            self._check_member(base)
            return
        candidates: List[_AbstractPtr] = []
        if isinstance(base, ast.Name):
            candidates = self.env.get(base.ident, [])
        else:
            value = self._eval_ptr(base)
            if value is not None:
                candidates = [value]
        for ptr in candidates:
            if ptr.struct_name is None:
                continue
            layout = self.program.structs.get(ptr.struct_name)
            if layout is None:
                continue
            if member.field_name not in layout.fields:
                self.diagnostics.append(Diagnostic(
                    "error", "MC303",
                    f"struct {ptr.struct_name!r} has no field "
                    f"{member.field_name!r} "
                    f"(has: {', '.join(sorted(layout.fields))})",
                    _span(member, self.filename),
                ))
                continue
            if ptr.offset is None:
                continue
            fld = layout.fields[member.field_name]
            end_bit = ptr.offset * 8 + fld.bit_offset + fld.width
            if ptr.offset < 0 or end_bit > self.lmem_bytes * 8:
                self.diagnostics.append(Diagnostic(
                    "error", "MC302",
                    f"access {member.field_name!r} at LMEM byte "
                    f"{ptr.offset}+{fld.bit_offset // 8} reaches bit "
                    f"{end_bit}, beyond the {self.lmem_bytes}-byte "
                    "thread-local memory (§2.2)",
                    _span(member, self.filename),
                ))


# ---------------------------------------------------------------------------
# Shared-state atomicity (MC4xx)
# ---------------------------------------------------------------------------


#: Statement-walk budget for the race pass.  Paths fork at every branch;
#: real Microcode programs are tiny (the interpreter refuses more than
#: 100k executed instructions), so a generous cap keeps the pass linear
#: in practice while bounding pathological branch ladders.
_RACE_WALK_BUDGET = 200_000


@dataclass(frozen=True)
class _AccessKey:
    """Abstract address of one shared-memory access.

    ``kind`` is ``"num"`` (statically known byte extent), ``"sym"``
    (canonical expression text — equal text means same address), or
    ``"lmem"`` (provably thread-local).  Two keys may alias only when
    both are numeric with overlapping extents in the same space, or both
    symbolic with identical text in the same space; a numeric and a
    symbolic key are conservatively treated as disjoint.
    """

    kind: str
    space: str = ""
    lo: int = 0
    hi: int = 0
    text: str = ""

    def aliases(self, other: "_AccessKey") -> bool:
        if self.kind == "num" and other.kind == "num":
            return (self.space == other.space
                    and self.lo < other.hi and other.lo < self.hi)
        if self.kind == "sym" and other.kind == "sym":
            return self.space == other.space and self.text == other.text
        return False

    def describe(self) -> str:
        if self.kind == "num":
            return f"{self.space}[{self.lo:#x}..{self.hi:#x})"
        if self.kind == "sym":
            return f"{self.space}[{self.text}]"
        return "thread-local memory"


@dataclass
class _SharedAccess:
    """One pending plain access on the current path."""

    key: _AccessKey
    stmt: ast.CallStmt
    spec: IntrinsicSpec


class _RaceState:
    """Per-path state of the race walk; forked at every branch."""

    __slots__ = ("visited", "reads", "writes", "taint", "consts", "syms")

    def __init__(self) -> None:
        self.visited: Set[str] = set()
        self.reads: List[_SharedAccess] = []
        self.writes: List[_SharedAccess] = []
        # reg name -> plain loads whose value (transitively) reached it
        self.taint: Dict[str, List[_SharedAccess]] = {}
        self.consts: Dict[str, int] = {}   # local consts with known value
        self.syms: Dict[str, str] = {}     # local consts, canonical text

    def fork(self) -> "_RaceState":
        other = _RaceState.__new__(_RaceState)
        other.visited = set(self.visited)
        other.reads = list(self.reads)
        other.writes = list(self.writes)
        other.taint = {reg: list(accs) for reg, accs in self.taint.items()}
        other.consts = dict(self.consts)
        other.syms = dict(self.syms)
        return other


class _RaceChecker:
    """Path-sensitive lost-update / torn-access detection (MC4xx).

    Walks every path from the entry (each instruction label visited at
    most once per path, subroutine bodies inlined) carrying the plain
    shared reads and writes still "pending" — not yet separated by an
    aliasing RMW op — plus a register taint map tracking which plain
    loads each register's value derives from.  A plain store whose value
    is tainted by an aliasing load is the classic lost update (MC401); a
    plain read and plain write of overlapping extents with no RMW
    barrier in between is a torn access (MC402).  RMW ops are the §2.3
    contract and never conflict — but an RMW whose address provably
    resolves into LMEM serializes at an engine for state no other thread
    can see (MC403).
    """

    def __init__(self, program: CompiledProgram, cfg: Dict[str, CFGNode],
                 lmem_bytes: int, diagnostics: List[Diagnostic],
                 filename: str):
        self.program = program
        self.cfg = cfg
        self.diagnostics = diagnostics
        self.filename = filename
        self.extern = set(program.extern_labels)
        self._budget = _RACE_WALK_BUDGET
        self._flagged: Set[Tuple[str, int, int]] = set()
        # Reuse the pointer checker's abstract environment to decide
        # whether an address expression is an LMEM pointer (MC403).
        self._ptrs = _PointerChecker(program, lmem_bytes, [], filename)
        for instr in program.instructions.values():
            self._ptrs._collect(instr.body)

    def run(self) -> None:
        state = _RaceState()
        self._walk_label(self.program.entry, state)

    # -- walking -----------------------------------------------------------

    def _walk_label(self, label: str, state: _RaceState) -> None:
        if label in self.extern or label not in self.cfg:
            return
        if label in state.visited or self._budget <= 0:
            return
        state.visited.add(label)
        self._walk_body(self.cfg[label].instr.body, [state], in_sub=False)

    def _walk_body(self, body: Sequence[object], states: List[_RaceState],
                   in_sub: bool) -> List[_RaceState]:
        """Walk ``body`` with each state; returns the states that fall
        through (or ``return``, when ``in_sub``) to whatever follows."""
        for stmt in body:
            if not states:
                return []
            next_states: List[_RaceState] = []
            for st in states:
                next_states.extend(self._walk_stmt(stmt, st, in_sub))
            states = next_states
        return states

    def _walk_stmt(self, stmt: object, state: _RaceState,
                   in_sub: bool) -> List[_RaceState]:
        self._budget -= 1
        if self._budget <= 0:
            return []
        if isinstance(stmt, ast.Goto):
            self._walk_label(stmt.label, state)
            return []
        if isinstance(stmt, ast.ExitStmt):
            return []
        if isinstance(stmt, ast.ReturnStmt):
            # Inside an inlined subroutine a return continues in the
            # caller; at top level it ends the thread.
            return [state] if in_sub else []
        if isinstance(stmt, ast.CallSub):
            if stmt.label in state.visited or stmt.label not in self.cfg:
                return [state]  # recursion: MC204's department
            state.visited.add(stmt.label)
            body = self.cfg[stmt.label].instr.body
            out = self._walk_body(body, [state], in_sub=True)
            for st in out:
                st.visited.discard(stmt.label)
            return out
        if isinstance(stmt, ast.If):
            else_state = state.fork()
            out = self._walk_body(stmt.then_body, [state], in_sub)
            if stmt.else_body:
                out.extend(self._walk_body(stmt.else_body, [else_state],
                                           in_sub))
            else:
                out.append(else_state)
            return out
        if isinstance(stmt, ast.Switch):
            out: List[_RaceState] = []
            has_default = any(c.values is None for c in stmt.cases)
            for case in stmt.cases:
                out.extend(self._walk_body(case.body, [state.fork()],
                                           in_sub))
            if not has_default:
                out.append(state)
            return out
        if isinstance(stmt, ast.LocalConst):
            value = self._eval_int(stmt.expr, state)
            if value is not None:
                state.consts[stmt.name] = value
            state.syms[stmt.name] = self._canonical(stmt.expr, state)
            return [state]
        if isinstance(stmt, ast.Assign):
            self._propagate_taint(stmt, state)
            return [state]
        if isinstance(stmt, ast.CallStmt):
            self._visit_intrinsic(stmt, state)
            return [state]
        return [state]

    # -- the checks --------------------------------------------------------

    def _visit_intrinsic(self, stmt: ast.CallStmt, state: _RaceState) -> None:
        spec = SHARED_INTRINSICS.get(stmt.name)
        if spec is None or spec.addr_arg >= len(stmt.args):
            return
        key = self._key_for(stmt.args[spec.addr_arg], spec, state)

        if spec.access == "rmw":
            if key.kind == "lmem":
                self._emit(Diagnostic(
                    "warning", "MC403",
                    f"{stmt.name} targets provably thread-local memory: "
                    "RMW engines serialize every caller for state no "
                    "other thread can observe",
                    _span(stmt, self.filename),
                    notes=["LMEM is private to the PPE thread (§2.2); "
                           "a plain field update costs no engine trip"],
                ))
                return
            # The RMW op is the barrier: pending plain accesses to the
            # same location are now ordered through the engine.
            state.reads = [a for a in state.reads
                           if not a.key.aliases(key)]
            state.writes = [a for a in state.writes
                            if not a.key.aliases(key)]
            return
        if key.kind == "lmem":
            return  # plain access to LMEM is thread-private, always fine

        if spec.access == "read":
            for prior in state.writes:
                if prior.key.aliases(key):
                    self._emit(Diagnostic(
                        "error", "MC402",
                        f"plain {stmt.name} of {key.describe()} follows a "
                        f"plain {prior.spec.name} of the same shared "
                        "location with no RMW barrier in between",
                        _span(stmt, self.filename),
                        notes=[f"the write is at line {prior.stmt.line}; "
                               "another thread's access can interleave "
                               "between the two plain XTXNs (§2.3)"],
                    ))
                    break
            access = _SharedAccess(key=key, stmt=stmt, spec=spec)
            state.reads.append(access)
            out_reg = spec.out_reg
            if out_reg is not None and out_reg < len(stmt.args):
                arg = stmt.args[out_reg]
                if isinstance(arg, ast.Name):
                    state.taint[arg.ident] = [access]
            return

        # spec.access == "write"
        tainting: List[_SharedAccess] = []
        for index in spec.value_args:
            if index < len(stmt.args):
                tainting.extend(self._expr_taint(stmt.args[index], state))
        lost = [acc for acc in tainting if acc.key.aliases(key)]
        if lost:
            load = lost[0]
            self._emit(Diagnostic(
                "error", "MC401",
                f"lost update: {stmt.name} writes {key.describe()} with a "
                f"value derived from the plain {load.spec.name} of the "
                "same shared location — the read-modify-write is not "
                "atomic",
                _span(stmt, self.filename),
                notes=[f"the load is at line {load.stmt.line}; any other "
                       "thread's update between load and store is "
                       "silently overwritten — route the modification "
                       "through an RMW op (DmemAdd32/DmemSwap, §2.3)"],
            ))
            consumed = set(map(id, lost))
            state.reads = [a for a in state.reads
                           if id(a) not in consumed]
        else:
            for prior in state.reads:
                if prior.key.aliases(key):
                    self._emit(Diagnostic(
                        "error", "MC402",
                        f"plain {stmt.name} of {key.describe()} follows a "
                        f"plain {prior.spec.name} of the same shared "
                        "location with no RMW barrier in between",
                        _span(stmt, self.filename),
                        notes=[f"the read is at line {prior.stmt.line}; "
                               "if the write depends on what was read, "
                               "another thread's update in between is "
                               "lost (§2.3)"],
                    ))
                    break
        state.writes.append(_SharedAccess(key=key, stmt=stmt, spec=spec))

    def _emit(self, diagnostic: Diagnostic) -> None:
        line = diagnostic.span.line if diagnostic.span else 0
        column = diagnostic.span.column if diagnostic.span else 0
        dedup = (diagnostic.code, line, column)
        if dedup in self._flagged:
            return  # the same racy pair, reached along another path
        self._flagged.add(dedup)
        self.diagnostics.append(diagnostic)

    # -- taint -------------------------------------------------------------

    def _propagate_taint(self, stmt: ast.Assign, state: _RaceState) -> None:
        sources = self._expr_taint(stmt.expr, state)
        target = stmt.target
        if isinstance(target, ast.Name) and target.ident in self.program.reg_map:
            if sources:
                state.taint[target.ident] = sources
            else:
                state.taint.pop(target.ident, None)
        # Member targets park the value in LMEM; we do not track taint
        # through thread-local memory (a deliberate under-approximation —
        # MC401 stays a high-confidence error).

    def _expr_taint(self, expr: object, state: _RaceState) -> List[_SharedAccess]:
        reads: List[ast.Name] = []
        _expr_reg_reads(expr, self.program.reg_map, reads)
        sources: List[_SharedAccess] = []
        seen: Set[int] = set()
        for name in reads:
            for access in state.taint.get(name.ident, ()):
                if id(access) not in seen:
                    seen.add(id(access))
                    sources.append(access)
        return sources

    # -- address abstraction ----------------------------------------------

    def _key_for(self, expr: object, spec: IntrinsicSpec,
                 state: _RaceState) -> _AccessKey:
        if self._ptrs._eval_ptr(expr) is not None:
            return _AccessKey(kind="lmem")
        value = self._eval_int(expr, state)
        if value is not None:
            lo = value * spec.addr_scale
            return _AccessKey(kind="num", space=spec.space,
                              lo=lo, hi=lo + spec.size_bytes)
        return _AccessKey(kind="sym", space=spec.space,
                          text=self._canonical(expr, state))

    def _eval_int(self, expr: object, state: _RaceState) -> Optional[int]:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.SizeOf):
            layout = self.program.structs.get(expr.type_name)
            return layout.size_bytes if layout else None
        if isinstance(expr, ast.Name):
            if expr.ident in state.consts:
                return state.consts[expr.ident]
            return self.program.consts.get(expr.ident)
        if isinstance(expr, ast.Unary) and expr.op == "-":
            value = self._eval_int(expr.operand, state)
            return -value if value is not None else None
        if isinstance(expr, ast.Binary):
            left = self._eval_int(expr.left, state)
            right = self._eval_int(expr.right, state)
            if left is None or right is None:
                return None
            try:
                return apply_binary(expr.op, left, right)
            except MicrocodeError:
                return None
        return None

    def _canonical(self, expr: object, state: _RaceState) -> str:
        """Canonical text for an address we cannot fold to an integer.

        Local-const names are expanded to their defining expression so
        two intrinsics addressing through the same ``const :`` binding —
        or through its spelled-out equivalent — compare equal.
        """
        value = self._eval_int(expr, state)
        if value is not None:
            return str(value)
        if isinstance(expr, ast.Name):
            return state.syms.get(expr.ident, expr.ident)
        if isinstance(expr, ast.Unary):
            return f"({expr.op}{self._canonical(expr.operand, state)})"
        if isinstance(expr, ast.Binary):
            left = self._canonical(expr.left, state)
            right = self._canonical(expr.right, state)
            return f"({left}{expr.op}{right})"
        if isinstance(expr, ast.Member):
            base = self._canonical(expr.base, state)
            arrow = "->" if expr.arrow else "."
            return f"{base}{arrow}{expr.field_name}"
        from repro.microcode.disasm import format_expr
        return format_expr(expr)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


@dataclass
class AnalysisReport:
    """Everything the static passes learned about one compiled program."""

    entry: str
    diagnostics: List[Diagnostic]
    cfg: Dict[str, CFGNode]
    reachable: Set[str]
    path_budgets: Dict[str, PathBudget]
    source: Optional[str] = None
    filename: str = "<source>"

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def findings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity != "note"]

    @property
    def clean(self) -> bool:
        return not self.findings

    def entry_budget(self) -> PathBudget:
        return self.path_budgets.get(self.entry, PathBudget())

    def render(self) -> str:
        """Human-readable report: findings first, then the bound summary."""
        parts: List[str] = []
        if self.diagnostics:
            parts.append(render_diagnostics(self.diagnostics, self.source))
        summary = [
            f"entry {self.entry!r}: {self.entry_budget().describe()}",
            f"{len(self.cfg)} instructions, "
            f"{len(self.reachable & set(self.cfg))} reachable from entry",
        ]
        errors = len(self.errors)
        warnings = len(self.warnings)
        summary.append(
            f"analysis: {errors} error(s), {warnings} warning(s)"
        )
        parts.append("\n".join(summary))
        return "\n\n".join(parts)


def analyze_program(
    program: CompiledProgram,
    source: Optional[str] = None,
    lmem_bytes: int = DEFAULT_LMEM_BYTES,
    max_instructions: Optional[int] = None,
    filename: str = "<source>",
) -> AnalysisReport:
    """Run every static pass over ``program`` and collect diagnostics.

    ``source`` (the original Microcode text) enables quoted source lines
    in rendered diagnostics; analysis itself only needs the compiled
    program.
    """
    if max_instructions is None:
        from repro.microcode.interp import MAX_EXECUTED_INSTRUCTIONS
        max_instructions = MAX_EXECUTED_INSTRUCTIONS
    if source is None:
        source = program.source
    diagnostics: List[Diagnostic] = []
    cfg = build_cfg(program, diagnostics, filename)
    reachable = _reachable_from(cfg, program.entry)

    for name, node in cfg.items():
        if name not in reachable:
            diagnostics.append(Diagnostic(
                "warning", "MC103",
                f"instruction {name!r} is unreachable from entry "
                f"{program.entry!r}: no goto or call targets it",
                _span(node.instr, filename),
            ))

    path_budgets = _check_termination(
        program, cfg, reachable, diagnostics, filename, max_instructions
    )

    defuse = _DefUse(program, cfg, reachable, diagnostics, filename)
    defuse.run_must_def()
    defuse.run_liveness()

    _PointerChecker(program, lmem_bytes, diagnostics, filename).run()

    _RaceChecker(program, cfg, lmem_bytes, diagnostics, filename).run()

    return AnalysisReport(
        entry=program.entry,
        diagnostics=diagnostics,
        cfg=cfg,
        reachable=reachable,
        path_budgets=path_budgets,
        source=source,
        filename=filename,
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _analyze_source(source: str, entry: Optional[str],
                    externs: Sequence[str], filename: str,
                    lmem_bytes: int) -> AnalysisReport:
    from repro.microcode.compiler import TrioCompiler

    compiler = TrioCompiler(extern_labels=externs)
    program = compiler.compile(source, entry=entry)
    return analyze_program(program, source=source, lmem_bytes=lmem_bytes,
                           filename=filename)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.microcode.analysis",
        description="Static analysis of Microcode programs: termination, "
                    "def-use, pointer/layout safety, and worst-case "
                    "operand-budget accounting.",
    )
    parser.add_argument("files", nargs="*",
                        help="Microcode source files to analyze")
    parser.add_argument("--entry", default=None,
                        help="entry instruction (default: first defined)")
    parser.add_argument("--extern", dest="externs", action="append",
                        default=[], metavar="LABEL",
                        help="extern label resolved by the surrounding "
                             "codebase (repeatable)")
    parser.add_argument("--lmem-bytes", type=int, default=DEFAULT_LMEM_BYTES,
                        help="thread-local memory size "
                             f"(default {DEFAULT_LMEM_BYTES})")
    parser.add_argument("--builtins", action="store_true",
                        help="analyze every shipped program in "
                             "repro.microcode.programs (the CI gate)")
    parser.add_argument("--werror", action="store_true",
                        help="exit non-zero on warnings as well as errors")
    args = parser.parse_args(argv)

    if not args.files and not args.builtins:
        parser.error("give Microcode files or --builtins")

    failed = False
    reports: List[Tuple[str, AnalysisReport]] = []

    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            report = _analyze_source(source, args.entry, args.externs,
                                     path, args.lmem_bytes)
        except MicrocodeError as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            failed = True
            continue
        reports.append((path, report))

    if args.builtins:
        from repro.microcode.programs import BUILTIN_PROGRAMS
        for name, spec in BUILTIN_PROGRAMS.items():
            try:
                report = _analyze_source(
                    spec.source, spec.entry, spec.extern_labels,
                    f"<builtin:{name}>", args.lmem_bytes,
                )
            except MicrocodeError as exc:
                print(f"error: builtin {name}: {exc}", file=sys.stderr)
                failed = True
                continue
            reports.append((f"builtin:{name}", report))

    # Deterministic output: reports stay in argument order (then builtin
    # definition order); within a report, diagnostics sort by span and
    # code, so two runs over the same corpus are byte-identical.
    for path, report in reports:
        report.diagnostics.sort(key=_diagnostic_sort_key)
        print(f"== {path}")
        print(report.render())
        print()
        if report.errors or (args.werror and report.findings):
            failed = True

    return 1 if failed else 0


def _diagnostic_sort_key(diagnostic: Diagnostic) -> Tuple[int, int, str]:
    span = diagnostic.span
    line = span.line if span else 0
    column = span.column if span else 0
    return (line, column, diagnostic.code)


if __name__ == "__main__":
    sys.exit(main())
