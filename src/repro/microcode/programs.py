"""Shipped Microcode programs.

:data:`FILTER_PROGRAM_SOURCE` is the §3.2 filtering application: forward
all IP packets with no optional headers, drop all non-IP packets and IP
packets with options, counting each dropped class in its own Packet/Byte
Counter (Figure 6 layout: non-IP counter at DROP_CNT_BASE, IP-options
counter at DROP_CNT_BASE + 2, addresses in 8-byte words).

The ``reg``/``ptr`` declarations are this reproduction's dialect for what
the paper's surrounding codebase provides implicitly (the intermediate
register ``ir0`` and the pre-parsed ``ether_ptr``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Tuple

from repro.microcode.compiler import CompiledProgram, TrioCompiler
from repro.microcode.interp import MicrocodeExecutor

__all__ = [
    "BUILTIN_PROGRAMS",
    "BuiltinProgram",
    "FILTER_PROGRAM_SOURCE",
    "NF_FIREWALL_PARSE_SOURCE",
    "NF_TELEMETRY_PARSE_SOURCE",
    "TRIO_ML_PARSE_SOURCE",
    "build_filter_executor",
    "compile_filter_program",
    "compile_trio_ml_parse_program",
]

FILTER_PROGRAM_SOURCE = """
// Packet header formats (format similar to P4, Section 3.2).
struct ether_t {
    dmac  : 48;
    smac  : 48;
    etype : 16;
};

struct ipv4_t {
    ver      : 4;
    ihl      : 4;
    dscp     : 8;
    length   : 16;
    ident    : 16;
    flags    : 3;
    frag     : 13;
    ttl      : 8;
    proto    : 8;
    checksum : 16;
    src      : 32;
    dst      : 32;
};

// Counter bank base (address in 8-byte words; each Packet/Byte Counter
// is 16 bytes = 2 words, Figure 6).
const DROP_CNT_BASE = 0;

// Intermediate register distinguishing the dropped-packet class.
reg ir0;

// The Ethernet header sits at the start of the packet head in LMEM.
ptr ether_ptr = ether_t @ 0;

process_ether:
begin
    ir0 = 0;
    if (ether_ptr->etype == 0x0800) {
        goto process_ip;
    }
    goto count_dropped;
end

process_ip:
begin
    const ipv4_t *ipv4_addr = ether_ptr + sizeof(ether_t);
    ir0 = 1;
    if (ipv4_addr->ver == 4 && ipv4_addr->ihl == 5) {
        goto forward_packet;
    }
    goto count_dropped;
end

count_dropped:
begin
    const : addr = DROP_CNT_BASE + ir0 * 2;
    CounterIncPhys(addr, r_work.pkt_len);
    goto drop_packet;
end
"""


TRIO_ML_PARSE_SOURCE = """
// Microcode port of Trio-ML's packet classification and header parse
// (the front of the Figure 10 workflow): decide whether an incoming
// packet is an aggregation packet for a configured job, and extract the
// fields the aggregation code needs into intermediate registers.

struct ether_t {
    dmac  : 48;
    smac  : 48;
    etype : 16;
};

struct ipv4_t {
    ver      : 4;
    ihl      : 4;
    dscp     : 8;
    length   : 16;
    ident    : 16;
    flags    : 3;
    frag     : 13;
    ttl      : 8;
    proto    : 8;
    checksum : 16;
    src      : 32;
    dst      : 32;
};

struct udp_t {
    sport  : 16;
    dport  : 16;
    length : 16;
    csum   : 16;
};

// Figure 8, verbatim.
struct trio_ml_hdr_t {
    job_id   : 8;
    block_id : 32;
    age_op   : 4;
    final    : 1;
    degraded : 1;
             : 2;
    src_id   : 8;
    src_cnt  : 8;
    gen_id   : 16;
             : 4;
    grad_cnt : 12;
};

const TRIO_ML_PORT = 12000;
const PROTO_UDP = 17;
const ETYPE_IP = 0x0800;

// Extracted fields, handed to the aggregation code.
reg r_job_id;
reg r_block_id;
reg r_src_id;
reg r_grad_cnt;
reg r_gen_id;

ptr ether_ptr = ether_t @ 0;
ptr ipv4_ptr = ipv4_t @ 14;
ptr udp_ptr = udp_t @ 34;
ptr ml_ptr = trio_ml_hdr_t @ 42;

classify_ether:
begin
    if (ether_ptr->etype == ETYPE_IP) {
        goto classify_ip;
    }
    goto forward_packet;
end

classify_ip:
begin
    if (ipv4_ptr->ver == 4 && ipv4_ptr->proto == PROTO_UDP) {
        goto classify_udp;
    }
    goto forward_packet;
end

classify_udp:
begin
    if (udp_ptr->dport == TRIO_ML_PORT) {
        goto parse_ml_ids;
    }
    goto forward_packet;
end

parse_ml_ids:
begin
    r_job_id = ml_ptr->job_id;
    r_block_id = ml_ptr->block_id;
    goto parse_ml_meta;
end

parse_ml_meta:
begin
    r_src_id = ml_ptr->src_id;
    r_gen_id = ml_ptr->gen_id;
    goto parse_ml_cnt;
end

parse_ml_cnt:
begin
    r_grad_cnt = ml_ptr->grad_cnt;
    goto aggregate;
end
"""


NF_FIREWALL_PARSE_SOURCE = """
// Parse front-end of the firewall NF (repro.nf.firewall): classify the
// frame and extract the per-source key the policing body hashes on.
// The policing/blocklist body itself is the `police_source` extern.

struct ether_t {
    dmac  : 48;
    smac  : 48;
    etype : 16;
};

struct ipv4_t {
    ver      : 4;
    ihl      : 4;
    dscp     : 8;
    length   : 16;
    ident    : 16;
    flags    : 3;
    frag     : 13;
    ttl      : 8;
    proto    : 8;
    checksum : 16;
    src      : 32;
    dst      : 32;
};

const ETYPE_IP = 0x0800;
const PROTO_UDP = 17;

// The per-source state key (repro.net.headers.source_key).
reg r_src_ip;

ptr ether_ptr = ether_t @ 0;
ptr ipv4_ptr = ipv4_t @ 14;

classify_ether:
begin
    if (ether_ptr->etype == ETYPE_IP) {
        goto classify_ip;
    }
    goto forward_packet;
end

classify_ip:
begin
    if (ipv4_ptr->ver == 4 && ipv4_ptr->proto == PROTO_UDP) {
        goto extract_source;
    }
    goto forward_packet;
end

extract_source:
begin
    r_src_ip = ipv4_ptr->src;
    goto police_source;
end
"""


NF_TELEMETRY_PARSE_SOURCE = """
// Parse front-end of the telemetry NF (repro.nf.telemetry): classify
// the frame and extract the canonical flow key (src, dst, sport, dport
// — repro.net.headers.flow_key).  The per-flow accounting body is the
// `account_flow` extern.

struct ether_t {
    dmac  : 48;
    smac  : 48;
    etype : 16;
};

struct ipv4_t {
    ver      : 4;
    ihl      : 4;
    dscp     : 8;
    length   : 16;
    ident    : 16;
    flags    : 3;
    frag     : 13;
    ttl      : 8;
    proto    : 8;
    checksum : 16;
    src      : 32;
    dst      : 32;
};

struct udp_t {
    sport  : 16;
    dport  : 16;
    length : 16;
    csum   : 16;
};

const ETYPE_IP = 0x0800;
const PROTO_UDP = 17;

// The four flow-key fields, handed to the accounting code.
reg r_src_ip;
reg r_dst_ip;
reg r_sport;
reg r_dport;

ptr ether_ptr = ether_t @ 0;
ptr ipv4_ptr = ipv4_t @ 14;
ptr udp_ptr = udp_t @ 34;

classify_ether:
begin
    if (ether_ptr->etype == ETYPE_IP) {
        goto classify_ip;
    }
    goto forward_packet;
end

classify_ip:
begin
    if (ipv4_ptr->ver == 4 && ipv4_ptr->proto == PROTO_UDP) {
        goto extract_addrs;
    }
    goto forward_packet;
end

extract_addrs:
begin
    r_src_ip = ipv4_ptr->src;
    r_dst_ip = ipv4_ptr->dst;
    goto extract_ports;
end

extract_ports:
begin
    r_sport = udp_ptr->sport;
    r_dport = udp_ptr->dport;
    goto account_flow;
end
"""


@dataclass(frozen=True)
class BuiltinProgram:
    """Source + binding of one shipped program, for tooling to enumerate."""

    name: str
    source: str
    entry: str
    extern_labels: Tuple[str, ...]

    def compile(self, analyze: str = "off") -> CompiledProgram:
        compiler = TrioCompiler(extern_labels=self.extern_labels,
                                analyze=analyze)
        return compiler.compile(self.source, entry=self.entry)


#: Every shipped program, keyed by name.  The static-analysis CI gate
#: (``python -m repro.microcode.analysis --builtins``) and the clean-
#: program tests iterate this registry, so new programs added here are
#: automatically held to the same bar.
BUILTIN_PROGRAMS: Dict[str, BuiltinProgram] = {
    "filter": BuiltinProgram(
        name="filter",
        source=FILTER_PROGRAM_SOURCE,
        entry="process_ether",
        extern_labels=("forward_packet", "drop_packet"),
    ),
    "trio_ml_parse": BuiltinProgram(
        name="trio_ml_parse",
        source=TRIO_ML_PARSE_SOURCE,
        entry="classify_ether",
        extern_labels=("forward_packet", "aggregate"),
    ),
    "nf_firewall_parse": BuiltinProgram(
        name="nf_firewall_parse",
        source=NF_FIREWALL_PARSE_SOURCE,
        entry="classify_ether",
        extern_labels=("forward_packet", "police_source"),
    ),
    "nf_telemetry_parse": BuiltinProgram(
        name="nf_telemetry_parse",
        source=NF_TELEMETRY_PARSE_SOURCE,
        entry="classify_ether",
        extern_labels=("forward_packet", "account_flow"),
    ),
}


def compile_trio_ml_parse_program() -> CompiledProgram:
    """Compile the Trio-ML classification/parse front end.

    ``forward_packet`` (non-aggregation traffic continues on the normal
    path) and ``aggregate`` (the ~60-instruction aggregation body of
    Figure 10) are extern labels supplied by the surrounding codebase.
    """
    return BUILTIN_PROGRAMS["trio_ml_parse"].compile()


def compile_filter_program() -> CompiledProgram:
    """Compile the §3.2 filtering application.

    ``forward_packet`` and ``drop_packet`` are extern labels provided by
    the existing codebase ("code to forward the packet based on the
    destination address" / "code to drop the packet").
    """
    return BUILTIN_PROGRAMS["filter"].compile()


def build_filter_executor(counter_base_addr: int = 0) -> MicrocodeExecutor:
    """An executor for the filter program with standard terminal handlers.

    The handlers model the multi-instruction forward/drop code paths the
    paper elides: a few instructions of route lookup or cleanup, then the
    packet fate is set on the packet context.
    """
    program = compile_filter_program()

    def forward_packet(tctx: Any, pctx: Any) -> Iterator[Any]:
        yield from tctx.execute(4)  # route lookup + rewrite, ballpark
        pctx.forward()

    def drop_packet(tctx: Any, pctx: Any) -> Iterator[Any]:
        yield from tctx.execute(1)
        pctx.drop()

    executor = MicrocodeExecutor(
        program,
        terminals={
            "forward_packet": forward_packet,
            "drop_packet": drop_packet,
        },
    )
    executor.counter_base_addr = counter_base_addr
    return executor
