"""Tokenizer for the Microcode dialect.

Recognises C-style identifiers, integer literals (decimal and ``0x`` hex),
the operators used by Microcode expressions, punctuation, and ``//`` and
``/* ... */`` comments.  Every token carries its source position for error
reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.microcode.errors import LexError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "struct",
        "union",
        "const",
        "if",
        "else",
        "goto",
        "begin",
        "end",
        "sizeof",
        "exit",
        "reg",
        "ptr",
        "call",
        "return",
        "switch",
        "case",
        "default",
        "bool",
        "label",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "+=", "-=",
    "+", "-", "*", "/", "%", "=", "<", ">", "&", "|", "^", "~", "!",
    "(", ")", "{", "}", "[", "]", ";", ":", ",", ".", "@", "?",
]


@dataclass(frozen=True)
class Token:
    """One lexical token: kind is 'ident', 'keyword', 'int', 'op', or 'eof'."""

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`LexError` on malformed input."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, column
        for __ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, column
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if ch.isdigit():
            start = i
            start_line, start_col = line, column
            if source.startswith("0x", i) or source.startswith("0X", i):
                advance(2)
                while i < n and (source[i].isdigit() or source[i] in "abcdefABCDEF"):
                    advance(1)
                text = source[start:i]
                if len(text) == 2:
                    raise LexError("malformed hex literal", start_line, start_col)
            else:
                while i < n and source[i].isdigit():
                    advance(1)
                text = source[start:i]
            if i < n and (source[i].isalpha() or source[i] == "_"):
                raise LexError(
                    f"malformed number {source[start:i + 1]!r}",
                    start_line, start_col,
                )
            tokens.append(Token("int", text, start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_line, start_col = line, column
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, column))
                advance(len(op))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, column)

    tokens.append(Token("eof", "", line, column))
    return tokens
