"""AST node definitions for the Microcode dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "Assign",
    "Binary",
    "CallStmt",
    "CallSub",
    "ConstDef",
    "ExitStmt",
    "Goto",
    "If",
    "InstructionDef",
    "IntLit",
    "LocalConst",
    "Member",
    "Name",
    "Program",
    "PtrDef",
    "RegDef",
    "ReturnStmt",
    "SizeOf",
    "StructDef",
    "Switch",
    "SwitchCase",
    "Unary",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class IntLit:
    value: int
    line: int = 0


@dataclass
class Name:
    ident: str
    line: int = 0


@dataclass
class Member:
    """``base->field`` (arrow=True) or ``base.field`` (arrow=False)."""

    base: object
    field_name: str
    arrow: bool
    line: int = 0


@dataclass
class Binary:
    op: str
    left: object
    right: object
    line: int = 0


@dataclass
class Unary:
    op: str
    operand: object
    line: int = 0


@dataclass
class SizeOf:
    type_name: str
    line: int = 0


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Assign:
    target: object  # Name or Member
    expr: object
    line: int = 0


@dataclass
class LocalConst:
    """``const type *name = expr;`` or ``const : name = expr;``"""

    name: str
    type_name: Optional[str]  # struct name if this is a typed pointer
    is_pointer: bool
    expr: object
    line: int = 0


@dataclass
class If:
    cond: object
    then_body: List[object]
    else_body: List[object] = field(default_factory=list)
    line: int = 0


@dataclass
class Goto:
    label: str
    line: int = 0


@dataclass
class ExitStmt:
    line: int = 0


@dataclass
class CallStmt:
    """Intrinsic XTXN invocation, e.g. ``CounterIncPhys(addr, len);``"""

    name: str
    args: List[object]
    line: int = 0


@dataclass
class CallSub:
    """``call label;`` — subroutine call (nested up to 8 levels, §2.2)."""

    label: str
    line: int = 0


@dataclass
class ReturnStmt:
    """``return;`` — return to the statement after the ``call``."""

    line: int = 0


@dataclass
class SwitchCase:
    """One ``case N, M:`` arm (or the ``default:`` arm when values is None)."""

    values: Optional[List[object]]
    body: List[object] = field(default_factory=list)
    line: int = 0


@dataclass
class Switch:
    """``switch (expr) { case …: … default: … }`` — multi-way branch,
    matching Trio's single-instruction multi-way sequencing (§2.2)."""

    selector: object
    cases: List[SwitchCase] = field(default_factory=list)
    line: int = 0


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class StructDef:
    name: str
    fields: List[Tuple[Optional[str], int]]
    line: int = 0


@dataclass
class ConstDef:
    """Top-level ``const NAME = expr;`` (virtual storage class)."""

    name: str
    expr: object
    line: int = 0


@dataclass
class RegDef:
    """``reg name;`` — an intermediate register (memory storage class)."""

    name: str
    line: int = 0


@dataclass
class PtrDef:
    """``ptr name = struct_name @ offset;`` — a header pointer into the
    packet head, pre-bound before the program starts."""

    name: str
    struct_name: str
    offset_expr: object
    line: int = 0


@dataclass
class InstructionDef:
    """One explicitly delineated instruction: ``name: begin … end``."""

    name: str
    body: List[object]
    line: int = 0


@dataclass
class Program:
    structs: List[StructDef] = field(default_factory=list)
    consts: List[ConstDef] = field(default_factory=list)
    regs: List[RegDef] = field(default_factory=list)
    ptrs: List[PtrDef] = field(default_factory=list)
    instructions: List[InstructionDef] = field(default_factory=list)
