"""Shared-memory intrinsic specifications.

The Microcode dialect reaches shared data-plane state (the Shared Memory
System of §2.3) only through *intrinsic* statement calls — there are no
load/store expressions.  This module is the single source of truth for
what each intrinsic does to shared memory, consumed by three layers:

* the compiler (:mod:`repro.microcode.compiler`) — arity/out-register
  validation and operand-budget accounting (a ``DmemLoad`` destination is
  a register *write*, not a read);
* the static analyzer (:mod:`repro.microcode.analysis`) — the MC4xx
  shared-state race pass classifies accesses by :attr:`IntrinsicSpec.access`
  and address space, and the def-use pass treats out-registers as
  definitions;
* the interpreter (:mod:`repro.microcode.interp`) — issues the matching
  XTXN and resolves the out-register operand by name.

Access classes mirror the hardware contract (§2.3): ``read``/``write``
are plain XTXNs served in FCFS order but *not* atomic with respect to
each other across threads, while ``rmw`` operations are delegated to the
RMW engine owning the address and therefore serialise — the only safe way
to mutate state that hundreds of PPE threads share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["IntrinsicSpec", "SHARED_INTRINSICS"]


@dataclass(frozen=True)
class IntrinsicSpec:
    """Static description of one shared-memory intrinsic.

    ``access`` is ``"read"``, ``"write"``, or ``"rmw"``; ``addr_arg`` is
    the index of the address operand and ``addr_scale`` the bytes per
    address unit (``CounterIncPhys`` addresses are in 8-byte words,
    Figure 6).  ``out_reg`` is the index of a register-name operand the
    intrinsic *writes* (``None`` when every operand is read).
    ``value_args`` are the operand indices carrying data into shared
    memory — the taint sinks of the MC401 lost-update check.
    """

    name: str
    arity: int
    access: str                     # "read" | "write" | "rmw"
    addr_arg: int
    size_bytes: int
    space: str                      # address space: "dmem" | "counter"
    addr_scale: int = 1
    out_reg: Optional[int] = None
    value_args: Tuple[int, ...] = ()

    @property
    def atomic(self) -> bool:
        """True when the op serialises at an RMW engine (§2.3)."""
        return self.access == "rmw"


#: Every shared-memory intrinsic the toolchain knows, keyed by call name.
#: Executors may register additional custom intrinsics at runtime; those
#: are invisible to the budget/race passes (they model opaque XTXNs).
SHARED_INTRINSICS: Dict[str, IntrinsicSpec] = {
    spec.name: spec
    for spec in (
        # DmemLoad(r_dst, addr): plain 4-byte read into a register.
        IntrinsicSpec(
            name="DmemLoad", arity=2, access="read", addr_arg=1,
            size_bytes=4, space="dmem", out_reg=0,
        ),
        # DmemStore(addr, value): plain 4-byte write.  NOT atomic: a
        # concurrent RMW or store to the same word can be lost.
        IntrinsicSpec(
            name="DmemStore", arity=2, access="write", addr_arg=0,
            size_bytes=4, space="dmem", value_args=(1,),
        ),
        # DmemAdd32(addr, delta): 32-bit add delegated to the owning RMW
        # engine — the §2.3 answer to shared counters.
        IntrinsicSpec(
            name="DmemAdd32", arity=2, access="rmw", addr_arg=0,
            size_bytes=4, space="dmem", value_args=(1,),
        ),
        # DmemSwap(addr, value): atomic fetch-and-swap; the RMW-correct
        # way to publish a whole word another thread may read.
        IntrinsicSpec(
            name="DmemSwap", arity=2, access="rmw", addr_arg=0,
            size_bytes=4, space="dmem", value_args=(1,),
        ),
        # CounterIncPhys(addr_words, pkt_len): 16-byte Packet/Byte
        # Counter increment, address in 8-byte words (§3.2, Figure 6).
        IntrinsicSpec(
            name="CounterIncPhys", arity=2, access="rmw", addr_arg=0,
            size_bytes=16, space="counter", addr_scale=8,
            value_args=(1,),
        ),
    )
}
