"""Recursive-descent parser for the Microcode dialect.

Grammar (informal)::

    program      := (struct_def | const_def | reg_def | ptr_def
                     | instruction)*
    struct_def   := 'struct' IDENT '{' field* '}' ';'
    field        := [IDENT] ':' INT ';'
    const_def    := 'const' IDENT '=' expr ';'
    reg_def      := 'reg' IDENT ';'
    ptr_def      := 'ptr' IDENT '=' IDENT '@' expr ';'
    instruction  := IDENT ':' 'begin' stmt* 'end'
    stmt         := assign | local_const | if | goto | exit | call
    local_const  := 'const' (IDENT '*' | ':') IDENT '=' expr ';'
    if           := 'if' '(' expr ')' block ['else' block]
    block        := '{' stmt* '}' | stmt
    goto         := 'goto' IDENT ';'
    exit         := 'exit' ';'
    call         := IDENT '(' [expr (',' expr)*] ')' ';'
    assign       := lvalue '=' expr ';'

Expressions support the C operators Microcode uses, with standard
precedence; ``sizeof(type)`` yields the struct size in bytes; pointer
arithmetic is byte-based.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from typing import Any  # expression nodes are untagged (ast_nodes uses object)

from repro.microcode import ast_nodes as ast
from repro.microcode.errors import ParseError
from repro.microcode.lexer import Token, tokenize

__all__ = ["parse"]

#: Binary operator precedence, low to high.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", ">", "<=", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if not self.at(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {token.text or token.kind!r}",
                token.line, token.column,
            )
        return self.next()

    # -- top level -------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self.at("eof"):
            if self.at("keyword", "struct") or self.at("keyword", "union"):
                program.structs.append(self.parse_struct())
            elif self.at("keyword", "const"):
                program.consts.append(self.parse_top_const())
            elif self.at("keyword", "reg"):
                program.regs.append(self.parse_reg())
            elif self.at("keyword", "ptr"):
                program.ptrs.append(self.parse_ptr())
            elif self.at("ident") and self.peek(1).text == ":":
                program.instructions.append(self.parse_instruction())
            else:
                token = self.peek()
                raise ParseError(
                    f"unexpected {token.text or token.kind!r} at top level",
                    token.line, token.column,
                )
        return program

    def parse_struct(self) -> ast.StructDef:
        keyword = self.next()  # struct / union (unions laid out like structs)
        name = self.expect("ident").text
        self.expect("op", "{")
        fields: List[Tuple[Optional[str], int]] = []
        while not self.at("op", "}"):
            field_name: Optional[str] = None
            if self.at("ident"):
                field_name = self.next().text
            self.expect("op", ":")
            width_token = self.expect("int")
            fields.append((field_name, int(width_token.text, 0)))
            self.expect("op", ";")
        self.expect("op", "}")
        self.expect("op", ";")
        return ast.StructDef(name=name, fields=fields, line=keyword.line)

    def parse_top_const(self) -> ast.ConstDef:
        keyword = self.expect("keyword", "const")
        name = self.expect("ident").text
        self.expect("op", "=")
        expr = self.parse_expr()
        self.expect("op", ";")
        return ast.ConstDef(name=name, expr=expr, line=keyword.line)

    def parse_reg(self) -> ast.RegDef:
        keyword = self.expect("keyword", "reg")
        name = self.expect("ident").text
        self.expect("op", ";")
        return ast.RegDef(name=name, line=keyword.line)

    def parse_ptr(self) -> ast.PtrDef:
        keyword = self.expect("keyword", "ptr")
        name = self.expect("ident").text
        self.expect("op", "=")
        struct_name = self.expect("ident").text
        self.expect("op", "@")
        offset = self.parse_expr()
        self.expect("op", ";")
        return ast.PtrDef(
            name=name, struct_name=struct_name, offset_expr=offset,
            line=keyword.line,
        )

    def parse_instruction(self) -> ast.InstructionDef:
        name_token = self.expect("ident")
        self.expect("op", ":")
        self.expect("keyword", "begin")
        body: List[object] = []
        while not self.at("keyword", "end"):
            body.append(self.parse_stmt())
        self.expect("keyword", "end")
        return ast.InstructionDef(
            name=name_token.text, body=body, line=name_token.line
        )

    # -- statements -------------------------------------------------------

    def parse_stmt(self) -> Any:
        if self.at("keyword", "const"):
            return self.parse_local_const()
        if self.at("keyword", "if"):
            return self.parse_if()
        if self.at("keyword", "goto"):
            keyword = self.next()
            label = self.expect("ident").text
            self.expect("op", ";")
            return ast.Goto(label=label, line=keyword.line)
        if self.at("keyword", "exit"):
            keyword = self.next()
            self.expect("op", ";")
            return ast.ExitStmt(line=keyword.line)
        if self.at("keyword", "call"):
            keyword = self.next()
            label = self.expect("ident").text
            self.expect("op", ";")
            return ast.CallSub(label=label, line=keyword.line)
        if self.at("keyword", "return"):
            keyword = self.next()
            self.expect("op", ";")
            return ast.ReturnStmt(line=keyword.line)
        if self.at("keyword", "switch"):
            return self.parse_switch()
        # Call statement: IDENT '(' ... ')' ';'
        if self.at("ident") and self.peek(1).text == "(":
            name_token = self.next()
            self.expect("op", "(")
            args: List[object] = []
            if not self.at("op", ")"):
                args.append(self.parse_expr())
                while self.at("op", ","):
                    self.next()
                    args.append(self.parse_expr())
            self.expect("op", ")")
            self.expect("op", ";")
            return ast.CallStmt(
                name=name_token.text, args=args, line=name_token.line
            )
        # Otherwise: assignment.
        target = self.parse_postfix()
        equals = self.expect("op", "=")
        expr = self.parse_expr()
        self.expect("op", ";")
        if not isinstance(target, (ast.Name, ast.Member)):
            raise ParseError(
                "assignment target must be a register, variable, or field",
                equals.line, equals.column,
            )
        return ast.Assign(target=target, expr=expr, line=equals.line)

    def parse_local_const(self) -> ast.LocalConst:
        keyword = self.expect("keyword", "const")
        type_name: Optional[str] = None
        is_pointer = False
        if self.at("op", ":"):
            self.next()
        else:
            type_name = self.expect("ident").text
            self.expect("op", "*")
            is_pointer = True
        name = self.expect("ident").text
        self.expect("op", "=")
        expr = self.parse_expr()
        self.expect("op", ";")
        return ast.LocalConst(
            name=name, type_name=type_name, is_pointer=is_pointer,
            expr=expr, line=keyword.line,
        )

    def parse_if(self) -> ast.If:
        keyword = self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then_body = self.parse_block()
        else_body: List[object] = []
        if self.at("keyword", "else"):
            self.next()
            else_body = self.parse_block()
        return ast.If(
            cond=cond, then_body=then_body, else_body=else_body,
            line=keyword.line,
        )

    def parse_switch(self) -> ast.Switch:
        keyword = self.expect("keyword", "switch")
        self.expect("op", "(")
        selector = self.parse_expr()
        self.expect("op", ")")
        self.expect("op", "{")
        cases: List[ast.SwitchCase] = []
        while not self.at("op", "}"):
            if self.at("keyword", "case"):
                case_token = self.next()
                values = [self.parse_expr()]
                while self.at("op", ","):
                    self.next()
                    values.append(self.parse_expr())
                self.expect("op", ":")
                body = self.parse_case_body()
                cases.append(ast.SwitchCase(values=values, body=body,
                                            line=case_token.line))
            elif self.at("keyword", "default"):
                default_token = self.next()
                self.expect("op", ":")
                body = self.parse_case_body()
                cases.append(ast.SwitchCase(values=None, body=body,
                                            line=default_token.line))
            else:
                token = self.peek()
                raise ParseError(
                    f"expected 'case' or 'default', found "
                    f"{token.text or token.kind!r}",
                    token.line, token.column,
                )
        self.expect("op", "}")
        return ast.Switch(selector=selector, cases=cases, line=keyword.line)

    def parse_case_body(self) -> List[object]:
        """Statements up to the next case/default/closing brace."""
        body: List[object] = []
        while not (self.at("keyword", "case") or self.at("keyword", "default")
                   or self.at("op", "}")):
            body.append(self.parse_stmt())
        return body

    def parse_block(self) -> List[object]:
        if self.at("op", "{"):
            self.next()
            body: List[object] = []
            while not self.at("op", "}"):
                body.append(self.parse_stmt())
            self.expect("op", "}")
            return body
        return [self.parse_stmt()]

    # -- expressions -------------------------------------------------------

    def parse_expr(self, level: int = 0) -> Any:
        if level >= len(_PRECEDENCE):
            return self.parse_unary()
        left = self.parse_expr(level + 1)
        ops = _PRECEDENCE[level]
        while self.peek().kind == "op" and self.peek().text in ops:
            op_token = self.next()
            right = self.parse_expr(level + 1)
            left = ast.Binary(
                op=op_token.text, left=left, right=right, line=op_token.line
            )
        return left

    def parse_unary(self) -> Any:
        if self.peek().kind == "op" and self.peek().text in ("-", "~", "!"):
            op_token = self.next()
            operand = self.parse_unary()
            return ast.Unary(op=op_token.text, operand=operand,
                             line=op_token.line)
        return self.parse_postfix()

    def parse_postfix(self) -> Any:
        expr = self.parse_primary()
        while True:
            if self.at("op", "->"):
                token = self.next()
                field_name = self.expect("ident").text
                expr = ast.Member(base=expr, field_name=field_name,
                                  arrow=True, line=token.line)
            elif self.at("op", "."):
                token = self.next()
                field_name = self.expect("ident").text
                expr = ast.Member(base=expr, field_name=field_name,
                                  arrow=False, line=token.line)
            else:
                return expr

    def parse_primary(self) -> Any:
        token = self.peek()
        if token.kind == "int":
            self.next()
            return ast.IntLit(value=int(token.text, 0), line=token.line)
        if token.kind == "keyword" and token.text == "sizeof":
            self.next()
            self.expect("op", "(")
            type_name = self.expect("ident").text
            self.expect("op", ")")
            return ast.SizeOf(type_name=type_name, line=token.line)
        if token.kind == "ident":
            self.next()
            return ast.Name(ident=token.text, line=token.line)
        if token.kind == "op" and token.text == "(":
            self.next()
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise ParseError(
            f"unexpected {token.text or token.kind!r} in expression",
            token.line, token.column,
        )


def parse(source: str) -> ast.Program:
    """Parse Microcode source text into an AST."""
    return _Parser(tokenize(source)).parse_program()
