"""The Trio Compiler (TC) (§3.1).

TC has characteristics of both compilers and assemblers: it translates
C-style expressions to hardware operations, but the programmer delineates
instruction boundaries (``name: begin … end``), and code that does not fit
the resources of a single instruction **fails compilation** — TC never
splits one instruction into several.  TC also has no separate linking
phase: it takes the complete source and produces one binary image.

Modelled per-instruction resource budget (§3.1): a single Microcode
instruction can perform **four register or two local-memory reads**, and
**two register or two local-memory writes**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.microcode import ast_nodes as ast
from repro.microcode.errors import AnalysisError, CompileError
from repro.microcode.intrinsics import SHARED_INTRINSICS
from repro.microcode.layout import StructLayout
from repro.microcode.parser import parse

__all__ = [
    "CompiledProgram",
    "InstructionBudget",
    "TrioCompiler",
    "apply_binary",
]

#: Builtin bus variables always available to programs (r_work.pkt_len etc.)
BUILTIN_NAMESPACES = frozenset({"r_work"})


@dataclass
class InstructionBudget:
    """Operand traffic of one instruction, checked against the hardware."""

    reg_reads: int = 0
    mem_reads: int = 0
    reg_writes: int = 0
    mem_writes: int = 0

    MAX_REG_READS = 4
    MAX_MEM_READS = 2
    MAX_REG_WRITES = 2
    MAX_MEM_WRITES = 2

    def check(self, instruction_name: str) -> None:
        problems = []
        if self.reg_reads > self.MAX_REG_READS:
            problems.append(
                f"{self.reg_reads} register reads (max {self.MAX_REG_READS})"
            )
        if self.mem_reads > self.MAX_MEM_READS:
            problems.append(
                f"{self.mem_reads} local-memory reads (max {self.MAX_MEM_READS})"
            )
        if self.reg_writes > self.MAX_REG_WRITES:
            problems.append(
                f"{self.reg_writes} register writes (max {self.MAX_REG_WRITES})"
            )
        if self.mem_writes > self.MAX_MEM_WRITES:
            problems.append(
                f"{self.mem_writes} local-memory writes (max {self.MAX_MEM_WRITES})"
            )
        if problems:
            raise CompileError(
                f"instruction {instruction_name!r} does not fit: "
                + "; ".join(problems)
                + " — TC cannot implement the requested actions across "
                "multiple instructions (§3.1)"
            )


@dataclass
class CompiledProgram:
    """TC output: the binary image plus the symbols the driver needs."""

    structs: Dict[str, StructLayout]
    consts: Dict[str, int]
    reg_map: Dict[str, int]
    ptr_map: Dict[str, Tuple[str, int]]  # name -> (struct name, byte offset)
    instructions: Dict[str, ast.InstructionDef]
    entry: str
    extern_labels: FrozenSet[str]
    budgets: Dict[str, InstructionBudget] = field(default_factory=dict)
    #: The original source text (for diagnostics and disassembly).
    source: Optional[str] = None
    #: Static-analysis report, populated when TC runs with analyze!="off".
    analysis: Optional[object] = None

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)


class TrioCompiler:
    """Compiles complete Microcode source into a :class:`CompiledProgram`.

    ``extern_labels`` names branch targets resolved by the surrounding
    codebase (the existing Junos Microcode the new application is added
    to, Figure 4) — e.g. ``forward_packet`` and ``drop_packet``.
    """

    #: Valid values for the ``analyze`` compile mode.
    ANALYZE_MODES = ("off", "warn", "error")

    def __init__(self, extern_labels: Iterable[str] = (),
                 analyze: str = "off",
                 lmem_bytes: Optional[int] = None):
        """``analyze`` wires the static analyzer into compilation:

        * ``"off"`` — budget checks only (the seed behaviour).
        * ``"warn"`` — run :func:`repro.microcode.analysis.analyze_program`
          after compilation, attach the report to
          :attr:`CompiledProgram.analysis`, and print findings to stderr.
        * ``"error"`` — same, but reject the program with
          :class:`~repro.microcode.errors.AnalysisError` when the
          analyzer reports any error (non-termination, use-before-def,
          out-of-layout pointers) — the program never reaches the
          simulator.

        ``lmem_bytes`` overrides the thread-local memory size used by
        the pointer-safety pass.
        """
        if analyze not in self.ANALYZE_MODES:
            raise ValueError(
                f"analyze must be one of {self.ANALYZE_MODES}, "
                f"got {analyze!r}"
            )
        self.extern_labels = frozenset(extern_labels)
        self.analyze = analyze
        self.lmem_bytes = lmem_bytes

    def compile(self, source: str, entry: Optional[str] = None
                ) -> CompiledProgram:
        """Compile ``source``; ``entry`` defaults to the first instruction."""
        program = parse(source)
        structs = self._layout_structs(program.structs)
        consts = self._eval_consts(program.consts, structs)
        reg_map = self._assign_registers(program.regs)
        ptr_map = self._bind_pointers(program.ptrs, structs, consts)
        instructions: Dict[str, ast.InstructionDef] = {}
        for instr in program.instructions:
            if instr.name in instructions:
                raise CompileError(f"duplicate instruction {instr.name!r}")
            instructions[instr.name] = instr
        if not instructions:
            raise CompileError("program defines no instructions")
        if entry is None:
            entry = program.instructions[0].name
        elif entry not in instructions:
            raise CompileError(f"entry instruction {entry!r} is not defined")

        known_labels = set(instructions) | self.extern_labels
        budgets: Dict[str, InstructionBudget] = {}
        for instr in program.instructions:
            self._check_labels(instr, known_labels)
            budget = InstructionBudget()
            local_consts: Set[str] = set()
            for stmt in instr.body:
                self._account_stmt(
                    stmt, budget, reg_map, ptr_map, consts, structs,
                    local_consts, instr.name,
                )
            budget.check(instr.name)
            budgets[instr.name] = budget

        compiled = CompiledProgram(
            structs=structs,
            consts=consts,
            reg_map=reg_map,
            ptr_map=ptr_map,
            instructions=instructions,
            entry=entry,
            extern_labels=self.extern_labels,
            budgets=budgets,
            source=source,
        )
        if self.analyze != "off":
            self._run_analysis(compiled)
        return compiled

    def _run_analysis(self, compiled: CompiledProgram) -> None:
        # Imported here: analysis depends on this module for the program
        # representation, so the top level cannot import it back.
        from repro.microcode import analysis as mca

        kwargs = {}
        if self.lmem_bytes is not None:
            kwargs["lmem_bytes"] = self.lmem_bytes
        report = mca.analyze_program(compiled, **kwargs)
        compiled.analysis = report
        if self.analyze == "error" and report.errors:
            raise AnalysisError(
                f"static analysis rejected the program with "
                f"{len(report.errors)} error(s):\n"
                + report.render(),
                report.diagnostics,
            )
        if report.findings:
            import sys
            print(report.render(), file=sys.stderr)

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _layout_structs(self, defs: List[ast.StructDef]
                        ) -> Dict[str, StructLayout]:
        structs: Dict[str, StructLayout] = {}
        for struct in defs:
            if struct.name in structs:
                raise CompileError(f"duplicate struct {struct.name!r}")
            try:
                structs[struct.name] = StructLayout(struct.name, struct.fields)
            except ValueError as exc:
                raise CompileError(str(exc)) from None
        return structs

    def _eval_consts(self, defs: List[ast.ConstDef],
                     structs: Dict[str, StructLayout]) -> Dict[str, int]:
        consts: Dict[str, int] = {}
        for const in defs:
            if const.name in consts:
                raise CompileError(f"duplicate const {const.name!r}")
            consts[const.name] = self._const_eval(const.expr, consts, structs)
        return consts

    def _assign_registers(self, defs: List[ast.RegDef]) -> Dict[str, int]:
        reg_map: Dict[str, int] = {}
        for reg in defs:
            if reg.name in reg_map:
                raise CompileError(f"duplicate reg {reg.name!r}")
            reg_map[reg.name] = len(reg_map)
        return reg_map

    def _bind_pointers(
        self,
        defs: List[ast.PtrDef],
        structs: Dict[str, StructLayout],
        consts: Dict[str, int],
    ) -> Dict[str, Tuple[str, int]]:
        ptr_map: Dict[str, Tuple[str, int]] = {}
        for ptr in defs:
            if ptr.struct_name not in structs:
                raise CompileError(
                    f"ptr {ptr.name!r} references unknown struct "
                    f"{ptr.struct_name!r}"
                )
            offset = self._const_eval(ptr.offset_expr, consts, structs)
            ptr_map[ptr.name] = (ptr.struct_name, offset)
        return ptr_map

    def _const_eval(self, expr: object, consts: Dict[str, int],
                    structs: Dict[str, StructLayout]) -> int:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Name):
            if expr.ident in consts:
                return consts[expr.ident]
            raise CompileError(
                f"line {expr.line}: {expr.ident!r} is not a compile-time "
                "constant"
            )
        if isinstance(expr, ast.SizeOf):
            if expr.type_name not in structs:
                raise CompileError(
                    f"line {expr.line}: sizeof of unknown type "
                    f"{expr.type_name!r}"
                )
            return structs[expr.type_name].size_bytes
        if isinstance(expr, ast.Unary):
            value = self._const_eval(expr.operand, consts, structs)
            return {"-": -value, "~": ~value, "!": int(not value)}[expr.op]
        if isinstance(expr, ast.Binary):
            left = self._const_eval(expr.left, consts, structs)
            right = self._const_eval(expr.right, consts, structs)
            return apply_binary(expr.op, left, right)
        raise CompileError("expression is not a compile-time constant")

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def _check_labels(self, instr: ast.InstructionDef,
                      known: Set[str]) -> None:
        def walk(stmts: List[object]) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.Goto):
                    if stmt.label not in known:
                        raise CompileError(
                            f"line {stmt.line}: goto to undefined label "
                            f"{stmt.label!r} (declare it as an extern if "
                            "the existing codebase provides it)"
                        )
                elif isinstance(stmt, ast.CallSub):
                    if stmt.label not in known:
                        raise CompileError(
                            f"line {stmt.line}: call to undefined "
                            f"subroutine {stmt.label!r}"
                        )
                elif isinstance(stmt, ast.If):
                    walk(stmt.then_body)
                    walk(stmt.else_body)
                elif isinstance(stmt, ast.Switch):
                    for case in stmt.cases:
                        walk(case.body)

        walk(instr.body)

    def _account_stmt(self, stmt: object, budget: InstructionBudget,
                      reg_map: Dict[str, int],
                      ptr_map: Dict[str, Tuple[str, int]],
                      consts: Dict[str, int],
                      structs: Dict[str, StructLayout],
                      local_consts: Set[str], instr_name: str) -> None:
        if isinstance(stmt, ast.Assign):
            self._account_expr(stmt.expr, budget, reg_map, ptr_map,
                               consts, local_consts, instr_name)
            if isinstance(stmt.target, ast.Name):
                if stmt.target.ident in reg_map:
                    budget.reg_writes += 1
                else:
                    raise CompileError(
                        f"line {stmt.line}: assignment to undeclared "
                        f"variable {stmt.target.ident!r}"
                    )
            elif isinstance(stmt.target, ast.Member):
                budget.mem_writes += 1
                self._account_expr(stmt.target.base, budget, reg_map,
                                   ptr_map, consts, local_consts, instr_name)
        elif isinstance(stmt, ast.LocalConst):
            if stmt.is_pointer and stmt.type_name not in structs:
                raise CompileError(
                    f"line {stmt.line}: unknown type {stmt.type_name!r}"
                )
            self._account_expr(stmt.expr, budget, reg_map, ptr_map,
                               consts, local_consts, instr_name)
            local_consts.add(stmt.name)
        elif isinstance(stmt, ast.If):
            # Only one branch executes: the sequencing logic selects it, so
            # the branches share the instruction's ALU slots and the cost
            # is the maximum over the arms, not their sum.
            self._account_expr(stmt.cond, budget, reg_map, ptr_map,
                               consts, local_consts, instr_name)
            self._merge_branch_budgets(
                [stmt.then_body, stmt.else_body], budget, reg_map, ptr_map,
                consts, structs, local_consts, instr_name,
            )
        elif isinstance(stmt, ast.CallStmt):
            spec = SHARED_INTRINSICS.get(stmt.name)
            if spec is not None and len(stmt.args) != spec.arity:
                raise CompileError(
                    f"line {stmt.line}: intrinsic {stmt.name} takes "
                    f"{spec.arity} operand(s), got {len(stmt.args)}"
                )
            for index, arg in enumerate(stmt.args):
                if spec is not None and spec.out_reg == index:
                    # The destination operand is written, not read, and
                    # must be a bare register name (assembler-style).
                    if not (isinstance(arg, ast.Name)
                            and arg.ident in reg_map):
                        raise CompileError(
                            f"line {stmt.line}: {stmt.name} operand "
                            f"{index} must be a declared register "
                            "(the XTXN reply lands there)"
                        )
                    budget.reg_writes += 1
                    continue
                self._account_expr(arg, budget, reg_map, ptr_map, consts,
                                   local_consts, instr_name)
        elif isinstance(stmt, ast.Switch):
            self._account_expr(stmt.selector, budget, reg_map, ptr_map,
                               consts, local_consts, instr_name)
            default_arms = 0
            for case in stmt.cases:
                if case.values is None:
                    default_arms += 1
                else:
                    for value in case.values:
                        # Case labels must be compile-time constants.
                        self._const_eval(value, consts, structs)
            if default_arms > 1:
                raise CompileError(
                    f"line {stmt.line}: switch has {default_arms} default "
                    "arms"
                )
            # Arms are mutually exclusive multi-way branches (§2.2): cost
            # is the maximum over the arms.
            self._merge_branch_budgets(
                [case.body for case in stmt.cases], budget, reg_map,
                ptr_map, consts, structs, local_consts, instr_name,
            )
        elif isinstance(stmt, (ast.Goto, ast.ExitStmt, ast.CallSub,
                               ast.ReturnStmt)):
            pass
        else:
            raise CompileError(f"unsupported statement {type(stmt).__name__}")

    def _merge_branch_budgets(self, branches: List[List[object]],
                              budget: InstructionBudget,
                              reg_map: Dict[str, int],
                              ptr_map: Dict[str, Tuple[str, int]],
                              consts: Dict[str, int],
                              structs: Dict[str, StructLayout],
                              local_consts: Set[str],
                              instr_name: str) -> None:
        """Account mutually exclusive branches at their elementwise max."""
        peaks = InstructionBudget()
        for body in branches:
            arm = InstructionBudget()
            arm_locals = set(local_consts)
            for sub in body:
                self._account_stmt(sub, arm, reg_map, ptr_map, consts,
                                   structs, arm_locals, instr_name)
            peaks.reg_reads = max(peaks.reg_reads, arm.reg_reads)
            peaks.mem_reads = max(peaks.mem_reads, arm.mem_reads)
            peaks.reg_writes = max(peaks.reg_writes, arm.reg_writes)
            peaks.mem_writes = max(peaks.mem_writes, arm.mem_writes)
        budget.reg_reads += peaks.reg_reads
        budget.mem_reads += peaks.mem_reads
        budget.reg_writes += peaks.reg_writes
        budget.mem_writes += peaks.mem_writes

    def _account_expr(self, expr: object, budget: InstructionBudget,
                      reg_map: Dict[str, int],
                      ptr_map: Dict[str, Tuple[str, int]],
                      consts: Dict[str, int],
                      local_consts: Set[str], instr_name: str) -> None:
        if isinstance(expr, ast.IntLit) or isinstance(expr, ast.SizeOf):
            return
        if isinstance(expr, ast.Name):
            ident = expr.ident
            if ident in reg_map:
                budget.reg_reads += 1
            elif (ident in consts or ident in ptr_map
                  or ident in local_consts
                  or ident in BUILTIN_NAMESPACES):
                return  # bus / virtual storage class: free
            else:
                raise CompileError(
                    f"line {expr.line}: unknown identifier {ident!r} in "
                    f"instruction {instr_name!r}"
                )
            return
        if isinstance(expr, ast.Member):
            base = expr.base
            if (isinstance(base, ast.Name)
                    and base.ident in BUILTIN_NAMESPACES):
                return  # builtin bus variables are free
            if expr.arrow:
                budget.mem_reads += 1
            self._account_expr(base, budget, reg_map, ptr_map, consts,
                               local_consts, instr_name)
            return
        if isinstance(expr, ast.Unary):
            self._account_expr(expr.operand, budget, reg_map, ptr_map,
                               consts, local_consts, instr_name)
            return
        if isinstance(expr, ast.Binary):
            self._account_expr(expr.left, budget, reg_map, ptr_map, consts,
                               local_consts, instr_name)
            self._account_expr(expr.right, budget, reg_map, ptr_map, consts,
                               local_consts, instr_name)
            return
        raise CompileError(f"unsupported expression {type(expr).__name__}")


def apply_binary(op: str, left: int, right: int) -> int:
    """Evaluate one Microcode binary operator over Python ints.

    This is the single source of truth for the dialect's integer
    semantics (C-style comparisons returning 0/1, floor division,
    short-circuit operators already decided by the caller), shared by
    TC's constant folder, the interpreter
    (:mod:`repro.microcode.interp`), and the static analyzer's abstract
    pointer evaluation.  Raises :class:`CompileError` on division or
    modulo by zero and on unknown operators.
    """
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise CompileError("division by zero")
        return left // right
    if op == "%":
        if right == 0:
            raise CompileError("modulo by zero")
        return left % right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == ">":
        return int(left > right)
    if op == "<=":
        return int(left <= right)
    if op == ">=":
        return int(left >= right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    raise CompileError(f"unsupported operator {op!r}")


#: Backwards-compatible alias from before apply_binary was public API.
_apply_binary = apply_binary
