"""Trio's Microcode programming environment (§3).

This package implements a working subset of the C-like Microcode language
and its toolchain:

* :mod:`repro.microcode.lexer` / :mod:`repro.microcode.parser` — front end
  for the dialect the paper's §3.2 example is written in (struct bitfield
  definitions, ``label: begin … end`` instruction blocks, C-style
  expressions, ``goto``, intrinsic XTXN calls).
* :mod:`repro.microcode.layout` — bitfield struct layout (the packet
  header definition format "similar to that of P4").
* :mod:`repro.microcode.compiler` — the Trio Compiler (TC): whole-program
  compilation, symbol resolution, and the per-instruction resource budget
  check (a single instruction can perform four register or two local
  memory reads, and two register or two local memory writes; code that
  does not fit in its instruction fails compilation, §3.1).
* :mod:`repro.microcode.interp` — executes a compiled program on a PPE
  thread, charging one datapath-instruction latency per Microcode
  instruction and issuing real XTXNs for intrinsics like
  ``CounterIncPhys``.
* :mod:`repro.microcode.analysis` — static analysis over compiled
  programs: control-flow graph construction, termination and worst-case
  instruction bounds (the compile-time complement of the interpreter's
  runtime valve), register def-use, pointer/layout safety against
  thread-local memory, and per-path operand-budget accounting.
* :mod:`repro.microcode.programs` — shipped programs, including the §3.2
  packet filtering application.
"""

from repro.microcode.errors import (
    AnalysisError,
    CompileError,
    Diagnostic,
    LexError,
    MicrocodeError,
    MicrocodeRuntimeError,
    ParseError,
    SourceSpan,
)
from repro.microcode.lexer import Token, tokenize
from repro.microcode.layout import StructLayout, read_bits, write_bits
from repro.microcode.compiler import (
    CompiledProgram,
    TrioCompiler,
    apply_binary,
)
from repro.microcode.disasm import disassemble
from repro.microcode.interp import MicrocodeExecutor
from repro.microcode.intrinsics import SHARED_INTRINSICS, IntrinsicSpec
from repro.microcode.programs import BUILTIN_PROGRAMS, FILTER_PROGRAM_SOURCE


def __getattr__(name: str) -> object:
    # Lazy (PEP 562) so `python -m repro.microcode.analysis` does not
    # trip runpy's found-in-sys.modules warning.
    if name in ("AnalysisReport", "analyze_program"):
        from repro.microcode import analysis

        return getattr(analysis, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "BUILTIN_PROGRAMS",
    "CompileError",
    "CompiledProgram",
    "Diagnostic",
    "FILTER_PROGRAM_SOURCE",
    "IntrinsicSpec",
    "LexError",
    "MicrocodeError",
    "MicrocodeExecutor",
    "MicrocodeRuntimeError",
    "ParseError",
    "SHARED_INTRINSICS",
    "SourceSpan",
    "StructLayout",
    "Token",
    "TrioCompiler",
    "analyze_program",
    "apply_binary",
    "disassemble",
    "read_bits",
    "tokenize",
    "write_bits",
]
