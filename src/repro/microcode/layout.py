"""Bitfield struct layout and bit-granular memory access.

Microcode header definitions list fields with bit widths (the format "is
similar to that of P4", §3.2): fields pack most-significant-bit first in
network byte order, and unnamed fields are alignment padding.  ALU
operands in Trio can be bit-fields of arbitrary length and offset (§2.2),
so :func:`read_bits` / :func:`write_bits` operate at single-bit
granularity over any buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["FieldLayout", "StructLayout", "read_bits", "write_bits"]


def read_bits(buf: Sequence[int], bit_offset: int, width: int) -> int:
    """Read ``width`` bits starting ``bit_offset`` bits into ``buf``.

    Bits are numbered MSB-first within each byte (network order).
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    end_bit = bit_offset + width
    if bit_offset < 0 or end_bit > len(buf) * 8:
        raise ValueError(
            f"bit range [{bit_offset}, {end_bit}) outside buffer of "
            f"{len(buf)} bytes"
        )
    first_byte = bit_offset >> 3
    last_byte = (end_bit - 1) >> 3
    window = int.from_bytes(buf[first_byte:last_byte + 1], "big")
    window_bits = (last_byte - first_byte + 1) * 8
    shift = window_bits - (bit_offset - first_byte * 8) - width
    return (window >> shift) & ((1 << width) - 1)


def write_bits(buf: bytearray, bit_offset: int, width: int, value: int) -> None:
    """Write ``width`` bits of ``value`` at ``bit_offset`` (MSB-first)."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    end_bit = bit_offset + width
    if bit_offset < 0 or end_bit > len(buf) * 8:
        raise ValueError(
            f"bit range [{bit_offset}, {end_bit}) outside buffer of "
            f"{len(buf)} bytes"
        )
    value &= (1 << width) - 1
    first_byte = bit_offset >> 3
    last_byte = (end_bit - 1) >> 3
    window = int.from_bytes(buf[first_byte:last_byte + 1], "big")
    window_bits = (last_byte - first_byte + 1) * 8
    shift = window_bits - (bit_offset - first_byte * 8) - width
    mask = ((1 << width) - 1) << shift
    window = (window & ~mask) | (value << shift)
    buf[first_byte:last_byte + 1] = window.to_bytes(window_bits // 8, "big")


@dataclass(frozen=True)
class FieldLayout:
    """One named field: its bit offset from the struct start and width."""

    name: str
    bit_offset: int
    width: int


class StructLayout:
    """Layout of one Microcode struct: ordered bitfields, MSB-first.

    Unnamed fields (padding, written ``: 4;`` in source) consume bits but
    are not addressable.
    """

    def __init__(self, name: str, fields: List[Tuple[Optional[str], int]]):
        """``fields`` is an ordered list of (name_or_None, bit_width)."""
        self.name = name
        self.fields: Dict[str, FieldLayout] = {}
        offset = 0
        for field_name, width in fields:
            if width <= 0:
                raise ValueError(
                    f"struct {name}: field {field_name or '<pad>'} has "
                    f"non-positive width {width}"
                )
            if field_name is not None:
                if field_name in self.fields:
                    raise ValueError(
                        f"struct {name}: duplicate field {field_name!r}"
                    )
                self.fields[field_name] = FieldLayout(field_name, offset, width)
            offset += width
        if offset % 8 != 0:
            raise ValueError(
                f"struct {name}: total width {offset} bits is not "
                "byte-aligned (add padding fields)"
            )
        self.total_bits = offset
        #: Precompiled (shift, mask) per field against one big-endian
        #: integer holding the whole struct — lets pack/unpack run as a
        #: single int conversion instead of per-field window arithmetic.
        self._extract: Dict[str, Tuple[int, int]] = {
            f.name: (offset - f.bit_offset - f.width, (1 << f.width) - 1)
            for f in self.fields.values()
        }

    @property
    def size_bytes(self) -> int:
        """sizeof(struct) in bytes."""
        return self.total_bits // 8

    def field(self, name: str) -> FieldLayout:
        try:
            return self.fields[name]
        except KeyError:
            raise KeyError(
                f"struct {self.name} has no field {name!r} "
                f"(has: {sorted(self.fields)})"
            ) from None

    def read(self, buf: Sequence[int], base_byte: int, field_name: str) -> int:
        """Read field ``field_name`` of an instance at ``base_byte``."""
        layout = self.field(field_name)
        return read_bits(buf, base_byte * 8 + layout.bit_offset, layout.width)

    def write(self, buf: bytearray, base_byte: int, field_name: str,
              value: int) -> None:
        """Write field ``field_name`` of an instance at ``base_byte``."""
        layout = self.field(field_name)
        write_bits(buf, base_byte * 8 + layout.bit_offset, layout.width, value)

    def pack(self, **values: int) -> bytes:
        """Build an instance from field values (padding stays zero)."""
        extract = self._extract
        window = 0
        for name, value in values.items():
            try:
                shift, mask = extract[name]
            except KeyError:
                self.field(name)  # raises the descriptive KeyError
                raise
            window |= (value & mask) << shift
        return window.to_bytes(self.total_bits // 8, "big")

    def unpack(self, data: Sequence[int], base_byte: int = 0) -> Dict[str, int]:
        """Read every named field of an instance at ``base_byte``."""
        size = self.total_bits // 8
        if isinstance(data, (bytes, bytearray, memoryview)):
            chunk = data[base_byte:base_byte + size]
        else:
            chunk = bytes(data[base_byte:base_byte + size])
        if len(chunk) != size:
            raise ValueError(
                f"struct {self.name}: need {size} bytes at offset "
                f"{base_byte}, buffer has {len(chunk)}"
            )
        window = int.from_bytes(chunk, "big")
        return {
            name: (window >> shift) & mask
            for name, (shift, mask) in self._extract.items()
        }

    def __repr__(self) -> str:
        return f"<StructLayout {self.name} {self.size_bytes}B>"
