"""Error types and diagnostics for the Microcode toolchain.

Besides the exception hierarchy, this module owns the *diagnostic*
machinery shared by the static analyzer (:mod:`repro.microcode.analysis`)
and the simulator determinism linter (:mod:`repro.tools.detlint`): a
:class:`SourceSpan` locating a finding in source text, a typed
:class:`Diagnostic` with a stable code, and a rustc-style renderer that
shows the offending source line under the message::

    error[MC201]: instructions form a goto cycle with no exit path: spin
      --> bad.mc:9
       |
     9 |     goto spin;
       |     ^
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = [
    "AnalysisError",
    "CompileError",
    "Diagnostic",
    "LexError",
    "MicrocodeError",
    "MicrocodeRuntimeError",
    "ParseError",
    "SourceSpan",
    "render_diagnostics",
]


class MicrocodeError(Exception):
    """Base class for all Microcode toolchain errors."""


class LexError(MicrocodeError):
    """Malformed token in the source text."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"line {line}, col {column}: {message}")
        self.line = line
        self.column = column


class ParseError(MicrocodeError):
    """The token stream does not form a valid program."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f"line {line}, col {column}: " if line else ""
        super().__init__(f"{location}{message}")
        self.line = line
        self.column = column


class CompileError(MicrocodeError):
    """TC rejected the program (unknown symbol, resource budget, …)."""


class MicrocodeRuntimeError(MicrocodeError):
    """A fault while executing a compiled program on a PPE thread."""


# ---------------------------------------------------------------------------
# Diagnostics (shared by the static analyzer and detlint)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SourceSpan:
    """A location in source text: 1-based line, 0-based column."""

    line: int
    column: int = 0
    filename: str = "<source>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}"


@dataclass
class Diagnostic:
    """One analyzer/linter finding with a stable code.

    ``severity`` is ``"error"``, ``"warning"``, or ``"note"``; only
    errors and warnings count as *findings* for CI gating purposes.
    """

    severity: str
    code: str
    message: str
    span: Optional[SourceSpan] = None
    notes: List[str] = field(default_factory=list)

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def render(self, source_lines: Optional[Sequence[str]] = None) -> str:
        """Rustc-style rendering, quoting the source line when available."""
        lines = [f"{self.severity}[{self.code}]: {self.message}"]
        if self.span is not None:
            lines.append(f"  --> {self.span}")
            quoted = None
            if source_lines and 1 <= self.span.line <= len(source_lines):
                quoted = source_lines[self.span.line - 1].rstrip("\n")
            if quoted is not None:
                gutter = len(str(self.span.line))
                lines.append(f"{' ' * (gutter + 1)}|")
                lines.append(f"{self.span.line} | {quoted}")
                indent = len(quoted) - len(quoted.lstrip())
                caret_col = max(self.span.column, indent)
                lines.append(f"{' ' * (gutter + 1)}| {' ' * caret_col}^")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def render_diagnostics(diagnostics: Sequence[Diagnostic],
                       source: Optional[str] = None) -> str:
    """Render a batch of diagnostics, most severe first."""
    source_lines = source.splitlines() if source is not None else None
    order = {"error": 0, "warning": 1, "note": 2}
    ranked = sorted(
        diagnostics,
        key=lambda d: (order.get(d.severity, 3),
                       d.span.line if d.span else 0),
    )
    return "\n\n".join(d.render(source_lines) for d in ranked)


class AnalysisError(MicrocodeError):
    """Static analysis rejected the program (``analyze="error"``).

    Carries the individual :class:`Diagnostic` objects so callers can
    inspect codes programmatically.
    """

    def __init__(self, message: str, diagnostics: List[Diagnostic]):
        super().__init__(message)
        self.diagnostics = diagnostics
