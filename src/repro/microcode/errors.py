"""Error types for the Microcode toolchain."""

from __future__ import annotations

__all__ = [
    "CompileError",
    "LexError",
    "MicrocodeError",
    "MicrocodeRuntimeError",
    "ParseError",
]


class MicrocodeError(Exception):
    """Base class for all Microcode toolchain errors."""


class LexError(MicrocodeError):
    """Malformed token in the source text."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"line {line}, col {column}: {message}")
        self.line = line
        self.column = column


class ParseError(MicrocodeError):
    """The token stream does not form a valid program."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f"line {line}, col {column}: " if line else ""
        super().__init__(f"{location}{message}")
        self.line = line
        self.column = column


class CompileError(MicrocodeError):
    """TC rejected the program (unknown symbol, resource budget, …)."""


class MicrocodeRuntimeError(MicrocodeError):
    """A fault while executing a compiled program on a PPE thread."""
