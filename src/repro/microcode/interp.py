"""Execution of compiled Microcode on a PPE thread.

The executor walks the program one instruction at a time, charging one
datapath-instruction latency per Microcode instruction through the
thread context, issuing real XTXNs for intrinsics, and dispatching to
*terminal handlers* (the surrounding codebase's ``forward_packet`` /
``drop_packet``) when control transfers to an extern label.

Pointer values are byte offsets into the thread's local memory (where the
packet head was loaded before the thread started, §2.2), optionally typed
with a struct layout so ``ptr->field`` reads/writes the right bit-field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional

from repro.microcode import ast_nodes as ast
from repro.microcode.compiler import CompiledProgram, apply_binary
from repro.microcode.errors import MicrocodeRuntimeError
from repro.microcode.intrinsics import SHARED_INTRINSICS
from repro.microcode.layout import StructLayout

__all__ = ["MicrocodeExecutor", "PointerValue"]

#: Safety valve against non-terminating programs (goto loops).
MAX_EXECUTED_INSTRUCTIONS = 100_000

#: Control-flow signals returned by statement execution.
_NEXT = ("next",)
_EXIT = ("exit",)
_RETURN = ("return",)


@dataclass(frozen=True)
class PointerValue:
    """A typed pointer into thread-local memory (byte offset + layout)."""

    offset: int
    struct: Optional[StructLayout] = None

    def __add__(self, other: object) -> Any:
        if isinstance(other, int):
            return PointerValue(self.offset + other, None)
        return NotImplemented

    def retyped(self, struct: StructLayout) -> "PointerValue":
        return PointerValue(self.offset, struct)


class MicrocodeExecutor:
    """Runs one :class:`CompiledProgram` over packets on PPE threads."""

    def __init__(
        self,
        program: CompiledProgram,
        terminals: Optional[Dict[str, Callable]] = None,
        intrinsics: Optional[Dict[str, Callable]] = None,
    ):
        """``terminals`` maps extern labels to generator functions
        ``handler(tctx, pctx)``; ``intrinsics`` maps call names to
        generator functions ``fn(tctx, pctx, *arg_values)``.
        ``CounterIncPhys`` is provided by default (§3.2): its first
        argument is a counter address in 8-byte words, its second the
        packet length in bytes.  The ``Dmem*`` family issues 4-byte
        Shared Memory XTXNs at ``dmem_base_addr + addr``: ``DmemLoad``
        (plain read into a register), ``DmemStore`` (plain write),
        ``DmemAdd32``/``DmemSwap`` (RMW-engine-serialised, §2.3)."""
        self.program = program
        self.terminals = dict(terminals or {})
        self.intrinsics = {
            "CounterIncPhys": self._counter_inc_phys,
            "DmemLoad": self._dmem_load,
            "DmemStore": self._dmem_store,
            "DmemAdd32": self._dmem_add32,
            "DmemSwap": self._dmem_swap,
        }
        if intrinsics:
            self.intrinsics.update(intrinsics)
        missing = program.extern_labels - set(self.terminals)
        if missing:
            raise MicrocodeRuntimeError(
                f"no terminal handlers for extern labels: {sorted(missing)}"
            )
        #: Base byte address of the counter bank used by CounterIncPhys.
        self.counter_base_addr = 0
        #: Base byte address of the shared-DMEM window the Dmem* family
        #: addresses into (analogous to counter_base_addr).
        self.dmem_base_addr = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, tctx: Any, pctx: Any) -> Iterator[Any]:
        """Process one packet: generator, ``yield from executor.run(...)``."""
        yield from self._run(tctx, pctx)
        # Deferred (coalesced) execute charges become one kernel event, so
        # running a program standalone still advances simulated time.
        yield from tctx.flush()

    def _run(self, tctx: Any, pctx: Any) -> Iterator[Any]:
        state = _ThreadState(self, tctx, pctx)
        label = self.program.entry
        executed = 0
        while True:
            if label in self.terminals:
                yield from self.terminals[label](tctx, pctx)
                return
            instr = self.program.instructions.get(label)
            if instr is None:
                raise MicrocodeRuntimeError(f"jump to unknown label {label!r}")
            executed += 1
            if executed > MAX_EXECUTED_INSTRUCTIONS:
                raise MicrocodeRuntimeError(
                    f"program exceeded {MAX_EXECUTED_INSTRUCTIONS} "
                    "instructions; likely a goto loop"
                )
            yield from tctx.execute(1)
            signal = yield from state.exec_body(instr.body)
            if signal is _RETURN:
                raise MicrocodeRuntimeError(
                    f"return outside a subroutine in {label!r}"
                )
            if signal is _EXIT or signal is _NEXT:
                return
            label = signal[1]  # goto target

    def _counter_inc_phys(self, tctx: Any, pctx: Any, addr_words: int,
                          pkt_len: int) -> Iterator[Any]:
        """The CounterIncPhys XTXN: increments a 16-byte Packet/Byte
        Counter whose address is given in 8-byte words (Figure 6 uses
        +2 per counter)."""
        byte_addr = self.counter_base_addr + int(addr_words) * 8
        yield from tctx.counter_inc(byte_addr, pkt_len)

    def _dmem_load(self, tctx: Any, pctx: Any, reg_index: int,
                   addr: int) -> Iterator[Any]:
        """DmemLoad(r_dst, addr): plain 4-byte read XTXN into ``r_dst``.

        The destination operand arrives pre-resolved to a register index
        (see ``_ThreadState.exec_stmt``); the reply lands there.
        """
        raw = yield from tctx.mem_read(self.dmem_base_addr + int(addr), 4)
        tctx.set_register(reg_index, int.from_bytes(raw, "little"))

    def _dmem_store(self, tctx: Any, pctx: Any, addr: int,
                    value: int) -> Iterator[Any]:
        """DmemStore(addr, value): plain 4-byte write XTXN (NOT atomic)."""
        data = (int(value) & 0xFFFFFFFF).to_bytes(4, "little")
        yield from tctx.mem_write(self.dmem_base_addr + int(addr), data)

    def _dmem_add32(self, tctx: Any, pctx: Any, addr: int,
                    delta: int) -> Iterator[Any]:
        """DmemAdd32(addr, delta): RMW-engine-serialised 32-bit add."""
        yield from tctx.mem_add32(self.dmem_base_addr + int(addr),
                                  int(delta) & 0xFFFFFFFF)

    def _dmem_swap(self, tctx: Any, pctx: Any, addr: int,
                   value: int) -> Iterator[Any]:
        """DmemSwap(addr, value): atomic fetch-and-swap of one word."""
        from repro.trio.rmw import RMWOpKind

        yield from tctx.mem_fetch_and_op(
            RMWOpKind.FETCH_AND_SWAP, self.dmem_base_addr + int(addr),
            int(value) & 0xFFFFFFFF, size=4,
        )


class _ThreadState:
    """Per-packet interpreter state: local consts and builtin variables."""

    def __init__(self, executor: MicrocodeExecutor, tctx: Any, pctx: Any):
        self.executor = executor
        self.program = executor.program
        self.tctx = tctx
        self.pctx = pctx
        self.locals: Dict[str, Any] = {}
        self.call_depth = 0

    # -- statement execution (generators returning a control signal) -----

    def exec_body(self, body: Any) -> Iterator[Any]:
        for stmt in body:
            signal = yield from self.exec_stmt(stmt)
            if signal is not _NEXT:
                return signal
        return _NEXT

    def exec_stmt(self, stmt: Any) -> Iterator[Any]:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.expr)
            self.store(stmt.target, value)
            return _NEXT
            yield  # pragma: no cover - makes this a generator
        if isinstance(stmt, ast.LocalConst):
            value = self.eval(stmt.expr)
            if stmt.is_pointer:
                struct = self.program.structs[stmt.type_name]
                if isinstance(value, PointerValue):
                    value = value.retyped(struct)
                else:
                    value = PointerValue(int(value), struct)
            self.locals[stmt.name] = value
            return _NEXT
            yield  # pragma: no cover
        if isinstance(stmt, ast.If):
            cond = self.eval(stmt.cond)
            branch = stmt.then_body if cond else stmt.else_body
            signal = yield from self.exec_body(branch)
            return signal
        if isinstance(stmt, ast.Goto):
            return ("goto", stmt.label)
            yield  # pragma: no cover
        if isinstance(stmt, ast.ExitStmt):
            return _EXIT
            yield  # pragma: no cover
        if isinstance(stmt, ast.CallStmt):
            fn = self.executor.intrinsics.get(stmt.name)
            if fn is None:
                raise MicrocodeRuntimeError(
                    f"line {stmt.line}: unknown intrinsic {stmt.name!r}"
                )
            spec = SHARED_INTRINSICS.get(stmt.name)
            out_reg = spec.out_reg if spec is not None else None
            args = []
            for index, arg in enumerate(stmt.args):
                if index == out_reg:
                    # Destination operand: resolve the register *index*
                    # (TC already validated it names a declared reg).
                    if not (isinstance(arg, ast.Name)
                            and arg.ident in self.program.reg_map):
                        raise MicrocodeRuntimeError(
                            f"line {stmt.line}: {stmt.name} operand "
                            f"{index} must name a register"
                        )
                    args.append(self.program.reg_map[arg.ident])
                else:
                    args.append(self.eval(arg))
            yield from fn(self.tctx, self.pctx, *args)
            return _NEXT
        if isinstance(stmt, ast.ReturnStmt):
            return _RETURN
            yield  # pragma: no cover
        if isinstance(stmt, ast.CallSub):
            signal = yield from self.exec_subroutine(stmt)
            return signal
        if isinstance(stmt, ast.Switch):
            selector = self.eval(stmt.selector)
            default_body = None
            for case in stmt.cases:
                if case.values is None:
                    default_body = case.body
                    continue
                if any(self.eval(value) == selector for value in case.values):
                    signal = yield from self.exec_body(case.body)
                    return signal
            if default_body is not None:
                signal = yield from self.exec_body(default_body)
                return signal
            return _NEXT
        raise MicrocodeRuntimeError(
            f"unsupported statement {type(stmt).__name__}"
        )

    def exec_subroutine(self, stmt: ast.CallSub) -> Iterator[Any]:
        """Run a ``call`` target until ``return`` (or fall-off-end).

        The PPE's call-return stack nests at most ``call_stack_depth``
        levels (§2.2: eight).
        """
        limit = self.tctx.config.call_stack_depth
        if self.call_depth >= limit:
            raise MicrocodeRuntimeError(
                f"line {stmt.line}: call depth exceeds the hardware "
                f"limit of {limit} (§2.2)"
            )
        self.call_depth += 1
        try:
            label = stmt.label
            while True:
                if label in self.executor.terminals:
                    yield from self.executor.terminals[label](
                        self.tctx, self.pctx
                    )
                    return _EXIT
                instr = self.program.instructions.get(label)
                if instr is None:
                    raise MicrocodeRuntimeError(
                        f"call/goto to unknown label {label!r}"
                    )
                yield from self.tctx.execute(1)
                signal = yield from self.exec_body(instr.body)
                if signal is _RETURN or signal is _NEXT:
                    return _NEXT  # resume the caller after the call
                if signal is _EXIT:
                    return _EXIT
                label = signal[1]
        finally:
            self.call_depth -= 1

    # -- expression evaluation (pure; XTXNs only via intrinsics) ---------

    def eval(self, expr: Any) -> Any:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.SizeOf):
            return self.program.structs[expr.type_name].size_bytes
        if isinstance(expr, ast.Name):
            return self.resolve_name(expr.ident, expr.line)
        if isinstance(expr, ast.Member):
            return self.read_member(expr)
        if isinstance(expr, ast.Unary):
            value = self.eval(expr.operand)
            if expr.op == "-":
                return -value
            if expr.op == "~":
                return ~value
            return int(not value)
        if isinstance(expr, ast.Binary):
            left = self.eval(expr.left)
            # Short-circuit so && / || behave like the sequencing logic.
            if expr.op == "&&" and not left:
                return 0
            if expr.op == "||" and left:
                return 1
            right = self.eval(expr.right)
            if isinstance(left, PointerValue):
                if expr.op == "+":
                    return left + int(right)
                raise MicrocodeRuntimeError(
                    f"line {expr.line}: unsupported pointer op {expr.op!r}"
                )
            return apply_binary(expr.op, left, right)
        raise MicrocodeRuntimeError(
            f"unsupported expression {type(expr).__name__}"
        )

    def resolve_name(self, ident: str, line: int) -> Any:
        if ident in self.locals:
            return self.locals[ident]
        program = self.program
        if ident in program.reg_map:
            return self.tctx.registers[program.reg_map[ident]]
        if ident in program.consts:
            return program.consts[ident]
        if ident in program.ptr_map:
            struct_name, offset = program.ptr_map[ident]
            return PointerValue(offset, program.structs[struct_name])
        raise MicrocodeRuntimeError(f"line {line}: unknown name {ident!r}")

    def read_member(self, expr: ast.Member) -> Any:
        base = expr.base
        if isinstance(base, ast.Name) and base.ident == "r_work":
            return self.builtin_work_register(expr.field_name, expr.line)
        value = self.eval(base)
        if not isinstance(value, PointerValue) or value.struct is None:
            raise MicrocodeRuntimeError(
                f"line {expr.line}: {expr.field_name!r} accessed through a "
                "non-struct pointer"
            )
        return value.struct.read(self.tctx.lmem, value.offset, expr.field_name)

    def builtin_work_register(self, field_name: str, line: int) -> int:
        """The r_work builtin bus variables available to every thread."""
        if field_name == "pkt_len":
            return self.pctx.length if self.pctx is not None else 0
        if field_name == "time_ns":
            # Thread-local clock: includes coalesced execute charges, so
            # programs observe the same timestamps as eager charging.
            return int(self.tctx.now * 1e9)
        raise MicrocodeRuntimeError(
            f"line {line}: unknown builtin r_work.{field_name}"
        )

    def store(self, target: Any, value: Any) -> None:
        if isinstance(target, ast.Name):
            program = self.program
            if target.ident in program.reg_map:
                self.tctx.set_register(
                    program.reg_map[target.ident], int(value)
                )
                return
            raise MicrocodeRuntimeError(
                f"line {target.line}: cannot assign to {target.ident!r}"
            )
        if isinstance(target, ast.Member):
            base = self.eval(target.base)
            if not isinstance(base, PointerValue) or base.struct is None:
                raise MicrocodeRuntimeError(
                    f"line {target.line}: field write through a non-struct "
                    "pointer"
                )
            base.struct.write(
                self.tctx.lmem, base.offset, target.field_name, int(value)
            )
            return
        raise MicrocodeRuntimeError("unsupported assignment target")
