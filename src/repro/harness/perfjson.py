"""Kernel performance benchmark: measure, record, and regression-check.

Running ``python -m repro.harness.perfjson`` measures the simulation
kernel's hot paths and one figure-level sweep, then writes
``BENCH_kernel.json`` next to the repository root (or ``--output PATH``).
``--check`` re-measures and exits non-zero if kernel throughput has
regressed more than 30% against the committed numbers — the CI smoke
test.

Methodology
-----------
All timings use :func:`time.process_time` (CPU seconds — wall clock on a
shared box charges other tenants' noise to us), take the best of several
repetitions after a warmup run, and pause the cyclic GC during the timed
region.  The kernel microbenchmarks count *scheduled events* per CPU
second; the figure sweep reports CPU seconds end-to-end plus the kernel's
total event count, which doubles as the determinism fingerprint (a
bit-identical run schedules exactly the same number of events).
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.sim import Environment

__all__ = [
    "DEFAULT_OUTPUT",
    "FLOWSIM_SPEEDUP_FLOOR",
    "REGRESSION_TOLERANCE",
    "SCHEMA",
    "bench_delay_path",
    "bench_timeout_path",
    "bench_packet_path",
    "bench_figure_sweep",
    "bench_flowsim",
    "bench_flowsim_scale",
    "bench_nf_chain",
    "bench_obs_overhead",
    "bench_solver",
    "bench_traffic",
    "bench_trainer_loop",
    "OBS_PROBE_NS_CEILING",
    "collect",
    "check",
    "main",
]

SCHEMA = "trio-repro/bench-kernel/v1"
DEFAULT_OUTPUT = "BENCH_kernel.json"

#: ``--check`` fails when a measured events/s figure drops below this
#: fraction of the committed number (i.e. a >30% regression).
REGRESSION_TOLERANCE = 0.70

#: Absolute ceiling on one *disabled* ``obs.probe`` call, in
#: nanoseconds.  The null-sink fast path is a global load plus a no-op
#: method call — tens of ns on any box — so an absolute bound is immune
#: to CI noise while still catching the failure it guards against: a
#: de-nulled dispatch path (recording when it shouldn't) jumps 10–100x.
OBS_PROBE_NS_CEILING = 2000.0

#: Hard floor on the hybrid flow-level advantage: simulated payload
#: bytes per CPU second through :func:`bench_flowsim` must be at least
#: this multiple of the packet-level macro path's.  This is the
#: headline claim of the two-level hybrid simulation, so ``--check``
#: enforces it as an absolute floor, not a drift ratio.  The
#: incremental path-class solver lands ~900-1000x on the reference box
#: (up from ~150-190x with the from-scratch per-flow solver); 400x
#: keeps >2x headroom while still failing fast if rate allocation ever
#: falls back to a per-flow rebuild.
FLOWSIM_SPEEDUP_FLOOR = 400.0

#: Seed-tree numbers, re-measured from the git seed tree (commit
#: ``8a6e343``, extracted via ``git archive``) on this box with the
#: same methodology as the live benchmarks: 200k events, warmup plus
#: best-of-5, GC paused; fig15 at full sizing (blocks=100), best-of-3.
#: The seed kernel had no pooled ``delay`` API — every pure wait went
#: through the timeout path — so both kernel baselines measure that
#: path, but as two *independent* runs (an earlier revision recorded a
#: single measurement under both keys, which made the two speedups
#: artificially identical).
SEED_BASELINE = {
    "delay_events_per_s": 691_620.0,
    "timeout_events_per_s": 712_364.0,
    "fig15_cpu_s": 0.7066,
}


def _best_of(fn: Callable[[], float], repeats: int) -> float:
    """Best (max) of ``repeats`` calls, with GC paused during each."""
    fn()  # warmup: bytecode caches, branch predictors, the delay pool
    best = 0.0
    for _ in range(repeats):
        enabled = gc.isenabled()
        gc.disable()
        try:
            best = max(best, fn())
        finally:
            if enabled:
                gc.enable()
    return best


def bench_delay_path(events: int = 200_000, repeats: int = 5) -> float:
    """Events/s of the pooled ``env.delay`` hot path (one waiter each)."""

    def once() -> float:
        env = Environment()

        def proc():
            delay = env.delay
            for _ in range(events):
                yield delay(1.0)

        env.process(proc())
        start = time.process_time()  # detlint: ok(benchmark harness)
        env.run()
        return events / (time.process_time() - start)  # detlint: ok(benchmark)

    return _best_of(once, repeats)


def bench_timeout_path(events: int = 200_000, repeats: int = 5) -> float:
    """Events/s of the general ``env.timeout`` path (fresh event each)."""

    def once() -> float:
        env = Environment()

        def proc():
            timeout = env.timeout
            for _ in range(events):
                yield timeout(1.0)

        env.process(proc())
        start = time.process_time()  # detlint: ok(benchmark harness)
        env.run()
        return events / (time.process_time() - start)  # detlint: ok(benchmark)

    return _best_of(once, repeats)


def bench_packet_path(blocks: int = 150, repeats: int = 3) -> Dict[str, float]:
    """Packets/s and events/s through one full single-PFE aggregation run.

    This exercises the whole stack: worker encode, NIC/link/fabric
    transport, PPE thread dispatch, hash lookup, RMW aggregation, and
    result multicast — the macro path every figure sweep is made of.
    """
    from repro.harness.testbed import build_single_pfe_testbed
    from repro.trioml.config import TrioMLJobConfig

    packets = 0
    events = 0
    sim_seconds = 0.0
    payload_bytes = 0.0

    def once() -> float:
        nonlocal packets, events, sim_seconds, payload_bytes
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=256, window=8)
        testbed = build_single_pfe_testbed(env, config, num_workers=4)
        vector = [1] * (256 * blocks)
        procs = testbed.run_allreduce([vector] * 4)
        start = time.process_time()  # detlint: ok(benchmark harness)
        env.run(until=env.all_of(procs))
        elapsed = time.process_time() - start  # detlint: ok(benchmark)
        packets = len(testbed.handle.aggregator.packet_latencies)
        events = env.scheduled_events
        sim_seconds = env.now
        # Gradient payload carried by the aggregation packets (4 B per
        # gradient) — the packet level's simulated-traffic currency,
        # comparable with the flow level's payload bytes.
        payload_bytes = float(packets * 256 * 4)
        return 1.0 / elapsed

    per_s = _best_of(once, repeats)
    cpu_s = 1.0 / per_s
    return {
        "packets": packets,
        "packets_per_s": packets * per_s,
        "scheduled_events": events,
        "events_per_s": events * per_s,
        "cpu_s": cpu_s,
        "sim_seconds": sim_seconds,
        "sim_seconds_per_cpu_s": sim_seconds * per_s,
        "simulated_bytes_per_cpu_s": payload_bytes * per_s,
    }


def bench_figure_sweep(blocks: int = 100,
                       repeats: int = 3) -> Dict[str, float]:
    """CPU seconds for the Figure 15 latency-vs-rate sweep.

    ``blocks=100`` is the figure's full sizing (what ``python -m
    repro.harness fig15`` runs and what the seed baseline was measured
    at).  The event count is the determinism fingerprint: serial,
    fast-path, and ``--parallel`` runs must all schedule exactly the
    same events.
    """
    from repro.harness.experiments import (
        FIG15_GRAD_COUNTS, _fig15_point,
    )

    events = 0

    def once() -> float:
        nonlocal events
        total = 0
        start = time.process_time()  # detlint: ok(benchmark harness)
        for grads in FIG15_GRAD_COUNTS:
            _, scheduled = _fig15_point((grads, blocks))
            total += scheduled
        elapsed = time.process_time() - start  # detlint: ok(benchmark)
        events = total
        return elapsed

    # best == minimum for a duration
    once()  # warmup
    best = float("inf")
    for _ in range(repeats):
        enabled = gc.isenabled()
        gc.disable()
        try:
            best = min(best, once())
        finally:
            if enabled:
                gc.enable()
    return {"cpu_s": best, "scheduled_events": events, "blocks": blocks}


def bench_flowsim(num_flows: int = 10_000,
                  repeats: int = 2) -> Dict[str, float]:
    """Simulated traffic per CPU second through the hybrid flow level.

    Runs the canonical :mod:`repro.flowsim` leaf/spine scenario — incast
    bursts, a straggler host, and synchronised aggregation steps all
    escalating to packet-level references — and reports payload bytes
    carried to completion per CPU second.  Divided by the macro packet
    path's :func:`bench_packet_path` figure, this is the hybrid
    simulation's headline ratio, floored at
    :data:`FLOWSIM_SPEEDUP_FLOOR` by ``--check``.
    """
    from repro.flowsim import ScenarioConfig, run_scenario

    payload_bytes = 0.0
    sim_seconds = 0.0
    flows = 0
    escalated = 0
    events = 0
    wake_cancelled = 0
    wake_reused = 0

    def once() -> float:
        nonlocal payload_bytes, sim_seconds, flows, escalated
        nonlocal events, wake_cancelled, wake_reused
        config = ScenarioConfig(num_flows=num_flows)
        start = time.process_time()  # detlint: ok(benchmark harness)
        result = run_scenario(config)
        elapsed = time.process_time() - start  # detlint: ok(benchmark)
        payload_bytes = result.simulated_payload_bytes
        sim_seconds = result.sim_seconds
        flows = int(result.summary["flows"])
        escalated = sum(result.escalations.values())
        events = result.scheduled_events
        wake_cancelled = result.wake["cancelled"]
        wake_reused = result.wake["reused"]
        # Dead-wake-up guard: the engine keeps ONE live completion
        # wake-up, reusing or cancelling the pending one on every
        # re-solve.  The canonical scenario schedules ~3.0 events per
        # flow; abandoning a stale wake-up per re-solve (the old
        # behaviour) pushes it past 3.9, so this bound trips on a
        # regression while leaving ~15% headroom.
        if events > 3.5 * flows + 256:
            raise RuntimeError(
                f"flowsim scheduled {events} events for {flows} flows; "
                "dead wake-ups are leaking onto the heap")
        return 1.0 / elapsed

    per_s = _best_of(once, repeats)
    return {
        "num_flows": flows,
        "escalated_flows": escalated,
        "cpu_s": 1.0 / per_s,
        "sim_seconds": sim_seconds,
        "sim_seconds_per_cpu_s": sim_seconds * per_s,
        "simulated_gbytes": payload_bytes / 1e9,
        "simulated_bytes_per_cpu_s": payload_bytes * per_s,
        "scheduled_events": events,
        "scheduled_events_per_flow": events / flows if flows else 0.0,
        "wake_cancelled": wake_cancelled,
        "wake_reused": wake_reused,
    }


def bench_solver(num_flows: int = 10_000, window: int = 96,
                 repeats: int = 3) -> float:
    """Flow arrivals/departures per CPU second through the incremental
    path-class solver alone — no engine, no event loop.

    Replays a sliding window of ``window`` concurrent flows over a
    synthetic leaf/spine class structure (per-host access links plus
    per-leaf uplinks, all directed), re-solving after every add and
    every remove exactly as the engine does.  The live class count
    (~``window``) matches the canonical scenario's steady state, so
    this isolates the per-event allocation cost the hybrid level pays:
    an accidental from-scratch rebuild in the incremental path shows up
    here as an order-of-magnitude drop, with no scenario noise on top.
    """
    import random

    from repro.flowsim.solver import PathClassSolver

    leaves, hosts_per_leaf = 4, 12
    nhosts = leaves * hosts_per_leaf

    def path(src: int, dst: int):
        src_leaf, dst_leaf = src // hosts_per_leaf, dst // hosts_per_leaf
        up, down = 2 * src, 2 * dst + 1
        if src_leaf == dst_leaf:
            return (up, down)
        return (up, 10_000 + 2 * src_leaf, 10_001 + 2 * dst_leaf, down)

    capacity = {}
    for host in range(nhosts):
        capacity[2 * host] = capacity[2 * host + 1] = 100e9
    for leaf in range(leaves):
        capacity[10_000 + 2 * leaf] = capacity[10_001 + 2 * leaf] = 400e9

    # Pre-draw the flow paths so the timed loop is solver-only.
    rng = random.Random(0)
    sigs = []
    for _ in range(num_flows):
        src = rng.randrange(nhosts)
        dst = rng.randrange(nhosts - 1)
        if dst >= src:
            dst += 1
        sigs.append(path(src, dst))

    def once() -> float:
        solver = PathClassSolver(capacity)
        add, remove, resolve = solver.add, solver.remove, solver.resolve
        start = time.process_time()  # detlint: ok(benchmark harness)
        for index, sig in enumerate(sigs):
            add(sig)
            resolve()
            expired = index - window
            if expired >= 0:
                remove(sigs[expired])
                resolve()
        elapsed = time.process_time() - start  # detlint: ok(benchmark)
        return num_flows / elapsed

    return _best_of(once, repeats)


def bench_flowsim_scale(num_flows: int = 1_000_000) -> Dict[str, float]:
    """One million-flow cache-scenario run through the incremental path.

    A single timed run (no best-of — the run is minutes long) of the
    ``cache`` traffic scenario through :func:`repro.traffic.run_fluid`,
    GC paused, ``process_time``-clocked.  This is the scale point the
    path-class solver makes tractable at all: the pre-refactor per-flow
    rebuild extrapolates past 2,000 CPU-s here, and super-linearly so,
    because the cache workload's heavy-tailed sizes keep long-lived
    flows alive — the live set grows roughly with the square root of
    run length (avg ~26 live classes at 1e5 flows, ~48 at 3e5), so
    every per-flow term in the old solver compounded.  The incremental
    level pays O(live classes) per solve, which is what keeps the
    measured number in the low hundreds of CPU-seconds instead.

    Opt-in via ``--scale``; never part of ``--check`` (too slow for
    CI), so the committed figure is a recorded observation, not a gate.
    """
    from repro.traffic import get_scenario, run_fluid

    scenario = get_scenario("cache")
    enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.process_time()  # detlint: ok(benchmark harness)
        result = run_fluid(scenario, num_flows)
        elapsed = time.process_time() - start  # detlint: ok(benchmark)
    finally:
        if enabled:
            gc.enable()
    return {
        "num_flows": int(result.summary["flows"]),
        "cpu_s": elapsed,
        "flows_per_cpu_s": num_flows / elapsed,
        "sim_seconds": result.sim_seconds,
        "simulated_gbytes": result.simulated_payload_bytes / 1e9,
        "simulated_bytes_per_cpu_s": (
            result.simulated_payload_bytes / elapsed
        ),
        "solves": result.solves,
    }


def bench_nf_chain(packets: int = 20_000, repeats: int = 3) -> float:
    """Packets/s through the NF chain executor on the greedy placement.

    Compiles the canonical ``firewall -> telemetry -> aggregate`` chain,
    takes the cost-driven greedy placement, and times :func:`run_chain`
    alone (trace synthesis excluded) — the per-packet NF dispatch loop
    the ``chains`` sweep multiplies by 27 placements.  Guards the NF
    refactor: the three applications now run behind the
    :class:`repro.nf.base.NF` interface, and this is the budget that
    indirection must live within.
    """
    from repro.harness.experiments import DEFAULT_CHAIN
    from repro.nf import compile_chain, generate_trace, greedy_place, run_chain

    def once() -> float:
        compiled = compile_chain(DEFAULT_CHAIN)
        placement = greedy_place(compiled)
        trace = generate_trace(packets, seed=0)
        start = time.process_time()  # detlint: ok(benchmark harness)
        run_chain(compiled.spec, compiled.nfs, placement, trace)
        elapsed = time.process_time() - start  # detlint: ok(benchmark)
        return packets / elapsed

    return _best_of(once, repeats)


def bench_trainer_loop(iterations: int = 100_000,
                       repeats: int = 5) -> float:
    """Iterations/s of the data-parallel training hot loop.

    Runs :meth:`repro.ml.training.DataParallelTrainer.run` under the
    ``trioml`` collective backend with the Figure 13 worst-case straggle
    probability (p = 16%), so each iteration pays the full path: compute
    sampling, straggle-pattern draws, and the backend's
    ``iteration_duration`` dispatch.  Guards the registry refactor — the
    loop went from inlined if/else arms to a backend method call, and
    this number is the budget that dispatch must live within.
    """
    from repro.ml.models import MODEL_ZOO
    from repro.ml.training import DataParallelTrainer, TrainingConfig

    def once() -> float:
        config = TrainingConfig(
            model=MODEL_ZOO["resnet50"], system="trioml",
            straggle_probability=0.16, seed=0,
        )
        trainer = DataParallelTrainer(config)
        start = time.process_time()  # detlint: ok(benchmark harness)
        trainer.run(iterations)
        elapsed = time.process_time() - start  # detlint: ok(benchmark)
        return iterations / elapsed

    return _best_of(once, repeats)


def bench_obs_overhead(calls: int = 1_000_000,
                       repeats: int = 5) -> Dict[str, float]:
    """ns/call of a *disabled* ``obs.probe`` (the zero-overhead contract).

    Measures the bare counter probe and a probe carrying two label
    fields; both must stay a global load + no-op method call while no
    session is enabled.  Asserts observability is actually disabled
    first — timing the enabled path here would record a meaningless
    number and mask a leaked session.
    """
    from repro.obs import bus as obs

    if obs.enabled():
        raise RuntimeError("obs session active; overhead bench measures "
                           "the disabled path")

    def bare() -> float:
        probe = obs.probe
        start = time.process_time()  # detlint: ok(benchmark harness)
        for _ in range(calls):
            probe("bench.probe")
        elapsed = time.process_time() - start  # detlint: ok(benchmark)
        return calls / elapsed

    def with_fields() -> float:
        probe = obs.probe
        start = time.process_time()  # detlint: ok(benchmark harness)
        for _ in range(calls):
            probe("bench.probe", pfe="pfe1", action="fwd")
        elapsed = time.process_time() - start  # detlint: ok(benchmark)
        return calls / elapsed

    return {
        "null_probe_ns": 1e9 / _best_of(bare, repeats),
        "null_probe_fields_ns": 1e9 / _best_of(with_fields, repeats),
        "ceiling_ns": OBS_PROBE_NS_CEILING,
    }


def bench_traffic(num_flows: int = 100_000, repeats: int = 3) -> float:
    """Flow specs generated per CPU second by the traffic library.

    Times :meth:`TrafficScenario.generate` on the ``websearch`` family
    (empirical CDF sizes, Poisson arrivals — the cheapest draws, so
    this is the generator's ceiling, not a workload average).  Guards
    the 10^5–10^6-flow scale claim: a sweep's flow lists must stay a
    negligible fraction of its fluid-solve budget.
    """
    from repro.sim import Environment
    from repro.traffic import get_scenario

    scenario = get_scenario("websearch")

    def once() -> float:
        env = Environment()
        start = time.process_time()  # detlint: ok(benchmark harness)
        flows = scenario.generate(env, num_flows)
        elapsed = time.process_time() - start  # detlint: ok(benchmark)
        return len(flows) / elapsed

    return _best_of(once, repeats)


def collect(quick: bool = False, scale: bool = False) -> Dict:
    """Measure everything and return the BENCH_kernel.json document.

    ``scale=True`` additionally runs the (minutes-long) million-flow
    cache-scenario point and records it under ``"flowsim_scale"``.
    """
    scale = 4 if quick else 1
    delay = bench_delay_path(events=200_000 // scale,
                             repeats=3 if quick else 5)
    timeout = bench_timeout_path(events=200_000 // scale,
                                 repeats=3 if quick else 5)
    packet = bench_packet_path(blocks=150 // scale,
                               repeats=2 if quick else 3)
    trainer = bench_trainer_loop(iterations=25_000 if quick else 100_000,
                                 repeats=3 if quick else 5)
    fig15 = bench_figure_sweep(blocks=20 if quick else 100,
                               repeats=2 if quick else 3)
    flowsim = bench_flowsim(num_flows=1_000 if quick else 10_000,
                            repeats=2)
    solver = bench_solver(num_flows=2_000 if quick else 10_000,
                          repeats=2 if quick else 3)
    nf_chain = bench_nf_chain(packets=5_000 if quick else 20_000,
                              repeats=2 if quick else 3)
    traffic = bench_traffic(num_flows=20_000 if quick else 100_000,
                            repeats=2 if quick else 3)
    obs_overhead = bench_obs_overhead(calls=250_000 if quick else 1_000_000,
                                      repeats=3 if quick else 5)
    doc = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "kernel": {
            "delay_events_per_s": round(delay),
            "timeout_events_per_s": round(timeout),
        },
        "macro": {
            "packets_per_s": round(packet["packets_per_s"]),
            "events_per_s": round(packet["events_per_s"]),
            "packets": packet["packets"],
            "scheduled_events": packet["scheduled_events"],
            "sim_seconds_per_cpu_s": round(
                packet["sim_seconds_per_cpu_s"], 6
            ),
            "simulated_bytes_per_cpu_s": round(
                packet["simulated_bytes_per_cpu_s"]
            ),
        },
        "flowsim": {
            "num_flows": flowsim["num_flows"],
            "escalated_flows": flowsim["escalated_flows"],
            "simulated_gbytes": round(flowsim["simulated_gbytes"], 2),
            "cpu_s": round(flowsim["cpu_s"], 3),
            "sim_seconds_per_cpu_s": round(
                flowsim["sim_seconds_per_cpu_s"], 6
            ),
            "simulated_bytes_per_cpu_s": round(
                flowsim["simulated_bytes_per_cpu_s"]
            ),
            "scheduled_events": flowsim["scheduled_events"],
            "scheduled_events_per_flow": round(
                flowsim["scheduled_events_per_flow"], 2
            ),
            "solver_flows_per_s": round(solver),
        },
        "trainer": {
            "iterations_per_s": round(trainer),
        },
        "nf": {
            "chain_packets_per_s": round(nf_chain),
        },
        "traffic": {
            "flows_generated_per_s": round(traffic),
        },
        "obs": {
            "null_probe_ns": round(obs_overhead["null_probe_ns"], 1),
            "null_probe_fields_ns": round(
                obs_overhead["null_probe_fields_ns"], 1
            ),
            "ceiling_ns": obs_overhead["ceiling_ns"],
        },
        "fig15_sweep": {
            "cpu_s": round(fig15["cpu_s"], 4),
            "scheduled_events": fig15["scheduled_events"],
            "blocks": fig15["blocks"],
        },
        "seed_baseline": dict(SEED_BASELINE),
        "speedup": {
            "delay_path": round(delay / SEED_BASELINE["delay_events_per_s"], 2),
            "timeout_path": round(
                timeout / SEED_BASELINE["timeout_events_per_s"], 2
            ),
            "flowsim_bytes_vs_packet": round(
                flowsim["simulated_bytes_per_cpu_s"]
                / packet["simulated_bytes_per_cpu_s"], 1
            ),
            "flowsim_speedup_floor": FLOWSIM_SPEEDUP_FLOOR,
        },
    }
    if not quick:
        # The seed fig15 number was measured at full sizing only.
        doc["speedup"]["fig15_sweep"] = round(
            SEED_BASELINE["fig15_cpu_s"] / fig15["cpu_s"], 2
        )
    if scale:
        point = bench_flowsim_scale()
        doc["flowsim_scale"] = {
            "scenario": "cache",
            "num_flows": point["num_flows"],
            "cpu_s": round(point["cpu_s"], 1),
            "flows_per_cpu_s": round(point["flows_per_cpu_s"]),
            "sim_seconds": round(point["sim_seconds"], 4),
            "simulated_gbytes": round(point["simulated_gbytes"], 2),
            "simulated_bytes_per_cpu_s": round(
                point["simulated_bytes_per_cpu_s"]
            ),
            "solves": point["solves"],
        }
    return doc


def check(path: Path, quick: bool = True) -> int:
    """Re-measure and compare against the committed numbers.

    Returns a process exit code: 0 when every kernel events/s figure is
    within :data:`REGRESSION_TOLERANCE` of the committed value (or
    faster), 1 on regression.
    """
    committed = json.loads(path.read_text())
    current = collect(quick=quick)
    checks = [("kernel", "delay_events_per_s"),
              ("kernel", "timeout_events_per_s")]
    if "trainer" in committed:
        checks.append(("trainer", "iterations_per_s"))
    if "sim_seconds_per_cpu_s" in committed.get("macro", {}):
        checks.append(("macro", "sim_seconds_per_cpu_s"))
    if "flowsim" in committed:
        checks.append(("flowsim", "simulated_bytes_per_cpu_s"))
    if "solver_flows_per_s" in committed.get("flowsim", {}):
        checks.append(("flowsim", "solver_flows_per_s"))
    if "nf" in committed:
        checks.append(("nf", "chain_packets_per_s"))
    if "traffic" in committed:
        checks.append(("traffic", "flows_generated_per_s"))
    failures = []
    for section, key in checks:
        old = committed[section][key]
        new = current[section][key]
        ratio = new / old if old else float("inf")
        status = "ok" if ratio >= REGRESSION_TOLERANCE else "REGRESSION"
        fmt = ",.0f" if old >= 1.0 else ".6f"  # sim-s/cpu-s is fractional
        print(f"{section}.{key}: committed {old:{fmt}} measured {new:{fmt}} "
              f"({ratio:.2f}x) {status}")
        if ratio < REGRESSION_TOLERANCE:
            failures.append(f"{section}.{key}")
    # Absolute bound, not a ratio: the disabled probe is tens of ns, so
    # the ceiling is noise-immune yet still trips on a de-nulled path.
    for key in ("null_probe_ns", "null_probe_fields_ns"):
        measured = current["obs"][key]
        status = "ok" if measured <= OBS_PROBE_NS_CEILING else "REGRESSION"
        print(f"obs.{key}: measured {measured:.1f} ns "
              f"(ceiling {OBS_PROBE_NS_CEILING:.0f} ns) {status}")
        if measured > OBS_PROBE_NS_CEILING:
            failures.append(f"obs.{key}")
    # Absolute floor on the hybrid simulation's headline claim: flow
    # level >= FLOWSIM_SPEEDUP_FLOOR x the packet level in simulated
    # bytes per CPU second, measured fresh.  Gated on the committed doc
    # carrying a flowsim section so pre-hybrid records still check.
    if "flowsim" in committed:
        ratio = current["speedup"]["flowsim_bytes_vs_packet"]
        status = "ok" if ratio >= FLOWSIM_SPEEDUP_FLOOR else "REGRESSION"
        print(f"speedup.flowsim_bytes_vs_packet: measured {ratio:.1f}x "
              f"(floor {FLOWSIM_SPEEDUP_FLOOR:.0f}x) {status}")
        if ratio < FLOWSIM_SPEEDUP_FLOOR:
            failures.append("speedup.flowsim_bytes_vs_packet")
    if failures:
        print(f"FAIL: >{(1 - REGRESSION_TOLERANCE):.0%} regression in: "
              + ", ".join(failures))
        return 1
    print("PASS: kernel throughput within tolerance")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.perfjson",
        description="Measure kernel performance; write or check "
                    f"{DEFAULT_OUTPUT}.",
    )
    parser.add_argument("--output", type=Path, default=Path(DEFAULT_OUTPUT),
                        help="where to write (or read, with --check) the "
                             "benchmark JSON")
    parser.add_argument("--check", action="store_true",
                        help="compare a fresh measurement against the "
                             "committed JSON; exit 1 on a "
                             f">{1 - REGRESSION_TOLERANCE:.0%} events/s "
                             "regression")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads and fewer repeats "
                             "(CI smoke sizing)")
    parser.add_argument("--scale", action="store_true",
                        help="also measure the million-flow cache "
                             "scenario (minutes; recorded, never "
                             "checked)")
    args = parser.parse_args(argv)

    if args.check:
        if not args.output.exists():
            print(f"error: {args.output} not found — run "
                  "`python -m repro.harness.perfjson` first to record a "
                  "baseline", file=sys.stderr)
            return 2
        return check(args.output, quick=True)

    doc = collect(quick=args.quick, scale=args.scale)
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(json.dumps(doc, indent=2))
    print(f"\nwrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
