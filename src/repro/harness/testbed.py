"""Builders for the paper's testbed topologies (Figure 11).

* :func:`build_single_pfe_testbed` — the §6.3 microbenchmark setup: four
  servers on one PFE, single-level aggregation.
* :func:`build_hierarchical_testbed` — the full Figure 11(b) setup: an
  MX480-style chassis with six PFEs, three servers on PFE1 and three on
  PFE2, PFE4 as the top-level aggregator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.topology import Topology
from repro.sim import Environment
from repro.trio.chipset import TrioChipsetConfig
from repro.trio.pfe import PFE
from repro.trio.router import TrioRouter
from repro.trioml.config import (
    JobHandle,
    TrioMLJobConfig,
    setup_hierarchical_job,
    setup_single_level_job,
)
from repro.trioml.worker import TrioMLWorker

__all__ = [
    "HierarchicalTestbed",
    "SinglePfeTestbed",
    "build_hierarchical_testbed",
    "build_single_pfe_testbed",
]

#: Optional per-worker straggle hook factory: worker index -> hook or None.
HookFactory = Callable[[int], Optional[Callable[[int], float]]]


@dataclass
class SinglePfeTestbed:
    """Four servers on one PFE (the §6.3 benchmark setup)."""

    env: Environment
    pfe: PFE
    workers: List[TrioMLWorker]
    handle: JobHandle
    topology: Topology

    def run_allreduce(self, gradient_vectors: List[List[int]]):
        """Start one allreduce per worker; returns the processes."""
        return [
            self.env.process(worker.allreduce(vector))
            for worker, vector in zip(self.workers, gradient_vectors)
        ]


@dataclass
class HierarchicalTestbed:
    """Six servers across two line cards with a top-level aggregator PFE."""

    env: Environment
    router: TrioRouter
    workers: List[TrioMLWorker]
    handle: JobHandle
    topology: Topology

    def run_allreduce(self, gradient_vectors: List[List[int]]):
        return [
            self.env.process(worker.allreduce(vector))
            for worker, vector in zip(self.workers, gradient_vectors)
        ]


def _make_worker(env: Environment, index: int, config: TrioMLJobConfig,
                 straggle_hook=None) -> TrioMLWorker:
    return TrioMLWorker(
        env,
        name=f"server{index + 1}",
        src_id=index,
        job_id=config.job_id,
        mac=MACAddress(0x02_00_00_00_00_01 + index),
        ip=IPv4Address(f"10.0.0.{index + 1}"),
        router_mac=config.router_mac,
        service_ip=config.service_ip,
        grads_per_packet=config.grads_per_packet,
        window=config.window,
        straggle_hook=straggle_hook,
        retransmit_timeout_s=config.retransmit_timeout_s,
    )


def build_single_pfe_testbed(
    env: Environment,
    config: Optional[TrioMLJobConfig] = None,
    num_workers: int = 4,
    chipset: Optional[TrioChipsetConfig] = None,
    with_detector: bool = False,
    hook_factory: Optional[HookFactory] = None,
    link_loss_rate: float = 0.0,
) -> SinglePfeTestbed:
    """Four (by default) servers connected to the same PFE (§6.3)."""
    config = config or TrioMLJobConfig()
    pfe = PFE(env, "pfe1", config=chipset, num_ports=num_workers)
    topology = Topology(env)
    workers: List[TrioMLWorker] = []
    ports: Dict[str, str] = {}
    for index in range(num_workers):
        hook = hook_factory(index) if hook_factory else None
        worker = _make_worker(env, index, config, hook)
        topology.add_host(worker)
        topology.connect(worker.nic.port, pfe.port(index),
                         loss_rate=link_loss_rate, loss_seed=index + 1)
        ports[worker.name] = pfe.port(index).name
        workers.append(worker)
    handle = setup_single_level_job(
        pfe, config, workers, ports, with_detector=with_detector
    )
    if with_detector:
        handle.start_detectors()
    return SinglePfeTestbed(
        env=env, pfe=pfe, workers=workers, handle=handle, topology=topology
    )


def build_hierarchical_testbed(
    env: Environment,
    config: Optional[TrioMLJobConfig] = None,
    chipset: Optional[TrioChipsetConfig] = None,
    with_detector: bool = False,
    hook_factory: Optional[HookFactory] = None,
) -> HierarchicalTestbed:
    """The Figure 11(b) topology: six servers, PFE1/PFE2 first level,
    PFE4 top-level aggregator."""
    config = config or TrioMLJobConfig()
    router = TrioRouter(env, num_pfes=6, ports_per_pfe=4, config=chipset)
    topology = Topology(env)
    workers: List[TrioMLWorker] = []
    ports: Dict[str, tuple] = {}
    first_level: Dict[str, List[TrioMLWorker]] = {"pfe1": [], "pfe2": []}
    for index in range(6):
        pfe_name = "pfe1" if index < 3 else "pfe2"
        port_index = index % 3
        hook = hook_factory(index) if hook_factory else None
        worker = _make_worker(env, index, config, hook)
        topology.add_host(worker)
        topology.connect(worker.nic.port, router.pfe(pfe_name).port(port_index))
        ports[worker.name] = (pfe_name, f"{pfe_name}.p{port_index}")
        first_level[pfe_name].append(worker)
        workers.append(worker)
    handle = setup_hierarchical_job(
        router, config, first_level, ports, top_pfe="pfe4",
        with_detector=with_detector,
    )
    if with_detector:
        handle.start_detectors()
    return HierarchicalTestbed(
        env=env, router=router, workers=workers, handle=handle,
        topology=topology,
    )
