"""Command-line runner for the evaluation experiments.

Usage::

    python -m repro.harness list
    python -m repro.harness table1 fig14 fig15
    python -m repro.harness all
    python -m repro.harness fig16 --fast
    python -m repro.harness fig15 fig16 --parallel 4
    python -m repro.harness profile fig13 --trace out.json

``--fast`` shrinks the packet-level sweeps (fewer blocks, smaller
windows) for a quick smoke run; the full runs match EXPERIMENTS.md.
``--parallel N`` fans the independent points of each sweep across up to
N worker processes; every point is deterministic in isolation, so the
results are bit-identical to a serial run.

``profile`` is a mode, not an experiment: it enables the
:mod:`repro.obs` subsystem, runs a small data-plane slice (so every
probe family — PPE occupancy, RMW utilisation, block lifecycle — shows
up even when profiling trainer-level experiments), then runs the named
experiments and writes the trace (``--trace``, Chrome ``trace_event``
JSON, loadable in Perfetto) and metrics snapshot (``--metrics``).
``--obs`` enables recording without the slice for any normal run.
"""

from __future__ import annotations

import argparse
import sys
import time
from functools import partial
from typing import Callable, Dict

from repro.harness import charts
from repro.harness import experiments as exp
from repro.harness import figures


def _run_table1() -> str:
    return figures.render_table1(exp.table1_models())


def _run_fig12() -> str:
    return figures.render_fig12(exp.fig12_time_to_accuracy())


def _run_fig13(chart: bool = False, parallel=None) -> str:
    results = exp.fig13_iteration_time(parallel=parallel)
    rendered = figures.render_fig13(results)
    if chart:
        panels = [charts.fig13_chart(results, model) for model in results]
        rendered += "\n\n" + "\n\n".join(panels)
    return rendered


def _run_fig14(fast: bool, parallel=None) -> str:
    return figures.render_fig14(exp.fig14_mitigation(
        blocks=8 if fast else 20, parallel=parallel
    ))


def _run_fig15(fast: bool, parallel=None) -> str:
    return figures.render_fig15(exp.fig15_latency_rate(
        blocks=20 if fast else 100, parallel=parallel
    ))


def _run_fig16(fast: bool, chart: bool = False, parallel=None) -> str:
    windows = (1, 4, 16, 64, 256) if fast else exp.FIG16_WINDOWS
    results = exp.fig16_window_sweep(windows=windows, parallel=parallel)
    rendered = figures.render_fig16(results)
    if chart:
        panels = [charts.fig16_chart(results, grads) for grads in results]
        rendered += "\n\n" + "\n\n".join(panels)
    return rendered


def _run_backends(parallel=None) -> str:
    return figures.render_backend_sweep(exp.backend_sweep(parallel=parallel))


def _run_hybrid(fast: bool, parallel=None) -> str:
    return figures.render_hybrid_sweep(exp.hybrid_sweep(
        num_flows=500 if fast else 2000, parallel=parallel
    ))


def _run_chains(fast: bool, parallel=None) -> str:
    return figures.render_chain_sweep(exp.chains_sweep(
        packets=1024 if fast else 4096, parallel=parallel
    ))


def _run_traffic(fast: bool, parallel=None) -> str:
    return figures.render_traffic_sweep(exp.traffic_sweep(
        num_flows=5_000 if fast else 100_000,
        chain_packets=2048 if fast else 4096,
        parallel=parallel,
    ), chain=exp.TRAFFIC_CHAIN)


def _run_calibrate() -> str:
    from repro.collectives.calibrate import calibrate, render_calibration

    return render_calibration(calibrate())


def _run_analysis() -> str:
    return figures.render_program_analysis(exp.microcode_program_analysis())


def _run_generations(fast: bool, parallel=None) -> str:
    return figures.render_generation_scaling(exp.generation_scaling(
        blocks=32 if fast else 128, parallel=parallel
    ))


def _run_loss(fast: bool, parallel=None) -> str:
    return figures.render_loss_recovery(exp.loss_recovery_sweep(
        blocks=16 if fast else 32, parallel=parallel
    ))


def _run_ablations(fast: bool) -> str:
    sections = [
        figures.render_ablation(
            "Ablation: RMW engine offload vs thread-ownership locking (§2.3)",
            exp.ablation_rmw_offload(
                num_threads=16 if fast else 64,
                updates_per_thread=8 if fast else 32,
            ),
        ),
        figures.render_ablation(
            "Ablation: parallel timer-thread table scanning (§5)",
            exp.ablation_scan_threads(
                num_records=2_000 if fast else 20_000
            ),
        ),
        figures.render_ablation(
            "Ablation: single-level vs hierarchical aggregation (§4)",
            exp.ablation_hierarchy(
                blocks=64 if fast else 512,
                window=32 if fast else 256,
            ),
        ),
        figures.render_ablation(
            "Ablation: tail-read chunk size (Figure 10 loop)",
            exp.ablation_tail_chunk(blocks=8 if fast else 32),
        ),
    ]
    return "\n\n".join(sections)


def build_registry(fast: bool, chart: bool = False, parallel=None
                   ) -> Dict[str, Callable[[], str]]:
    return {
        "table1": _run_table1,
        "fig12": _run_fig12,
        "fig13": partial(_run_fig13, chart, parallel=parallel),
        "fig14": partial(_run_fig14, fast, parallel=parallel),
        "fig15": partial(_run_fig15, fast, parallel=parallel),
        "fig16": partial(_run_fig16, fast, chart, parallel=parallel),
        "backends": partial(_run_backends, parallel=parallel),
        "hybrid": partial(_run_hybrid, fast, parallel=parallel),
        "chains": partial(_run_chains, fast, parallel=parallel),
        "traffic": partial(_run_traffic, fast, parallel=parallel),
        "calibrate": _run_calibrate,
        "analysis": _run_analysis,
        "ablations": partial(_run_ablations, fast),
        "generations": partial(_run_generations, fast, parallel=parallel),
        "loss": partial(_run_loss, fast, parallel=parallel),
    }


def _run_names(names, registry) -> None:
    """Run the named experiments, printing output and elapsed time."""
    for name in names:
        start = time.perf_counter()  # detlint: ok(wall-clock progress report)
        output = registry[name]()
        elapsed = time.perf_counter() - start  # detlint: ok(progress report)
        print(output)
        print(f"[{name} completed in {elapsed:.1f}s]\n")


def _run_observed(names, registry, args, with_slice: bool) -> int:
    """Run experiments under a recording obs session.

    ``profile`` mode (``with_slice``) prepends a small data-plane slice
    so the trace always carries PPE/RMW/block tracks; ``--obs`` records
    whatever the named experiments themselves probe.
    """
    import json

    from repro import obs

    obs.enable(scope="main")
    try:
        if with_slice:
            stats = exp.profile_dataplane_slice(blocks=3 if args.fast else 6)
            print(f"[dataplane slice: {stats['simulated_s'] * 1e3:.2f} ms "
                  f"simulated, {int(stats['scheduled_events'])} events, "
                  f"{int(stats['blocks_mitigated'])} blocks mitigated]\n")
            flow_stats = exp.profile_flowsim_slice(
                num_flows=100 if args.fast else 300)
            escalations = ", ".join(
                f"{key.split('.', 1)[1]} {int(value)}"
                for key, value in sorted(flow_stats.items())
                if key.startswith("escalations.")
            ) or "none"
            print(f"[flowsim slice: {flow_stats['simulated_s'] * 1e3:.2f} ms "
                  f"simulated, {int(flow_stats['flows'])} flows, "
                  f"{int(flow_stats['solves'])} solves, "
                  f"escalations: {escalations}]\n")
        _run_names(names, registry)
    finally:
        captured = obs.disable()
    chrome = captured.tracer.to_chrome()
    if args.trace:
        with open(args.trace, "w", encoding="utf-8") as fh:
            json.dump(chrome, fh)
        print(f"[trace: {args.trace} "
              f"({len(chrome['traceEvents'])} events)]")
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as fh:
            fh.write(captured.registry.to_json() + "\n")
        print(f"[metrics: {args.metrics}]")
    print()
    print(obs.render_timeline(chrome))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*", default=["list"],
        help="experiment names (see 'list'), or 'all'",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="shrink the packet-level sweeps for a quick run",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="append ASCII charts to figure output (fig13, fig16)",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="fan independent sweep points across up to N worker "
             "processes (results are bit-identical to a serial run)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="base seed adopted by every simulation Environment; the "
             "default keeps the calibrated per-component streams",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="record observability (metrics + trace) for this run "
             "without the profile mode's data-plane slice",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the Chrome trace_event JSON here (implies --obs)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the metrics snapshot JSON here (implies --obs)",
    )
    args = parser.parse_args(argv)
    if args.parallel is not None and args.parallel < 1:
        parser.error("--parallel must be >= 1")
    if args.seed is not None:
        from repro.sim import set_default_seed

        set_default_seed(args.seed)
    registry = build_registry(args.fast, args.chart, args.parallel)

    names = args.experiments
    if names == ["list"]:
        print("available experiments:")
        for name in registry:
            print(f"  {name}")
        print("  all")
        print("modes:")
        print("  profile <experiments...>  "
              "record a trace + metrics (see --trace/--metrics)")
        return 0
    profile = bool(names) and names[0] == "profile"
    if profile:
        names = names[1:]
    if "all" in names:
        names = list(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    if profile or args.obs or args.trace or args.metrics:
        return _run_observed(names, registry, args, with_slice=profile)
    _run_names(names, registry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
