"""Experiment harness: per-figure drivers and testbed builders.

Every table and figure of the paper's evaluation has one driver in
:mod:`repro.harness.experiments`; :mod:`repro.harness.testbed` builds the
Figure 11 topologies; :mod:`repro.harness.figures` renders results as the
rows/series the paper reports.
"""

from repro.harness.testbed import (
    HierarchicalTestbed,
    SinglePfeTestbed,
    build_hierarchical_testbed,
    build_single_pfe_testbed,
)
from repro.harness import experiments
from repro.harness import figures

__all__ = [
    "HierarchicalTestbed",
    "SinglePfeTestbed",
    "build_hierarchical_testbed",
    "build_single_pfe_testbed",
    "experiments",
    "figures",
]
