"""ASCII charts: render experiment series as terminal plots.

The paper's figures are line charts; :func:`line_chart` renders one or
more (x, y) series on a shared text canvas so
``python -m repro.harness fig13 --chart`` output can be eyeballed without
external plotting.  Deliberately simple: linear axes, one glyph per
series, nearest-cell rasterisation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["line_chart", "fig13_chart", "fig16_chart"]

Series = Sequence[Tuple[float, float]]

#: Glyphs assigned to series in order.
GLYPHS = "*o+x#@"


def line_chart(
    series: Dict[str, Series],
    title: str = "",
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series onto one text canvas with a legend."""
    if not series or all(len(points) == 0 for points in series.values()):
        raise ValueError("line_chart needs at least one non-empty series")
    if width < 10 or height < 4:
        raise ValueError("canvas too small")

    points = [p for s in series.values() for p in s]
    xs = [x for x, __ in points]
    ys = [y for __, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for __ in range(height)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        col = round((x - x_min) / x_span * (width - 1))
        row = round((y - y_min) / y_span * (height - 1))
        return height - 1 - row, col

    for index, (name, data) in enumerate(series.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        # Connect consecutive points with interpolated cells.
        ordered = sorted(data)
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            steps = max(abs(cell(x1, y1)[1] - cell(x0, y0)[1]), 1)
            for step in range(steps + 1):
                t = step / steps
                row, col = cell(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t)
                canvas[row][col] = glyph
        for x, y in ordered:
            row, col = cell(x, y)
            canvas[row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    y_top = f"{y_max:.6g}"
    y_bottom = f"{y_min:.6g}"
    margin = max(len(y_top), len(y_bottom), len(y_label)) + 1
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            prefix = y_top.rjust(margin)
        elif row_index == height - 1:
            prefix = y_bottom.rjust(margin)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    x_axis = " " * margin + "+" + "-" * width
    lines.append(x_axis)
    x_left = f"{x_min:.6g}"
    x_right = f"{x_max:.6g}"
    gap = width - len(x_left) - len(x_right)
    middle = x_label.center(max(gap, 0)) if x_label else " " * max(gap, 0)
    lines.append(" " * (margin + 1) + x_left + middle + x_right)
    legend = "   ".join(
        f"{GLYPHS[i % len(GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


def fig13_chart(results, model: str) -> str:
    """Figure 13 panel for one model as an ASCII chart."""
    rows = results[model]
    series = {
        "Ideal": [(r.probability * 100, r.ideal_ms) for r in rows],
        "Trio-ML": [(r.probability * 100, r.trioml_ms) for r in rows],
        "SwitchML": [(r.probability * 100, r.switchml_ms) for r in rows],
    }
    return line_chart(
        series,
        title=f"Figure 13 [{model}]: iteration time vs straggling probability",
        x_label="p (%)",
        y_label="ms",
    )


def fig16_chart(results, grads: int) -> str:
    """Figure 16(b)-style throughput-vs-window ASCII chart."""
    rows = results[grads]
    series = {
        f"Trio-ML-{grads}": [
            (float(r.window), r.throughput_gbps) for r in rows
        ],
    }
    return line_chart(
        series,
        title=f"Figure 16b [Trio-ML-{grads}]: throughput vs window",
        x_label="window",
        y_label="Gbps",
    )
