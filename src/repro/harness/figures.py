"""Text renderers: print each experiment as the rows the paper reports."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.harness import experiments as exp

__all__ = [
    "render_backend_sweep",
    "render_chain_sweep",
    "render_table1",
    "render_fig12",
    "render_fig13",
    "render_fig14",
    "render_fig15",
    "render_fig16",
    "render_hybrid_sweep",
    "render_program_analysis",
    "render_traffic_sweep",
    "render_ablation",
    "render_generation_scaling",
    "to_csv",
    "fig13_to_csv",
    "fig15_to_csv",
    "fig16_to_csv",
    "hybrid_to_csv",
    "traffic_to_csv",
]


def _rule(width: int = 72) -> str:
    return "-" * width


def render_table1(rows: List[Dict[str, object]]) -> str:
    lines = [
        "Table 1: DNN models used in the experiments",
        _rule(),
        f"{'Model':<14}{'Size':>8}{'Batch size/GPU':>18}{'Dataset':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row['model']:<14}{row['size_mb']:>6} MB"
            f"{row['batch_size_per_gpu']:>18}{row['dataset']:>12}"
        )
    return "\n".join(lines)


def render_fig12(results: Dict[str, "exp.Fig12Result"]) -> str:
    lines = ["Figure 12: time-to-accuracy at straggling probability p=16%",
             _rule()]
    for result in results.values():
        lines.append(
            f"{result.model:<14} target {result.target_accuracy:.0f}% top-5: "
            f"Trio-ML {result.trioml_minutes:7.1f} min | "
            f"SwitchML {result.switchml_minutes:7.1f} min | "
            f"speedup {result.speedup:.2f}x"
        )
    return "\n".join(lines)


def render_fig13(results: Dict[str, List["exp.Fig13Row"]]) -> str:
    lines = ["Figure 13: training iteration time vs straggling probability",
             _rule()]
    for model, rows in results.items():
        lines.append(f"[{model}]")
        lines.append(
            f"{'p':>6}{'Ideal (ms)':>14}{'Trio-ML (ms)':>14}"
            f"{'SwitchML (ms)':>15}{'speedup':>10}"
        )
        for row in rows:
            lines.append(
                f"{row.probability * 100:>5.0f}%{row.ideal_ms:>14.1f}"
                f"{row.trioml_ms:>14.1f}{row.switchml_ms:>15.1f}"
                f"{row.speedup:>9.2f}x"
            )
    return "\n".join(lines)


def render_backend_sweep(rows: List["exp.BackendSweepRow"],
                         model: str = "resnet50") -> str:
    """One column per registered backend, one row per probability."""
    from repro.collectives import get_backend

    systems = list(rows[0].iteration_ms) if rows else []
    width = max(14, *(len(get_backend(s).display_name) + 2
                      for s in systems)) if systems else 14
    lines = [
        "Backend sweep: iteration time (ms) vs straggling probability "
        f"[{model}]",
        _rule(max(72, 6 + width * len(systems))),
        f"{'p':>6}" + "".join(
            f"{get_backend(s).display_name:>{width}}" for s in systems
        ),
    ]
    for row in rows:
        lines.append(
            f"{row.probability * 100:>5.0f}%" + "".join(
                f"{row.iteration_ms[s]:>{width}.1f}" for s in systems
            )
        )
    return "\n".join(lines)


def render_fig14(rows: List["exp.Fig14Row"]) -> str:
    lines = ["Figure 14: in-network timer threads' efficiency", _rule(),
             f"{'Timeout (ms)':>14}{'Mean mitigation (ms)':>22}"
             f"{'Max (ms)':>10}{'Blocks':>8}"]
    for row in rows:
        lines.append(
            f"{row.timeout_ms:>14.1f}{row.mean_mitigation_ms:>22.2f}"
            f"{row.max_mitigation_ms:>10.2f}{row.blocks_mitigated:>8}"
        )
    return "\n".join(lines)


def render_fig15(rows: List["exp.Fig15Row"]) -> str:
    lines = ["Figure 15: per-PFE aggregation latency and rate (window=1)",
             _rule(),
             f"{'Grads/packet':>13}{'Latency (us)':>14}"
             f"{'Rate (grad/us)':>16}"]
    for row in rows:
        lines.append(
            f"{row.grads_per_packet:>13}{row.latency_us:>14.2f}"
            f"{row.rate_grads_per_us:>16.2f}"
        )
    return "\n".join(lines)


def render_fig16(results: Dict[int, List["exp.Fig16Row"]]) -> str:
    lines = ["Figure 16: impact of window size on latency and throughput",
             _rule()]
    for grads, rows in sorted(results.items()):
        lines.append(f"[Trio-ML-{grads}]")
        lines.append(
            f"{'Window':>8}{'Latency (us)':>14}{'Throughput (Gbps)':>19}"
        )
        for row in rows:
            lines.append(
                f"{row.window:>8}{row.latency_us:>14.1f}"
                f"{row.throughput_gbps:>19.2f}"
            )
    return "\n".join(lines)


def render_program_analysis(analysis: "exp.ProgramAnalysis") -> str:
    return "\n".join([
        "Section 6.3: Trio-ML Microcode program analysis",
        _rule(),
        f"static program size:           ~{analysis.static_instructions} "
        "instructions",
        f"aggregation loop efficiency:    "
        f"{analysis.loop_instructions_per_gradient:.2f} instructions/gradient",
        f"measured (incl. overheads):     "
        f"{analysis.measured_instructions_per_gradient:.2f} "
        "instructions/gradient",
        f"read-modify-write engines:      {analysis.rmw_engines} "
        f"({analysis.rmw_add_cycles} cycles/add)",
        f"aggregate add rate:             "
        f"{analysis.rmw_add_rate_ops_per_s / 1e9:.1f} Gops/s per PFE",
    ])


def render_ablation(title: str, rows: Sequence["exp.AblationRow"]) -> str:
    lines = [title, _rule()]
    for row in rows:
        lines.append(f"{row.label:<46}{row.value:>14.2f} {row.unit}")
    return "\n".join(lines)


def render_generation_scaling(rows: Sequence["exp.GenerationRow"]) -> str:
    lines = [
        "Supplementary: the same aggregation job across Trio generations",
        _rule(),
        f"{'Gen':>4}{'Year':>6}{'PPEs':>6}{'RMW engines':>13}"
        f"{'Completion (ms)':>17}{'Throughput (Gbps)':>19}",
    ]
    for row in rows:
        lines.append(
            f"{row.generation:>4}{row.year:>6}{row.num_ppes:>6}"
            f"{row.rmw_engines:>13}{row.completion_ms:>17.3f}"
            f"{row.throughput_gbps:>19.2f}"
        )
    return "\n".join(lines)


def render_hybrid_sweep(rows: Sequence["exp.HybridRow"]) -> str:
    lines = [
        "Hybrid flow/packet simulation: FCT and escalations vs offered load",
        _rule(88),
        f"{'Load':>6}{'Flows':>7}{'Mean FCT (ms)':>15}{'p99 (ms)':>10}"
        f"{'Goodput (Gbps)':>16}{'Sim (GB)':>10}{'Solves':>8}"
        f"{'Escalated':>11}",
    ]
    for row in rows:
        detail = ", ".join(f"{reason} {count}"
                           for reason, count in row.escalations.items())
        lines.append(
            f"{row.load * 100:>5.0f}%{row.flows:>7}{row.mean_fct_ms:>15.3f}"
            f"{row.p99_fct_ms:>10.2f}{row.mean_goodput_gbps:>16.2f}"
            f"{row.simulated_gbytes:>10.2f}{row.solves:>8}"
            f"{row.escalated_total:>11}"
            + (f"  ({detail})" if detail else "")
        )
    return "\n".join(lines)


def render_traffic_sweep(rows: Sequence["exp.TrafficRow"],
                         chain: str = "firewall -> telemetry") -> str:
    """Every registered traffic scenario at both simulation levels.

    The fluid columns summarise the hybrid run; the packet columns the
    chain execution over the same scenario's wire stream (drops are the
    firewall's policers and blocklists doing their job on the DDoS and
    heavy-hitter mixes).
    """
    lines = [
        f"Traffic scenario sweep (fluid level + packet level vs {chain})",
        _rule(100),
        f"{'Scenario':<14}{'Flows':>8}{'Mean FCT (ms)':>15}{'p99 (ms)':>10}"
        f"{'Goodput (Gbps)':>16}{'Escalated':>11}{'Pkts':>7}{'Drop%':>7}",
    ]
    for row in rows:
        detail = ", ".join(f"{reason} {count}"
                           for reason, count in row.escalations.items())
        lines.append(
            f"{row.scenario:<14}{row.flows:>8}{row.mean_fct_ms:>15.3f}"
            f"{row.p99_fct_ms:>10.2f}{row.mean_goodput_gbps:>16.2f}"
            f"{row.escalated_total:>11}{row.chain_packets:>7}"
            f"{row.drop_fraction * 100:>6.1f}%"
            + (f"  ({detail})" if detail else "")
        )
    total_flows = sum(row.flows for row in rows)
    total_gbytes = sum(row.simulated_gbytes for row in rows)
    lines.append(_rule(100))
    lines.append(
        f"{len(rows)} scenario(s), {total_flows} flows, "
        f"{total_gbytes:.2f} GB simulated payload"
    )
    return "\n".join(lines)


def render_chain_sweep(rows: Sequence["exp.ChainRow"],
                       spec: str = "firewall -> telemetry -> aggregate"
                       ) -> str:
    """Every legal placement of the chain, cheapest first.

    The trailing line states the placement-invariance result: the sweep
    must report exactly one distinct fingerprint however the chain is
    split across Trio / PISA / host.
    """
    lines = [
        f"NF chain placement sweep: {spec}",
        _rule(90),
        f"{'Placement':<26}{'ns/pkt':>10}{'Mpps':>8}{'Cross':>7}"
        f"{'Fwd':>8}{'Drop':>8}{'Consume':>9}{'Fingerprint':>14}",
    ]
    for row in rows:
        marker = "*" if row.chosen else " "
        mpps = 1e3 / row.per_packet_ns if row.per_packet_ns > 0 else 0.0
        lines.append(
            f"{marker}{','.join(row.placement):<25}"
            f"{row.per_packet_ns:>10.1f}{mpps:>8.2f}{row.crossings:>7}"
            f"{row.forwarded:>8}{row.dropped:>8}{row.consumed:>9}"
            f"{row.fingerprint[:12]:>14}"
        )
    distinct = len({row.fingerprint for row in rows})
    lines.append(_rule(90))
    lines.append(
        f"{len(rows)} legal placement(s), {distinct} distinct result "
        "fingerprint(s); * = greedy cost-driven choice"
    )
    return "\n".join(lines)


def render_loss_recovery(rows: Sequence["exp.LossRow"]) -> str:
    lines = [
        "Supplementary: allreduce under packet loss with §7 resiliency",
        _rule(),
        f"{'Loss rate':>10}{'Completion (ms)':>17}{'Frames lost':>13}"
        f"{'Retransmits':>13}{'Replays':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row.loss_rate * 100:>9.1f}%{row.completion_ms:>17.3f}"
            f"{row.frames_lost:>13}{row.retransmissions:>13}"
            f"{row.results_replayed:>9}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CSV export (for external plotting)
# ---------------------------------------------------------------------------


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Minimal CSV rendering (no quoting needed for our numeric data)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(str(cell) for cell in row))
    return "\n".join(lines) + "\n"


def fig13_to_csv(results: Dict[str, List["exp.Fig13Row"]]) -> str:
    rows = []
    for model, model_rows in results.items():
        for row in model_rows:
            rows.append((model, row.probability, row.ideal_ms,
                         row.trioml_ms, row.switchml_ms))
    return to_csv(
        ("model", "probability", "ideal_ms", "trioml_ms", "switchml_ms"),
        rows,
    )


def fig15_to_csv(rows: List["exp.Fig15Row"]) -> str:
    return to_csv(
        ("grads_per_packet", "latency_us", "rate_grads_per_us"),
        [(r.grads_per_packet, r.latency_us, r.rate_grads_per_us)
         for r in rows],
    )


def hybrid_to_csv(rows: List["exp.HybridRow"]) -> str:
    return to_csv(
        ("load", "flows", "mean_fct_ms", "p99_fct_ms",
         "mean_goodput_gbps", "simulated_gbytes", "sim_seconds",
         "solves", "escalated"),
        [(r.load, r.flows, r.mean_fct_ms, r.p99_fct_ms,
          r.mean_goodput_gbps, r.simulated_gbytes, r.sim_seconds,
          r.solves, r.escalated_total)
         for r in rows],
    )


def traffic_to_csv(rows: List["exp.TrafficRow"]) -> str:
    return to_csv(
        ("scenario", "flows", "mean_fct_ms", "p99_fct_ms",
         "mean_goodput_gbps", "simulated_gbytes", "sim_seconds",
         "solves", "escalated", "chain_packets", "forwarded",
         "dropped", "consumed"),
        [(r.scenario, r.flows, r.mean_fct_ms, r.p99_fct_ms,
          r.mean_goodput_gbps, r.simulated_gbytes, r.sim_seconds,
          r.solves, r.escalated_total, r.chain_packets, r.forwarded,
          r.dropped, r.consumed)
         for r in rows],
    )


def fig16_to_csv(results: Dict[int, List["exp.Fig16Row"]]) -> str:
    rows = []
    for grads, grads_rows in sorted(results.items()):
        for row in grads_rows:
            rows.append((grads, row.window, row.latency_us,
                         row.throughput_gbps))
    return to_csv(
        ("grads_per_packet", "window", "latency_us", "throughput_gbps"),
        rows,
    )
