"""Experiment drivers — one per table/figure of the paper's evaluation.

Each function returns structured results; :mod:`repro.harness.figures`
renders them as the rows/series the paper reports.  Packet-level
experiments (Figures 14–16, the §6.3 analysis, and the ablations) run on
the simulated Trio testbed; training-level experiments (Figures 12–13)
use the calibrated iteration-time models of :mod:`repro.ml`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.collectives import available_backends
from repro.ml.accuracy import AccuracyCurve
from repro.obs import bus as _obs
from repro.ml.models import DNNModel, MODEL_ZOO
from repro.ml.training import DataParallelTrainer, TrainingConfig
from repro.sim import Environment, Resource
from repro.trio.chipset import GENERATIONS
from repro.trio.hashtable import HardwareHashTable
from repro.trio.pfe import PFE
from repro.trioml.aggregator import (
    INSTRUCTIONS_PER_GRADIENT,
    STATIC_PROGRAM_INSTRUCTIONS,
)
from repro.trioml.config import TrioMLJobConfig
from repro.harness.testbed import (
    build_hierarchical_testbed,
    build_single_pfe_testbed,
)

__all__ = [
    "BackendSweepRow",
    "ChainRow",
    "DEFAULT_CHAIN",
    "Fig12Result",
    "Fig13Row",
    "Fig14Row",
    "Fig15Row",
    "Fig16Row",
    "HybridRow",
    "ProgramAnalysis",
    "TRAFFIC_CHAIN",
    "TrafficRow",
    "ablation_hierarchy",
    "ablation_rmw_offload",
    "ablation_scan_threads",
    "ablation_tail_chunk",
    "backend_sweep",
    "chains_sweep",
    "fig12_time_to_accuracy",
    "fig13_iteration_time",
    "fig14_mitigation",
    "fig15_latency_rate",
    "fig16_window_sweep",
    "generation_scaling",
    "hybrid_sweep",
    "loss_recovery_sweep",
    "microcode_program_analysis",
    "profile_dataplane_slice",
    "profile_flowsim_slice",
    "table1_models",
    "traffic_sweep",
]

#: Straggle probabilities swept in Figure 13 (x-axis 0..16%).
FIG13_PROBABILITIES = (0.0, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16)


def _map_points(worker: Callable, points: Sequence,
                parallel: Optional[int] = None) -> List:
    """Run ``worker`` over independent sweep points, optionally fanning
    them across worker processes.

    Every sweep point builds its own :class:`Environment` from its
    arguments alone, so each point is deterministic in isolation —
    executing points in separate processes cannot change any result.
    ``ProcessPoolExecutor.map`` preserves input order, so the returned
    list is bit-identical to the serial loop.  The process-wide default
    seed (``--seed``) is replicated into each worker so seeded and
    serial runs agree under any multiprocessing start method.
    """
    points = list(points)
    parent = _obs.session()
    if parent is not None:
        return _map_points_observed(worker, points, parallel, parent)
    if not parallel or parallel <= 1 or len(points) <= 1:
        return [worker(point) for point in points]
    from concurrent.futures import ProcessPoolExecutor

    from repro.sim import default_seed, set_default_seed

    with ProcessPoolExecutor(
        max_workers=min(parallel, len(points)),
        initializer=set_default_seed,
        initargs=(default_seed(),),
    ) as pool:
        return list(pool.map(worker, points))


def _map_points_observed(worker: Callable, points: List,
                         parallel: Optional[int],
                         parent: "_obs.ObsSession") -> List:
    """``_map_points`` under an active obs session.

    Each point runs in a fresh scoped session (serial: nested on the
    stack; parallel: the only session in its worker process) and returns
    ``(result, export)``; the parent merges the exports in point order.
    Both modes execute the identical enable-run-export sequence per
    point, so the merged snapshot is bit-identical serial vs parallel.
    """
    captured = _obs.CapturedWorker(worker)
    indexed = list(enumerate(points))
    if not parallel or parallel <= 1 or len(points) <= 1:
        pairs = [captured(item) for item in indexed]
    else:
        from concurrent.futures import ProcessPoolExecutor

        from repro.sim import default_seed, set_default_seed

        with ProcessPoolExecutor(
            max_workers=min(parallel, len(points)),
            initializer=set_default_seed,
            initargs=(default_seed(),),
        ) as pool:
            pairs = list(pool.map(captured, indexed))
    results = []
    for result, exported in pairs:
        parent.merge(exported)
        results.append(result)
    return results
#: Gradient-per-packet sweep of Figure 15.
FIG15_GRAD_COUNTS = (64, 128, 256, 512, 1024)
#: Window sweep of Figure 16.
FIG16_WINDOWS = (1, 4, 16, 64, 256, 1024, 4096)
#: Timeout sweep of Figure 14 (milliseconds).
FIG14_TIMEOUTS_MS = (2.5, 5.0, 10.0, 15.0, 20.0)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def table1_models() -> List[Dict[str, object]]:
    """The DNN workload table (Table 1)."""
    return [
        {
            "model": model.name,
            "size_mb": model.size_mb,
            "batch_size_per_gpu": model.batch_size,
            "dataset": model.dataset,
        }
        for model in MODEL_ZOO.values()
    ]


# ---------------------------------------------------------------------------
# Figure 12: time-to-accuracy
# ---------------------------------------------------------------------------


@dataclass
class Fig12Result:
    """One panel of Figure 12."""

    model: str
    target_accuracy: float
    trioml_minutes: float
    switchml_minutes: float
    speedup: float
    #: (minutes, accuracy) series for each system.
    trioml_curve: List[Tuple[float, float]]
    switchml_curve: List[Tuple[float, float]]


def fig12_time_to_accuracy(
    straggle_probability: float = 0.16,
    iterations: int = 100,
    seed: int = 0,
    models: Optional[Sequence[str]] = None,
) -> Dict[str, Fig12Result]:
    """Figure 12: validation accuracy vs wall-clock time at p = 16%."""
    results: Dict[str, Fig12Result] = {}
    for key in models or MODEL_ZOO:
        model = MODEL_ZOO[key]
        curve = AccuracyCurve(model)
        iteration_s: Dict[str, float] = {}
        for system in ("trioml", "switchml"):
            trainer = DataParallelTrainer(
                TrainingConfig(
                    model=model,
                    system=system,
                    straggle_probability=straggle_probability,
                    seed=seed,
                )
            )
            iteration_s[system] = trainer.average_iteration_s(iterations)
        target = model.target_accuracy
        tta = {
            system: curve.time_to_accuracy_s(target, iteration_s[system]) / 60
            for system in iteration_s
        }
        results[key] = Fig12Result(
            model=model.name,
            target_accuracy=target,
            trioml_minutes=tta["trioml"],
            switchml_minutes=tta["switchml"],
            speedup=tta["switchml"] / tta["trioml"],
            trioml_curve=curve.curve(iteration_s["trioml"], target),
            switchml_curve=curve.curve(iteration_s["switchml"], target),
        )
    return results


# ---------------------------------------------------------------------------
# Figure 13: iteration time vs straggling probability
# ---------------------------------------------------------------------------


@dataclass
class Fig13Row:
    probability: float
    ideal_ms: float
    trioml_ms: float
    switchml_ms: float

    @property
    def speedup(self) -> float:
        return self.switchml_ms / self.trioml_ms


def _fig13_point(args: Tuple[str, float, int, int]) -> Fig13Row:
    """One (model, probability) point of Figure 13."""
    key, probability, iterations, seed = args
    model = MODEL_ZOO[key]
    averages = {}
    for system in ("ideal", "trioml", "switchml"):
        trainer = DataParallelTrainer(
            TrainingConfig(
                model=model,
                system=system,
                straggle_probability=probability,
                seed=seed,
            )
        )
        averages[system] = trainer.average_iteration_s(iterations)
    return Fig13Row(
        probability=probability,
        ideal_ms=averages["ideal"] * 1e3,
        trioml_ms=averages["trioml"] * 1e3,
        switchml_ms=averages["switchml"] * 1e3,
    )


def fig13_iteration_time(
    probabilities: Sequence[float] = FIG13_PROBABILITIES,
    iterations: int = 100,
    seed: int = 0,
    models: Optional[Sequence[str]] = None,
    parallel: Optional[int] = None,
) -> Dict[str, List[Fig13Row]]:
    """Figure 13: average iteration time of the first 100 iterations."""
    keys = list(models or MODEL_ZOO)
    points = [
        (key, probability, iterations, seed)
        for key in keys
        for probability in probabilities
    ]
    rows = _map_points(_fig13_point, points, parallel)
    results: Dict[str, List[Fig13Row]] = {}
    for (key, *_), row in zip(points, rows):
        results.setdefault(key, []).append(row)
    return results


# ---------------------------------------------------------------------------
# Backend sweep: Figure 13 generalised over the collective registry
# ---------------------------------------------------------------------------


@dataclass
class BackendSweepRow:
    """Average iteration time of every swept backend at one probability."""

    probability: float
    #: backend name -> mean iteration time (ms).
    iteration_ms: Dict[str, float]


def _backend_sweep_point(
    args: Tuple[str, float, int, int, Tuple[str, ...]]
) -> BackendSweepRow:
    """One probability point of the registry-wide backend sweep."""
    key, probability, iterations, seed, systems = args
    model = MODEL_ZOO[key]
    iteration_ms: Dict[str, float] = {}
    for system in systems:
        trainer = DataParallelTrainer(
            TrainingConfig(
                model=model,
                system=system,
                straggle_probability=probability,
                seed=seed,
            )
        )
        iteration_ms[system] = trainer.average_iteration_s(iterations) * 1e3
    return BackendSweepRow(probability=probability, iteration_ms=iteration_ms)


def backend_sweep(
    model: str = "resnet50",
    probabilities: Sequence[float] = FIG13_PROBABILITIES,
    systems: Optional[Sequence[str]] = None,
    iterations: int = 100,
    seed: int = 0,
    parallel: Optional[int] = None,
) -> List[BackendSweepRow]:
    """Figure 13's sweep generalised over the collective-backend registry.

    By default every registered backend is a series — including ones the
    paper does not plot (e.g. ``ring-straggler``), which is how a new
    plugin becomes a figure without touching the harness.  Pass
    ``systems`` to sweep a subset.
    """
    systems = tuple(systems) if systems else available_backends()
    points = [
        (model, probability, iterations, seed, systems)
        for probability in probabilities
    ]
    return _map_points(_backend_sweep_point, points, parallel)


# ---------------------------------------------------------------------------
# Figure 14: straggler mitigation time vs timeout
# ---------------------------------------------------------------------------


@dataclass
class Fig14Row:
    timeout_ms: float
    mean_mitigation_ms: float
    max_mitigation_ms: float
    blocks_mitigated: int


def _fig14_point(args: Tuple[float, int, int, int]) -> Fig14Row:
    """One timeout point of Figure 14."""
    timeout_ms, blocks, grads_per_packet, detector_threads = args
    env = Environment()
    config = TrioMLJobConfig(
        grads_per_packet=grads_per_packet,
        window=blocks,
        timeout_s=timeout_ms / 1e3,
        detector_threads=detector_threads,
    )
    testbed = build_single_pfe_testbed(
        env, config, num_workers=4, with_detector=True
    )
    vector = [1] * (grads_per_packet * blocks)
    senders = testbed.workers[:3]  # server 4 is the straggler
    procs = [env.process(w.allreduce(vector)) for w in senders]
    env.run(until=env.all_of(procs))
    mitigation_ms: List[float] = []
    for worker in senders:
        for key, sent in worker.send_times.items():
            received = worker.result_times.get(key)
            if received is not None:
                mitigation_ms.append((received - sent) * 1e3)
    return Fig14Row(
        timeout_ms=timeout_ms,
        mean_mitigation_ms=sum(mitigation_ms) / len(mitigation_ms),
        max_mitigation_ms=max(mitigation_ms),
        blocks_mitigated=len(mitigation_ms),
    )


def fig14_mitigation(
    timeouts_ms: Sequence[float] = FIG14_TIMEOUTS_MS,
    blocks: int = 20,
    grads_per_packet: int = 256,
    detector_threads: int = 20,
    parallel: Optional[int] = None,
) -> List[Fig14Row]:
    """Figure 14: time from sending an aggregation packet to receiving the
    (partial) result, with one permanently straggling server.

    Four servers on one PFE; server 4 never sends; the others send
    ``blocks`` back-to-back packets each.  Every block must age out, so
    the measured latency is the straggler-detection time — the paper's
    claim is that it stays within 2x the timeout interval.
    """
    points = [
        (timeout_ms, blocks, grads_per_packet, detector_threads)
        for timeout_ms in timeouts_ms
    ]
    return _map_points(_fig14_point, points, parallel)


# ---------------------------------------------------------------------------
# Figure 15: aggregation latency and rate vs gradients per packet
# ---------------------------------------------------------------------------


@dataclass
class Fig15Row:
    grads_per_packet: int
    latency_us: float
    rate_grads_per_us: float


def _fig15_point(args: Tuple[int, int]) -> Tuple[Fig15Row, int]:
    """One gradients-per-packet point of Figure 15.

    Returns the row plus the kernel's total scheduled-event count — the
    determinism fingerprint the regression test compares across serial,
    fast-path, and ``--parallel`` runs.
    """
    grads, blocks = args
    env = Environment()
    config = TrioMLJobConfig(grads_per_packet=grads, window=1)
    testbed = build_single_pfe_testbed(env, config, num_workers=4)
    vector = [1] * (grads * blocks)
    procs = testbed.run_allreduce([vector] * 4)
    env.run(until=env.all_of(procs))
    latencies = testbed.handle.aggregator.packet_latencies
    mean_latency_s = sum(latencies) / len(latencies)
    row = Fig15Row(
        grads_per_packet=grads,
        latency_us=mean_latency_s * 1e6,
        rate_grads_per_us=grads / (mean_latency_s * 1e6),
    )
    return row, env.scheduled_events


def fig15_latency_rate(
    grad_counts: Sequence[int] = FIG15_GRAD_COUNTS,
    blocks: int = 100,
    parallel: Optional[int] = None,
) -> List[Fig15Row]:
    """Figure 15: per-PFE aggregation latency (window = 1) and the derived
    aggregation rate, as gradients-per-packet grows."""
    points = [(grads, blocks) for grads in grad_counts]
    return [row for row, _ in _map_points(_fig15_point, points, parallel)]


# ---------------------------------------------------------------------------
# Figure 16: window sweep
# ---------------------------------------------------------------------------


@dataclass
class Fig16Row:
    window: int
    latency_us: float
    throughput_gbps: float


def _fig16_point(args: Tuple[int, int, int]) -> Fig16Row:
    """One (grads, window) point of Figure 16."""
    grads, window, blocks = args
    env = Environment()
    config = TrioMLJobConfig(grads_per_packet=grads, window=window)
    testbed = build_single_pfe_testbed(env, config, num_workers=4)
    vector = [1] * (grads * blocks)
    start = env.now
    procs = testbed.run_allreduce([vector] * 4)
    env.run(until=env.all_of(procs))
    elapsed = env.now - start
    aggregator = testbed.handle.aggregator
    latencies = aggregator.packet_latencies
    total_bits = aggregator.gradients_aggregated * 32
    return Fig16Row(
        window=window,
        latency_us=sum(latencies) / len(latencies) * 1e6,
        throughput_gbps=total_bits / elapsed / 1e9,
    )


def fig16_window_sweep(
    windows: Sequence[int] = FIG16_WINDOWS,
    grad_counts: Sequence[int] = (512, 1024),
    blocks_for: Optional[Callable[[int], int]] = None,
    parallel: Optional[int] = None,
) -> Dict[int, List[Fig16Row]]:
    """Figure 16: aggregation latency and PFE throughput vs window size,
    for Trio-ML-512 and Trio-ML-1024."""
    if blocks_for is None:
        blocks_for = lambda window: max(128, min(2 * window, window + 1024))
    # blocks_for is resolved here so the sweep points stay picklable even
    # when the caller passes a lambda.
    points = [
        (grads, window, blocks_for(window))
        for grads in grad_counts
        for window in windows
    ]
    rows = _map_points(_fig16_point, points, parallel)
    results: Dict[int, List[Fig16Row]] = {}
    for (grads, *_), row in zip(points, rows):
        results.setdefault(grads, []).append(row)
    return results


# ---------------------------------------------------------------------------
# §6.3 Microcode program analysis
# ---------------------------------------------------------------------------


@dataclass
class ProgramAnalysis:
    """The numbers §6.3's prose reports."""

    static_instructions: int
    loop_instructions_per_gradient: float
    measured_instructions_per_gradient: float
    rmw_engines: int
    rmw_add_cycles: int
    rmw_add_rate_ops_per_s: float


def microcode_program_analysis(
    grads_per_packet: int = 1024, blocks: int = 32
) -> ProgramAnalysis:
    """Reproduce the §6.3 program analysis: ~60 static instructions,
    ~1.2 run-time instructions per gradient in the aggregation loop, and
    6 billion RMW add operations per second per PFE."""
    env = Environment()
    config = TrioMLJobConfig(grads_per_packet=grads_per_packet, window=8)
    testbed = build_single_pfe_testbed(env, config, num_workers=4)
    vector = [1] * (grads_per_packet * blocks)
    procs = testbed.run_allreduce([vector] * 4)
    env.run(until=env.all_of(procs))
    aggregator = testbed.handle.aggregator
    total_instructions = sum(
        ppe.instructions_executed for ppe in testbed.pfe.ppes
    )
    chipset = testbed.pfe.config
    return ProgramAnalysis(
        static_instructions=STATIC_PROGRAM_INSTRUCTIONS,
        loop_instructions_per_gradient=INSTRUCTIONS_PER_GRADIENT,
        measured_instructions_per_gradient=(
            total_instructions / aggregator.gradients_aggregated
        ),
        rmw_engines=chipset.num_rmw_engines,
        rmw_add_cycles=chipset.rmw_add32_cycles,
        rmw_add_rate_ops_per_s=chipset.rmw_add32_rate_ops_s,
    )


# ---------------------------------------------------------------------------
# Ablations (design choices DESIGN.md calls out)
# ---------------------------------------------------------------------------


@dataclass
class AblationRow:
    """Generic (label, value) ablation result."""

    label: str
    value: float
    unit: str


# ---------------------------------------------------------------------------
# Supplementary: packet-loss resiliency (§7 provisions, implemented)
# ---------------------------------------------------------------------------


@dataclass
class LossRow:
    loss_rate: float
    completion_ms: float
    frames_lost: int
    retransmissions: int
    results_replayed: int


def _loss_point(args: Tuple[float, int, int]) -> LossRow:
    """One loss-rate point of the loss-recovery sweep."""
    loss_rate, blocks, grads_per_packet = args
    env = Environment()
    config = TrioMLJobConfig(
        grads_per_packet=grads_per_packet,
        window=8,
        loss_recovery=True,
        retransmit_timeout_s=0.002,
    )
    testbed = build_single_pfe_testbed(
        env, config, num_workers=4, link_loss_rate=loss_rate
    )
    vector = [1] * (grads_per_packet * blocks)
    procs = testbed.run_allreduce([vector] * 4)
    env.run(until=env.all_of(procs))
    for proc in procs:
        if any(block.values != [4] * grads_per_packet
               for block in proc.value):
            raise AssertionError(
                f"loss recovery produced a wrong sum at {loss_rate:.0%}"
            )
    runtime = next(iter(testbed.handle.runtimes.values()))
    return LossRow(
        loss_rate=loss_rate,
        completion_ms=env.now * 1e3,
        frames_lost=sum(l.frames_lost for l in testbed.topology.links),
        retransmissions=sum(w.retransmissions for w in testbed.workers),
        results_replayed=runtime.results_replayed,
    )


def loss_recovery_sweep(
    loss_rates: Sequence[float] = (0.0, 0.01, 0.02, 0.05, 0.10),
    blocks: int = 32,
    grads_per_packet: int = 256,
    parallel: Optional[int] = None,
) -> List[LossRow]:
    """Supplementary experiment: allreduce completion under transient
    packet loss with the §7 resiliency provisions enabled (worker
    retransmission + aggregator Result replay).  Every run must complete
    with exact sums; higher loss costs retransmission round trips."""
    points = [
        (loss_rate, blocks, grads_per_packet) for loss_rate in loss_rates
    ]
    return _map_points(_loss_point, points, parallel)


# ---------------------------------------------------------------------------
# Supplementary: generation scaling (§2's six generations)
# ---------------------------------------------------------------------------


@dataclass
class GenerationRow:
    generation: int
    year: int
    num_ppes: int
    rmw_engines: int
    completion_ms: float
    throughput_gbps: float


def generation_scaling(
    generations: Sequence[int] = (1, 2, 3, 4, 5, 6),
    blocks: int = 128,
    grads_per_packet: int = 512,
    window: int = 64,
    parallel: Optional[int] = None,
) -> List[GenerationRow]:
    """Supplementary experiment: the same Trio-ML aggregation job on every
    chipset generation (§2: 16 PPEs/2 RMW engines in 2009 through 160
    PPEs/24 engines in 2022).  Aggregation throughput scales with the RMW
    complex, the paper's stated scaling strategy ("Juniper Networks
    increased the number of read-modify-write engines in each generation
    ... so that the memory bandwidth increases with the packet processing
    bandwidth", §2.3)."""
    points = [
        (gen, blocks, grads_per_packet, window) for gen in generations
    ]
    return _map_points(_generation_point, points, parallel)


def _generation_point(args: Tuple[int, int, int, int]) -> GenerationRow:
    """One chipset-generation point of the generation-scaling sweep."""
    gen, blocks, grads_per_packet, window = args
    chipset = GENERATIONS[gen]
    env = Environment()
    config = TrioMLJobConfig(grads_per_packet=grads_per_packet,
                             window=window)
    testbed = build_single_pfe_testbed(
        env, config, num_workers=4, chipset=chipset
    )
    vector = [1] * (grads_per_packet * blocks)
    procs = testbed.run_allreduce([vector] * 4)
    env.run(until=env.all_of(procs))
    aggregator = testbed.handle.aggregator
    total_bits = aggregator.gradients_aggregated * 32
    return GenerationRow(
        generation=gen,
        year=chipset.year,
        num_ppes=chipset.num_ppes,
        rmw_engines=chipset.num_rmw_engines,
        completion_ms=env.now * 1e3,
        throughput_gbps=total_bits / env.now / 1e9,
    )


def ablation_rmw_offload(num_threads: int = 64,
                         updates_per_thread: int = 32) -> List[AblationRow]:
    """§2.3's design argument: offloading read-modify-writes to engines
    next to memory vs giving one thread ownership of the location.

    Simulates ``num_threads`` concurrent threads all incrementing the
    same counter.  The lock-based variant pays two memory round trips
    (read, then write) per update while holding the location; the RMW
    engine pays one service slot next to the memory.
    """
    config = GENERATIONS[5]

    def run_rmw() -> float:
        env = Environment()
        pfe = PFE(env, "pfe", config=config, num_ports=1)
        addr = pfe.memory.alloc(16, region="sram", align=16)

        def worker():
            for __ in range(updates_per_thread):
                yield from pfe.memory.counter_inc(addr, 100)

        procs = [env.process(worker()) for __ in range(num_threads)]
        env.run(until=env.all_of(procs))
        return env.now

    def run_lock() -> float:
        env = Environment()
        pfe = PFE(env, "pfe", config=config, num_ports=1)
        addr = pfe.memory.alloc(16, region="sram", align=16)
        lock = Resource(env)

        def worker():
            for __ in range(updates_per_thread):
                yield lock.request()
                try:
                    # Move the data to the thread, modify, move it back.
                    raw = yield from pfe.memory.read(addr, 16)
                    packets = int.from_bytes(raw[:8], "little") + 1
                    nbytes = int.from_bytes(raw[8:], "little") + 100
                    yield from pfe.memory.write(
                        addr,
                        packets.to_bytes(8, "little")
                        + nbytes.to_bytes(8, "little"),
                    )
                finally:
                    lock.release()

        procs = [env.process(worker()) for __ in range(num_threads)]
        env.run(until=env.all_of(procs))
        return env.now

    return [
        AblationRow("rmw-engine offload", run_rmw() * 1e6, "us"),
        AblationRow("thread-ownership lock", run_lock() * 1e6, "us"),
    ]


def ablation_scan_threads(
    thread_counts: Sequence[int] = (1, 10, 100),
    num_records: int = 20_000,
) -> List[AblationRow]:
    """§5's design argument: N parallel timer threads each scanning 1/N of
    a large hash table vs one thread scanning everything.  Reports the
    wall time of one full sweep."""
    rows: List[AblationRow] = []
    for num_threads in thread_counts:
        env = Environment()
        pfe = PFE(env, "pfe", config=GENERATIONS[5], num_ports=1)
        table = pfe.hash_table
        for i in range(num_records):
            table.insert_nowait(("job", i), i)

        def sweep(index: int, n: int = num_threads):
            def work(tctx):
                records = yield from table.scan_segment(index, n)
                yield from tctx.execute(2 * len(records))

            return work

        procs = [
            pfe.spawn_internal_thread(sweep(i), name=f"scan{i}")
            for i in range(num_threads)
        ]
        env.run(until=env.all_of(procs))
        rows.append(
            AblationRow(f"{num_threads} scan threads", env.now * 1e6, "us")
        )
    return rows


def ablation_hierarchy(blocks: int = 512,
                       grads_per_packet: int = 512,
                       window: int = 256) -> List[AblationRow]:
    """§4's hierarchical aggregation: six workers on one PFE vs three per
    first-level PFE with a top-level aggregator.

    Reports allreduce completion time in two regimes: a small
    latency-bound stream (window 4), where the extra level only adds
    fabric hops, and a saturating stream (the defaults), where hierarchy
    spreads the RMW-add load — each first-level PFE sums 3 streams and
    the top level only 2, instead of one complex summing all 6 — and
    wins on completion time.
    """

    def run(build, config) -> float:
        env = Environment()
        testbed = build(env, config)
        n = blocks if config.window >= window else max(16, blocks // 8)
        vector = [1] * (grads_per_packet * n)
        procs = testbed.run_allreduce([vector] * 6)
        env.run(until=env.all_of(procs))
        return env.now

    def flat_build(env, config):
        return build_single_pfe_testbed(env, config, num_workers=6)

    def hier_build(env, config):
        return build_hierarchical_testbed(env, config)

    rows: List[AblationRow] = []
    for label, win in (("latency regime, window 4", 4),
                       (f"saturating regime, window {window}", window)):
        config = TrioMLJobConfig(grads_per_packet=grads_per_packet,
                                 window=win)
        flat_time = run(flat_build, config)
        config = TrioMLJobConfig(grads_per_packet=grads_per_packet,
                                 window=win)
        hier_time = run(hier_build, config)
        rows.append(AblationRow(
            f"single-level, {label}", flat_time * 1e3, "ms"))
        rows.append(AblationRow(
            f"hierarchical, {label}", hier_time * 1e3, "ms"))
    return rows


def ablation_tail_chunk(
    chunk_sizes: Sequence[int] = (16, 32, 64),
    grads_per_packet: int = 1024,
    blocks: int = 32,
) -> List[AblationRow]:
    """Figure 10's 64-byte tail-chunk loop: smaller chunks mean more
    Memory-and-Queueing-Subsystem round trips per packet."""
    rows: List[AblationRow] = []
    for chunk in chunk_sizes:
        env = Environment()
        config = TrioMLJobConfig(grads_per_packet=grads_per_packet, window=1)
        testbed = build_single_pfe_testbed(env, config, num_workers=4)
        testbed.handle.aggregator.tail_chunk_bytes = chunk
        vector = [1] * (grads_per_packet * blocks)
        procs = testbed.run_allreduce([vector] * 4)
        env.run(until=env.all_of(procs))
        latencies = testbed.handle.aggregator.packet_latencies
        rows.append(
            AblationRow(
                f"{chunk}-byte tail chunks",
                sum(latencies) / len(latencies) * 1e6,
                "us",
            )
        )
    return rows

# ---------------------------------------------------------------------------
# Hybrid flow/packet sweep (repro.flowsim)
# ---------------------------------------------------------------------------

#: Offered loads (fraction of aggregate host access bandwidth) swept by
#: the hybrid mode.
HYBRID_LOADS = (0.3, 0.5, 0.7)


@dataclass
class HybridRow:
    """One offered-load point of the hybrid flow/packet sweep."""

    load: float
    flows: int
    mean_fct_ms: float
    p99_fct_ms: float
    mean_goodput_gbps: float
    simulated_gbytes: float
    sim_seconds: float
    solves: int
    #: Escalation counts by reason ("incast", "straggler", "pfe-hash").
    escalations: Dict[str, int]

    @property
    def escalated_total(self) -> int:
        return sum(self.escalations.values())


def _hybrid_point(args: Tuple[int, float, float]) -> HybridRow:
    """One offered-load point: a full hybrid scenario run."""
    from repro.flowsim import ScenarioConfig, run_scenario

    num_flows, load, mean_flow_bytes = args
    result = run_scenario(ScenarioConfig(
        num_flows=num_flows, load=load, mean_flow_bytes=mean_flow_bytes,
    ))
    summary = result.summary
    return HybridRow(
        load=load,
        flows=int(summary["flows"]),
        mean_fct_ms=summary["mean_fct_s"] * 1e3,
        p99_fct_ms=summary["p99_fct_s"] * 1e3,
        mean_goodput_gbps=summary["mean_goodput_bps"] / 1e9,
        simulated_gbytes=result.simulated_payload_bytes / 1e9,
        sim_seconds=result.sim_seconds,
        solves=result.solves,
        escalations=dict(sorted(result.escalations.items())),
    )


def hybrid_sweep(
    loads: Sequence[float] = HYBRID_LOADS,
    num_flows: int = 2000,
    mean_flow_bytes: float = 2e6,
    parallel: Optional[int] = None,
) -> List[HybridRow]:
    """The two-level hybrid simulation swept over offered load.

    Each point runs ``num_flows`` flows on the leaf/spine fabric through
    the fluid engine, with incast bursts, a straggler host, and
    synchronised aggregation steps escalating to the packet level.  Every
    point is a pure function of its arguments plus the process-default
    seed, so ``--parallel`` runs are bit-identical to serial ones.
    """
    points = [(num_flows, load, mean_flow_bytes) for load in loads]
    return _map_points(_hybrid_point, points, parallel)


def profile_flowsim_slice(num_flows: int = 300) -> Dict[str, float]:
    """A small hybrid run for the ``profile`` harness mode.

    Sized so every escalation reason fires: the trace gains the
    ``flowsim/escalations`` track (escalation instants plus
    escalated-flow spans in simulated time) and the metrics snapshot
    gains the ``flowsim.*`` counters the profile report lists.
    """
    from repro.flowsim import ScenarioConfig, run_scenario

    result = run_scenario(ScenarioConfig(
        num_flows=num_flows,
        incast_fraction=0.1,
        aggregation_fraction=0.1,
    ))
    stats: Dict[str, float] = {
        "simulated_s": result.sim_seconds,
        "flows": result.summary["flows"],
        "solves": float(result.solves),
        "escalated_flows": result.summary["escalated"],
    }
    for reason, count in sorted(result.escalations.items()):
        stats[f"escalations.{reason}"] = float(count)
    return stats


# ---------------------------------------------------------------------------
# Traffic scenario sweep (ROADMAP item 1, repro.traffic)
# ---------------------------------------------------------------------------

#: The chain every scenario's packet stream is validated against: the
#: DDoS and heavy-hitter families exist to exercise exactly these two
#: NFs (per-source policers, per-flow accounting).
TRAFFIC_CHAIN = "firewall -> telemetry"


@dataclass
class TrafficRow:
    """One registered traffic scenario, run at both simulation levels.

    The fluid columns come from a full hybrid run of the scenario on
    its own fabric; the packet columns from pushing the same scenario's
    wire-format stream through :data:`TRAFFIC_CHAIN`.
    """

    scenario: str
    flows: int
    mean_fct_ms: float
    p99_fct_ms: float
    mean_goodput_gbps: float
    simulated_gbytes: float
    sim_seconds: float
    solves: int
    #: Escalation counts by reason — now including the traffic
    #: library's "microburst" and "ddos" classes.
    escalations: Dict[str, int]
    chain_packets: int
    forwarded: int
    dropped: int
    consumed: int

    @property
    def escalated_total(self) -> int:
        return sum(self.escalations.values())

    @property
    def drop_fraction(self) -> float:
        if self.chain_packets <= 0:
            return 0.0
        return self.dropped / self.chain_packets


def _traffic_point(args: Tuple[str, int, int]) -> TrafficRow:
    """One scenario: a fluid run plus a packet run through the chain.

    Self-contained — the scenario is looked up by name and both runs
    are pure functions of ``(name, sizes, process default seed)`` — so
    points fan across worker processes bit-identically.
    """
    from repro.nf import compile_chain, greedy_place, run_chain
    from repro.traffic import get_scenario, packet_stream, run_fluid

    name, num_flows, chain_packets = args
    scenario = get_scenario(name)
    fluid = run_fluid(scenario, num_flows)
    summary = fluid.summary

    compiled = compile_chain(TRAFFIC_CHAIN)
    placement = greedy_place(compiled)
    cost = compiled.placement_costs(placement)
    trace = packet_stream(scenario, chain_packets)
    chain = run_chain(compiled.spec, compiled.nfs, placement, trace,
                      per_packet_s=cost.per_packet_s)
    tallies = chain.flow_verdicts.values()
    return TrafficRow(
        scenario=name,
        flows=int(summary["flows"]),
        mean_fct_ms=summary["mean_fct_s"] * 1e3,
        p99_fct_ms=summary["p99_fct_s"] * 1e3,
        mean_goodput_gbps=summary["mean_goodput_bps"] / 1e9,
        simulated_gbytes=fluid.simulated_payload_bytes / 1e9,
        sim_seconds=fluid.sim_seconds,
        solves=fluid.solves,
        escalations=dict(sorted(fluid.escalations.items())),
        chain_packets=chain.packets,
        forwarded=sum(t[0] for t in tallies),
        dropped=sum(t[1] for t in tallies),
        consumed=sum(t[2] for t in tallies),
    )


def traffic_sweep(
    scenarios: Optional[Sequence[str]] = None,
    num_flows: int = 100_000,
    chain_packets: int = 4096,
    parallel: Optional[int] = None,
) -> List[TrafficRow]:
    """Every registered traffic scenario at datacenter flow counts.

    Each point drives one scenario end-to-end through the fluid level
    (``num_flows`` flows on the scenario's leaf/spine fabric, the
    escalation boundary active) and through :data:`TRAFFIC_CHAIN` at
    packet level.  Scenario streams live under distinct seed-tree keys
    (``traffic/<name>``), so every point is a pure function of its
    arguments plus the process default seed and ``--parallel`` runs are
    bit-identical to serial ones.
    """
    from repro.traffic import available_scenarios

    names = list(scenarios) if scenarios else list(available_scenarios())
    points = [(name, num_flows, chain_packets) for name in names]
    return _map_points(_traffic_point, points, parallel)


# ---------------------------------------------------------------------------
# NF chain placement sweep (ROADMAP item 4, repro.nf)
# ---------------------------------------------------------------------------

#: The canonical chain of the three shipped NFs.
DEFAULT_CHAIN = "firewall -> telemetry -> aggregate"


@dataclass
class ChainRow:
    """One legal placement of the chain, priced and executed packet-level."""

    placement: Tuple[str, ...]
    per_packet_ns: float
    crossings: int
    forwarded: int
    dropped: int
    consumed: int
    #: Canonical digest of the semantic results (placement excluded);
    #: every row of a sweep must carry the same one.
    fingerprint: str
    #: True on the greedy cost-driven choice.
    chosen: bool = False


def _chain_point(args: Tuple[str, Tuple[str, ...], int, int]) -> ChainRow:
    """One placement of the chain sweep.

    Self-contained: compiles the chain and synthesises the trace from the
    point arguments alone, so placements fan across worker processes and
    the per-placement fingerprints are what serial-vs-parallel identity
    is asserted over.
    """
    from repro.nf import compile_chain, generate_trace, run_chain

    spec, placement, packets, seed = args
    compiled = compile_chain(spec)
    cost = compiled.placement_costs(placement)
    trace = generate_trace(packets, seed=seed)
    result = run_chain(compiled.spec, compiled.nfs, placement, trace,
                       per_packet_s=cost.per_packet_s)
    tallies = result.flow_verdicts.values()
    return ChainRow(
        placement=tuple(placement),
        per_packet_ns=cost.per_packet_s * 1e9,
        crossings=cost.crossings,
        forwarded=sum(t[0] for t in tallies),
        dropped=sum(t[1] for t in tallies),
        consumed=sum(t[2] for t in tallies),
        fingerprint=result.fingerprint(),
    )


def chains_sweep(
    spec: str = DEFAULT_CHAIN,
    packets: int = 4096,
    seed: Optional[int] = None,
    parallel: Optional[int] = None,
) -> List[ChainRow]:
    """Every legal placement of ``spec``, cheapest first, executed
    packet-level over the same deterministic trace.

    The rows double as the placement-invariance check the figure prints:
    NF semantics live in logical packet-count time, so every placement —
    and a ``--parallel`` fan-out of them — must report one distinct
    result fingerprint.  ``seed`` defaults to the process-wide base seed
    (the harness ``--seed`` flag), falling back to 0.
    """
    from repro.nf import compile_chain, enumerate_placements, greedy_place
    from repro.sim import default_seed

    if seed is None:
        base = default_seed()
        seed = base if isinstance(base, int) else 0
    compiled = compile_chain(spec)
    chosen = greedy_place(compiled)
    options = enumerate_placements(compiled)
    points = [
        (compiled.spec, option.placement, packets, seed)
        for option in options
    ]
    rows = _map_points(_chain_point, points, parallel)
    for row in rows:
        row.chosen = row.placement == chosen
    return rows


# ---------------------------------------------------------------------------
# Profiling slice: a data-plane run that exercises every probe family
# ---------------------------------------------------------------------------


def profile_dataplane_slice(
    blocks: int = 6,
    grads_per_packet: int = 256,
    timeout_ms: float = 2.5,
    detector_threads: int = 8,
) -> Dict[str, float]:
    """A small Figure-14-shaped run for the ``profile`` harness mode.

    Some experiments (Figures 12–13) never touch the packet-level
    testbed, so a profile of them alone would carry no PPE, RMW, or
    block-lifecycle tracks.  This slice guarantees them: one PFE, four
    workers, the straggler detector on, and only three workers sending —
    every block ages out, so the trace shows dispatch, PPE occupancy,
    RMW engine activity, hash scans, block create/complete spans, and
    mitigation instants.
    """
    env = Environment()
    config = TrioMLJobConfig(
        grads_per_packet=grads_per_packet,
        window=blocks,
        timeout_s=timeout_ms / 1e3,
        detector_threads=detector_threads,
    )
    testbed = build_single_pfe_testbed(
        env, config, num_workers=4, with_detector=True
    )
    vector = [1] * (grads_per_packet * blocks)
    senders = testbed.workers[:3]  # server 4 is the straggler
    procs = [env.process(w.allreduce(vector)) for w in senders]
    env.run(until=env.all_of(procs))
    return {
        "simulated_s": env.now,
        "scheduled_events": float(env.scheduled_events),
        "blocks_mitigated": float(sum(
            len(detector.mitigations)
            for detector in testbed.handle.detectors.values()
        )),
    }
