"""The aggregation NF: the Trio-ML data path behind the NF interface.

:class:`AggregateNF` wraps the §4 aggregation workflow for the chain
compiler: packets destined to the aggregation port contribute one value
(their first payload word — the gradient proxy) to their group's
accumulator, every ``window`` contributions complete a block whose
aggregated Result travels onward, and blocks that stall for a full
epoch are flushed *degraded* — the timer-thread straggler mitigation of
§5 in packet-count time.

State and cost stay anchored to the real Trio-ML implementation:
resources are declared by
:meth:`repro.trioml.aggregator.TrioMLAggregator.nf_state_resources`,
the Trio parse front-end is the actual ``trio_ml_parse`` Microcode
program, and the per-packet instruction charge reuses the aggregator's
§6.3 constants (≈1.2 instructions per gradient plus the completion
check).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.nf.base import (
    NF,
    NFState,
    PacketView,
    StateSpec,
    VERDICT_CONSUME,
    VERDICT_FORWARD,
)
from repro.trioml.aggregator import (
    INSTRUCTIONS_PER_GRADIENT,
    TrioMLAggregator,
)
from repro.trioml.protocol import TRIO_ML_UDP_PORT

__all__ = ["AggregateNF"]


@dataclass
class _GroupEntry:
    """Semantic per-group block state (one in-flight block per group)."""

    acc: int = 0
    count: int = 0
    seq: int = 0
    #: ``count`` at the previous epoch, for straggler detection.
    last_count: int = 0


class AggregateNF(NF):
    """Backend-independent in-network aggregation in packet time."""

    name = "aggregate"
    microcode_program = "trio_ml_parse"
    #: Software aggregation on a host worker (the Figure 13 baseline:
    #: end-host reduction is the slowest of the three options).
    host_ns_per_packet = 400.0

    def __init__(
        self,
        window: int = 16,
        max_groups: int = 64,
        grads_per_packet: int = 16,
        agg_port: int = TRIO_ML_UDP_PORT,
        straggler_threads: int = 2,
        epoch_packets: int = 256,
    ) -> None:
        """``window`` contributions complete one block per group;
        ``grads_per_packet`` sizes the aggregation buffers and the
        per-packet instruction charge (16 = one 64-byte tail chunk)."""
        if window < 1:
            raise ValueError(f"window must be >= 1 packets: {window}")
        if grads_per_packet < 1:
            raise ValueError(
                f"grads per packet must be >= 1: {grads_per_packet}"
            )
        if epoch_packets < 1:
            raise ValueError(f"epoch must be >= 1 packets: {epoch_packets}")
        self.window = window
        self.max_groups = max_groups
        self.grads_per_packet = grads_per_packet
        self.agg_port = agg_port
        self.straggler_threads = straggler_threads
        self.epoch_packets = epoch_packets
        # §6.3 charge: ≈1.2 instructions per aggregated gradient plus the
        # block-completion check, beyond the trio_ml_parse front-end.
        self.trio_body_instructions = (
            math.ceil(grads_per_packet * INSTRUCTIONS_PER_GRADIENT)
            + TrioMLAggregator.COMPLETE_CHECK_INSTRUCTIONS
        )

    # -- declarations ---------------------------------------------------

    def state_resources(self) -> Tuple[StateSpec, ...]:
        return TrioMLAggregator.nf_state_resources(
            max_blocks=self.max_groups,
            grads_per_block=self.grads_per_packet,
            timer_threads=self.straggler_threads,
        )

    def trio_state_ops_per_packet(self) -> Tuple[int, int]:
        # Block lookup, then one bulk RMW add into the aggregation buffer
        # and one RMW increment of the received count.
        return 1, 2

    # -- semantics ------------------------------------------------------

    def process(self, state: NFState, pkt: PacketView) -> str:
        state.count("packets_total")
        if pkt.dst_port != self.agg_port:
            # Not an aggregation packet: standard forwarding path.
            state.count("packets_passthrough")
            return VERDICT_FORWARD
        group = pkt.dst_ip
        entry = state.table.get(group)
        if entry is None:
            if len(state.table) >= self.max_groups:
                state.count("packets_no_group")
                return VERDICT_FORWARD
            entry = state.table[group] = _GroupEntry()
        entry.acc = (entry.acc + pkt.payload_word) & 0xFFFFFFFF
        entry.count += 1
        state.count("packets_aggregated")
        if entry.count >= self.window:
            # Block complete: the Result packet departs in this packet's
            # place, so the verdict is forward.
            state.exports.append(
                ("agg", group, entry.seq, entry.count, entry.acc)
            )
            state.count("blocks_completed")
            entry.seq += 1
            entry.acc = 0
            entry.count = 0
            entry.last_count = 0
            return VERDICT_FORWARD
        return VERDICT_CONSUME

    def on_epoch(self, state: NFState, epoch_index: int) -> None:
        # Straggler timeout (§5, in packet time): a block that received
        # nothing for a full epoch is flushed degraded rather than held
        # open forever.
        for group, entry in list(state.table.items()):
            if entry.count > 0 and entry.count == entry.last_count:
                state.exports.append(
                    ("agg-degraded", group, entry.seq, entry.count, entry.acc)
                )
                state.count("blocks_degraded")
                entry.seq += 1
                entry.acc = 0
                entry.count = 0
            entry.last_count = entry.count
